//! Structural equivalence of prob-trees and the co-RP algorithm
//! (Section 3 / Theorem 2 of the paper).
//!
//! Two extraction pipelines describe the same uncertain document with
//! differently-written annotations; the randomized Figure 3 algorithm
//! recognizes them as structurally equivalent in polynomial time, while the
//! exhaustive check needs 2^|W| world comparisons. A third, subtly
//! different document is rejected.
//!
//! Run with: `cargo run --release --example equivalence_demo`

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use pxml_core::equivalence::{
    semantic_equivalent, structural_equivalent_exhaustive, structural_equivalent_randomized,
    EquivalenceConfig,
};
use pxml_core::probtree::ProbTree;
use pxml_events::{Condition, Literal};

/// A document with `n` sections, each present under one of two independent
/// review events, written by "pipeline A".
fn pipeline_a(n: usize) -> ProbTree {
    let mut t = ProbTree::new("doc");
    let root = t.tree().root();
    for i in 0..n {
        let accepted = t.events_mut().insert(format!("accepted{i}"), 0.9);
        let flagged = t.events_mut().insert(format!("flagged{i}"), 0.2);
        let section = t.add_child(
            root,
            "section",
            Condition::from_literals([Literal::pos(accepted), Literal::neg(flagged)]),
        );
        t.add_child(section, format!("para{i}"), Condition::always());
    }
    t
}

/// The same document as produced by "pipeline B": the children are listed
/// in reverse order and redundant ancestor literals are repeated on the
/// paragraphs (cleaning removes them).
fn pipeline_b(n: usize) -> ProbTree {
    let mut t = ProbTree::new("doc");
    // Declare the same event variables in the same order so the two trees
    // share W and π (a prerequisite of structural equivalence).
    let mut events = Vec::new();
    for i in 0..n {
        let accepted = t.events_mut().insert(format!("accepted{i}"), 0.9);
        let flagged = t.events_mut().insert(format!("flagged{i}"), 0.2);
        events.push((accepted, flagged));
    }
    let root = t.tree().root();
    for i in (0..n).rev() {
        let (accepted, flagged) = events[i];
        let section = t.add_child(
            root,
            "section",
            Condition::from_literals([Literal::pos(accepted), Literal::neg(flagged)]),
        );
        // Redundant repetition of the section's condition on the paragraph.
        t.add_child(
            section,
            format!("para{i}"),
            Condition::from_literals([Literal::pos(accepted), Literal::neg(flagged)]),
        );
    }
    t
}

fn main() {
    let mut rng = StdRng::seed_from_u64(42);
    let n = 8; // 16 event variables: the exhaustive check compares 65 536 worlds.
    let a = pipeline_a(n);
    let b = pipeline_b(n);

    println!(
        "Pipeline A: {} nodes, {} literals; pipeline B: {} nodes, {} literals; |W| = {}",
        a.num_nodes(),
        a.num_literals(),
        b.num_nodes(),
        b.num_literals(),
        a.events().len()
    );

    let start = Instant::now();
    let randomized =
        structural_equivalent_randomized(&a, &b, &EquivalenceConfig::default(), &mut rng);
    let randomized_time = start.elapsed();

    let start = Instant::now();
    let exhaustive = structural_equivalent_exhaustive(&a, &b, 24).expect("guarded");
    let exhaustive_time = start.elapsed();

    println!("Randomized Figure 3 algorithm: equivalent = {randomized}   ({randomized_time:?})");
    println!("Exhaustive 2^|W| check:        equivalent = {exhaustive}   ({exhaustive_time:?})");

    // A third pipeline mixes up one condition: the flagged event is used
    // positively. This is *not* equivalent and the randomized algorithm
    // notices (one-sided error: it never wrongly rejects, and wrongly
    // accepts with negligible probability).
    let mut c = pipeline_a(n);
    let flagged0 = c.events().by_name("flagged0").unwrap();
    let accepted0 = c.events().by_name("accepted0").unwrap();
    let first_section = c
        .tree()
        .iter()
        .find(|&nd| c.tree().label(nd) == "section")
        .unwrap();
    c.set_condition(
        first_section,
        Condition::from_literals([Literal::pos(accepted0), Literal::pos(flagged0)]),
    );
    let verdict = structural_equivalent_randomized(&a, &c, &EquivalenceConfig::default(), &mut rng);
    println!("Tampered pipeline C vs A:      equivalent = {verdict}");

    // Semantic equivalence also distinguishes them (and is far more
    // expensive: it expands both possible-world sets).
    let sem = semantic_equivalent(&a, &c, 24).expect("guarded");
    println!("Semantic equivalence A vs C:   equivalent = {sem}");
}
