//! Quickstart: the paper's running example, end to end.
//!
//! Builds the Figure 1 prob-tree, prints its possible-world semantics
//! (Figure 2), runs a tree-pattern query, applies a probabilistic update,
//! and round-trips the result through the ProXML format.
//!
//! Run with: `cargo run --release --example quickstart`

use pxml_core::probtree::ProbTree;
use pxml_core::proxml;
use pxml_core::query::Query as _;
use pxml_core::semantics::possible_worlds_normalized;
use pxml_core::update::{ProbabilisticUpdate, UpdateOperation};
use pxml_core::PatternQuery;
use pxml_core::QueryEngine;
use pxml_events::{Condition, Literal};
use pxml_tree::DataTree;

fn main() {
    // ----- 1. Build the Figure 1 prob-tree ------------------------------
    let mut warehouse = ProbTree::new("A");
    let w1 = warehouse.events_mut().insert("w1", 0.8);
    let w2 = warehouse.events_mut().insert("w2", 0.7);
    let root = warehouse.tree().root();
    warehouse.add_child(
        root,
        "B",
        Condition::from_literals([Literal::pos(w1), Literal::neg(w2)]),
    );
    let c = warehouse.add_child(root, "C", Condition::always());
    warehouse.add_child(c, "D", Condition::of(Literal::pos(w2)));

    println!(
        "Figure 1 prob-tree (π(w1)=0.8, π(w2)=0.7):\n{}",
        warehouse.to_ascii()
    );

    // ----- 2. Possible-world semantics (Figure 2) ------------------------
    let worlds = possible_worlds_normalized(&warehouse, 20)
        .expect("two event variables are far below the enumeration guard");
    println!("Possible worlds (Figure 2):");
    for (world, p) in worlds.iter() {
        let labels: Vec<&str> = world.iter().map(|n| world.label(n)).collect();
        println!("  p = {p:.2}  nodes = {labels:?}");
    }

    // ----- 3. Query: C nodes that have a D child -------------------------
    // Prepare once, then stream answers and ask aggregates from the same
    // prepared state.
    let mut query = PatternQuery::new(Some("C"));
    query.add_child(query.root(), "D");
    println!("\nQuery: {}", query.describe());
    let prepared = QueryEngine::new().prepare(&warehouse, &query);
    for answer in prepared.answers() {
        println!(
            "  answer with probability {:.2}:\n{}",
            answer.probability,
            indent(&pxml_tree::render::to_ascii(&answer.tree))
        );
    }
    println!(
        "  expected number of matches: {:.2} (Theorem 1 check: {})",
        prepared.expected_matches(),
        prepared
            .theorem1_check()
            .expect("two events fit any budget")
    );

    // ----- 4. A probabilistic update -------------------------------------
    // An extractor is 90% confident every C node also has an E child.
    let insert_query = PatternQuery::new(Some("C"));
    let at = insert_query.root();
    let update = ProbabilisticUpdate::new(
        UpdateOperation::insert(insert_query, at, DataTree::new("E")),
        0.9,
    );
    let (updated, new_event) = update.apply_to_probtree(&warehouse);
    println!(
        "After inserting E under C with confidence 0.9 (new event {}):\n{}",
        new_event.map_or_else(
            || "none".to_string(),
            |e| updated.events().name(e).to_string()
        ),
        updated.to_ascii()
    );

    // ----- 5. ProXML round-trip -------------------------------------------
    let xml = proxml::to_xml(&updated);
    println!("ProXML serialization:\n{xml}");
    let reloaded = proxml::from_xml(&xml).expect("generated document parses back");
    assert_eq!(reloaded.num_nodes(), updated.num_nodes());
    println!(
        "Round-tripped {} nodes through ProXML successfully.",
        reloaded.num_nodes()
    );
}

fn indent(text: &str) -> String {
    text.lines()
        .map(|l| format!("    {l}"))
        .collect::<Vec<_>>()
        .join("\n")
}
