//! The paper's motivating application: a hidden-web warehouse fed by
//! imprecise extraction tools.
//!
//! Simulates a pipeline of probabilistic insertions and retractions over a
//! warehouse of discovered web services, then answers analysis queries,
//! ranks answers by probability, and prunes improbable worlds with a
//! threshold.
//!
//! Run with: `cargo run --release --example web_warehouse`

use rand::rngs::StdRng;
use rand::SeedableRng;

use pxml_core::query::prob::query_probtree;
use pxml_core::threshold::restrict_to_threshold;
use pxml_core::PatternQuery;
use pxml_workloads::warehouse::{
    run_scenario, services_with_endpoint_and_contact, WarehouseConfig,
};

fn main() {
    let mut rng = StdRng::seed_from_u64(2007);
    let config = WarehouseConfig {
        services: 4,
        extraction_rounds: 10,
        deletion_ratio: 0.15,
    };
    println!(
        "Simulating {} extraction rounds over {} services...\n",
        config.extraction_rounds, config.services
    );
    let warehouse = run_scenario(&config, &mut rng);

    println!("Update log:");
    for (i, update) in warehouse.log.iter().enumerate() {
        println!(
            "  {:>2}. {} (confidence {:.2}){}",
            i + 1,
            update.description,
            update.confidence,
            if update.is_deletion {
                "  [retraction]"
            } else {
                ""
            }
        );
    }

    println!(
        "\nWarehouse after ingestion: {} nodes, {} literals, {} event variables",
        warehouse.tree.num_nodes(),
        warehouse.tree.num_literals(),
        warehouse.tree.events().len()
    );

    // ----- Analysis query 1: fully described services --------------------
    let query = services_with_endpoint_and_contact();
    let mut answers = query_probtree(&query, &warehouse.tree);
    answers.sort_by(|a, b| b.probability.partial_cmp(&a.probability).unwrap());
    println!(
        "\nServices with both an endpoint and a contact ({} answers, top 3 by probability):",
        answers.len()
    );
    for answer in answers.iter().take(3) {
        println!(
            "  probability {:.3}  ({} nodes in the answer)",
            answer.probability,
            answer.tree.len()
        );
    }

    // ----- Analysis query 2: any extracted keyword ------------------------
    let mut keyword_query = PatternQuery::new(Some("service"));
    keyword_query.add_child(keyword_query.root(), "keyword");
    let keyword_answers = query_probtree(&keyword_query, &warehouse.tree);
    let best = keyword_answers
        .iter()
        .map(|a| a.probability)
        .fold(0.0f64, f64::max);
    println!(
        "\nServices with at least one keyword claim: {} answers, best probability {:.3}",
        keyword_answers.len(),
        best
    );

    // ----- Threshold pruning ----------------------------------------------
    // With many low-confidence updates the number of possible worlds
    // explodes; keep only the reasonably probable ones (Theorem 4 warns
    // that this cannot always be represented compactly).
    if warehouse.tree.events().len() <= 16 {
        let threshold = 0.01;
        let restriction =
            restrict_to_threshold(&warehouse.tree, threshold, 20).expect("guarded enumeration");
        println!(
            "\nThreshold pruning at p ≥ {threshold}: kept {} of {} worlds ({:.1}% of the probability mass)",
            restriction.worlds.len(),
            restriction.total_worlds,
            100.0 * restriction.retained_mass
        );
    } else {
        println!(
            "\n(Skipping threshold pruning: too many event variables for exhaustive expansion.)"
        );
    }
}
