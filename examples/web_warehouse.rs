//! The paper's motivating application: a hidden-web warehouse fed by
//! imprecise extraction tools.
//!
//! Simulates a pipeline of probabilistic insertions and retractions over a
//! warehouse of discovered web services, then answers analysis queries,
//! ranks answers by probability, and prunes improbable worlds with a
//! threshold.
//!
//! Run with: `cargo run --release --example web_warehouse`

use rand::rngs::StdRng;
use rand::SeedableRng;

use pxml_core::threshold::restrict_to_threshold;
use pxml_core::{PatternQuery, QueryEngine};
use pxml_workloads::warehouse::{analyze, run_scenario, WarehouseConfig};

fn main() {
    let mut rng = StdRng::seed_from_u64(2007);
    let config = WarehouseConfig {
        services: 4,
        extraction_rounds: 10,
        deletion_ratio: 0.15,
    };
    println!(
        "Simulating {} extraction rounds over {} services...\n",
        config.extraction_rounds, config.services
    );
    let warehouse = run_scenario(&config, &mut rng);

    println!("Update log:");
    for (i, update) in warehouse.log.iter().enumerate() {
        println!(
            "  {:>2}. {} (confidence {:.2}){}",
            i + 1,
            update.description,
            update.confidence,
            if update.is_deletion {
                "  [retraction]"
            } else {
                ""
            }
        );
    }

    println!(
        "\nWarehouse after ingestion: {} nodes, {} literals, {} event variables",
        warehouse.tree.num_nodes(),
        warehouse.tree.num_literals(),
        warehouse.tree.events().len()
    );

    // ----- Analysis query 1: fully described services --------------------
    // One prepared analysis serves the top-3 ranking, the confident slice
    // and the expectation — the warehouse access pattern the query engine
    // is shaped for.
    let analysis = analyze(&warehouse, 3, 0.5);
    println!(
        "\nServices with both an endpoint and a contact (top {} by probability):",
        analysis.top.len()
    );
    for answer in &analysis.top {
        println!(
            "  probability {:.3}  ({} nodes in the answer)",
            answer.probability,
            answer.tree.len()
        );
    }
    println!(
        "  {} answers at least 50% likely; {:.2} fully-described services expected",
        analysis.confident.len(),
        analysis.expected_services
    );

    // ----- Analysis query 2: any extracted keyword ------------------------
    let mut keyword_query = PatternQuery::new(Some("service"));
    keyword_query.add_child(keyword_query.root(), "keyword");
    let keyword = QueryEngine::new().prepare(&warehouse.tree, &keyword_query);
    let best = keyword.top_k(1);
    println!(
        "\nServices with at least one keyword claim: {} answers, best probability {:.3}",
        keyword.len(),
        best.best().map_or(0.0, |a| a.probability)
    );

    // ----- Threshold pruning ----------------------------------------------
    // With many low-confidence updates the number of possible worlds
    // explodes; keep only the reasonably probable ones (Theorem 4 warns
    // that this cannot always be represented compactly).
    if warehouse.tree.events().len() <= 16 {
        let threshold = 0.01;
        let restriction =
            restrict_to_threshold(&warehouse.tree, threshold, 20).expect("guarded enumeration");
        println!(
            "\nThreshold pruning at p ≥ {threshold}: kept {} of {} worlds ({:.1}% of the probability mass)",
            restriction.worlds.len(),
            restriction.total_worlds,
            100.0 * restriction.retained_mass
        );
    } else {
        println!(
            "\n(Skipping threshold pruning: too many event variables for exhaustive expansion.)"
        );
    }
}
