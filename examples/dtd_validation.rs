//! DTD problems on probabilistic documents (Section 4 of the paper).
//!
//! Builds a small probabilistic product catalog, checks DTD satisfiability
//! and validity, shows the Theorem 5 reduction from SAT in action, and
//! computes a DTD restriction.
//!
//! Run with: `cargo run --release --example dtd_validation`

use pxml_core::probtree::ProbTree;
use pxml_dtd::reduction::reduce_sat;
use pxml_dtd::restriction::restrict_to_dtd;
use pxml_dtd::satisfiability::{satisfiable_backtracking, valid_bruteforce};
use pxml_dtd::{ChildConstraint, Dtd};
use pxml_events::{Condition, Literal};
use pxml_sat::{solve_dpll, Cnf, Lit, Var};

fn main() {
    // ----- A probabilistic product catalog --------------------------------
    // Extractors disagree about whether items have prices.
    let mut catalog = ProbTree::new("catalog");
    let price_seen = catalog.events_mut().insert("price_extractor", 0.85);
    let second_item = catalog.events_mut().insert("second_item_seen", 0.6);
    let root = catalog.tree().root();
    let item1 = catalog.add_child(root, "item", Condition::always());
    catalog.add_child(item1, "name", Condition::always());
    catalog.add_child(item1, "price", Condition::of(Literal::pos(price_seen)));
    let item2 = catalog.add_child(root, "item", Condition::of(Literal::pos(second_item)));
    catalog.add_child(item2, "name", Condition::always());

    println!("Probabilistic catalog:\n{}", catalog.to_ascii());

    // The schema: a catalog holds 1..3 items; an item has exactly one name
    // and at most one price.
    let mut dtd = Dtd::new();
    dtd.constrain("catalog", "item", ChildConstraint::between(1, 3))
        .constrain("item", "name", ChildConstraint::between(1, 1))
        .constrain("item", "price", ChildConstraint::between(0, 1));

    let (witness, stats) = satisfiable_backtracking(&catalog, &dtd);
    println!(
        "DTD satisfiability: {} (decisions: {}, pruned branches: {})",
        if witness.is_some() {
            "some world is valid"
        } else {
            "no valid world"
        },
        stats.decisions,
        stats.pruned
    );
    match valid_bruteforce(&catalog, &dtd, 20).expect("guarded") {
        None => println!("DTD validity: every world is valid"),
        Some(counterexample) => {
            let world = catalog.value_in_world(&counterexample);
            println!(
                "DTD validity: fails — a counterexample world has {} nodes",
                world.len()
            );
        }
    }

    // A stricter schema requiring a price on every item is satisfiable but
    // not valid (the price extractor may have been wrong).
    let mut strict = Dtd::new();
    strict
        .constrain("catalog", "item", ChildConstraint::between(1, 3))
        .constrain("item", "name", ChildConstraint::between(1, 1))
        .constrain("item", "price", ChildConstraint::between(1, 1));
    let (strict_witness, _) = satisfiable_backtracking(&catalog, &strict);
    let strict_valid = valid_bruteforce(&catalog, &strict, 20)
        .expect("guarded")
        .is_none();
    println!(
        "Strict schema (price required): satisfiable = {}, valid = {}",
        strict_witness.is_some(),
        strict_valid
    );

    // ----- DTD restriction -------------------------------------------------
    let restriction = restrict_to_dtd(&catalog, &strict, 20).expect("guarded");
    println!(
        "Restriction to the strict schema keeps {}/{} worlds ({:.1}% of the mass)\n",
        restriction.worlds.len(),
        restriction.total_worlds,
        100.0 * restriction.retained_mass
    );

    // ----- Theorem 5: SAT reduces to DTD satisfiability --------------------
    // θ = (x0 ∨ x1) ∧ (¬x0 ∨ x1) ∧ (¬x1 ∨ x2)
    let mut cnf = Cnf::new(3);
    cnf.add_clause(vec![Lit::pos(Var(0)), Lit::pos(Var(1))]);
    cnf.add_clause(vec![Lit::neg(Var(0)), Lit::pos(Var(1))]);
    cnf.add_clause(vec![Lit::neg(Var(1)), Lit::pos(Var(2))]);
    println!("Theorem 5 reduction for θ = {cnf}");
    let instance = reduce_sat(&cnf);
    println!("Reduced prob-tree:\n{}", instance.tree.to_ascii());
    let dpll_sat = solve_dpll(&cnf).is_some();
    let (dtd_witness, _) = satisfiable_backtracking(&instance.tree, &instance.satisfiability_dtd);
    println!(
        "DPLL says θ is {}; the DTD-satisfiability checker agrees: {}",
        if dpll_sat {
            "satisfiable"
        } else {
            "unsatisfiable"
        },
        dtd_witness.is_some() == dpll_sat
    );
    if let Some(w) = dtd_witness {
        let assignment = instance.to_sat_assignment(&w);
        println!("Satisfying assignment recovered from the DTD witness: {assignment:?}");
        assert!(cnf.eval(&assignment));
    }
}
