//! Cross-crate integration tests: the full pipeline from XML ingestion
//! through queries, updates, equivalence, threshold and DTD checks.

use pxml_core::equivalence::{
    structural_equivalent_exhaustive, structural_equivalent_randomized, EquivalenceConfig,
};
use pxml_core::probtree::figure1_example;
use pxml_core::proxml;
use pxml_core::query::Query as _;
use pxml_core::semantics::{possible_worlds, pw_set_to_probtree};
use pxml_core::threshold::restrict_to_threshold;
use pxml_core::update::{ProbabilisticUpdate, UpdateOperation};
use pxml_core::PatternQuery;
use pxml_core::QueryEngine;
use pxml_dtd::satisfiability::{satisfiable_backtracking, valid_bruteforce};
use pxml_dtd::{ChildConstraint, Dtd};
use pxml_events::prob_eq;
use pxml_integration::bibliography;
use pxml_tree::DataTree;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn xml_ingestion_query_update_roundtrip() {
    // Ingest a ProXML document, query it, update it, and write it back.
    let source = r#"
        <prob-tree>
          <events>
            <event name="crawler" prob="0.7"/>
            <event name="tagger" prob="0.5"/>
          </events>
          <node label="site">
            <node label="page" cond="crawler">
              <node label="topic" cond="tagger"/>
            </node>
          </node>
        </prob-tree>"#;
    let mut warehouse = proxml::from_xml(source).expect("well-formed ProXML");
    assert_eq!(warehouse.num_nodes(), 3);

    // Query: pages with a topic.
    let mut q = PatternQuery::new(Some("page"));
    q.add_child(q.root(), "topic");
    let answers: Vec<_> = QueryEngine::new()
        .prepare(&warehouse, &q)
        .answers()
        .collect();
    assert_eq!(answers.len(), 1);
    assert!(prob_eq(answers[0].probability, 0.35));

    // Update: a classifier asserts (confidence 0.8) that every page also
    // has a language annotation.
    let iq = PatternQuery::new(Some("page"));
    let at = iq.root();
    let update = ProbabilisticUpdate::new(
        UpdateOperation::insert(iq, at, DataTree::new("language")),
        0.8,
    );
    let (updated, new_event) = update.apply_to_probtree(&warehouse);
    assert!(new_event.is_some());
    warehouse = updated;

    // The update is consistent with the possible-world semantics.
    let direct = possible_worlds(&warehouse, 20).unwrap().normalized();
    assert!(prob_eq(direct.total_probability(), 1.0));

    // Round-trip through ProXML preserves structural equivalence.
    let xml = proxml::to_xml(&warehouse);
    let reloaded = proxml::from_xml(&xml).expect("round-trip parses");
    assert!(structural_equivalent_exhaustive(&warehouse, &reloaded, 20).unwrap());
}

#[test]
fn theorem1_holds_on_the_bibliography_for_a_query_battery() {
    let bib = bibliography();
    let queries: Vec<PatternQuery> = vec![
        PatternQuery::new(Some("book")),
        PatternQuery::new(Some("title")),
        {
            let mut q = PatternQuery::new(Some("book"));
            q.add_child(q.root(), "year");
            q
        },
        {
            let mut q = PatternQuery::anchored(Some("bib"));
            q.add_descendant(q.root(), "title");
            q
        },
        {
            let mut q = PatternQuery::anchored(Some("bib"));
            let b = q.add_child(q.root(), "book");
            let a = q.add_child(q.root(), "article");
            q.add_descendant(b, "title");
            q.add_descendant(a, "title");
            q
        },
    ];
    let engine = QueryEngine::new();
    for q in &queries {
        assert!(
            engine.prepare(&bib, q).theorem1_check().unwrap(),
            "Theorem 1 failed for {}",
            q.describe()
        );
    }
}

#[test]
fn update_then_query_probabilities_are_consistent_with_worlds() {
    // Delete the book's year with confidence 0.5, then ask for books with a
    // year: the direct prob-tree answer must match the world-by-world
    // computation.
    let bib = bibliography();
    let mut dq = PatternQuery::new(Some("book"));
    let year = dq.add_child(dq.root(), "year");
    let update = ProbabilisticUpdate::new(UpdateOperation::delete(dq, year), 0.5);
    let (updated, _) = update.apply_to_probtree(&bib);

    // One prepared state serves the Theorem 1 check, the expectation and
    // the ranked view.
    let mut q = PatternQuery::new(Some("book"));
    q.add_child(q.root(), "year");
    let prepared = QueryEngine::new().prepare(&updated, &q);
    assert!(prepared.theorem1_check().unwrap());

    // By hand: year present iff confirmed ∧ year_known ∧ ¬delete_event
    // = 0.9 · 0.6 · 0.5 = 0.27.
    assert!(prob_eq(prepared.expected_matches(), 0.27));
    let ranked = prepared.top_k(5);
    assert_eq!(ranked.len(), 1);
    assert!(prob_eq(ranked.best().unwrap().probability, 0.27));
}

#[test]
fn pw_roundtrip_then_equivalence() {
    // Expanding Figure 1 to its PW set and re-encoding it as a prob-tree
    // yields a semantically equivalent (but structurally different,
    // different events) prob-tree.
    let original = figure1_example();
    let pw = possible_worlds(&original, 20).unwrap().normalized();
    let reencoded = pw_set_to_probtree(&pw).unwrap();
    let back = possible_worlds(&reencoded, 20).unwrap().normalized();
    assert!(back.isomorphic(&pw));
    assert!(
        pxml_core::equivalence::semantic_equivalent(&original, &reencoded, 20).unwrap(),
        "PW-set re-encoding must be semantically equivalent"
    );
}

#[test]
fn randomized_equivalence_agrees_with_exhaustive_on_workload_trees() {
    let mut rng = StdRng::seed_from_u64(0xACC);
    let config = pxml_workloads::random::ProbTreeConfig {
        tree: pxml_workloads::random::TreeConfig {
            nodes: 12,
            max_fanout: 3,
            labels: 3,
        },
        events: 6,
        annotation_density: 0.5,
        max_literals: 2,
    };
    for _ in 0..15 {
        let a = pxml_workloads::random::random_probtree(&config, &mut rng);
        let b = a.clone();
        assert!(structural_equivalent_exhaustive(&a, &b, 20).unwrap());
        assert!(structural_equivalent_randomized(
            &a,
            &b,
            &EquivalenceConfig::default(),
            &mut rng
        ));
    }
}

#[test]
fn threshold_and_dtd_pipeline_on_the_bibliography() {
    let bib = bibliography();

    // Threshold: keep worlds with probability ≥ 0.1.
    let restriction = restrict_to_threshold(&bib, 0.1, 20).unwrap();
    assert!(restriction.worlds.len() < restriction.total_worlds);
    assert!(restriction.retained_mass > 0.5);

    // DTD: a bib must contain at most one book and at most one article,
    // books need a title.
    let mut dtd = Dtd::new();
    dtd.constrain("bib", "book", ChildConstraint::between(0, 1))
        .constrain("bib", "article", ChildConstraint::between(0, 1))
        .constrain("book", "title", ChildConstraint::between(1, 1))
        .constrain("book", "year", ChildConstraint::between(0, 1));
    let (witness, _) = satisfiable_backtracking(&bib, &dtd);
    assert!(witness.is_some(), "the schema is satisfiable");
    assert!(
        valid_bruteforce(&bib, &dtd, 20).unwrap().is_none(),
        "every world of the bibliography is valid for the permissive schema"
    );

    // A schema demanding a year on every book is satisfiable but invalid.
    let mut strict = dtd.clone();
    strict.constrain("book", "year", ChildConstraint::between(1, 1));
    let (strict_witness, _) = satisfiable_backtracking(&bib, &strict);
    assert!(strict_witness.is_some());
    assert!(valid_bruteforce(&bib, &strict, 20).unwrap().is_some());
}

#[test]
fn warehouse_scenario_stays_semantically_consistent() {
    // Apply the scenario's updates both on the prob-tree and world-by-world
    // and compare (kept small so the exhaustive expansion stays cheap).
    use pxml_workloads::warehouse::{run_scenario, WarehouseConfig};
    let mut rng = StdRng::seed_from_u64(3);
    let config = WarehouseConfig {
        services: 2,
        extraction_rounds: 6,
        deletion_ratio: 0.2,
    };
    let warehouse = run_scenario(&config, &mut rng);
    assert!(warehouse.tree.events().len() <= 6);
    let worlds = possible_worlds(&warehouse.tree, 20).unwrap();
    assert!(prob_eq(worlds.total_probability(), 1.0));
}
