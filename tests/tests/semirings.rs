//! Semiring-generic provenance: the algebraic laws every instance must
//! satisfy, the bridge laws tying the exotic instances back to
//! independent oracles (`pxml_sat` model counts, the f64 probability
//! path), and the query-engine lineage cross-check.

use std::collections::BTreeSet;

use proptest::prelude::*;

use pxml_core::QueryEngine;
use pxml_events::{
    Condition, Counting, EventId, EventTable, Lineage, Literal, Possibility, Probability, Semiring,
    TopKProofs,
};
use pxml_sat::brute::count_models_brute;
use pxml_sat::{Cnf, Lit, Var};
use pxml_workloads::warehouse::{
    run_scenario, services_with_endpoint_and_contact, WarehouseConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

// ---------------------------------------------------------------------------
// Strategies and fixtures
// ---------------------------------------------------------------------------

const NUM_EVENTS: usize = 4;

/// The law-test event table: mixed probabilities, including a certain
/// (π = 1) event so certainty-sensitive paths are exercised.
fn law_event_table() -> EventTable {
    let mut events = EventTable::new();
    for (i, p) in [0.5, 0.25, 1.0, 0.75].into_iter().enumerate() {
        events.insert(format!("e{i}"), p);
    }
    events
}

fn literal_strategy() -> impl Strategy<Value = (usize, bool)> {
    (0..NUM_EVENTS, any::<bool>())
}

/// A conjunction spec: up to four literals, possibly duplicate or
/// contradictory (both get exercised on purpose).
fn condition_spec() -> impl Strategy<Value = Vec<(usize, bool)>> {
    prop::collection::vec(literal_strategy(), 0..4)
}

/// A semiring-value spec: a sum of up to three conjunctions (empty sum
/// exercises the zero).
fn value_spec() -> impl Strategy<Value = Vec<Vec<(usize, bool)>>> {
    prop::collection::vec(condition_spec(), 0..3)
}

fn build_condition(spec: &[(usize, bool)]) -> Condition {
    Condition::from_literals(spec.iter().map(|&(e, positive)| Literal {
        event: EventId::from_index(e),
        positive,
    }))
}

/// Realizes a value spec in a semiring: the ⊕-sum of the conjunctions'
/// values — representative elements of each carrier (probabilities in
/// [0, 1], booleans, model counts, event sets, proof lists).
fn build_value<S: Semiring>(semiring: &S, spec: &[Vec<(usize, bool)>]) -> S::Value {
    let events = law_event_table();
    let mut acc = semiring.zero();
    for conjunction in spec {
        let value = build_condition(conjunction).eval_in(semiring, &events);
        acc = semiring.add(acc, value);
    }
    acc
}

/// Asserts the commutative-semiring laws on three concrete values, with
/// a caller-supplied equality (Probability needs an ε for float
/// re-association).
fn check_laws<S: Semiring>(
    semiring: &S,
    a: &S::Value,
    b: &S::Value,
    c: &S::Value,
    eq: impl Fn(&S::Value, &S::Value) -> bool,
) {
    let add = |x: &S::Value, y: &S::Value| semiring.add(x.clone(), y.clone());
    let mul = |x: &S::Value, y: &S::Value| semiring.mul(x.clone(), y.clone());
    let zero = semiring.zero();
    let one = semiring.one();
    assert!(eq(&add(a, b), &add(b, a)), "⊕ must commute: {a:?} {b:?}");
    assert!(eq(&mul(a, b), &mul(b, a)), "⊗ must commute: {a:?} {b:?}");
    assert!(
        eq(&add(&add(a, b), c), &add(a, &add(b, c))),
        "⊕ must associate: {a:?} {b:?} {c:?}"
    );
    assert!(
        eq(&mul(&mul(a, b), c), &mul(a, &mul(b, c))),
        "⊗ must associate: {a:?} {b:?} {c:?}"
    );
    assert!(eq(&add(a, &zero), a), "0 must be the ⊕-identity: {a:?}");
    assert!(eq(&mul(a, &one), a), "1 must be the ⊗-identity: {a:?}");
    assert!(eq(&mul(a, &zero), &zero), "0 must annihilate ⊗: {a:?}");
    assert!(
        eq(&mul(a, &add(b, c)), &add(&mul(a, b), &mul(a, c))),
        "⊗ must distribute over ⊕: {a:?} {b:?} {c:?}"
    );
}

// ---------------------------------------------------------------------------
// Laws
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// All five instances satisfy the commutative-semiring laws on
    /// values realized from random condition sums. `TopKProofs` is
    /// checked at a bound large enough that truncation never fires —
    /// below the bound the instance is only a "near-semiring" (the
    /// documented trade-off of bounded proof sets).
    #[test]
    fn all_instances_satisfy_the_semiring_laws(
        a in value_spec(),
        b in value_spec(),
        c in value_spec(),
    ) {
        let s = Probability;
        check_laws(
            &s,
            &build_value(&s, &a),
            &build_value(&s, &b),
            &build_value(&s, &c),
            |x, y| (x - y).abs() < 1e-12,
        );
        let s = Possibility;
        check_laws(&s, &build_value(&s, &a), &build_value(&s, &b), &build_value(&s, &c), PartialEq::eq);
        let s = Counting;
        check_laws(&s, &build_value(&s, &a), &build_value(&s, &b), &build_value(&s, &c), PartialEq::eq);
        let s = Lineage;
        check_laws(&s, &build_value(&s, &a), &build_value(&s, &b), &build_value(&s, &c), PartialEq::eq);
        let s = TopKProofs::new(64);
        check_laws(
            &s,
            &build_value(&s, &a),
            &build_value(&s, &b),
            &build_value(&s, &c),
            |x, y| {
                x.len() == y.len()
                    && x.iter().zip(y).all(|(p, q)| {
                        p.literals().eq(q.literals())
                            && (p.weight() - q.weight()).abs() < 1e-12
                    })
            },
        );
    }
}

// ---------------------------------------------------------------------------
// Bridge laws: exotic instances vs independent oracles
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Possibility is the support of Probability: a condition is
    /// possible exactly when its probability is positive (including
    /// conditions killed by a ¬w literal on a π(w) = 1 event).
    #[test]
    fn possibility_is_the_support_of_probability(spec in condition_spec()) {
        let events = law_event_table();
        let condition = build_condition(&spec);
        prop_assert_eq!(
            condition.eval_in(&Possibility, &events),
            condition.probability(&events) > 0.0
        );
    }

    /// Counting agrees with the SAT brute-force model counter: a
    /// conjunction's count over the event universe equals the model
    /// count of the CNF made of its unit clauses.
    #[test]
    fn counting_agrees_with_sat_model_counts(spec in condition_spec()) {
        let events = law_event_table();
        let condition = build_condition(&spec);
        let mut cnf = Cnf::new(NUM_EVENTS);
        for &(e, positive) in &spec {
            cnf.add_clause(vec![Lit { var: Var(e as u32), positive }]);
        }
        prop_assert_eq!(condition.eval_in(&Counting, &events), count_models_brute(&cnf));
    }

    /// A single-conjunction condition carries at most one proof, whose
    /// weight is exactly the condition's probability — `TopKProofs` is
    /// exact at k = 1 on conjunctions.
    #[test]
    fn top1_proof_weight_is_the_condition_probability(spec in condition_spec()) {
        let events = law_event_table();
        let condition = build_condition(&spec);
        let proofs = condition.eval_in(&TopKProofs::new(1), &events);
        let probability = condition.probability(&events);
        prop_assert_eq!(!proofs.is_empty(), probability > 0.0);
        if let Some(proof) = proofs.first() {
            prop_assert!((proof.weight() - probability).abs() < 1e-12);
        }
    }

    /// Lineage of a condition is exactly the set of events its literals
    /// mention (when possible), and the zero on impossible conditions.
    #[test]
    fn lineage_is_the_mentioned_event_set(spec in condition_spec()) {
        let events = law_event_table();
        let condition = build_condition(&spec);
        let lineage = condition.eval_in(&Lineage, &events);
        if condition.is_consistent() {
            let mentioned: BTreeSet<EventId> =
                spec.iter().map(|&(e, _)| EventId::from_index(e)).collect();
            prop_assert_eq!(lineage, Some(mentioned));
        } else {
            prop_assert_eq!(lineage, None);
        }
    }
}

// ---------------------------------------------------------------------------
// Query-engine cross-check: lineage answers name exactly the events the
// answer depends on
// ---------------------------------------------------------------------------

#[test]
fn lineage_answers_name_exactly_the_events_that_move_the_answer() {
    let config = WarehouseConfig {
        services: 3,
        extraction_rounds: 10,
        deletion_ratio: 0.2,
    };
    let warehouse = run_scenario(&config, &mut StdRng::seed_from_u64(0x5EED));
    let query = services_with_endpoint_and_contact();
    let engine = QueryEngine::new();
    let prepared = engine.prepare(&warehouse.tree, &query);
    let baseline: Vec<f64> = prepared.answers().map(|a| a.probability).collect();
    let lineages = prepared.answers_in(&Lineage);
    assert_eq!(baseline.len(), lineages.len());
    assert!(!baseline.is_empty(), "the scenario must produce answers");

    for event in warehouse.tree.events().iter() {
        // Perturb exactly this event's probability and re-evaluate: an
        // answer changes iff the event is in its reported lineage (the
        // world-level reading: the event flips the answer in some pair
        // of worlds differing only at this event).
        let mut perturbed = warehouse.tree.clone();
        let original = perturbed.events().prob(event);
        perturbed.events_mut().set_prob(event, original / 2.0);
        let reprepared = engine.prepare(&perturbed, &query);
        let probabilities: Vec<f64> = reprepared.answers().map(|a| a.probability).collect();
        assert_eq!(probabilities.len(), baseline.len());
        for (i, (_, lineage)) in lineages.iter().enumerate() {
            let depends = lineage.as_ref().is_some_and(|l| l.contains(&event));
            if depends && baseline[i] > 0.0 {
                assert_ne!(
                    probabilities[i], baseline[i],
                    "event {event:?} is in answer {i}'s lineage but halving its \
                     probability did not move the answer"
                );
            }
            if !depends {
                assert_eq!(
                    probabilities[i].to_bits(),
                    baseline[i].to_bits(),
                    "event {event:?} is outside answer {i}'s lineage but changed it"
                );
            }
        }
    }
}

/// The same prepared state serves all five semirings without
/// re-matching, and the views agree with each other answer by answer.
#[test]
fn one_prepared_state_serves_all_five_semirings_consistently() {
    let config = WarehouseConfig {
        services: 4,
        extraction_rounds: 12,
        deletion_ratio: 0.15,
    };
    let warehouse = run_scenario(&config, &mut StdRng::seed_from_u64(0xA11));
    let query = services_with_endpoint_and_contact();
    let prepared = QueryEngine::new().prepare(&warehouse.tree, &query);
    let probabilities = prepared.answers_in(&Probability);
    let possibilities = prepared.answers_in(&Possibility);
    let counts = prepared.answers_in(&Counting);
    let lineages = prepared.answers_in(&Lineage);
    let proofs = prepared.answers_in(&TopKProofs::new(2));
    let n = probabilities.len();
    assert_eq!(possibilities.len(), n);
    assert_eq!(counts.len(), n);
    assert_eq!(lineages.len(), n);
    assert_eq!(proofs.len(), n);
    let num_events = warehouse.tree.events().len() as u32;
    for i in 0..n {
        let p = probabilities[i].1;
        // The generic Probability drain is the bit-identical fast path.
        assert_eq!(
            p.to_bits(),
            prepared
                .probability_of(probabilities[i].0)
                .expect("answer subtree")
                .to_bits()
        );
        assert_eq!(possibilities[i].1, p > 0.0);
        // Counting over the full universe: positive iff possible, and
        // never more than the total world count.
        assert_eq!(counts[i].1 > 0, p > 0.0);
        assert!(counts[i].1 <= 1u64 << num_events);
        // A possible answer has a lineage and at least one proof whose
        // weight cannot exceed the answer probability.
        if p > 0.0 {
            assert!(lineages[i].1.is_some());
            assert!(!proofs[i].1.is_empty());
            assert!(proofs[i].1[0].weight() <= p + 1e-12);
        }
    }
}
