//! Property suite for the `pxml_server` warehouse.
//!
//! Three contracts over random (tree, pattern, script) triples:
//!
//! 1. **Snapshot isolation** — a pinned [`Snapshot`] is bit-identically
//!    unaffected by any number of later commits: preparing the same query
//!    against the pinned tree before and after a commit storm yields the
//!    same answers with the same probability bits.
//! 2. **Hub equivalence** — a hub-maintained view served after a random
//!    interleaving of commits and reads is indistinguishable from a fresh
//!    prepare against the current epoch (same answers, same order,
//!    bit-identical probabilities), no matter how far the view fell
//!    behind between reads.
//! 3. **Branch-then-diff** — forking a branch and applying a divergent
//!    suffix is equivalent to building the two documents independently
//!    from scratch: the canonical answer diff of the branched pair equals
//!    the diff of the independently built pair.

use proptest::prelude::*;

use pxml_core::probtree::ProbTree;
use pxml_core::query::pattern::{Axis, PatternQuery};
use pxml_core::update::{ProbabilisticUpdate, UpdateOperation};
use pxml_core::QueryEngine;
use pxml_events::{Condition, EventId, Literal};
use pxml_server::{ServerError, Warehouse};
use pxml_tree::builder::TreeSpec;
use pxml_tree::DataTree;
use pxml_tree::SubDataTree;
use std::sync::Arc;

/// Node labels used below the root (the root is always `R`, so label
/// patterns can never select it for deletion).
const LABELS: [&str; 4] = ["A", "B", "C", "D"];

// ---------------------------------------------------------------------------
// Strategies (same small-world construction as the maintenance suite)
// ---------------------------------------------------------------------------

fn tree_spec_strategy() -> impl Strategy<Value = TreeSpec> {
    let leaf = prop::sample::select(LABELS.to_vec()).prop_map(TreeSpec::leaf);
    leaf.prop_recursive(3, 10, 3, |inner| {
        (
            prop::sample::select(LABELS.to_vec()),
            prop::collection::vec(inner, 0..3),
        )
            .prop_map(|(label, children)| TreeSpec::node(label, children))
    })
}

#[derive(Clone, Debug)]
struct ProbTreeSpec {
    children: Vec<TreeSpec>,
    num_events: usize,
    conditions: Vec<Vec<(usize, bool)>>,
}

fn probtree_strategy() -> impl Strategy<Value = ProbTreeSpec> {
    (
        prop::collection::vec(tree_spec_strategy(), 1..3),
        1usize..=3,
    )
        .prop_flat_map(|(children, num_events)| {
            let nodes: usize = children.iter().map(TreeSpec::size).sum();
            prop::collection::vec(
                prop::collection::vec((0..num_events, any::<bool>()), 0..=2),
                nodes + 1,
            )
            .prop_map(move |conditions| ProbTreeSpec {
                children: children.clone(),
                num_events,
                conditions,
            })
        })
}

fn build_probtree(spec: &ProbTreeSpec) -> ProbTree {
    let mut data = DataTree::new("R");
    let root = data.root();
    for child in &spec.children {
        data.graft(root, &child.build());
    }
    let mut tree = ProbTree::from_data_tree(data, pxml_events::EventTable::new());
    let events: Vec<EventId> = (0..spec.num_events)
        .map(|i| {
            tree.events_mut()
                .insert(format!("e{i}"), 0.4 + 0.05 * i as f64)
        })
        .collect();
    let nodes: Vec<_> = tree.tree().iter().collect();
    for (idx, node) in nodes.into_iter().enumerate() {
        if node == tree.tree().root() {
            continue;
        }
        let literals = spec.conditions[idx % spec.conditions.len()]
            .iter()
            .map(|&(e, positive)| Literal {
                event: events[e % events.len()],
                positive,
            });
        tree.set_condition(node, Condition::from_literals(literals));
    }
    tree.validate_invariants().expect("generated tree invalid");
    tree
}

#[derive(Clone, Debug)]
struct PatternSpec {
    anchored: bool,
    root_label: Option<&'static str>,
    nodes: Vec<(usize, bool, Option<&'static str>)>,
}

fn pattern_strategy() -> impl Strategy<Value = PatternSpec> {
    let label = prop::sample::select(vec![None, Some("A"), Some("B"), Some("C"), Some("D")]);
    (
        any::<bool>(),
        label.clone(),
        prop::collection::vec((0usize..4, any::<bool>(), label), 0..3),
    )
        .prop_map(|(anchored, root_label, nodes)| PatternSpec {
            anchored,
            root_label,
            nodes,
        })
}

fn build_pattern(spec: &PatternSpec) -> PatternQuery {
    let mut q = if spec.anchored {
        PatternQuery::anchored(spec.root_label)
    } else {
        PatternQuery::new(spec.root_label)
    };
    let mut ids = vec![q.root()];
    for &(parent, descendant, label) in &spec.nodes {
        let parent = ids[parent % ids.len()];
        let axis = if descendant {
            Axis::Descendant
        } else {
            Axis::Child
        };
        ids.push(q.add_node(parent, axis, label));
    }
    q
}

fn update_strategy() -> impl Strategy<Value = ProbabilisticUpdate> {
    (
        0usize..4,
        prop::sample::select(LABELS.to_vec()),
        prop::sample::select(LABELS.to_vec()),
        prop::sample::select(vec![0.5f64, 0.8, 1.0]),
    )
        .prop_map(|(shape, l1, l2, confidence)| {
            let operation = match shape {
                0 => {
                    let q = PatternQuery::new(Some(l1));
                    let at = q.root();
                    UpdateOperation::delete(q, at)
                }
                1 => {
                    let mut q = PatternQuery::new(Some(l1));
                    let at = q.root();
                    q.add_child(at, l2);
                    UpdateOperation::delete(q, at)
                }
                2 => {
                    let mut q = PatternQuery::new(Some(l1));
                    let at = q.add_descendant(q.root(), l2);
                    UpdateOperation::delete(q, at)
                }
                _ => {
                    let mut q = PatternQuery::new(Some(l1));
                    let at = q.root();
                    q.add_child(at, l2);
                    let mut sub = DataTree::new("new");
                    let sub_root = sub.root();
                    sub.add_child(sub_root, "leaf");
                    UpdateOperation::insert(q, at, sub)
                }
            };
            ProbabilisticUpdate::new(operation, confidence)
        })
}

/// The answers of `query` against a pinned tree, as comparable data:
/// `(subtree, probability bits)` in engine order.
fn answers_against(tree: &ProbTree, query: &PatternQuery) -> Vec<(SubDataTree, u64)> {
    let prepared = QueryEngine::new().prepare(tree, query);
    (0..prepared.len())
        .map(|i| {
            (
                prepared.subtree(i).clone(),
                prepared.probability(i).to_bits(),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Contract 1: a pinned snapshot is unaffected — bit for bit — by
    /// any number of subsequent commits to the same document.
    #[test]
    fn snapshots_are_isolated_from_later_commits(
        spec in probtree_strategy(),
        pattern in pattern_strategy(),
        updates in prop::collection::vec(update_strategy(), 1..5),
    ) {
        let warehouse = Warehouse::new();
        warehouse.register("doc", build_probtree(&spec)).unwrap();
        let query = build_pattern(&pattern);

        let pinned = warehouse.snapshot("doc").unwrap();
        let before = answers_against(&pinned.tree, &query);
        for update in &updates {
            warehouse.commit("doc", update).unwrap();
        }
        prop_assert_eq!(warehouse.epoch("doc").unwrap(), updates.len() as u64);
        prop_assert_eq!(pinned.epoch, 0);
        let after = answers_against(&pinned.tree, &query);
        prop_assert_eq!(before, after);
    }

    /// Contract 2: after a random interleaving of commits and view reads,
    /// a hub-served view is indistinguishable from a fresh prepare
    /// against the current epoch.
    #[test]
    fn hub_served_views_equal_fresh_prepares_after_interleavings(
        spec in probtree_strategy(),
        pattern in pattern_strategy(),
        // Each step: one commit, then (optionally) a read of each view —
        // so views fall behind by random spans between serves.
        steps in prop::collection::vec((update_strategy(), any::<bool>()), 1..5),
    ) {
        let warehouse = Warehouse::new();
        warehouse.register("doc", build_probtree(&spec)).unwrap();
        let query = build_pattern(&pattern);
        let shared: Arc<dyn pxml_core::query::Query> = Arc::new(query.clone());
        warehouse.register_view("doc", "a", shared.clone()).unwrap();
        warehouse.register_view("doc", "b", shared).unwrap();

        for (update, read_between) in &steps {
            warehouse.commit("doc", update).unwrap();
            if *read_between {
                // Only view "a" is read here: "b" falls further behind.
                warehouse.expected_matches("doc", "a").unwrap();
            }
        }

        let snapshot = warehouse.snapshot("doc").unwrap();
        let fresh = answers_against(&snapshot.tree, &query);
        for view in ["a", "b"] {
            let served = warehouse
                .with_view("doc", view, |prepared| {
                    (0..prepared.len())
                        .map(|i| (prepared.subtree(i).clone(), prepared.probability(i).to_bits()))
                        .collect::<Vec<_>>()
                })
                .unwrap();
            prop_assert_eq!(&served, &fresh, "view {} diverged from fresh prepare", view);
        }
    }

    /// Contract 3: branch-then-commit is equivalent to building the two
    /// documents independently — the canonical diff of the branched pair
    /// equals the diff of the from-scratch pair.
    #[test]
    fn branch_then_diff_equals_independently_built_documents(
        spec in probtree_strategy(),
        pattern in pattern_strategy(),
        prefix in prop::collection::vec(update_strategy(), 0..3),
        trunk_suffix in prop::collection::vec(update_strategy(), 0..3),
        branch_suffix in prop::collection::vec(update_strategy(), 0..3),
    ) {
        let query = build_pattern(&pattern);

        // Branched pair: prefix on the trunk, fork, divergent suffixes.
        let branched = Warehouse::new();
        branched.register("trunk", build_probtree(&spec)).unwrap();
        for update in &prefix {
            branched.commit("trunk", update).unwrap();
        }
        branched.branch("trunk", "branch").unwrap();
        for update in &trunk_suffix {
            branched.commit("trunk", update).unwrap();
        }
        for update in &branch_suffix {
            branched.commit("branch", update).unwrap();
        }
        let via_branch = branched.diff("trunk", "branch", &query).unwrap();

        // Independent pair: each document replays its full script from
        // the same base tree in its own warehouse.
        let independent = Warehouse::new();
        independent.register("left", build_probtree(&spec)).unwrap();
        independent.register("right", build_probtree(&spec)).unwrap();
        for update in prefix.iter().chain(&trunk_suffix) {
            independent.commit("left", update).unwrap();
        }
        for update in prefix.iter().chain(&branch_suffix) {
            independent.commit("right", update).unwrap();
        }
        let via_scratch = independent.diff("left", "right", &query).unwrap();

        prop_assert_eq!(&via_branch.only_left, &via_scratch.only_left);
        prop_assert_eq!(&via_branch.only_right, &via_scratch.only_right);
        prop_assert_eq!(via_branch.unchanged, via_scratch.unchanged);
        prop_assert_eq!(via_branch.shifted.len(), via_scratch.shifted.len());
        for ((ca, la, ra), (cb, lb, rb)) in
            via_branch.shifted.iter().zip(via_scratch.shifted.iter())
        {
            prop_assert_eq!(ca, cb);
            prop_assert_eq!(la.to_bits(), lb.to_bits());
            prop_assert_eq!(ra.to_bits(), rb.to_bits());
        }
        // Same suffixes => no divergence at all.
        if trunk_suffix.is_empty() && branch_suffix.is_empty() {
            prop_assert!(via_branch.is_empty());
        }
    }
}

/// Concurrency smoke: reader threads pin snapshots and serve views while
/// a writer commits — nothing tears, and the served answers always match
/// a fresh prepare against the epoch they were served at.
#[test]
fn concurrent_readers_never_block_or_tear() {
    let warehouse = Warehouse::new();
    let tree = pxml_workloads::warehouse::skeleton(4);
    warehouse.register("doc", tree).unwrap();
    let query = pxml_workloads::warehouse::services_with_endpoint_and_contact();
    warehouse
        .register_view("doc", "q", Arc::new(query.clone()))
        .unwrap();

    let commits = 16;
    std::thread::scope(|scope| {
        let warehouse = &warehouse;
        let query = &query;
        scope.spawn(move || {
            for i in 0..commits {
                let label = if i % 2 == 0 { "endpoint" } else { "contact" };
                let q = PatternQuery::new(Some("service"));
                let at = q.root();
                let update = ProbabilisticUpdate::new(
                    UpdateOperation::insert(q, at, DataTree::new(label)),
                    0.9,
                );
                warehouse.commit("doc", &update).unwrap();
            }
        });
        for _ in 0..3 {
            scope.spawn(move || {
                for _ in 0..32 {
                    // A pinned snapshot and a served view each must be
                    // internally consistent with *some* epoch.
                    let snapshot = warehouse.snapshot("doc").unwrap();
                    let pinned = QueryEngine::new()
                        .prepare(&snapshot.tree, query)
                        .expected_matches();
                    assert!(pinned.is_finite());
                    let served = warehouse.expected_matches("doc", "q").unwrap();
                    assert!(served.is_finite());
                }
            });
        }
    });

    assert_eq!(warehouse.epoch("doc").unwrap(), commits);
    let snapshot = warehouse.snapshot("doc").unwrap();
    let fresh = QueryEngine::new()
        .prepare(&snapshot.tree, &query)
        .expected_matches();
    let served = warehouse.expected_matches("doc", "q").unwrap();
    assert_eq!(served.to_bits(), fresh.to_bits());
    assert!(matches!(
        warehouse.expected_matches("missing", "q"),
        Err(ServerError::UnknownDocument(_))
    ));
}
