//! Property-based tests (proptest) on the core invariants of the model.

use proptest::prelude::*;

use pxml_core::clean::{clean, is_clean};
use pxml_core::equivalence::structural_equivalent_exhaustive;
use pxml_core::probtree::ProbTree;
use pxml_core::semantics::{possible_worlds, pw_set_to_probtree};
use pxml_core::update::{ProbabilisticUpdate, UpdateOperation};
use pxml_core::worlds::{WorldEngine, WorldEngineConfig};
use pxml_core::PatternQuery;
use pxml_events::{Condition, EventId, Literal};
use pxml_tree::builder::TreeSpec;
use pxml_tree::canon::{canonical_string, isomorphic, Semantics};
use pxml_tree::DataTree;

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

/// A random small data-tree specification.
fn tree_spec_strategy() -> impl Strategy<Value = TreeSpec> {
    let leaf = prop::sample::select(vec!["A", "B", "C", "D"]).prop_map(TreeSpec::leaf);
    leaf.prop_recursive(3, 12, 3, |inner| {
        (
            prop::sample::select(vec!["A", "B", "C", "D"]),
            prop::collection::vec(inner, 0..3),
        )
            .prop_map(|(label, children)| TreeSpec::node(label, children))
    })
}

/// A description of a small prob-tree: a tree shape plus, for every
/// non-root node index, an optional list of (event index, polarity)
/// literals over `num_events` events.
#[derive(Clone, Debug)]
struct ProbTreeSpec {
    shape: TreeSpec,
    num_events: usize,
    conditions: Vec<Vec<(usize, bool)>>,
}

fn probtree_strategy() -> impl Strategy<Value = ProbTreeSpec> {
    (tree_spec_strategy(), 1usize..=4).prop_flat_map(|(shape, num_events)| {
        let nodes = shape.size();
        prop::collection::vec(
            prop::collection::vec((0..num_events, any::<bool>()), 0..=2),
            nodes,
        )
        .prop_map(move |conditions| ProbTreeSpec {
            shape: shape.clone(),
            num_events,
            conditions,
        })
    })
}

fn build_probtree(spec: &ProbTreeSpec) -> ProbTree {
    let data = spec.shape.build();
    let mut tree = ProbTree::from_data_tree(data, pxml_events::EventTable::new());
    let events: Vec<EventId> = (0..spec.num_events)
        .map(|i| tree.events_mut().insert(format!("e{i}"), 0.5))
        .collect();
    let nodes: Vec<_> = tree.tree().iter().collect();
    for (idx, node) in nodes.into_iter().enumerate() {
        if node == tree.tree().root() {
            continue;
        }
        let literals = spec.conditions[idx % spec.conditions.len()]
            .iter()
            .map(|&(e, positive)| Literal {
                event: events[e % events.len()],
                positive,
            });
        tree.set_condition(node, Condition::from_literals(literals));
    }
    tree.validate_invariants()
        .expect("generated prob-trees satisfy the model invariants");
    tree
}

// ---------------------------------------------------------------------------
// Data-tree / canonical-form properties
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Isomorphism is invariant under rebuilding from the (unordered) spec
    /// with reversed child lists.
    #[test]
    fn isomorphism_ignores_child_order(spec in tree_spec_strategy()) {
        fn reverse(spec: &TreeSpec) -> TreeSpec {
            TreeSpec {
                label: spec.label.clone(),
                children: spec.children.iter().rev().map(reverse).collect(),
            }
        }
        let a = spec.build();
        let b = reverse(&spec).build();
        prop_assert!(isomorphic(&a, &b, Semantics::MultiSet));
        prop_assert_eq!(
            canonical_string(&a, Semantics::MultiSet),
            canonical_string(&b, Semantics::MultiSet)
        );
    }

    /// The canonical string characterizes isomorphism on random pairs.
    #[test]
    fn canonical_string_agreement(a in tree_spec_strategy(), b in tree_spec_strategy()) {
        let ta = a.build();
        let tb = b.build();
        let iso = isomorphic(&ta, &tb, Semantics::MultiSet);
        let same_string = canonical_string(&ta, Semantics::MultiSet)
            == canonical_string(&tb, Semantics::MultiSet);
        prop_assert_eq!(iso, same_string);
    }
}

// ---------------------------------------------------------------------------
// Prob-tree semantics properties
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The possible-world semantics is a probability distribution.
    #[test]
    fn world_probabilities_sum_to_one(spec in probtree_strategy()) {
        let tree = build_probtree(&spec);
        let pw = possible_worlds(&tree, 16).unwrap();
        prop_assert!((pw.total_probability() - 1.0).abs() < 1e-9);
    }

    /// Cleaning preserves structural equivalence (and therefore the
    /// semantics) and is idempotent.
    #[test]
    fn cleaning_preserves_equivalence(spec in probtree_strategy()) {
        let tree = build_probtree(&spec);
        let cleaned = clean(&tree);
        prop_assert!(is_clean(&cleaned));
        prop_assert!(structural_equivalent_exhaustive(&tree, &cleaned, 16).unwrap());
        let twice = clean(&cleaned);
        prop_assert_eq!(twice.num_nodes(), cleaned.num_nodes());
        prop_assert_eq!(twice.num_literals(), cleaned.num_literals());
    }

    /// Theorem 1: prob-tree query evaluation agrees with the possible-world
    /// semantics for a fixed battery of pattern queries.
    #[test]
    fn theorem1_on_random_probtrees(spec in probtree_strategy()) {
        let tree = build_probtree(&spec);
        let queries = vec![
            PatternQuery::new(Some("B")),
            {
                let mut q = PatternQuery::new(Some("A"));
                q.add_child(q.root(), "C");
                q
            },
            {
                let mut q = PatternQuery::anchored(None);
                q.add_descendant(q.root(), "D");
                q
            },
        ];
        let engine = pxml_core::QueryEngine::with_config(
            pxml_core::QueryEngineConfig::for_event_budget(16),
        );
        for q in &queries {
            prop_assert!(engine.prepare(&tree, q).theorem1_check().unwrap());
        }
    }

    /// The PW-set → prob-tree construction is a right inverse of the
    /// semantics (expressiveness completeness).
    #[test]
    fn pw_roundtrip(spec in probtree_strategy()) {
        let tree = build_probtree(&spec);
        let pw = possible_worlds(&tree, 16).unwrap().normalized();
        let reencoded = pw_set_to_probtree(&pw).unwrap();
        let back = possible_worlds(&reencoded, 16).unwrap().normalized();
        prop_assert!(back.isomorphic(&pw));
    }

    /// Update consistency (the Appendix A theorem): applying a
    /// probabilistic insertion or deletion commutes with taking the
    /// possible-world semantics.
    #[test]
    fn updates_commute_with_semantics(
        spec in probtree_strategy(),
        confidence in prop::sample::select(vec![0.5f64, 1.0]),
        delete in any::<bool>(),
    ) {
        let tree = build_probtree(&spec);
        let update = if delete {
            let mut q = PatternQuery::new(Some("A"));
            let target = q.add_child(q.root(), "B");
            ProbabilisticUpdate::new(UpdateOperation::delete(q, target), confidence)
        } else {
            let q = PatternQuery::new(Some("C"));
            let at = q.root();
            ProbabilisticUpdate::new(
                UpdateOperation::insert(q, at, DataTree::new("new")),
                confidence,
            )
        };
        let (updated, _) = update.apply_to_probtree(&tree);
        prop_assert!(updated.validate_invariants().is_ok());
        let direct = possible_worlds(&updated, 20).unwrap().normalized();
        let via_pw = update
            .apply_to_pw_set(&possible_worlds(&tree, 16).unwrap())
            .normalized();
        prop_assert!(direct.isomorphic(&via_pw));
    }
}

// ---------------------------------------------------------------------------
// Relevant-event world engine properties
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The relevant-event engine's normalized world set is isomorphic to
    /// the legacy full-enumeration semantics on random prob-trees built by
    /// the hand-rolled strategy.
    #[test]
    fn world_engine_matches_legacy_enumeration(spec in probtree_strategy()) {
        let tree = build_probtree(&spec);
        let legacy = possible_worlds(&tree, 16).unwrap().normalized();
        let engine = WorldEngine::new(&tree);
        prop_assert!(engine.num_relevant() <= tree.events().len());
        let fast = engine.normalized_worlds(16).unwrap();
        prop_assert!(fast.isomorphic(&legacy));
        prop_assert!((fast.total_probability() - 1.0).abs() < 1e-9);
    }

    /// Same property on `workloads::random_probtree` instances whose event
    /// tables additionally declare events no condition ever mentions: the
    /// engine must marginalize them without enumerating them, and still
    /// agree with the full 2^{|W|} enumeration.
    #[test]
    fn world_engine_marginalizes_unused_events(seed in 0u64..1_000_000) {
        use pxml_workloads::random::{random_probtree, ProbTreeConfig, TreeConfig};
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let config = ProbTreeConfig {
            tree: TreeConfig { nodes: 25, max_fanout: 4, labels: 3 },
            events: 6,
            annotation_density: 0.4,
            max_literals: 2,
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let mut tree = random_probtree(&config, &mut rng);
        // Declare 6 events that are never mentioned by any condition.
        for _ in 0..6 {
            tree.events_mut().fresh(0.5);
        }
        prop_assert_eq!(tree.events().len(), 12);

        let engine = WorldEngine::new(&tree);
        prop_assert!(engine.num_relevant() <= 6);
        // Component sizes partition the relevant set.
        let component_total: usize =
            engine.components().iter().map(Vec::len).sum();
        prop_assert_eq!(component_total, engine.num_relevant());

        let legacy = possible_worlds(&tree, 12).unwrap().normalized();
        let fast = engine.normalized_worlds(6).unwrap();
        prop_assert!(fast.isomorphic(&legacy));
    }
}

// ---------------------------------------------------------------------------
// Factorized shard-executor properties
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Three-way agreement: the legacy full enumeration, the streamed
    /// (PR-2) engine and the factorized shard executor produce isomorphic
    /// normalized PW sets on random prob-trees.
    #[test]
    fn factorized_matches_streamed_and_legacy(spec in probtree_strategy()) {
        let tree = build_probtree(&spec);
        let legacy = possible_worlds(&tree, 16).unwrap().normalized();
        let engine = WorldEngine::new(&tree);
        let streamed = engine.normalized_worlds(16).unwrap();
        let factorized = engine
            .sharded(&WorldEngineConfig::sequential(), 16)
            .unwrap()
            .normalized_worlds()
            .unwrap();
        prop_assert!(factorized.isomorphic(&streamed));
        prop_assert!(factorized.isomorphic(&legacy));
        prop_assert!((factorized.total_probability() - 1.0).abs() < 1e-9);
    }

    /// Per-component factorized probabilities re-multiply to the joint
    /// `Valuation::probability_over` result: every shard's class masses
    /// are the sums of the raw per-assignment masses of its component (so
    /// each shard carries total mass 1), each joint probability is the
    /// product of its per-shard class masses, and whenever no
    /// signature-merging happened the joint probability equals
    /// `probability_over` of the relevant events exactly.
    #[test]
    fn factorized_probabilities_remultiply(spec in probtree_strategy()) {
        let tree = build_probtree(&spec);
        let engine = WorldEngine::new(&tree);
        let fw = engine
            .sharded(&WorldEngineConfig::sequential(), 16)
            .unwrap();
        for (i, shard) in fw.shards().iter().enumerate() {
            let raw: f64 = engine
                .component_valuations(i, true)
                .map(|v| v.probability_over(tree.events(), shard.events.iter().copied()))
                .sum();
            let classes: f64 = shard.assignments.iter().map(|a| a.probability).sum();
            prop_assert!((raw - classes).abs() < 1e-9);
            prop_assert!((classes - 1.0).abs() < 1e-9);
        }
        let no_merging = fw
            .shards()
            .iter()
            .all(|s| s.assignments.iter().all(|a| a.merged == 1));
        let mut total = 0.0;
        for (v, p) in fw.joint_valuations().unwrap() {
            total += p;
            if no_merging {
                let expected =
                    v.probability_over(tree.events(), engine.relevant_events().iter().copied());
                prop_assert!((p - expected).abs() < 1e-9);
            }
        }
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    /// Degenerate extreme: a *single* co-occurrence component (all events
    /// chained pairwise). The factorized path has exactly one shard, and
    /// every joint probability re-multiplies (trivially, but through the
    /// same plumbing) to `Valuation::probability_over`.
    #[test]
    fn factorized_single_component_extreme(
        probs in prop::collection::vec(0.05f64..0.95, 2..6),
    ) {
        let mut tree = ProbTree::new("R");
        let events: Vec<EventId> = probs
            .iter()
            .map(|&p| tree.events_mut().fresh(p))
            .collect();
        let root = tree.tree().root();
        for pair in events.windows(2) {
            tree.add_child(
                root,
                "P",
                Condition::from_literals([Literal::pos(pair[0]), Literal::pos(pair[1])]),
            );
        }
        let engine = WorldEngine::new(&tree);
        prop_assert_eq!(engine.components().len(), 1);
        let fw = engine
            .sharded(&WorldEngineConfig::sequential(), 16)
            .unwrap();
        prop_assert_eq!(fw.shards().len(), 1);
        prop_assert_eq!(fw.states_enumerated(), 1u64 << probs.len());
        // One shard: the joint IS the shard, class masses sum to 1, and
        // summing the raw masses per class reproduces them (checked via
        // the class totals against the full probability_over sum).
        let raw_total: f64 = engine
            .component_valuations(0, true)
            .map(|v| v.probability_over(tree.events(), events.iter().copied()))
            .sum();
        let class_total: f64 = fw.shards()[0]
            .assignments
            .iter()
            .map(|a| a.probability)
            .sum();
        prop_assert!((raw_total - class_total).abs() < 1e-9);
        let legacy = possible_worlds(&tree, 16).unwrap().normalized();
        prop_assert!(fw.normalized_worlds().unwrap().isomorphic(&legacy));
    }

    /// The opposite extreme: all-singleton components (every event in its
    /// own component, one single-literal condition each). No merging is
    /// possible, so every joint probability equals
    /// `Valuation::probability_over` exactly, and the shard counter is
    /// `Σ_c 2^1 = 2 · |W|` vs the `2^{|W|}` joint.
    #[test]
    fn factorized_all_singleton_extreme(
        probs in prop::collection::vec(0.05f64..0.95, 2..8),
        negate in prop::collection::vec(any::<bool>(), 8),
    ) {
        let mut tree = ProbTree::new("R");
        let root = tree.tree().root();
        let events: Vec<EventId> = probs
            .iter()
            .map(|&p| tree.events_mut().fresh(p))
            .collect();
        for (i, &e) in events.iter().enumerate() {
            let literal = if negate[i % negate.len()] {
                Literal::neg(e)
            } else {
                Literal::pos(e)
            };
            tree.add_child(root, format!("C{i}"), Condition::of(literal));
        }
        let engine = WorldEngine::new(&tree);
        prop_assert_eq!(engine.components().len(), events.len());
        let fw = engine
            .sharded(&WorldEngineConfig::sequential(), 16)
            .unwrap();
        prop_assert_eq!(fw.states_enumerated(), 2 * events.len() as u64);
        prop_assert_eq!(fw.num_joint_assignments(), 1u128 << events.len());
        for shard in fw.shards() {
            prop_assert!(shard.assignments.iter().all(|a| a.merged == 1));
        }
        for (v, p) in fw.joint_valuations().unwrap() {
            let expected = v.probability_over(tree.events(), events.iter().copied());
            prop_assert!((p - expected).abs() < 1e-9);
        }
        let legacy = possible_worlds(&tree, 16).unwrap().normalized();
        prop_assert!(fw.normalized_worlds().unwrap().isomorphic(&legacy));
    }

    /// The shard-local condition fold agrees with the analytic product
    /// over independent events, without ever touching the cross product.
    #[test]
    fn factorized_condition_fold_matches_analytic(
        spec in probtree_strategy(),
        literal_spec in prop::collection::vec((0usize..4, any::<bool>()), 0..4),
    ) {
        let tree = build_probtree(&spec);
        let engine = WorldEngine::new(&tree);
        let fw = engine
            .sharded(&WorldEngineConfig::sequential(), 16)
            .unwrap();
        let num_events = tree.events().len();
        let condition = Condition::from_literals(literal_spec.iter().map(|&(e, positive)| {
            Literal {
                event: EventId::from_index(e % num_events),
                positive,
            }
        }));
        let folded = fw.condition_probability(&condition);
        let analytic = condition.probability(tree.events());
        prop_assert!((folded - analytic).abs() < 1e-9);
    }
}

// ---------------------------------------------------------------------------
// Serialization properties
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// ProXML round-trips preserve structural equivalence.
    #[test]
    fn proxml_roundtrip(spec in probtree_strategy()) {
        let tree = build_probtree(&spec);
        let xml = pxml_core::proxml::to_xml(&tree);
        let back = pxml_core::proxml::from_xml(&xml).unwrap();
        prop_assert!(structural_equivalent_exhaustive(&tree, &back, 16).unwrap());
    }

    /// The generic XML writer/parser round-trips arbitrary data trees.
    #[test]
    fn xml_datatree_roundtrip(spec in tree_spec_strategy()) {
        let tree = spec.build();
        let element = pxml_xml::datatree::datatree_to_element(&tree);
        let text = pxml_xml::writer::write_document(&element);
        let reparsed = pxml_xml::parser::parse(&text).unwrap();
        let back = pxml_xml::datatree::element_to_datatree(&reparsed);
        prop_assert!(isomorphic(&tree, &back, Semantics::MultiSet));
    }
}
