//! Property suite for incremental view maintenance.
//!
//! The versioned-`Document` redesign lets a `PreparedQuery` stay live
//! across `UpdateEngine` steps: each committed epoch carries a structured
//! `UpdateDelta`, and `PreparedQuery::maintain` patches the match set,
//! the interned condition unions and the cached probabilities in place
//! whenever the delta's label traffic provably misses the query's spine
//! footprint. This suite pins the two contracts over random (tree,
//! pattern, script) triples:
//!
//! 1. **Indistinguishability** — after every maintenance call the state
//!    must equal a fresh prepare against the same epoch: same answers in
//!    the same order, bit-identical probabilities, identical selection
//!    statistics.
//! 2. **No silent fallback** — when the query has a bounded footprint
//!    and a delta provably misses it, the patch path *must* be taken;
//!    conversely spine-touching and unbounded cases must re-prepare.

use std::collections::BTreeSet;

use proptest::prelude::*;

use pxml_core::probtree::ProbTree;
use pxml_core::query::pattern::{Axis, PatternQuery};
use pxml_core::update::{ProbabilisticUpdate, UpdateOperation};
use pxml_core::{
    Document, FallbackReason, MaintainOutcome, PreparedQuery, QueryEngine, UpdateEngine,
};
use pxml_events::{Condition, EventId, Literal};
use pxml_tree::builder::TreeSpec;
use pxml_tree::DataTree;

/// Node labels used below the root. The root is always labeled `R`, so a
/// label pattern can never select the root for deletion (unsupported by
/// Definition 15 and the engine alike).
const LABELS: [&str; 4] = ["A", "B", "C", "D"];

// ---------------------------------------------------------------------------
// Strategies (same small-world construction as the queries/updates suites)
// ---------------------------------------------------------------------------

fn tree_spec_strategy() -> impl Strategy<Value = TreeSpec> {
    let leaf = prop::sample::select(LABELS.to_vec()).prop_map(TreeSpec::leaf);
    leaf.prop_recursive(3, 12, 3, |inner| {
        (
            prop::sample::select(LABELS.to_vec()),
            prop::collection::vec(inner, 0..3),
        )
            .prop_map(|(label, children)| TreeSpec::node(label, children))
    })
}

#[derive(Clone, Debug)]
struct ProbTreeSpec {
    children: Vec<TreeSpec>,
    num_events: usize,
    conditions: Vec<Vec<(usize, bool)>>,
}

fn probtree_strategy() -> impl Strategy<Value = ProbTreeSpec> {
    (
        prop::collection::vec(tree_spec_strategy(), 1..3),
        1usize..=4,
    )
        .prop_flat_map(|(children, num_events)| {
            let nodes: usize = children.iter().map(TreeSpec::size).sum();
            prop::collection::vec(
                prop::collection::vec((0..num_events, any::<bool>()), 0..=2),
                nodes + 1,
            )
            .prop_map(move |conditions| ProbTreeSpec {
                children: children.clone(),
                num_events,
                conditions,
            })
        })
}

fn build_probtree(spec: &ProbTreeSpec) -> ProbTree {
    let mut data = DataTree::new("R");
    let root = data.root();
    for child in &spec.children {
        data.graft(root, &child.build());
    }
    let mut tree = ProbTree::from_data_tree(data, pxml_events::EventTable::new());
    let events: Vec<EventId> = (0..spec.num_events)
        .map(|i| {
            tree.events_mut()
                .insert(format!("e{i}"), 0.4 + 0.05 * i as f64)
        })
        .collect();
    let nodes: Vec<_> = tree.tree().iter().collect();
    for (idx, node) in nodes.into_iter().enumerate() {
        if node == tree.tree().root() {
            continue;
        }
        let literals = spec.conditions[idx % spec.conditions.len()]
            .iter()
            .map(|&(e, positive)| Literal {
                event: events[e % events.len()],
                positive,
            });
        tree.set_condition(node, Condition::from_literals(literals));
    }
    tree.validate_invariants()
        .expect("generated tree violates prob-tree/DAG-store invariants");
    tree
}

/// A random small pattern: up to three extra nodes hung off earlier
/// pattern nodes, mixed axes, wildcard or concrete labels — wildcards
/// yield unbounded footprints, exercising the mandatory-fallback arm.
#[derive(Clone, Debug)]
struct PatternSpec {
    anchored: bool,
    root_label: Option<&'static str>,
    nodes: Vec<(usize, bool, Option<&'static str>)>,
}

fn pattern_strategy() -> impl Strategy<Value = PatternSpec> {
    let label = prop::sample::select(vec![None, Some("A"), Some("B"), Some("C"), Some("D")]);
    (
        any::<bool>(),
        label.clone(),
        prop::collection::vec((0usize..4, any::<bool>(), label), 0..3),
    )
        .prop_map(|(anchored, root_label, nodes)| PatternSpec {
            anchored,
            root_label,
            nodes,
        })
}

fn build_pattern(spec: &PatternSpec) -> PatternQuery {
    let mut q = if spec.anchored {
        PatternQuery::anchored(spec.root_label)
    } else {
        PatternQuery::new(spec.root_label)
    };
    let mut ids = vec![q.root()];
    for &(parent, descendant, label) in &spec.nodes {
        let parent = ids[parent % ids.len()];
        let axis = if descendant {
            Axis::Descendant
        } else {
            Axis::Child
        };
        ids.push(q.add_node(parent, axis, label));
    }
    q
}

/// A random update: label deletions (plain, child-qualified, descendant)
/// and insertions, at mixed confidences including certain ones.
fn update_strategy() -> impl Strategy<Value = ProbabilisticUpdate> {
    (
        0usize..4,
        prop::sample::select(LABELS.to_vec()),
        prop::sample::select(LABELS.to_vec()),
        prop::sample::select(vec![0.5f64, 0.8, 1.0]),
    )
        .prop_map(|(shape, l1, l2, confidence)| {
            let operation = match shape {
                0 => {
                    let q = PatternQuery::new(Some(l1));
                    let at = q.root();
                    UpdateOperation::delete(q, at)
                }
                1 => {
                    let mut q = PatternQuery::new(Some(l1));
                    let at = q.root();
                    q.add_child(at, l2);
                    UpdateOperation::delete(q, at)
                }
                2 => {
                    let mut q = PatternQuery::new(Some(l1));
                    let at = q.add_descendant(q.root(), l2);
                    UpdateOperation::delete(q, at)
                }
                _ => {
                    let mut q = PatternQuery::new(Some(l1));
                    let at = q.root();
                    q.add_child(at, l2);
                    let mut sub = DataTree::new("new");
                    let sub_root = sub.root();
                    sub.add_child(sub_root, "leaf");
                    UpdateOperation::insert(q, at, sub)
                }
            };
            ProbabilisticUpdate::new(operation, confidence)
        })
}

// ---------------------------------------------------------------------------
// Cross-check helper
// ---------------------------------------------------------------------------

/// The maintained state must be indistinguishable from a fresh prepare
/// against the same document epoch.
fn assert_matches_fresh(maintained: &PreparedQuery<'_>, doc: &Document, query: &PatternQuery) {
    let fresh = QueryEngine::new().prepare_doc(doc, query);
    prop_assert_eq!(maintained.len(), fresh.len());
    for i in 0..fresh.len() {
        prop_assert_eq!(maintained.subtree(i), fresh.subtree(i));
        prop_assert_eq!(
            maintained.probability(i).to_bits(),
            fresh.probability(i).to_bits(),
            "answer #{} probability must be bit-identical",
            i
        );
    }
    let ranked_maintained = maintained.ranked();
    let ranked_fresh = fresh.ranked();
    prop_assert_eq!(ranked_maintained.stats(), ranked_fresh.stats());
    for (a, b) in ranked_maintained.iter().zip(ranked_fresh.iter()) {
        prop_assert_eq!(a.probability.to_bits(), b.probability.to_bits());
        prop_assert_eq!(&a.subtree, &b.subtree);
    }
    prop_assert_eq!(
        maintained.expected_matches().to_bits(),
        fresh.expected_matches().to_bits()
    );
}

// ---------------------------------------------------------------------------
// Properties
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Step-by-step maintenance: after every committed epoch the
    /// maintained state equals a fresh prepare, and the outcome is
    /// exactly determined by the delta/footprint intersection — a
    /// non-touching delta on a bounded footprint MUST patch (no silent
    /// fallback), a touching one MUST fall back.
    #[test]
    fn maintained_state_is_indistinguishable_from_a_fresh_prepare(
        spec in probtree_strategy(),
        pattern in pattern_strategy(),
        updates in prop::collection::vec(update_strategy(), 1..4),
    ) {
        let tree = build_probtree(&spec);
        let query = build_pattern(&pattern);
        let mut doc = Document::new(tree);
        let query_engine = QueryEngine::new();
        let update_engine = UpdateEngine::new();
        let mut prepared = query_engine.prepare_doc(&doc, &query);
        let footprint: Option<BTreeSet<String>> = prepared.footprint().cloned();
        for update in &updates {
            let delta = update_engine.apply_doc(&mut doc, update);
            let outcome = prepared.maintain(&doc).unwrap();
            match &footprint {
                None => prop_assert_eq!(
                    outcome,
                    MaintainOutcome::Fallback { reason: FallbackReason::UnboundedFootprint }
                ),
                Some(fp) if delta.touches(fp) => prop_assert_eq!(
                    outcome,
                    MaintainOutcome::Fallback { reason: FallbackReason::SpineTouched }
                ),
                Some(_) => prop_assert_eq!(
                    outcome,
                    MaintainOutcome::Patched { steps: 1 },
                    "no silent fallback on a non-spine-touching delta"
                ),
            }
            assert_matches_fresh(&prepared, &doc, &query);
        }
        // Every step was accounted for as either a patch or a fallback.
        let stats = prepared.maintenance_stats();
        prop_assert_eq!(stats.steps_patched + stats.fallbacks, updates.len());
    }

    /// Batched maintenance: apply the whole script first, then catch up
    /// with one `maintain` call spanning all pending deltas.
    #[test]
    fn one_maintain_call_catches_up_across_a_whole_script(
        spec in probtree_strategy(),
        pattern in pattern_strategy(),
        updates in prop::collection::vec(update_strategy(), 1..4),
    ) {
        let tree = build_probtree(&spec);
        let query = build_pattern(&pattern);
        let mut doc = Document::new(tree);
        let query_engine = QueryEngine::new();
        let update_engine = UpdateEngine::new();
        let mut prepared = query_engine.prepare_doc(&doc, &query);
        let footprint: Option<BTreeSet<String>> = prepared.footprint().cloned();
        for update in &updates {
            update_engine.apply_doc(&mut doc, update);
        }
        let deltas = doc.deltas_since(0).unwrap();
        let outcome = prepared.maintain(&doc).unwrap();
        let expected = match &footprint {
            None => MaintainOutcome::Fallback { reason: FallbackReason::UnboundedFootprint },
            Some(fp) if deltas.iter().any(|d| d.touches(fp)) => {
                MaintainOutcome::Fallback { reason: FallbackReason::SpineTouched }
            }
            Some(_) => MaintainOutcome::Patched { steps: updates.len() },
        };
        prop_assert_eq!(outcome, expected);
        assert_matches_fresh(&prepared, &doc, &query);
        prop_assert_eq!(prepared.maintain(&doc).unwrap(), MaintainOutcome::UpToDate);
    }
}
