//! Adversarial cross-checks between independent implementations of the
//! same notion: the randomized algorithms against their exhaustive
//! baselines, the DTD solvers against each other and against DPLL, and the
//! polynomial identity tests against naive count-equivalence.

use proptest::prelude::*;

use pxml_core::equivalence::{
    structural_equivalent_exhaustive, structural_equivalent_randomized, EquivalenceConfig,
};
use pxml_core::probtree::ProbTree;
use pxml_dtd::satisfiability::{
    satisfiable_backtracking, satisfiable_bruteforce, valid_bruteforce,
};
use pxml_dtd::validate::validates;
use pxml_dtd::{ChildConstraint, Dtd};
use pxml_events::{Condition, Dnf, EventId, Literal};
use pxml_poly::charpoly::characteristic_polynomial;
use pxml_poly::zippel::{count_equivalent_randomized, ZippelConfig};
use pxml_sat::brute::solve_brute;
use pxml_sat::solve_dpll;
use rand::rngs::StdRng;
use rand::SeedableRng;

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

const NUM_EVENTS: usize = 4;

fn literal_strategy() -> impl Strategy<Value = (usize, bool)> {
    (0..NUM_EVENTS, any::<bool>())
}

fn condition_strategy() -> impl Strategy<Value = Vec<(usize, bool)>> {
    prop::collection::vec(literal_strategy(), 0..3)
}

fn dnf_strategy() -> impl Strategy<Value = Vec<Vec<(usize, bool)>>> {
    prop::collection::vec(condition_strategy(), 0..4)
}

fn build_dnf(spec: &[Vec<(usize, bool)>]) -> Dnf {
    Dnf::from_disjuncts(spec.iter().map(|c| {
        Condition::from_literals(c.iter().map(|&(e, positive)| Literal {
            event: EventId::from_index(e),
            positive,
        }))
    }))
}

/// A flat prob-tree description: root `R` with children among two labels,
/// each carrying a one- or two-literal condition.
fn flat_probtree_strategy() -> impl Strategy<Value = Vec<(usize, Vec<(usize, bool)>)>> {
    prop::collection::vec(
        (0..2usize, prop::collection::vec(literal_strategy(), 1..3)),
        1..6,
    )
}

fn build_flat_probtree(spec: &[(usize, Vec<(usize, bool)>)]) -> ProbTree {
    let mut tree = ProbTree::new("R");
    let events: Vec<EventId> = (0..NUM_EVENTS)
        .map(|i| tree.events_mut().insert(format!("e{i}"), 0.5))
        .collect();
    let root = tree.tree().root();
    for (label_idx, literals) in spec {
        let condition = Condition::from_literals(literals.iter().map(|&(e, positive)| Literal {
            event: events[e],
            positive,
        }));
        tree.add_child(root, format!("L{label_idx}"), condition);
    }
    tree
}

// ---------------------------------------------------------------------------
// Lemma 1 + Theorem 2 machinery
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Lemma 1: count-equivalence of DNF formulas coincides with equality
    /// of their characteristic polynomials, and the randomized
    /// Schwartz–Zippel test agrees with both (one-sided error is
    /// negligible at the default sample-set size).
    #[test]
    fn lemma1_three_way_agreement(a in dnf_strategy(), b in dnf_strategy()) {
        let lhs = build_dnf(&a);
        let rhs = build_dnf(&b);
        let naive = lhs.count_equivalent_naive(&rhs, NUM_EVENTS, 16).unwrap();
        let polynomial = characteristic_polynomial(&lhs) == characteristic_polynomial(&rhs);
        prop_assert_eq!(naive, polynomial, "Lemma 1 violated");
        let mut rng = StdRng::seed_from_u64(0xC0FFEE);
        let randomized =
            count_equivalent_randomized(&lhs, &rhs, &ZippelConfig::default(), &mut rng);
        prop_assert_eq!(naive, randomized, "Schwartz–Zippel test disagrees");
    }

    /// The Figure 3 algorithm agrees with the exhaustive definition of
    /// structural equivalence on random flat prob-tree pairs (both
    /// directions: equivalent pairs are accepted, inequivalent pairs are
    /// rejected — the latter up to the co-RP error, negligible here).
    #[test]
    fn figure3_matches_exhaustive(a in flat_probtree_strategy(), b in flat_probtree_strategy()) {
        let ta = build_flat_probtree(&a);
        let tb = build_flat_probtree(&b);
        let exhaustive = structural_equivalent_exhaustive(&ta, &tb, 16).unwrap();
        let mut rng = StdRng::seed_from_u64(0xFEED);
        let randomized =
            structural_equivalent_randomized(&ta, &tb, &EquivalenceConfig::default(), &mut rng);
        prop_assert_eq!(exhaustive, randomized);
    }
}

// ---------------------------------------------------------------------------
// Theorem 5 machinery
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The pruned backtracking DTD-satisfiability solver agrees with the
    /// brute-force sweep, and a witness world always validates.
    #[test]
    fn dtd_solvers_agree(
        spec in flat_probtree_strategy(),
        max_l0 in 0usize..3,
        max_l1 in 0usize..3,
        min_l0 in 0usize..2,
    ) {
        let tree = build_flat_probtree(&spec);
        let mut dtd = Dtd::new();
        dtd.constrain("R", "L0", ChildConstraint { min: min_l0, max: Some(max_l0) })
            .constrain("R", "L1", ChildConstraint::between(0, max_l1));
        let brute = satisfiable_bruteforce(&tree, &dtd, 16).unwrap();
        let (witness, _) = satisfiable_backtracking(&tree, &dtd);
        prop_assert_eq!(brute.is_some(), witness.is_some());
        if let Some(v) = witness {
            prop_assert!(validates(&tree.value_in_world(&v), &dtd));
        }
        // Validity is the complement notion: if some world is invalid, a
        // counterexample must be found, and vice versa.
        let counterexample = valid_bruteforce(&tree, &dtd, 16).unwrap();
        if let Some(v) = &counterexample {
            prop_assert!(!validates(&tree.value_in_world(v), &dtd));
        }
    }
}

// ---------------------------------------------------------------------------
// SAT machinery (the substrate of the Theorem 5 reduction)
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// DPLL agrees with brute force on random small CNFs, and its model
    /// really satisfies the formula.
    #[test]
    fn dpll_matches_bruteforce(
        clauses in prop::collection::vec(
            prop::collection::vec((0u32..6, any::<bool>()), 1..4),
            0..12,
        )
    ) {
        let mut cnf = pxml_sat::Cnf::new(6);
        for clause in &clauses {
            cnf.add_clause(
                clause
                    .iter()
                    .map(|&(v, positive)| pxml_sat::Lit { var: pxml_sat::Var(v), positive })
                    .collect(),
            );
        }
        let dpll = solve_dpll(&cnf);
        let brute = solve_brute(&cnf);
        prop_assert_eq!(dpll.is_some(), brute.is_some());
        if let Some(model) = dpll {
            prop_assert!(cnf.eval(&model));
        }
    }
}
