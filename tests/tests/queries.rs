//! Property-based equivalence suite for the query engine.
//!
//! The `QueryEngine` redesign replaced the legacy free-function
//! constructions — per-answer `Condition::always()` + repeated `and`
//! folds, eager materialization, and full sorts with per-comparison
//! canonicalization — with prepared state, a single merge-union, a
//! bounded heap and cached tie-break keys. This suite pins the redesign
//! to the legacy semantics: the old constructions are re-implemented
//! here verbatim as references and compared against the engine on random
//! trees and random tree-pattern queries.

use proptest::prelude::*;

use pxml_core::probtree::ProbTree;
use pxml_core::query::pattern::{Axis, PatternQuery};
use pxml_core::query::prob::ProbAnswer;
use pxml_core::query::{Query, QueryEngine, QueryEngineConfig};
use pxml_events::{Condition, EventId, Literal};
use pxml_tree::builder::TreeSpec;
use pxml_tree::canon::{canonical_string, Semantics};

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

fn tree_spec_strategy() -> impl Strategy<Value = TreeSpec> {
    let leaf = prop::sample::select(vec!["A", "B", "C", "D"]).prop_map(TreeSpec::leaf);
    leaf.prop_recursive(3, 12, 3, |inner| {
        (
            prop::sample::select(vec!["A", "B", "C", "D"]),
            prop::collection::vec(inner, 0..3),
        )
            .prop_map(|(label, children)| TreeSpec::node(label, children))
    })
}

/// A small prob-tree: a shape plus optional per-node literal lists over
/// `num_events` events (same construction as the `properties.rs` suite).
#[derive(Clone, Debug)]
struct ProbTreeSpec {
    shape: TreeSpec,
    num_events: usize,
    conditions: Vec<Vec<(usize, bool)>>,
}

fn probtree_strategy() -> impl Strategy<Value = ProbTreeSpec> {
    (tree_spec_strategy(), 1usize..=4).prop_flat_map(|(shape, num_events)| {
        let nodes = shape.size();
        prop::collection::vec(
            prop::collection::vec((0..num_events, any::<bool>()), 0..=2),
            nodes,
        )
        .prop_map(move |conditions| ProbTreeSpec {
            shape: shape.clone(),
            num_events,
            conditions,
        })
    })
}

fn build_probtree(spec: &ProbTreeSpec) -> ProbTree {
    let data = spec.shape.build();
    let mut tree = ProbTree::from_data_tree(data, pxml_events::EventTable::new());
    let events: Vec<EventId> = (0..spec.num_events)
        .map(|i| {
            tree.events_mut()
                .insert(format!("e{i}"), 0.4 + 0.05 * i as f64)
        })
        .collect();
    let nodes: Vec<_> = tree.tree().iter().collect();
    for (idx, node) in nodes.into_iter().enumerate() {
        if node == tree.tree().root() {
            continue;
        }
        let literals = spec.conditions[idx % spec.conditions.len()]
            .iter()
            .map(|&(e, positive)| Literal {
                event: events[e % events.len()],
                positive,
            });
        tree.set_condition(node, Condition::from_literals(literals));
    }
    tree.validate_invariants()
        .expect("generated tree violates prob-tree/DAG-store invariants");
    tree
}

/// A random small tree-pattern query: up to three extra nodes hung off
/// earlier pattern nodes, mixed axes, wildcard or concrete labels.
#[derive(Clone, Debug)]
struct PatternSpec {
    anchored: bool,
    root_label: Option<&'static str>,
    nodes: Vec<(usize, bool, Option<&'static str>)>,
}

fn pattern_strategy() -> impl Strategy<Value = PatternSpec> {
    let label = prop::sample::select(vec![None, Some("A"), Some("B"), Some("C"), Some("D")]);
    (
        any::<bool>(),
        label.clone(),
        prop::collection::vec((0usize..4, any::<bool>(), label), 0..3),
    )
        .prop_map(|(anchored, root_label, nodes)| PatternSpec {
            anchored,
            root_label,
            nodes,
        })
}

fn build_pattern(spec: &PatternSpec) -> PatternQuery {
    let mut q = if spec.anchored {
        PatternQuery::anchored(spec.root_label)
    } else {
        PatternQuery::new(spec.root_label)
    };
    let mut ids = vec![q.root()];
    for &(parent, descendant, label) in &spec.nodes {
        let parent = ids[parent % ids.len()];
        let axis = if descendant {
            Axis::Descendant
        } else {
            Axis::Child
        };
        ids.push(q.add_node(parent, axis, label));
    }
    q
}

// ---------------------------------------------------------------------------
// Legacy reference implementations (the pre-engine constructions)
// ---------------------------------------------------------------------------

/// The old `query_probtree`: eager materialization, per-answer
/// `Condition::always()` + repeated `and` fold.
fn legacy_query_probtree(query: &dyn Query, tree: &ProbTree) -> Vec<ProbAnswer> {
    let data = tree.tree();
    query
        .evaluate(data)
        .into_iter()
        .map(|subtree| {
            let mut cond = Condition::always();
            for node in subtree.nodes() {
                cond = cond.and(&tree.condition(node));
            }
            ProbAnswer {
                tree: subtree.to_tree(data),
                probability: cond.probability(tree.events()),
                subtree,
            }
        })
        .collect()
}

/// The old `top_k`: full **stable** sort with the canonical string
/// recomputed inside every comparison, then truncate.
fn legacy_top_k(query: &dyn Query, tree: &ProbTree, k: usize) -> Vec<ProbAnswer> {
    let mut answers: Vec<ProbAnswer> = legacy_query_probtree(query, tree)
        .into_iter()
        .filter(|a| a.probability > 0.0)
        .collect();
    answers.sort_by(|a, b| {
        b.probability
            .partial_cmp(&a.probability)
            .expect("probabilities are finite")
            .then_with(|| {
                canonical_string(&a.tree, Semantics::MultiSet)
                    .cmp(&canonical_string(&b.tree, Semantics::MultiSet))
            })
    });
    answers.truncate(k);
    answers
}

/// The old `above`: sort the full answer set, then filter.
fn legacy_above(query: &dyn Query, tree: &ProbTree, threshold: f64) -> Vec<ProbAnswer> {
    let mut answers = legacy_top_k(query, tree, usize::MAX);
    answers.retain(|a| a.probability >= threshold);
    answers
}

fn assert_same_answers(actual: &[ProbAnswer], expected: &[ProbAnswer]) {
    assert_eq!(actual.len(), expected.len());
    for (a, b) in actual.iter().zip(expected) {
        assert_eq!(&a.subtree, &b.subtree);
        assert_eq!(
            a.probability, b.probability,
            "probabilities must be bit-identical"
        );
        assert_eq!(
            canonical_string(&a.tree, Semantics::MultiSet),
            canonical_string(&b.tree, Semantics::MultiSet)
        );
    }
}

// ---------------------------------------------------------------------------
// Engine ≡ legacy free functions
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The merge-union of the prepared state equals the legacy repeated
    /// `and` fold on every answer (satellite: single sorted merge-union
    /// vs `Condition::always()` + `and` loop).
    #[test]
    fn condition_union_agrees_with_the_and_fold(
        tree_spec in probtree_strategy(),
        pattern in pattern_strategy(),
    ) {
        let tree = build_probtree(&tree_spec);
        let query = build_pattern(&pattern);
        let prepared = QueryEngine::new().prepare(&tree, &query);
        let subtrees = query.evaluate(tree.tree());
        prop_assert_eq!(prepared.len(), subtrees.len());
        for (i, subtree) in subtrees.iter().enumerate() {
            let mut fold = Condition::always();
            for node in subtree.nodes() {
                fold = fold.and(&tree.condition(node));
            }
            prop_assert_eq!(prepared.condition(i), &fold);
        }
    }

    /// The full answer stream equals the legacy eager construction:
    /// same answers, same order, bit-identical probabilities.
    #[test]
    fn engine_stream_matches_legacy_query_probtree(
        tree_spec in probtree_strategy(),
        pattern in pattern_strategy(),
    ) {
        let tree = build_probtree(&tree_spec);
        let query = build_pattern(&pattern);
        let legacy = legacy_query_probtree(&query, &tree);
        let engine: Vec<ProbAnswer> =
            QueryEngine::new().prepare(&tree, &query).answers().collect();
        assert_same_answers(&engine, &legacy);
        // The (deprecated) wrapper is the engine.
        #[allow(deprecated)]
        let wrapper = pxml_core::query::prob::query_probtree(&query, &tree);
        assert_same_answers(&wrapper, &legacy);
    }

    /// Bounded-heap top-k equals the legacy full-sort-then-truncate
    /// reference for every k, including through tie blocks.
    #[test]
    fn top_k_heap_matches_full_sort_reference(
        tree_spec in probtree_strategy(),
        pattern in pattern_strategy(),
        k in 0usize..8,
    ) {
        let tree = build_probtree(&tree_spec);
        let query = build_pattern(&pattern);
        let legacy = legacy_top_k(&query, &tree, k);
        let prepared = QueryEngine::new().prepare(&tree, &query);
        assert_same_answers(&prepared.top_k(k).into_vec(), &legacy);
        // The full ranking agrees too.
        let all = legacy_top_k(&query, &tree, usize::MAX);
        assert_same_answers(&prepared.ranked().into_vec(), &all);
    }

    /// The short-circuit threshold path equals the legacy
    /// sort-everything-then-filter construction.
    #[test]
    fn above_matches_sort_then_filter_reference(
        tree_spec in probtree_strategy(),
        pattern in pattern_strategy(),
        threshold in prop::sample::select(vec![0.0f64, 0.2, 0.5, 0.8, 1.0]),
    ) {
        let tree = build_probtree(&tree_spec);
        let query = build_pattern(&pattern);
        let legacy = legacy_above(&query, &tree, threshold);
        let prepared = QueryEngine::new().prepare(&tree, &query);
        assert_same_answers(&prepared.above(threshold).into_vec(), &legacy);
    }

    /// Aggregates and point lookups served from the prepared state agree
    /// with the legacy constructions.
    #[test]
    fn aggregates_match_legacy(
        tree_spec in probtree_strategy(),
        pattern in pattern_strategy(),
    ) {
        let tree = build_probtree(&tree_spec);
        let query = build_pattern(&pattern);
        let legacy = legacy_query_probtree(&query, &tree);
        let prepared = QueryEngine::new().prepare(&tree, &query);
        let expected: f64 = legacy.iter().map(|a| a.probability).sum();
        prop_assert_eq!(prepared.expected_matches(), expected);
        for answer in &legacy {
            prop_assert_eq!(prepared.probability_of(&answer.subtree), Some(answer.probability));
        }
        // Interning never changes the number of answers, only the number
        // of distinct probability evaluations.
        prop_assert!(prepared.num_distinct_conditions() <= prepared.len().max(1));
    }

    /// Theorem 1 routed through the engine: the prepared answers agree
    /// with the world-by-world evaluation on random trees and patterns
    /// (pattern queries are locally monotone, so the check must pass).
    #[test]
    fn theorem1_holds_through_the_engine(
        tree_spec in probtree_strategy(),
        pattern in pattern_strategy(),
    ) {
        let tree = build_probtree(&tree_spec);
        let query = build_pattern(&pattern);
        let engine = QueryEngine::with_config(QueryEngineConfig::for_event_budget(16));
        prop_assert!(engine.prepare(&tree, &query).theorem1_check().unwrap());
    }
}

// ---------------------------------------------------------------------------
// Deterministic regressions
// ---------------------------------------------------------------------------

/// The prepared state must be reusable: repeated calls of every consumer
/// return identical results (ordering included), with the query evaluated
/// once — guarded here end to end through the public API.
#[test]
fn prepared_state_is_stable_across_repeated_consumers() {
    let mut tree = ProbTree::new("A");
    let root = tree.tree().root();
    for i in 0..6 {
        let w = tree.events_mut().insert(format!("w{i}"), 0.5);
        let b = tree.add_child(root, "B", Condition::of(Literal::pos(w)));
        tree.add_child(b, format!("leaf{i}"), Condition::always());
    }
    let query = PatternQuery::new(Some("B"));
    let prepared = QueryEngine::new().prepare(&tree, &query);
    let first: Vec<String> = prepared
        .top_k(4)
        .iter()
        .map(|a| canonical_string(&a.tree, Semantics::MultiSet))
        .collect();
    for _ in 0..3 {
        let again: Vec<String> = prepared
            .top_k(4)
            .iter()
            .map(|a| canonical_string(&a.tree, Semantics::MultiSet))
            .collect();
        assert_eq!(first, again);
    }
    // Equal probabilities: order is the canonical-key order.
    let mut sorted = first.clone();
    sorted.sort();
    assert_eq!(first, sorted);
}

/// The satellite counter assertion at the integration level: on a
/// selective threshold, the streaming `above` does strictly less ranking
/// work than the full sort the legacy implementation paid.
#[test]
fn above_does_less_work_than_the_legacy_full_sort() {
    let mut tree = ProbTree::new("catalog");
    let root = tree.tree().root();
    for i in 0..120 {
        let rank = (i * 61) % 120;
        let w = tree
            .events_mut()
            .insert(format!("w{i}"), 0.05 + 0.9 * rank as f64 / 120.0);
        let item = tree.add_child(root, "item", Condition::of(Literal::pos(w)));
        tree.add_child(item, format!("sku{i}"), Condition::always());
    }
    let query = PatternQuery::new(Some("item"));
    let prepared = QueryEngine::new().prepare(&tree, &query);
    let full = prepared.ranked();
    let selective = prepared.above(0.9);
    assert!(selective.len() < 20, "threshold must be selective");
    assert!(!selective.is_empty());
    assert_eq!(selective.stats().enumerated, full.stats().enumerated);
    assert!(
        selective.stats().comparisons * 4 < full.stats().comparisons,
        "selective threshold sorted {} answers with {} comparisons; the \
         legacy path paid {} comparisons for the full sort",
        selective.len(),
        selective.stats().comparisons,
        full.stats().comparisons
    );
}
