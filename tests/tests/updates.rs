//! Property tests for the update engine: prob-tree updates must commute
//! with the possible-world semantics (`apply_to_probtree` ≡
//! `apply_to_pw_set`, the Appendix A consistency statement), including the
//! nested-target and multi-match-same-target cases the pre-engine code got
//! wrong, and the output must be run-to-run deterministic.

use proptest::prelude::*;

use pxml_core::semantics::possible_worlds;
use pxml_core::update::{
    ProbabilisticUpdate, UpdateEngine, UpdateEngineConfig, UpdateOperation, UpdateScript,
};
use pxml_core::{PatternQuery, ProbTree};
use pxml_events::{Condition, EventId, Literal};
use pxml_tree::builder::TreeSpec;
use pxml_tree::DataTree;

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

/// Node labels used below the root. The root is always labeled `R`, so a
/// label pattern can never select the root for deletion (unsupported by
/// Definition 15 and the engine alike).
const LABELS: [&str; 3] = ["A", "B", "C"];

/// A random small data tree with repeated labels: label collisions on one
/// path are what makes deletion targets nest.
fn tree_spec_strategy() -> impl Strategy<Value = TreeSpec> {
    let leaf = prop::sample::select(LABELS.to_vec()).prop_map(TreeSpec::leaf);
    leaf.prop_recursive(3, 16, 3, |inner| {
        (
            prop::sample::select(LABELS.to_vec()),
            prop::collection::vec(inner, 0..3),
        )
            .prop_map(|(label, children)| TreeSpec::node(label, children))
    })
}

/// A random prob-tree over `R`-rooted shapes: every non-root node gets up
/// to two literals over ≤ 3 events.
#[derive(Clone, Debug)]
struct ProbTreeSpec {
    children: Vec<TreeSpec>,
    num_events: usize,
    conditions: Vec<Vec<(usize, bool)>>,
}

fn probtree_strategy() -> impl Strategy<Value = ProbTreeSpec> {
    (
        prop::collection::vec(tree_spec_strategy(), 1..3),
        1usize..=3,
    )
        .prop_flat_map(|(children, num_events)| {
            let nodes: usize = children.iter().map(TreeSpec::size).sum();
            prop::collection::vec(
                prop::collection::vec((0..num_events, any::<bool>()), 0..=2),
                nodes + 1,
            )
            .prop_map(move |conditions| ProbTreeSpec {
                children: children.clone(),
                num_events,
                conditions,
            })
        })
}

fn build_probtree(spec: &ProbTreeSpec) -> ProbTree {
    let mut data = DataTree::new("R");
    let root = data.root();
    for child in &spec.children {
        data.graft(root, &child.build());
    }
    let mut tree = ProbTree::from_data_tree(data, pxml_events::EventTable::new());
    let events: Vec<EventId> = (0..spec.num_events)
        .map(|i| tree.events_mut().insert(format!("e{i}"), 0.5))
        .collect();
    let nodes: Vec<_> = tree.tree().iter().collect();
    for (idx, node) in nodes.into_iter().enumerate() {
        if node == tree.tree().root() {
            continue;
        }
        let literals = spec.conditions[idx % spec.conditions.len()]
            .iter()
            .map(|&(e, positive)| Literal {
                event: events[e % events.len()],
                positive,
            });
        tree.set_condition(node, Condition::from_literals(literals));
    }
    tree.validate_invariants()
        .expect("generated tree violates prob-tree/DAG-store invariants");
    tree
}

/// A random update. `shape` picks among: plain label deletion (targets
/// nest whenever the label repeats along a path), deletion of targets with
/// a required child (several matches can share one target), deletion
/// anchored below the root, and insertion (with its own multi-match
/// query).
fn update_strategy() -> impl Strategy<Value = ProbabilisticUpdate> {
    (
        0usize..4,
        prop::sample::select(LABELS.to_vec()),
        prop::sample::select(LABELS.to_vec()),
        prop::sample::select(vec![0.5f64, 0.8, 1.0]),
    )
        .prop_map(|(shape, l1, l2, confidence)| {
            let operation = match shape {
                0 => {
                    // Delete every node labeled l1.
                    let q = PatternQuery::new(Some(l1));
                    let at = q.root();
                    UpdateOperation::delete(q, at)
                }
                1 => {
                    // Delete every l1 node having an l2 child: one match
                    // per (l1, l2 child) pair — multi-match-same-target —
                    // and nested targets when l1 repeats along a path.
                    let mut q = PatternQuery::new(Some(l1));
                    let at = q.root();
                    q.add_child(at, l2);
                    UpdateOperation::delete(q, at)
                }
                2 => {
                    // Delete every l2 descendant of an l1 node.
                    let mut q = PatternQuery::new(Some(l1));
                    let at = q.add_descendant(q.root(), l2);
                    UpdateOperation::delete(q, at)
                }
                _ => {
                    // Insert a fresh subtree under every l1 node with an
                    // l2 child.
                    let mut q = PatternQuery::new(Some(l1));
                    let at = q.root();
                    q.add_child(at, l2);
                    let mut sub = DataTree::new("new");
                    let sub_root = sub.root();
                    sub.add_child(sub_root, "leaf");
                    UpdateOperation::insert(q, at, sub)
                }
            };
            ProbabilisticUpdate::new(operation, confidence)
        })
}

// ---------------------------------------------------------------------------
// Properties
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The Appendix A consistency statement, on random trees and random
    /// insert/delete queries — including nested-target and
    /// multi-match-same-target deletions.
    #[test]
    fn probtree_updates_commute_with_pw_semantics(
        spec in probtree_strategy(),
        update in update_strategy(),
    ) {
        let tree = build_probtree(&spec);
        let (updated, _) = update.apply_to_probtree(&tree);
        prop_assert!(updated.validate_invariants().is_ok());
        let direct = possible_worlds(&updated, 16).unwrap().normalized();
        let via_pw = update
            .apply_to_pw_set(&possible_worlds(&tree, 16).unwrap())
            .normalized();
        prop_assert!(
            direct.isomorphic(&via_pw),
            "update diverges from PW semantics on\n{}\nafter:\n{}",
            tree.to_ascii(),
            updated.to_ascii()
        );
    }

    /// The raw engine (no simplification, naive chains) and the default
    /// engine agree with each other semantically — simplification must
    /// never change the normalized semantics.
    #[test]
    fn simplification_preserves_update_semantics(
        spec in probtree_strategy(),
        update in update_strategy(),
    ) {
        let tree = build_probtree(&spec);
        let (raw, _) = UpdateEngine::with_config(UpdateEngineConfig::raw())
            .apply(&tree, &update);
        let (simplified, _) = UpdateEngine::new().apply(&tree, &update);
        prop_assert!(simplified.size() <= raw.size());
        let raw_pw = possible_worlds(&raw, 16).unwrap().normalized();
        let simplified_pw = possible_worlds(&simplified, 16).unwrap().normalized();
        prop_assert!(raw_pw.isomorphic(&simplified_pw));
    }

    /// Determinism: applying the same update to two fresh builds of the
    /// same tree renders byte-identically.
    #[test]
    fn update_output_is_deterministic(
        spec in probtree_strategy(),
        update in update_strategy(),
    ) {
        let (first, _) = update.apply_to_probtree(&build_probtree(&spec));
        let (second, _) = update.apply_to_probtree(&build_probtree(&spec));
        prop_assert_eq!(first.to_ascii(), second.to_ascii());
    }

    /// Batched scripts: `UpdateEngine::apply_script` agrees with folding
    /// Definition 16 over the possible-world set step by step.
    #[test]
    fn scripts_commute_with_pw_semantics(
        spec in probtree_strategy(),
        updates in prop::collection::vec(update_strategy(), 1..3),
    ) {
        let tree = build_probtree(&spec);
        let script = UpdateScript::from_steps(updates);
        let (updated, report) = UpdateEngine::new().apply_script(&tree, &script);
        prop_assert!(updated.validate_invariants().is_ok());
        prop_assert_eq!(report.steps.len(), script.len());
        let direct = possible_worlds(&updated, 16).unwrap().normalized();
        let via_pw = script
            .apply_to_pw_set(&possible_worlds(&tree, 16).unwrap())
            .normalized();
        prop_assert!(direct.isomorphic(&via_pw));
    }
}

// ---------------------------------------------------------------------------
// Deterministic nested-target regressions (fail on the pre-engine code)
// ---------------------------------------------------------------------------

/// The minimal nested counterexample: deleting every `B` with a `C` child
/// on `A → B(C[x], B(C[y]))`. In the world `x=0, y=1` the inner `B` must
/// disappear while the outer survives — which requires the inner target's
/// survival split to be embedded in the outer target's survivor copy.
#[test]
fn nested_deletion_counterexample_is_fixed() {
    let mut t = ProbTree::new("A");
    let x = t.events_mut().insert("x", 0.5);
    let y = t.events_mut().insert("y", 0.5);
    let root = t.tree().root();
    let b1 = t.add_child(root, "B", Condition::always());
    t.add_child(b1, "C", Condition::of(Literal::pos(x)));
    let b2 = t.add_child(b1, "B", Condition::always());
    t.add_child(b2, "C", Condition::of(Literal::pos(y)));

    let mut q = PatternQuery::new(Some("B"));
    let at = q.root();
    q.add_child(at, "C");
    for confidence in [1.0, 0.6] {
        let update = ProbabilisticUpdate::new(UpdateOperation::delete(q.clone(), at), confidence);
        let (updated, _) = update.apply_to_probtree(&t);
        let direct = possible_worlds(&updated, 16).unwrap().normalized();
        let via_pw = update
            .apply_to_pw_set(&possible_worlds(&t, 16).unwrap())
            .normalized();
        assert!(
            direct.isomorphic(&via_pw),
            "confidence {confidence}:\n{}",
            updated.to_ascii()
        );
    }
}

/// A target matched twice (two C children) nested above another target.
#[test]
fn multi_match_nested_target_regression() {
    let mut t = ProbTree::new("A");
    let x = t.events_mut().insert("x", 0.5);
    let y = t.events_mut().insert("y", 0.5);
    let z = t.events_mut().insert("z", 0.5);
    let root = t.tree().root();
    let b1 = t.add_child(root, "B", Condition::always());
    t.add_child(b1, "C", Condition::of(Literal::pos(x)));
    t.add_child(b1, "C", Condition::of(Literal::neg(y)));
    let b2 = t.add_child(b1, "B", Condition::of(Literal::pos(y)));
    t.add_child(b2, "C", Condition::of(Literal::pos(z)));

    let mut q = PatternQuery::new(Some("B"));
    let at = q.root();
    q.add_child(at, "C");
    let update = ProbabilisticUpdate::new(UpdateOperation::delete(q, at), 0.75);
    let (updated, _) = update.apply_to_probtree(&t);
    let direct = possible_worlds(&updated, 16).unwrap().normalized();
    let via_pw = update
        .apply_to_pw_set(&possible_worlds(&t, 16).unwrap())
        .normalized();
    assert!(direct.isomorphic(&via_pw), "\n{}", updated.to_ascii());
}
