//! Property tests for the hash-consed DAG representation: the shared
//! (copy-on-write) update engine must be indistinguishable from the
//! deep-copy oracle — byte-identical rendering and isomorphic
//! possible-world sets over random trees and update scripts — while the
//! Appendix-A deletion family stores only `O(n)` distinct nodes for its
//! `1 + 2^n` logical survivor copies.

use proptest::prelude::*;

use pxml_core::semantics::possible_worlds;
use pxml_core::update::{
    ProbabilisticUpdate, UpdateEngine, UpdateEngineConfig, UpdateOperation, UpdateScript,
};
use pxml_core::{PatternQuery, ProbTree};
use pxml_events::{Condition, EventId, Literal};
use pxml_tree::builder::TreeSpec;
use pxml_tree::DataTree;
use pxml_workloads::paper::{d0_deletion, theorem3_tree};

// ---------------------------------------------------------------------------
// Strategies (same shape family as the update property suite)
// ---------------------------------------------------------------------------

const LABELS: [&str; 3] = ["A", "B", "C"];

fn tree_spec_strategy() -> impl Strategy<Value = TreeSpec> {
    let leaf = prop::sample::select(LABELS.to_vec()).prop_map(TreeSpec::leaf);
    leaf.prop_recursive(3, 16, 3, |inner| {
        (
            prop::sample::select(LABELS.to_vec()),
            prop::collection::vec(inner, 0..3),
        )
            .prop_map(|(label, children)| TreeSpec::node(label, children))
    })
}

#[derive(Clone, Debug)]
struct ProbTreeSpec {
    children: Vec<TreeSpec>,
    num_events: usize,
    conditions: Vec<Vec<(usize, bool)>>,
}

fn probtree_strategy() -> impl Strategy<Value = ProbTreeSpec> {
    (
        prop::collection::vec(tree_spec_strategy(), 1..3),
        1usize..=3,
    )
        .prop_flat_map(|(children, num_events)| {
            let nodes: usize = children.iter().map(TreeSpec::size).sum();
            prop::collection::vec(
                prop::collection::vec((0..num_events, any::<bool>()), 0..=2),
                nodes + 1,
            )
            .prop_map(move |conditions| ProbTreeSpec {
                children: children.clone(),
                num_events,
                conditions,
            })
        })
}

fn build_probtree(spec: &ProbTreeSpec) -> ProbTree {
    let mut data = DataTree::new("R");
    let root = data.root();
    for child in &spec.children {
        data.graft(root, &child.build());
    }
    let mut tree = ProbTree::from_data_tree(data, pxml_events::EventTable::new());
    let events: Vec<EventId> = (0..spec.num_events)
        .map(|i| tree.events_mut().insert(format!("e{i}"), 0.5))
        .collect();
    let nodes: Vec<_> = tree.tree().iter().collect();
    for (idx, node) in nodes.into_iter().enumerate() {
        if node == tree.tree().root() {
            continue;
        }
        let literals = spec.conditions[idx % spec.conditions.len()]
            .iter()
            .map(|&(e, positive)| Literal {
                event: events[e % events.len()],
                positive,
            });
        tree.set_condition(node, Condition::from_literals(literals));
    }
    tree.validate_invariants()
        .expect("generated tree violates prob-tree/DAG-store invariants");
    tree
}

/// Deletions only: those are the operations that graft survivor copies,
/// i.e. the only place where the shared and deep representations can
/// diverge. Mixed confidences exercise both the certain path (no
/// survivors) and the split path.
fn deletion_strategy() -> impl Strategy<Value = ProbabilisticUpdate> {
    (
        0usize..3,
        prop::sample::select(LABELS.to_vec()),
        prop::sample::select(LABELS.to_vec()),
        prop::sample::select(vec![0.5f64, 0.8, 1.0]),
    )
        .prop_map(|(shape, l1, l2, confidence)| {
            let operation = match shape {
                0 => {
                    let q = PatternQuery::new(Some(l1));
                    let at = q.root();
                    UpdateOperation::delete(q, at)
                }
                1 => {
                    let mut q = PatternQuery::new(Some(l1));
                    let at = q.root();
                    q.add_child(at, l2);
                    UpdateOperation::delete(q, at)
                }
                _ => {
                    let mut q = PatternQuery::new(Some(l1));
                    let at = q.add_descendant(q.root(), l2);
                    UpdateOperation::delete(q, at)
                }
            };
            ProbabilisticUpdate::new(operation, confidence)
        })
}

/// Shared-representation engine with simplification off, so the output
/// is the raw grafted tree and can be compared byte-for-byte against the
/// deep oracle.
fn shared_engine() -> UpdateEngine {
    UpdateEngine::with_config(UpdateEngineConfig {
        simplify: false,
        ..UpdateEngineConfig::default()
    })
}

/// Deep-copy oracle with the same chain order and no simplification.
fn deep_engine() -> UpdateEngine {
    UpdateEngine::with_config(
        UpdateEngineConfig {
            simplify: false,
            ..UpdateEngineConfig::default()
        }
        .deep_oracle(),
    )
}

// ---------------------------------------------------------------------------
// Properties: shared ≡ deep-copy
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// One deletion: the shared output must render byte-identically to
    /// the deep-copy output (handles fault in at the logical positions
    /// the deep copy materializes), have an isomorphic possible-world
    /// set, and satisfy the DAG-store invariants. Node/literal counts
    /// are logical, so they agree too — only `distinct_nodes` may drop.
    #[test]
    fn shared_deletion_matches_deep_copy_oracle(
        spec in probtree_strategy(),
        update in deletion_strategy(),
    ) {
        let tree = build_probtree(&spec);
        let (shared, _) = shared_engine().apply(&tree, &update);
        let (deep, _) = deep_engine().apply(&tree, &update);
        prop_assert!(shared.validate_invariants().is_ok());
        prop_assert!(deep.validate_invariants().is_ok());
        prop_assert_eq!(shared.to_ascii(), deep.to_ascii());
        prop_assert_eq!(shared.num_nodes(), deep.num_nodes());
        prop_assert_eq!(shared.num_literals(), deep.num_literals());
        let deep_stats = deep.memory_stats();
        prop_assert_eq!(deep_stats.logical_nodes, deep_stats.distinct_nodes);
        let shared_stats = shared.memory_stats();
        prop_assert!(shared_stats.distinct_nodes <= shared_stats.logical_nodes);
        let shared_pw = possible_worlds(&shared, 16).unwrap().normalized();
        let deep_pw = possible_worlds(&deep, 16).unwrap().normalized();
        prop_assert!(
            shared_pw.isomorphic(&deep_pw),
            "shared and deep worlds diverge on\n{}",
            tree.to_ascii()
        );
    }

    /// Update scripts: the equivalence holds across multi-step scripts,
    /// where later steps consume (and re-expand) the earlier steps'
    /// shared survivors.
    #[test]
    fn shared_scripts_match_deep_copy_oracle(
        spec in probtree_strategy(),
        updates in prop::collection::vec(deletion_strategy(), 1..3),
    ) {
        let tree = build_probtree(&spec);
        let script = UpdateScript::from_steps(updates);
        let (shared, _) = shared_engine().apply_script(&tree, &script);
        let (deep, _) = deep_engine().apply_script(&tree, &script);
        prop_assert!(shared.validate_invariants().is_ok());
        prop_assert_eq!(shared.to_ascii(), deep.to_ascii());
        let shared_pw = possible_worlds(&shared, 16).unwrap().normalized();
        let deep_pw = possible_worlds(&deep, 16).unwrap().normalized();
        prop_assert!(shared_pw.isomorphic(&deep_pw));
    }

    /// With simplification on (the default engine), the shared and deep
    /// representations must still agree semantically — simplify runs on
    /// the expanded view, so sharing cannot change what it sees.
    #[test]
    fn default_engine_semantics_are_representation_independent(
        spec in probtree_strategy(),
        update in deletion_strategy(),
    ) {
        let tree = build_probtree(&spec);
        let (shared, _) = UpdateEngine::new().apply(&tree, &update);
        let (deep, _) =
            UpdateEngine::with_config(UpdateEngineConfig::default().deep_oracle())
                .apply(&tree, &update);
        prop_assert!(shared.validate_invariants().is_ok());
        let shared_pw = possible_worlds(&shared, 16).unwrap().normalized();
        let deep_pw = possible_worlds(&deep, 16).unwrap().normalized();
        prop_assert!(shared_pw.isomorphic(&deep_pw));
    }

    /// O(1) duplication is observationally a deep copy: duplicating a
    /// random subtree under the root via the handle path and via the
    /// deep path renders identically and keeps the invariants.
    #[test]
    fn duplicate_subtree_handle_matches_deep_copy(
        spec in probtree_strategy(),
        pick in 0usize..8,
    ) {
        let tree = build_probtree(&spec);
        let root = tree.tree().root();
        let children = tree.tree().children(root).to_vec();
        let node = children[pick % children.len()];
        let condition = tree.condition(node);

        let mut via_handle = tree.clone();
        via_handle.duplicate_subtree(root, node, condition.clone());
        let mut via_deep = tree.clone();
        via_deep.duplicate_subtree_deep(root, node, condition);

        prop_assert!(via_handle.validate_invariants().is_ok());
        prop_assert!(via_deep.validate_invariants().is_ok());
        prop_assert_eq!(via_handle.to_ascii(), via_deep.to_ascii());
        prop_assert_eq!(via_handle.num_nodes(), via_deep.num_nodes());
    }
}

// ---------------------------------------------------------------------------
// Appendix-A space: linear distinct nodes for exponential logical copies
// ---------------------------------------------------------------------------

/// The acceptance counter for the DAG representation: on the Theorem 3
/// family at `n = 12`, a confidence-0.8 `d0` deletion produces
/// `1 + 2^n` logical survivor copies of the `B` leaf but only `n + 2`
/// distinct stored nodes — exponential-to-linear space.
#[test]
fn theorem3_survivors_store_linearly_at_n_12() {
    let n = 12;
    let tree = theorem3_tree(n);
    let (updated, report) = shared_engine().apply(&tree, &d0_deletion(0.8));
    updated.validate_invariants().expect("invariants after d0");

    let stats = updated.memory_stats();
    assert_eq!(stats.logical_nodes, 1 + n + 1 + (1usize << n));
    assert_eq!(stats.distinct_nodes, n + 2);
    assert_eq!(report.distinct_nodes_after, stats.distinct_nodes);
    assert!(stats.dedup_ratio() > 100.0);

    // The logical view still spells out every survivor copy.
    let expanded = updated.expanded();
    let b_copies = expanded
        .tree()
        .iter()
        .filter(|&node| expanded.tree().label(node) == "B")
        .count();
    assert_eq!(b_copies, 1 + (1usize << n));
}

/// Across `n`, distinct storage grows by exactly one node per `n` while
/// the logical size doubles — the linear-vs-exponential separation the
/// representation exists for.
#[test]
fn theorem3_distinct_nodes_grow_linearly_in_n() {
    let mut previous: Option<pxml_core::probtree::MemoryStats> = None;
    for n in 1..=12 {
        let (updated, _) = shared_engine().apply(&theorem3_tree(n), &d0_deletion(0.8));
        let stats = updated.memory_stats();
        assert_eq!(stats.distinct_nodes, n + 2, "n = {n}");
        if let Some(prev) = previous {
            assert_eq!(stats.distinct_nodes, prev.distinct_nodes + 1);
            assert_eq!(
                stats.logical_nodes - (n + 2),
                2 * (prev.logical_nodes - (n + 1)),
                "survivor copies must double with n"
            );
        }
        previous = Some(stats);
    }
}

/// The deep oracle on the same family stores every logical copy — this
/// is the `O(2^n)` baseline the complexity table quotes. Kept at a small
/// `n` so the test stays fast.
#[test]
fn deep_oracle_stores_exponentially_on_theorem3() {
    let n = 8;
    let (shared, _) = shared_engine().apply(&theorem3_tree(n), &d0_deletion(0.8));
    let (deep, _) = deep_engine().apply(&theorem3_tree(n), &d0_deletion(0.8));
    assert_eq!(shared.to_ascii(), deep.to_ascii());
    let deep_stats = deep.memory_stats();
    assert_eq!(deep_stats.logical_nodes, deep_stats.distinct_nodes);
    assert_eq!(deep_stats.distinct_nodes, 1 + n + 1 + (1usize << n));
    assert_eq!(shared.memory_stats().distinct_nodes, n + 2);
}
