//! Property tests for the static analyzer: every prediction it makes is
//! checked against the engine counter it claims to predict, on random
//! inputs.

use proptest::prelude::*;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use pxml_analysis::{Satisfiability, StaticAnalyzer};
use pxml_core::query::monotone::{is_locally_monotone_on, NegationQuery};
use pxml_core::update::UpdateEngine;
use pxml_core::worlds::{ShardExecutor, WorldEngine, WorldEngineConfig};
use pxml_core::{MonotonicityCertificate, QueryEngine, Theorem1Error};
use pxml_workloads::random::{
    random_pattern_query, random_probtree, random_tree, ProbTreeConfig, TreeConfig,
};
use pxml_workloads::warehouse::{scenario_script, skeleton, warehouse_dtd, WarehouseConfig};

fn small_probtree(seed: u64) -> pxml_core::ProbTree {
    let mut rng = StdRng::seed_from_u64(seed);
    let config = ProbTreeConfig {
        tree: TreeConfig {
            nodes: 1 + (seed % 12) as usize,
            max_fanout: 3,
            labels: 4,
        },
        events: 1 + (seed % 5) as usize,
        annotation_density: 0.5,
        max_literals: 2,
    };
    random_probtree(&config, &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The census predicts the factorized executor's `states_enumerated`
    /// counter exactly, in both weighted and unweighted modes.
    #[test]
    fn census_predicts_states_enumerated(seed in any::<u64>()) {
        let tree = small_probtree(seed);
        prop_assert!(tree.validate_invariants().is_ok());
        let analysis = StaticAnalyzer::new().with_max_events(16).analyze_worlds(&tree);
        let engine = WorldEngine::new(&tree);
        let executor = ShardExecutor::new(WorldEngineConfig::sequential());
        if analysis.tractable {
            let weighted = executor.run(&engine, true, 16).unwrap();
            prop_assert_eq!(
                analysis.weighted_plan.predicted_states(),
                u128::from(weighted.states_enumerated())
            );
        }
        if analysis.unweighted_plan.check_budget(16).is_ok() {
            let unweighted = executor.run(&engine, false, 16).unwrap();
            prop_assert_eq!(
                analysis.unweighted_plan.predicted_states(),
                u128::from(unweighted.states_enumerated())
            );
        }
    }

    /// A `Certified` certificate really implies semantic local
    /// monotonicity on random trees (satellite of Definition 6).
    #[test]
    fn certificate_implies_local_monotonicity(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let query = random_pattern_query(4, rng.gen_range(0..4), &mut rng);
        let analysis = StaticAnalyzer::new().analyze_pattern(&query);
        prop_assert_eq!(analysis.certificate, MonotonicityCertificate::Certified);
        let tree = random_tree(
            &TreeConfig { nodes: rng.gen_range(1..8usize), max_fanout: 3, labels: 4 },
            &mut rng,
        );
        prop_assert!(is_locally_monotone_on(&query, &tree));
        // Spines cover every leaf: a pattern with n nodes has at least
        // one and at most n spines, all starting at the root label.
        prop_assert!(!analysis.spines.is_empty());
        prop_assert!(analysis.spines.len() <= query.len());
    }

    /// Negation queries are rejected statically, and the engine's
    /// Theorem 1 check fails fast with the typed error — before any
    /// possible world is enumerated.
    #[test]
    fn negation_is_rejected_before_enumeration(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let query = NegationQuery { forbidden: format!("L{}", rng.gen_range(0..4)) };
        let analysis = StaticAnalyzer::new().analyze_query(&query);
        prop_assert!(matches!(
            analysis.certificate,
            MonotonicityCertificate::Rejected { .. }
        ));
        let tree = small_probtree(seed);
        let prepared = QueryEngine::new().prepare(&tree, &query);
        match prepared.theorem1_check() {
            Err(Theorem1Error::NotCertifiedMonotone { reason }) => {
                prop_assert!(reason.contains("negation"));
            }
            other => prop_assert!(false, "expected the typed rejection, got {:?}", other),
        }
    }

    /// A statically-empty verdict under the warehouse DTD is confirmed by
    /// the engine on scenario trees, and the hint makes `prepare` skip
    /// enumeration entirely.
    #[test]
    fn statically_empty_verdict_matches_the_engine(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let analyzer = StaticAnalyzer::new().with_dtd(warehouse_dtd());
        // Random two-level patterns over the warehouse label alphabet.
        let labels = ["warehouse", "service", "name", "keyword", "endpoint", "contact"];
        let parent = labels[rng.gen_range(0..labels.len())];
        let child = labels[rng.gen_range(0..labels.len())];
        let mut query = pxml_core::PatternQuery::new(Some(parent));
        query.add_child(query.root(), child);
        let analysis = analyzer.analyze_pattern(&query);

        let config = WarehouseConfig {
            services: 1 + (seed % 3) as usize,
            extraction_rounds: 4,
            deletion_ratio: 0.2,
        };
        let (script, _) = scenario_script(&config, &mut rng);
        let (tree, _) = UpdateEngine::new().apply_script(&skeleton(config.services), &script);
        prop_assert!(tree.validate_invariants().is_ok());

        let prepared = QueryEngine::new().prepare(&tree, &query);
        if analysis.satisfiability.is_statically_empty() {
            prop_assert!(prepared.is_empty());
            let hinted = QueryEngine::new().prepare_with_hints(&tree, &query, &analysis.hints());
            prop_assert!(hinted.is_empty());
            prop_assert_eq!(hinted.ranked().stats().enumerated, 0);
        } else {
            prop_assert_eq!(analysis.satisfiability, Satisfiability::Satisfiable);
        }
    }

    /// Script forecasts equal the per-step counters a real
    /// `apply_script` run reports, on random warehouse pipelines.
    #[test]
    fn script_forecasts_match_measured_counters(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let config = WarehouseConfig {
            services: 1 + (seed % 4) as usize,
            extraction_rounds: 6,
            deletion_ratio: 0.4,
        };
        let (script, _) = scenario_script(&config, &mut rng);
        let tree = skeleton(config.services);
        let analyzer = StaticAnalyzer::new().with_dtd(warehouse_dtd());
        let analysis = analyzer.analyze_script(&tree, &script);
        let (final_tree, measured) = UpdateEngine::new().apply_script(&tree, &script);
        prop_assert!(final_tree.validate_invariants().is_ok());
        prop_assert_eq!(analysis.steps.len(), measured.steps.len());
        for (predicted, step) in analysis.steps.iter().zip(&measured.steps) {
            prop_assert_eq!(predicted.forecast.matches, step.matches);
            prop_assert_eq!(predicted.forecast.targets, step.targets);
            prop_assert_eq!(
                predicted.forecast.total_survivor_copies(),
                step.survivor_copies
            );
            prop_assert_eq!(predicted.dead, step.matches == 0);
        }
    }
}
