//! Shared helpers for the cross-crate integration and property tests.
//!
//! The actual tests live in `tests/tests/*.rs`; this small library only
//! hosts fixtures reused across several test files.

use pxml_core::probtree::ProbTree;
use pxml_events::{Condition, Literal};

/// A small probabilistic bibliography used by several integration tests:
///
/// ```text
/// bib
/// ├── book            [confirmed]
/// │   ├── title
/// │   └── year        [year_known]
/// └── article         [¬retracted]
///     └── title
/// ```
pub fn bibliography() -> ProbTree {
    let mut t = ProbTree::new("bib");
    let confirmed = t.events_mut().insert("confirmed", 0.9);
    let year_known = t.events_mut().insert("year_known", 0.6);
    let retracted = t.events_mut().insert("retracted", 0.1);
    let root = t.tree().root();
    let book = t.add_child(root, "book", Condition::of(Literal::pos(confirmed)));
    t.add_child(book, "title", Condition::always());
    t.add_child(book, "year", Condition::of(Literal::pos(year_known)));
    let article = t.add_child(root, "article", Condition::of(Literal::neg(retracted)));
    t.add_child(article, "title", Condition::always());
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bibliography_fixture_shape() {
        let t = bibliography();
        assert_eq!(t.num_nodes(), 6);
        assert_eq!(t.events().len(), 3);
        assert_eq!(t.num_literals(), 3);
    }

    /// Guards the fixture's *semantics* against drift: several integration
    /// tests assume this exact possible-world distribution.
    #[test]
    fn bibliography_fixture_semantics() {
        use pxml_core::semantics::possible_worlds_normalized;

        let t = bibliography();
        let pw = possible_worlds_normalized(&t, 8).unwrap();

        // Three independent presence choices — book (π(confirmed) = 0.9),
        // year under book (π(year_known) = 0.6), article (π(¬retracted)
        // = 0.9) — give 3 book states × 2 article states = 6 distinct
        // worlds.
        assert_eq!(pw.len(), 6);

        // The semantics is a probability distribution: unit total mass.
        assert!((pw.total_probability() - 1.0).abs() < 1e-9);

        // The most likely world is the full document:
        // 0.9 · 0.6 · 0.9 = 0.486.
        let best = pw.iter().map(|(_, p)| *p).fold(0.0f64, f64::max);
        assert!((best - 0.486).abs() < 1e-9, "best world probability {best}");
    }
}
