//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the subset of the proptest 1.x API its test suites
//! use:
//!
//! * the [`Strategy`](strategy::Strategy) trait with `prop_map`,
//!   `prop_flat_map` and `prop_recursive`, plus
//!   [`BoxedStrategy`](strategy::BoxedStrategy);
//! * strategies for numeric ranges (`0..n`, `1..=n`, `0.05..0.95`),
//!   tuples of strategies, [`collection::vec`], [`sample::select`],
//!   [`Just`](strategy::Just), and [`arbitrary::any`] (`any::<bool>()`);
//! * the [`proptest!`] macro with `#![proptest_config(...)]`, and
//!   [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`].
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case panics with the assertion message;
//!   the offending input is not minimized. (All inputs here are small by
//!   construction, so failures are still readable.)
//! * **Deterministic.** Each `proptest!`-generated test derives its RNG
//!   seed from the test's module path and name, so failures reproduce
//!   exactly across runs — there is no persistence file because none is
//!   needed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod prelude;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// Namespace mirroring `proptest::prop` (`prop::collection::vec`,
/// `prop::sample::select`, ...).
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

#[doc(hidden)]
pub mod __rt {
    //! Runtime support for the exported macros; not public API.
    pub use rand::rngs::StdRng;
    pub use rand::SeedableRng;

    /// FNV-1a hash of a test's full path — the deterministic RNG seed.
    pub fn seed_for(name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// expands to a `#[test]` that runs `body` over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    (
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $config;
            let __seed =
                $crate::__rt::seed_for(concat!(module_path!(), "::", stringify!($name)));
            let mut __rng =
                <$crate::__rt::StdRng as $crate::__rt::SeedableRng>::seed_from_u64(__seed);
            for __case in 0..__config.cases {
                $(
                    let $arg =
                        $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                )+
                let __run = || -> () { $body };
                __run();
            }
        }
    )*};
}

/// Asserts a condition inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Asserts equality inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Asserts inequality inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}
