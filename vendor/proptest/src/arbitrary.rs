//! The [`Arbitrary`] trait and the [`any`] entry point.

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// The strategy [`any`] returns for this type.
    type Strategy: Strategy<Value = Self>;

    /// The canonical strategy generating arbitrary values of `Self`.
    fn arbitrary() -> Self::Strategy;
}

/// Returns the canonical strategy for `A` (e.g. `any::<bool>()`).
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

/// Strategy for arbitrary `bool`s (fair coin).
#[derive(Clone, Copy, Debug, Default)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;

    fn generate(&self, rng: &mut StdRng) -> bool {
        rng.gen_bool(0.5)
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;

    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty => $name:ident),* $(,)?) => {$(
        /// Strategy for arbitrary values of the corresponding integer type.
        #[derive(Clone, Copy, Debug, Default)]
        pub struct $name;

        impl Strategy for $name {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(<$t>::MIN..=<$t>::MAX)
            }
        }

        impl Arbitrary for $t {
            type Strategy = $name;
            fn arbitrary() -> $name {
                $name
            }
        }
    )*};
}

impl_arbitrary_int!(
    u8 => AnyU8, u16 => AnyU16, u32 => AnyU32, u64 => AnyU64, usize => AnyUsize,
    i8 => AnyI8, i16 => AnyI16, i32 => AnyI32, i64 => AnyI64, isize => AnyIsize,
);
