//! The [`Strategy`] trait and its combinators.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use rand::rngs::StdRng;
use rand::Rng;

/// A recipe for generating values of type [`Value`](Strategy::Value).
///
/// Unlike the real proptest there is no value tree and no shrinking: a
/// strategy is just a reusable generator driven by a seeded RNG.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { strategy: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns for
    /// it (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { strategy: self, f }
    }

    /// Builds a recursive strategy: `self` generates the leaves, and
    /// `recurse` wraps an inner strategy into one for the next level.
    ///
    /// The tree is bounded by applying `recurse` `depth` times with `self`
    /// innermost; `_desired_size` and `_expected_branch_size` are accepted
    /// for signature compatibility but ignored (inner strategies such as
    /// `collection::vec(inner, 0..k)` already terminate branches early at
    /// random).
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut strategy = self.boxed();
        for _ in 0..depth {
            strategy = recurse(strategy).boxed();
        }
        strategy
    }

    /// Erases the strategy's concrete type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(move |rng| self.generate(rng)))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut StdRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        (self.0)(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.strategy.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    strategy: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn generate(&self, rng: &mut StdRng) -> T::Value {
        (self.f)(self.strategy.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of one fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}
