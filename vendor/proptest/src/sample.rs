//! Sampling strategies (`prop::sample::select`).

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// A strategy that picks one of `items` uniformly and clones it.
pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
    assert!(!items.is_empty(), "select requires at least one item");
    Select { items }
}

/// Strategy returned by [`select`].
#[derive(Clone, Debug)]
pub struct Select<T: Clone> {
    items: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        self.items[rng.gen_range(0..self.items.len())].clone()
    }
}
