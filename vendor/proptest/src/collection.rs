//! Collection strategies (`prop::collection::vec`).

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// An inclusive length range for generated collections.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "collection size range is empty");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "collection size range is empty");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// A strategy for `Vec`s whose elements come from `element` and whose
/// length is uniform in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec()`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.min..=self.size.max);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
