//! Test-runner configuration ([`ProptestConfig`]).

/// Configuration for a `proptest!` block.
///
/// Only `cases` is honored; the struct is non-exhaustive in spirit but
/// kept open so struct-literal updates (`ProptestConfig { cases: n,
/// ..Default::default() }`) also work.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated inputs per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}
