//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the subset of the criterion 0.5 API its seven bench
//! targets use: [`Criterion`] configuration, [`BenchmarkGroup`] with
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`Bencher::iter`],
//! [`black_box`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros.
//!
//! Measurement is intentionally simple — warm-up for the configured
//! warm-up time, then run batches until the measurement time elapses and
//! report the mean wall-clock time per iteration — with none of
//! criterion's statistics, HTML reports or regression detection. The
//! numbers are honest but coarse; the point is that `cargo bench`
//! compiles, runs, and prints per-benchmark timings deterministically
//! offline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark configuration, mirroring `criterion::Criterion`.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_millis(1000),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples collected per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets how long each benchmark warms up before timing starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the target total measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id made of a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// A named collection of benchmarks sharing the parent configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark over a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            warm_up_time: self.criterion.warm_up_time,
            measurement_time: self.criterion.measurement_time,
            sample_size: self.criterion.sample_size,
            measured: None,
        };
        f(&mut bencher, input);
        match bencher.measured {
            Some(mean) => println!("{}/{}  mean {}", self.name, id.id, format_ns(mean)),
            None => println!(
                "{}/{}  (no measurement: Bencher::iter never called)",
                self.name, id.id
            ),
        }
        self
    }

    /// Runs one benchmark with no input parameter.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = BenchmarkId::from_parameter(id.into());
        self.bench_with_input(id, &(), |b, ()| f(b))
    }

    /// Ends the group. (The real criterion emits a summary here.)
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; times the routine given to [`iter`].
///
/// [`iter`]: Bencher::iter
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    measured: Option<f64>,
}

impl Bencher {
    /// Times `routine`, storing the mean wall-clock nanoseconds per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: run until the warm-up budget is spent, counting calls so
        // we can size measurement batches (at least one call always runs).
        let warm_start = Instant::now();
        let mut warm_calls = 0u64;
        loop {
            black_box(routine());
            warm_calls += 1;
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        let per_call = warm_start.elapsed().as_secs_f64() / warm_calls as f64;

        // Size each sample so that `sample_size` samples roughly fill the
        // measurement budget.
        let budget = self.measurement_time.as_secs_f64();
        let calls_per_sample =
            ((budget / self.sample_size as f64 / per_call.max(1e-9)).ceil() as u64).max(1);

        let mut total = Duration::ZERO;
        let mut calls = 0u64;
        let measure_start = Instant::now();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..calls_per_sample {
                black_box(routine());
            }
            total += t.elapsed();
            calls += calls_per_sample;
            if measure_start.elapsed().as_secs_f64() > 2.0 * budget {
                break; // slow routine: don't overrun the budget unboundedly
            }
        }
        self.measured = Some(total.as_nanos() as f64 / calls as f64);
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
///
/// Both forms are supported:
/// `criterion_group!(name, target_a, target_b)` and the configured
/// `criterion_group! { name = n; config = expr; targets = a, b }`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark `main` that runs each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
