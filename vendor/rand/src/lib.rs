//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small subset of the `rand` 0.8 API it actually
//! uses:
//!
//! * [`RngCore`] — the raw generator interface (`next_u32` / `next_u64`);
//! * [`SeedableRng`] — deterministic construction via `seed_from_u64`;
//! * [`Rng`] — the user-facing extension trait with `gen_range` (over
//!   half-open and inclusive integer and float ranges) and `gen_bool`;
//! * [`rngs::StdRng`] — a seedable generator backed by xoshiro256**
//!   (Blackman & Vigna, public domain), plenty for randomized algorithms
//!   and property tests. It is **not** cryptographically secure, which
//!   matches `rand`'s own documentation caveat for `StdRng` reproducibility
//!   across versions: only determinism within this workspace is promised.
//!
//! Uniform integer sampling uses rejection sampling (no modulo bias), so
//! the Schwartz–Zippel identity tests in `pxml-poly` get honestly uniform
//! field points.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

pub mod rngs;

/// The raw generator interface: a source of uniformly random bits.
pub trait RngCore {
    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Deterministic construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose entire stream is determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing random-value methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// Supports `a..b` and `a..=b` over the common integer types and
    /// `f32`/`f64`. Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} not in [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Maps 64 random bits to a uniform `f64` in `[0, 1)` (53-bit precision).
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that a uniform value of type `T` can be sampled from.
pub trait SampleRange<T> {
    /// Samples one uniform value; panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, span)` by rejection sampling (no modulo bias).
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    // Largest multiple of `span` that fits in u64: values at or above it
    // would wrap unevenly, so redraw (expected < 2 draws).
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

macro_rules! impl_int_sample_range {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                self.start.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as $wide).wrapping_sub(start as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(uniform_u64_below(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_int_sample_range!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

macro_rules! impl_float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                // `start + span * u` with u in [0, 1) can still round up to
                // exactly `end` (likely for f32, ~2^-53 for f64); resample
                // to uphold the exclusive upper bound. `start` itself is
                // always in range, so this terminates.
                loop {
                    let v = self.start + (self.end - self.start) * unit_f64(rng.next_u64()) as $t;
                    if v < self.end {
                        return v;
                    }
                }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                start + (end - start) * unit_f64(rng.next_u64()) as $t
            }
        }
    )*};
}

impl_float_sample_range!(f32, f64);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn determinism() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000u64), b.gen_range(0..1_000_000u64));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5..=5i32);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_frequency() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let freq = hits as f64 / 100_000.0;
        assert!((freq - 0.3).abs() < 0.01, "freq = {freq}");
    }

    #[test]
    fn integer_sampling_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut counts = [0usize; 5];
        for _ in 0..50_000 {
            counts[rng.gen_range(0..5usize)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "counts = {counts:?}");
        }
    }
}
