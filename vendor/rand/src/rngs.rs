//! Concrete generators. Only [`StdRng`] is provided.

use crate::{RngCore, SeedableRng};

/// A deterministic, seedable pseudo-random generator.
///
/// Backed by xoshiro256** with SplitMix64 seeding — the same construction
/// the real `rand` ecosystem uses in `rand_xoshiro`. Not cryptographically
/// secure; intended for randomized algorithms, workload generation and
/// tests.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    fn from_state(mut seed: u64) -> Self {
        // SplitMix64 expansion of the 64-bit seed into the 256-bit state,
        // as recommended by the xoshiro authors (avoids the all-zero state).
        let mut next = || {
            seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = seed;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        StdRng::from_state(state)
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        // xoshiro256** (Blackman & Vigna, public domain reference code).
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}
