//! A recursive-descent parser for the XML subset used by ProXML documents.
//!
//! Supported: one root element, nested elements, attributes with single or
//! double quotes, text content, comments, processing instructions and the
//! XML declaration (both skipped), predefined entities and character
//! references. Not supported (rejected or ignored): DOCTYPE internal
//! subsets, CDATA sections, namespaces-aware processing (prefixes are kept
//! verbatim in names).

use std::fmt;

use crate::dom::{Element, XmlNode};
use crate::escape::unescape;

/// Error produced while parsing an XML document.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// Byte offset of the error in the input.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "XML parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

/// Parses an XML document and returns its root element.
pub fn parse(input: &str) -> Result<Element, ParseError> {
    let mut parser = Parser {
        input: input.as_bytes(),
        pos: 0,
    };
    parser.skip_prolog()?;
    let root = parser.parse_element()?;
    parser.skip_misc();
    if parser.pos < parser.input.len() {
        return Err(parser.error("trailing content after the root element"));
    }
    Ok(root)
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn starts_with(&self, prefix: &str) -> bool {
        self.input[self.pos..].starts_with(prefix.as_bytes())
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn skip_until(&mut self, pattern: &str) -> Result<(), ParseError> {
        match self.input[self.pos..]
            .windows(pattern.len())
            .position(|w| w == pattern.as_bytes())
        {
            Some(idx) => {
                self.pos += idx + pattern.len();
                Ok(())
            }
            None => Err(self.error(format!("unterminated construct, expected {pattern:?}"))),
        }
    }

    /// Skips the XML declaration, comments, PIs and whitespace before the
    /// root element.
    fn skip_prolog(&mut self) -> Result<(), ParseError> {
        loop {
            self.skip_whitespace();
            if self.starts_with("<?") {
                self.skip_until("?>")?;
            } else if self.starts_with("<!--") {
                self.skip_until("-->")?;
            } else if self.starts_with("<!DOCTYPE") {
                // Skip a simple (subset-free) DOCTYPE declaration.
                self.skip_until(">")?;
            } else {
                return Ok(());
            }
        }
    }

    /// Skips comments, PIs and whitespace after the root element.
    fn skip_misc(&mut self) {
        loop {
            self.skip_whitespace();
            if self.starts_with("<!--") {
                if self.skip_until("-->").is_err() {
                    return;
                }
            } else if self.starts_with("<?") {
                if self.skip_until("?>").is_err() {
                    return;
                }
            } else {
                return;
            }
        }
    }

    fn parse_name(&mut self) -> Result<String, ParseError> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            let ch = c as char;
            if ch.is_ascii_alphanumeric() || matches!(ch, '_' | '-' | '.' | ':') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.error("expected a name"));
        }
        Ok(String::from_utf8_lossy(&self.input[start..self.pos]).into_owned())
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected {:?}", byte as char)))
        }
    }

    fn parse_attr_value(&mut self) -> Result<String, ParseError> {
        let Some(quote @ (b'"' | b'\'')) = self.peek() else {
            return Err(self.error("expected a quoted attribute value"));
        };
        self.pos += 1;
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c == quote {
                let raw = String::from_utf8_lossy(&self.input[start..self.pos]).into_owned();
                self.pos += 1;
                return Ok(unescape(&raw));
            }
            self.pos += 1;
        }
        Err(self.error("unterminated attribute value"))
    }

    fn parse_element(&mut self) -> Result<Element, ParseError> {
        self.expect(b'<')?;
        let name = self.parse_name()?;
        let mut element = Element::new(name);

        // Attributes.
        loop {
            self.skip_whitespace();
            match self.peek() {
                Some(b'/') => {
                    self.pos += 1;
                    self.expect(b'>')?;
                    return Ok(element);
                }
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(_) => {
                    let attr_name = self.parse_name()?;
                    self.skip_whitespace();
                    self.expect(b'=')?;
                    self.skip_whitespace();
                    let value = self.parse_attr_value()?;
                    element.attributes.push((attr_name, value));
                }
                None => return Err(self.error("unexpected end of input in start tag")),
            }
        }

        // Content.
        loop {
            if self.starts_with("</") {
                self.pos += 2;
                let close_name = self.parse_name()?;
                if close_name != element.name {
                    return Err(self.error(format!(
                        "mismatched end tag: expected </{}>, found </{close_name}>",
                        element.name
                    )));
                }
                self.skip_whitespace();
                self.expect(b'>')?;
                return Ok(element);
            } else if self.starts_with("<!--") {
                self.skip_until("-->")?;
            } else if self.starts_with("<?") {
                self.skip_until("?>")?;
            } else if self.peek() == Some(b'<') {
                let child = self.parse_element()?;
                element.children.push(XmlNode::Element(child));
            } else if self.peek().is_some() {
                let start = self.pos;
                while let Some(c) = self.peek() {
                    if c == b'<' {
                        break;
                    }
                    self.pos += 1;
                }
                let raw = String::from_utf8_lossy(&self.input[start..self.pos]).into_owned();
                let text = unescape(&raw);
                if !text.trim().is_empty() {
                    element.children.push(XmlNode::Text(text));
                }
            } else {
                return Err(self.error(format!("unterminated element <{}>", element.name)));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_simple_document() {
        let doc = r#"<?xml version="1.0"?>
            <!-- warehouse snapshot -->
            <catalog size="2">
              <item id="1">First &amp; best</item>
              <item id='2'/>
            </catalog>"#;
        let root = parse(doc).expect("parse");
        assert_eq!(root.name, "catalog");
        assert_eq!(root.attr("size"), Some("2"));
        let items: Vec<_> = root.child_elements().collect();
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].text(), "First & best");
        assert_eq!(items[1].attr("id"), Some("2"));
    }

    #[test]
    fn self_closing_and_nested_elements() {
        let root = parse("<a><b><c/></b><b/></a>").unwrap();
        assert_eq!(root.element_count(), 4);
        assert_eq!(root.child_elements().count(), 2);
    }

    #[test]
    fn mismatched_tags_are_rejected() {
        let err = parse("<a><b></a></b>").unwrap_err();
        assert!(err.message.contains("mismatched end tag"), "{err}");
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let err = parse("<a/><b/>").unwrap_err();
        assert!(err.message.contains("trailing content"), "{err}");
    }

    #[test]
    fn unterminated_element_is_rejected() {
        assert!(parse("<a><b>").is_err());
        assert!(parse("<a attr=>").is_err());
        assert!(parse("<a attr='x>").is_err());
    }

    #[test]
    fn comments_inside_content_are_skipped() {
        let root = parse("<a><!-- note --><b/></a>").unwrap();
        assert_eq!(root.child_elements().count(), 1);
    }

    #[test]
    fn whitespace_only_text_is_dropped() {
        let root = parse("<a>\n  <b/>\n</a>").unwrap();
        assert_eq!(root.children.len(), 1);
    }

    #[test]
    fn doctype_is_skipped() {
        let root = parse("<!DOCTYPE catalog><catalog/>").unwrap();
        assert_eq!(root.name, "catalog");
    }

    #[test]
    fn attribute_entities_are_resolved() {
        let root = parse(r#"<a label="x &lt; y"/>"#).unwrap();
        assert_eq!(root.attr("label"), Some("x < y"));
    }
}
