//! A minimal XML DOM.

/// An XML element: a name, attributes, and an ordered list of children
/// (elements and text nodes).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Element {
    /// The element (tag) name.
    pub name: String,
    /// Attributes, in document order.
    pub attributes: Vec<(String, String)>,
    /// Child nodes, in document order.
    pub children: Vec<XmlNode>,
}

/// A node of the DOM.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum XmlNode {
    /// A child element.
    Element(Element),
    /// A text node (entity references already resolved).
    Text(String),
}

impl Element {
    /// Creates an element with no attributes or children.
    pub fn new(name: impl Into<String>) -> Self {
        Element {
            name: name.into(),
            attributes: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Adds an attribute (builder style).
    pub fn with_attr(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.attributes.push((name.into(), value.into()));
        self
    }

    /// Adds a child element (builder style).
    pub fn with_child(mut self, child: Element) -> Self {
        self.children.push(XmlNode::Element(child));
        self
    }

    /// Adds a text child (builder style).
    pub fn with_text(mut self, text: impl Into<String>) -> Self {
        self.children.push(XmlNode::Text(text.into()));
        self
    }

    /// Looks up an attribute by name.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attributes
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Iterates over child elements (skipping text nodes).
    pub fn child_elements(&self) -> impl Iterator<Item = &Element> {
        self.children.iter().filter_map(|c| match c {
            XmlNode::Element(e) => Some(e),
            XmlNode::Text(_) => None,
        })
    }

    /// The first child element with the given name.
    pub fn child_named(&self, name: &str) -> Option<&Element> {
        self.child_elements().find(|e| e.name == name)
    }

    /// The concatenated text content of this element (direct text children
    /// only).
    pub fn text(&self) -> String {
        self.children
            .iter()
            .filter_map(|c| match c {
                XmlNode::Text(t) => Some(t.as_str()),
                XmlNode::Element(_) => None,
            })
            .collect()
    }

    /// Total number of elements in this subtree (including `self`).
    pub fn element_count(&self) -> usize {
        1 + self
            .child_elements()
            .map(Element::element_count)
            .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_accessors() {
        let el = Element::new("person")
            .with_attr("id", "42")
            .with_child(Element::new("name").with_text("Ada"))
            .with_text("tail");
        assert_eq!(el.attr("id"), Some("42"));
        assert_eq!(el.attr("missing"), None);
        assert_eq!(el.child_elements().count(), 1);
        assert_eq!(el.child_named("name").unwrap().text(), "Ada");
        assert!(el.child_named("email").is_none());
        assert_eq!(el.text(), "tail");
        assert_eq!(el.element_count(), 2);
    }

    #[test]
    fn text_concatenates_direct_children_only() {
        let el = Element::new("a")
            .with_text("x")
            .with_child(Element::new("b").with_text("hidden"))
            .with_text("y");
        assert_eq!(el.text(), "xy");
    }
}
