//! Conversion between XML elements and unordered data trees.
//!
//! Definition 1 of the paper deliberately drops XML ordering, attributes
//! and text. The conversion therefore maps element names to labels and
//! recurses on child elements only. The reverse direction produces plain
//! element trees whose document order is the arena order (semantically
//! irrelevant).

use pxml_tree::{DataTree, NodeId};

use crate::dom::Element;

/// Converts an XML element tree into a [`DataTree`] (labels = element
/// names; attributes and text are dropped).
pub fn element_to_datatree(element: &Element) -> DataTree {
    fn rec(element: &Element, tree: &mut DataTree, parent: NodeId) {
        for child in element.child_elements() {
            let id = tree.add_child(parent, &child.name);
            rec(child, tree, id);
        }
    }
    let mut tree = DataTree::new(&element.name);
    let root = tree.root();
    rec(element, &mut tree, root);
    tree
}

/// Converts a [`DataTree`] into an XML element tree.
pub fn datatree_to_element(tree: &DataTree) -> Element {
    fn rec(tree: &DataTree, node: NodeId) -> Element {
        let mut el = Element::new(tree.label(node));
        for &child in tree.children(node) {
            el.children
                .push(crate::dom::XmlNode::Element(rec(tree, child)));
        }
        el
    }
    rec(tree, tree.root())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::writer::write_element;
    use pxml_tree::canon::{isomorphic, Semantics};

    #[test]
    fn xml_to_datatree_drops_attributes_and_text() {
        let root = parse(r#"<A id="1">text<B/><C><D/></C></A>"#).unwrap();
        let tree = element_to_datatree(&root);
        assert_eq!(tree.len(), 4);
        assert_eq!(tree.label(tree.root()), "A");
    }

    #[test]
    fn datatree_to_xml_roundtrip_up_to_isomorphism() {
        let root = parse("<A><B/><C><D/><D/></C></A>").unwrap();
        let tree = element_to_datatree(&root);
        let back = datatree_to_element(&tree);
        let tree2 = element_to_datatree(&back);
        assert!(isomorphic(&tree, &tree2, Semantics::MultiSet));
        // And the serialized form parses again.
        let reparsed = parse(&write_element(&back)).unwrap();
        assert!(isomorphic(
            &element_to_datatree(&reparsed),
            &tree,
            Semantics::MultiSet
        ));
    }

    #[test]
    fn single_element_document() {
        let tree = element_to_datatree(&parse("<root/>").unwrap());
        assert_eq!(tree.len(), 1);
        let el = datatree_to_element(&tree);
        assert_eq!(el.name, "root");
        assert!(el.children.is_empty());
    }
}
