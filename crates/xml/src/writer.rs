//! Serialization of the DOM back to XML text.

use std::fmt::Write as _;

use crate::dom::{Element, XmlNode};
use crate::escape::{escape_attr, escape_text};

/// Serializes `element` as a standalone XML document (with declaration),
/// indented by two spaces per nesting level.
pub fn write_document(element: &Element) -> String {
    let mut out = String::from("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
    write_into(element, 0, &mut out);
    out
}

/// Serializes `element` (and its subtree) without the XML declaration.
pub fn write_element(element: &Element) -> String {
    let mut out = String::new();
    write_into(element, 0, &mut out);
    out
}

fn write_into(element: &Element, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    let _ = write!(out, "{pad}<{}", element.name);
    for (name, value) in &element.attributes {
        let _ = write!(out, " {}=\"{}\"", name, escape_attr(value));
    }
    if element.children.is_empty() {
        out.push_str("/>\n");
        return;
    }
    // Text-only elements are written inline; mixed/element content is
    // written with one child per line.
    let only_text = element
        .children
        .iter()
        .all(|c| matches!(c, XmlNode::Text(_)));
    if only_text {
        out.push('>');
        for child in &element.children {
            if let XmlNode::Text(t) = child {
                out.push_str(&escape_text(t));
            }
        }
        let _ = writeln!(out, "</{}>", element.name);
        return;
    }
    out.push_str(">\n");
    for child in &element.children {
        match child {
            XmlNode::Element(e) => write_into(e, indent + 1, out),
            XmlNode::Text(t) => {
                let trimmed = t.trim();
                if !trimmed.is_empty() {
                    let _ = writeln!(out, "{}  {}", pad, escape_text(trimmed));
                }
            }
        }
    }
    let _ = writeln!(out, "{pad}</{}>", element.name);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn writes_nested_elements_with_indentation() {
        let el = Element::new("catalog").with_attr("size", "1").with_child(
            Element::new("item")
                .with_attr("id", "1")
                .with_text("First & best"),
        );
        let text = write_element(&el);
        assert!(text.contains("<catalog size=\"1\">"));
        assert!(text.contains("  <item id=\"1\">First &amp; best</item>"));
        assert!(text.trim_end().ends_with("</catalog>"));
    }

    #[test]
    fn self_closing_for_empty_elements() {
        assert_eq!(write_element(&Element::new("empty")), "<empty/>\n");
    }

    #[test]
    fn document_has_declaration() {
        let doc = write_document(&Element::new("root"));
        assert!(doc.starts_with("<?xml version=\"1.0\""));
    }

    #[test]
    fn parse_write_parse_roundtrip_preserves_structure() {
        let source = r#"<catalog size="2"><item id="1">First &amp; best</item><item id="2"><sub/></item></catalog>"#;
        let parsed = parse(source).unwrap();
        let written = write_document(&parsed);
        let reparsed = parse(&written).unwrap();
        assert_eq!(parsed, reparsed);
    }

    #[test]
    fn attribute_values_are_escaped() {
        let el = Element::new("a").with_attr("q", "x<\"y\">&z");
        let text = write_element(&el);
        assert!(text.contains("q=\"x&lt;&quot;y&quot;&gt;&amp;z\""));
        let reparsed = parse(&text).unwrap();
        assert_eq!(reparsed.attr("q"), Some("x<\"y\">&z"));
    }
}
