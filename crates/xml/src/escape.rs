//! Escaping and unescaping of XML character data.

/// Escapes text content (`&`, `<`, `>`).
pub fn escape_text(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for ch in text.chars() {
        match ch {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            _ => out.push(ch),
        }
    }
    out
}

/// Escapes an attribute value (also quotes `"` and `'`).
pub fn escape_attr(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for ch in value.chars() {
        match ch {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            _ => out.push(ch),
        }
    }
    out
}

/// Resolves the five predefined entities and decimal/hexadecimal character
/// references. Unknown entities are left untouched (lenient mode).
pub fn unescape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut chars = text.char_indices().peekable();
    while let Some((start, ch)) = chars.next() {
        if ch != '&' {
            out.push(ch);
            continue;
        }
        // Find the terminating ';' within a reasonable window.
        let rest = &text[start + 1..];
        if let Some(end) = rest.find(';').filter(|&e| e <= 10) {
            let entity = &rest[..end];
            let replacement = match entity {
                "amp" => Some('&'),
                "lt" => Some('<'),
                "gt" => Some('>'),
                "quot" => Some('"'),
                "apos" => Some('\''),
                _ if entity.starts_with("#x") || entity.starts_with("#X") => {
                    u32::from_str_radix(&entity[2..], 16)
                        .ok()
                        .and_then(char::from_u32)
                }
                _ if entity.starts_with('#') => {
                    entity[1..].parse::<u32>().ok().and_then(char::from_u32)
                }
                _ => None,
            };
            if let Some(r) = replacement {
                out.push(r);
                // Skip the entity body and the ';'.
                for _ in 0..=end {
                    chars.next();
                }
                continue;
            }
        }
        out.push('&');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_and_unescape_text_roundtrip() {
        let original = "a < b && c > d";
        let escaped = escape_text(original);
        assert_eq!(escaped, "a &lt; b &amp;&amp; c &gt; d");
        assert_eq!(unescape(&escaped), original);
    }

    #[test]
    fn escape_attr_quotes() {
        assert_eq!(
            escape_attr(r#"say "hi" & 'bye'"#),
            "say &quot;hi&quot; &amp; &apos;bye&apos;"
        );
    }

    #[test]
    fn unescape_character_references() {
        assert_eq!(unescape("&#65;&#x42;"), "AB");
        assert_eq!(unescape("caf&#233;"), "café");
    }

    #[test]
    fn unknown_entities_are_left_alone() {
        assert_eq!(unescape("&unknown; &amp;"), "&unknown; &");
        assert_eq!(unescape("lonely & ampersand"), "lonely & ampersand");
    }
}
