//! # pxml-xml — a minimal XML parser/serializer
//!
//! The paper's motivating system stores imprecise information extracted
//! from the hidden web in an XML warehouse. This crate provides the small
//! XML substrate the workspace needs, implemented from scratch (no external
//! XML dependency):
//!
//! * [`dom`] — a tiny DOM: elements with attributes, text and child
//!   elements.
//! * [`parser`] — a recursive-descent parser for the XML subset used by the
//!   ProXML format (elements, attributes, text, comments, XML declaration,
//!   the five predefined entities).
//! * [`writer`] — a pretty-printing serializer.
//! * [`datatree`] — conversion between XML elements and the unordered
//!   [`pxml_tree::DataTree`] model (element names become labels; attributes
//!   and text are ignored, matching Definition 1's simplifications).
//!
//! The prob-tree-level document format (events table + annotated nodes)
//! lives in `pxml-core::proxml`, which builds on this crate.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod datatree;
pub mod dom;
pub mod escape;
pub mod parser;
pub mod writer;

pub use dom::{Element, XmlNode};
pub use parser::{parse, ParseError};
pub use writer::write_element;
