//! # pxml-workloads — workload and scenario generators
//!
//! Everything the examples, integration tests and benchmarks need to
//! exercise the prob-tree engine on realistic and on adversarial inputs:
//!
//! * [`random`] — random data trees, prob-trees and tree-pattern queries
//!   with controllable size, fan-out and annotation density;
//! * [`paper`] — the exact constructions used in the paper's proofs
//!   (Figure 1, the Theorem 3 deletion family, the Theorem 4 threshold
//!   family, the Theorem 5 SAT reduction and restriction family);
//! * [`warehouse`] — a synthetic "hidden-web warehouse" scenario following
//!   the paper's motivating application: imprecise extractors feed
//!   probabilistic insertions and occasional deletions into an XML
//!   warehouse, which is then queried.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod paper;
pub mod random;
pub mod warehouse;
