//! The constructions used in the paper's figures and proofs.

use pxml_core::probtree::ProbTree;
use pxml_core::query::pattern::{PatternNodeId, PatternQuery};
use pxml_core::update::{ProbabilisticUpdate, UpdateOperation};
use pxml_dtd::reduction::{reduce_sat, Theorem5Instance};
use pxml_dtd::restriction::theorem5_restriction_family;
use pxml_dtd::Dtd;
use pxml_events::{Condition, Literal};
use pxml_sat::Cnf;

/// The Figure 1 example prob-tree (re-exported from `pxml-core`).
pub fn figure1() -> ProbTree {
    pxml_core::probtree::figure1_example()
}

/// The Theorem 3 witness prob-tree: root `A` with one unconditioned `B`
/// child and `n` `C` children, the `i`-th conditioned by `w_i⁽⁰⁾ ∧ w_i⁽¹⁾`
/// (2n event variables, each appearing once, probability ½).
pub fn theorem3_tree(n: usize) -> ProbTree {
    let mut tree = ProbTree::new("A");
    let root = tree.tree().root();
    tree.add_child(root, "B", Condition::always());
    for i in 0..n {
        let w0 = tree.events_mut().insert(format!("w{}_0", i + 1), 0.5);
        let w1 = tree.events_mut().insert(format!("w{}_1", i + 1), 0.5);
        tree.add_child(
            root,
            "C",
            Condition::from_literals([Literal::pos(w0), Literal::pos(w1)]),
        );
    }
    tree
}

/// The deletion `d0` of Theorem 3: "if the root has a C-child, delete all
/// B-children of the root", with the given confidence (Theorem 3 uses 1).
pub fn d0_deletion(confidence: f64) -> ProbabilisticUpdate {
    let mut query = PatternQuery::anchored(Some("A"));
    let b = query.add_child(query.root(), "B");
    let _c = query.add_child(query.root(), "C");
    ProbabilisticUpdate::new(UpdateOperation::delete(query, b), confidence)
}

/// An insertion counterpart to [`d0_deletion`] used by the E4/E5
/// comparison: "if the root has a C-child, insert an `E` child under every
/// B-child of the root".
pub fn d0_insertion(confidence: f64) -> (ProbabilisticUpdate, PatternNodeId) {
    let mut query = PatternQuery::anchored(Some("A"));
    let b = query.add_child(query.root(), "B");
    let _c = query.add_child(query.root(), "C");
    (
        ProbabilisticUpdate::new(
            UpdateOperation::insert(query, b, pxml_tree::DataTree::new("E")),
            confidence,
        ),
        b,
    )
}

/// The Theorem 4 witness prob-tree: root `A` with `2n` children
/// `C_1 … C_{2n}`, each conditioned by its own event variable. The paper
/// uses distinct labels so that every subset of children is a distinct
/// world. All events get probability ½ so that every world is
/// equiprobable (`2^{-2n}`), and the natural threshold for the E7
/// experiment is that common probability.
pub fn theorem4_tree(n: usize) -> ProbTree {
    let mut tree = ProbTree::new("A");
    let root = tree.tree().root();
    for i in 0..2 * n {
        let w = tree.events_mut().insert(format!("w{}", i + 1), 0.5);
        tree.add_child(root, format!("C{}", i + 1), Condition::of(Literal::pos(w)));
    }
    tree
}

/// The probability of each world of [`theorem4_tree`] (they are all
/// equal): `2^{-2n}`.
pub fn theorem4_world_probability(n: usize) -> f64 {
    0.5f64.powi(2 * n as i32)
}

/// The query battery of the Section 2 examples: `//C/D` (the paper's
/// worked query on Figure 1, the battery's first entry), the
/// single-label queries for `B` and `D`, the anchored `A//D` descendant
/// query, and a non-matching control. Used by the E1 experiment
/// (`tables --exp e1` runs the whole battery through the engine's
/// Theorem 1 check) and the Figure 1 regression tests.
pub fn theorem1_query_battery() -> Vec<PatternQuery> {
    vec![
        {
            let mut q = PatternQuery::new(Some("C"));
            q.add_child(q.root(), "D");
            q
        },
        PatternQuery::new(Some("B")),
        PatternQuery::new(Some("D")),
        {
            let mut q = PatternQuery::anchored(Some("A"));
            q.add_descendant(q.root(), "D");
            q
        },
        PatternQuery::new(Some("Z")),
    ]
}

/// The Theorem 5 SAT-reduction instance for a CNF formula (re-exported
/// from `pxml-dtd`).
pub fn theorem5_instance(cnf: &Cnf) -> Theorem5Instance {
    reduce_sat(cnf)
}

/// The Theorem 5 (3) restriction family (re-exported from `pxml-dtd`):
/// `2n` optional distinguishable `C` children and a DTD allowing at most
/// `n` of them.
pub fn theorem5_restriction(n: usize) -> (ProbTree, Dtd) {
    theorem5_restriction_family(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pxml_core::semantics::{possible_worlds, possible_worlds_normalized};

    #[test]
    fn figure1_matches_paper_parameters() {
        let t = figure1();
        assert_eq!(t.num_nodes(), 4);
        assert_eq!(t.events().len(), 2);
        assert!((t.events().prob(t.events().by_name("w1").unwrap()) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn theorem3_tree_has_paper_size() {
        // "n + 2 nodes and 2n event variables, each appearing only once"
        for n in [1usize, 4, 9] {
            let t = theorem3_tree(n);
            assert_eq!(t.num_nodes(), n + 2);
            assert_eq!(t.events().len(), 2 * n);
            assert_eq!(t.num_literals(), 2 * n);
        }
    }

    #[test]
    fn d0_deletes_b_only_when_c_present() {
        let update = d0_deletion(1.0);
        // With a C child: B disappears.
        let with_c = theorem3_tree(1);
        let worlds = possible_worlds(&with_c, 20).unwrap();
        let updated = update.apply_to_pw_set(&worlds).normalized();
        for (world, p) in updated.iter() {
            let has_b = world.iter().any(|nd| world.label(nd) == "B");
            let has_c = world.iter().any(|nd| world.label(nd) == "C");
            assert!(!(has_b && has_c), "p={p}: B and C coexist after d0");
        }
    }

    #[test]
    fn theorem4_tree_worlds_are_equiprobable() {
        let n = 2;
        let t = theorem4_tree(n);
        assert_eq!(t.num_nodes(), 2 * n + 1);
        assert_eq!(t.events().len(), 2 * n);
        let pw = possible_worlds_normalized(&t, 20).unwrap();
        assert_eq!(
            pw.len(),
            1 << (2 * n),
            "distinct labels keep worlds distinct"
        );
        let expected = theorem4_world_probability(n);
        for (_, p) in pw.iter() {
            assert!((p - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn theorem1_battery_holds_on_figure1_through_the_engine() {
        use pxml_core::QueryEngine;
        let tree = figure1();
        let engine = QueryEngine::new();
        for q in &theorem1_query_battery() {
            use pxml_core::query::Query as _;
            assert!(
                engine.prepare(&tree, q).theorem1_check().unwrap(),
                "Theorem 1 violated for {}",
                q.describe()
            );
        }
    }

    #[test]
    fn theorem5_helpers_are_wired() {
        let mut cnf = Cnf::new(2);
        cnf.add_clause(vec![
            pxml_sat::Lit::pos(pxml_sat::Var(0)),
            pxml_sat::Lit::neg(pxml_sat::Var(1)),
        ]);
        let instance = theorem5_instance(&cnf);
        assert_eq!(instance.tree.num_nodes(), 2);
        let (tree, dtd) = theorem5_restriction(2);
        assert_eq!(tree.events().len(), 4);
        assert!(dtd.constrains("A"));
    }
}
