//! A synthetic "hidden-web warehouse" scenario.
//!
//! The paper's motivating application (Section 1) is a warehouse of
//! imprecise knowledge about web resources: crawlers and analysis tools
//! (classifiers, extractors, semantic taggers) repeatedly *update* an XML
//! warehouse with findings they are only partially confident about, and
//! applications *query* the accumulated probabilistic document.
//!
//! This module simulates that pipeline: starting from a skeleton warehouse
//! (`warehouse / service*`), a configurable number of extractor runs insert
//! `keyword`, `endpoint` and `contact` facts under the services they
//! analysed — each with a confidence reflecting the extractor's precision —
//! and occasionally issue low-confidence deletions (retractions of earlier
//! claims). The result is a realistic prob-tree whose event variables are
//! exactly the update confidences.

use std::collections::BTreeSet;

use rand::Rng;

use pxml_core::probtree::ProbTree;
use pxml_core::query::pattern::PatternQuery;
use pxml_core::query::{AnswerSet, MaintainOutcome, MaintainStats, PreparedQuery, QueryEngine};
use pxml_core::update::{
    ProbabilisticUpdate, ScriptReport, UpdateEngine, UpdateOperation, UpdateScript,
};
use pxml_core::Document;
use pxml_dtd::{ChildConstraint, Dtd};
use pxml_events::{Condition, EventId, Lineage, Possibility};
use pxml_tree::DataTree;

/// Parameters of the warehouse scenario.
#[derive(Clone, Copy, Debug)]
pub struct WarehouseConfig {
    /// Number of discovered services in the warehouse skeleton.
    pub services: usize,
    /// Number of extractor runs (each produces one probabilistic update).
    pub extraction_rounds: usize,
    /// Probability that an extraction round is a retraction (deletion)
    /// rather than an insertion.
    pub deletion_ratio: f64,
}

impl Default for WarehouseConfig {
    fn default() -> Self {
        WarehouseConfig {
            services: 5,
            extraction_rounds: 12,
            deletion_ratio: 0.1,
        }
    }
}

/// A record of one applied update, for reporting purposes.
#[derive(Clone, Debug)]
pub struct AppliedUpdate {
    /// Human-readable description of the update.
    pub description: String,
    /// Confidence of the update.
    pub confidence: f64,
    /// Whether it was a deletion.
    pub is_deletion: bool,
}

/// The outcome of the scenario: the final warehouse, the update log, and
/// the engine's per-step telemetry.
#[derive(Clone, Debug)]
pub struct Warehouse {
    /// The probabilistic warehouse after all extraction rounds.
    pub tree: ProbTree,
    /// The updates that were applied, in order.
    pub log: Vec<AppliedUpdate>,
    /// Per-step size/literal telemetry from the update engine.
    pub report: ScriptReport,
}

/// The fixed label alphabet of the scenario.
pub const FACT_LABELS: [&str; 3] = ["keyword", "endpoint", "contact"];

/// Builds the deterministic warehouse skeleton: a `warehouse` root with
/// `services` children labeled `service`, each holding a `name` child.
pub fn skeleton(services: usize) -> ProbTree {
    let mut tree = ProbTree::new("warehouse");
    let root = tree.tree().root();
    for _ in 0..services {
        let service = tree.add_child(root, "service", Condition::always());
        tree.add_child(service, "name", Condition::always());
    }
    tree
}

/// The unordered DTD the warehouse is expected to respect (Definition 12):
/// a `warehouse` root holding any number of `service` children, each with
/// exactly one `name` and any number of `keyword`/`endpoint`/`contact`
/// facts. Fact labels are left unconstrained so the per-round `value{n}`
/// payloads below them stay legal.
pub fn warehouse_dtd() -> Dtd {
    let mut dtd = Dtd::new();
    dtd.constrain("warehouse", "service", ChildConstraint::at_least(0));
    dtd.constrain("service", "name", ChildConstraint::between(1, 1));
    for label in FACT_LABELS {
        dtd.constrain("service", label, ChildConstraint::at_least(0));
    }
    dtd
}

/// Builds the extraction pipeline as an [`UpdateScript`] plus its log.
pub fn scenario_script<R: Rng + ?Sized>(
    config: &WarehouseConfig,
    rng: &mut R,
) -> (UpdateScript, Vec<AppliedUpdate>) {
    let mut script = UpdateScript::new();
    let mut log = Vec::new();
    for round in 0..config.extraction_rounds {
        let confidence = rng.gen_range(0.5..0.99);
        let is_deletion = rng.gen_bool(config.deletion_ratio) && round > 0;
        if is_deletion {
            // Retract facts with a given label wherever they were claimed.
            let label = FACT_LABELS[rng.gen_range(0..FACT_LABELS.len())];
            let mut query = PatternQuery::new(Some("service"));
            let fact = query.add_child(query.root(), label);
            script.push(ProbabilisticUpdate::new(
                UpdateOperation::delete(query, fact),
                confidence,
            ));
            log.push(AppliedUpdate {
                description: format!("retract every {label} fact"),
                confidence,
                is_deletion: true,
            });
        } else {
            // Claim a new fact under every service (an extractor typically
            // analyses the whole corpus in one run).
            let label = FACT_LABELS[rng.gen_range(0..FACT_LABELS.len())];
            let mut fact = DataTree::new(label);
            let fact_root = fact.root();
            fact.add_child(fact_root, format!("value{round}"));
            let query = PatternQuery::new(Some("service"));
            let at = query.root();
            script.push(ProbabilisticUpdate::new(
                UpdateOperation::insert(query, at, fact),
                confidence,
            ));
            log.push(AppliedUpdate {
                description: format!("assert a {label} fact under every service"),
                confidence,
                is_deletion: false,
            });
        }
    }
    (script, log)
}

/// Runs the extraction pipeline — one batched [`UpdateScript`] through the
/// [`UpdateEngine`] — and returns the resulting warehouse.
pub fn run_scenario<R: Rng + ?Sized>(config: &WarehouseConfig, rng: &mut R) -> Warehouse {
    let (script, log) = scenario_script(config, rng);
    let (tree, report) = UpdateEngine::new().apply_script(&skeleton(config.services), &script);
    Warehouse { tree, log, report }
}

/// The scenario's canonical analysis query: services for which both an
/// `endpoint` fact and a `contact` fact have been claimed.
pub fn services_with_endpoint_and_contact() -> PatternQuery {
    let mut query = PatternQuery::new(Some("service"));
    query.add_child(query.root(), "endpoint");
    query.add_child(query.root(), "contact");
    query
}

/// The warehouse's ranked analysis report: the `k` most probable answers
/// of the canonical query, the threshold slice of answers at least
/// `min_confidence` likely, and the expected number of fully-described
/// services — all served from **one** prepared state (the warehouse is
/// queried repeatedly between update rounds; re-matching per consumer is
/// exactly the access pattern the query engine exists to avoid).
pub fn analyze(warehouse: &Warehouse, k: usize, min_confidence: f64) -> WarehouseAnalysis {
    let query = services_with_endpoint_and_contact();
    let prepared = QueryEngine::new().prepare(&warehouse.tree, &query);
    analysis_views(&prepared, k, min_confidence)
}

/// Builds every view of [`WarehouseAnalysis`] from one prepared state:
/// the ranked/threshold/aggregate probability views, plus the
/// [`Possibility`] and [`Lineage`] provenance views served by the same
/// match set through [`PreparedQuery::answers_in`] — no re-matching per
/// semiring.
fn analysis_views(
    prepared: &PreparedQuery<'_>,
    k: usize,
    min_confidence: f64,
) -> WarehouseAnalysis {
    let top = prepared.top_k(k);
    let top_lineage = top
        .iter()
        .map(|answer| {
            prepared
                .probability_of_in(&Lineage, &answer.subtree)
                .flatten()
                .unwrap_or_default()
        })
        .collect();
    let possible_services = prepared
        .answers_in(&Possibility)
        .into_iter()
        .filter(|(_, possible)| *possible)
        .count();
    WarehouseAnalysis {
        expected_services: prepared.expected_matches(),
        confident: prepared.above(min_confidence),
        top,
        top_lineage,
        possible_services,
    }
}

/// Cross-document storage census of a warehouse corpus: every document is
/// interned into one fresh shared [`pxml_tree::NodeStore`], so equal
/// subtrees — the skeleton services, and facts claimed by the same
/// extractor across documents — are counted once. The returned
/// [`pxml_core::probtree::MemoryStats`] compares the corpus's logical node
/// count with the distinct stored shapes
/// ([`pxml_core::probtree::MemoryStats::dedup_ratio`]).
pub fn corpus_stats(warehouses: &[Warehouse]) -> pxml_core::probtree::MemoryStats {
    let docs: Vec<&ProbTree> = warehouses.iter().map(|w| &w.tree).collect();
    pxml_core::probtree::corpus_memory_stats(&docs)
}

/// The outcome of [`analyze`]: ranked views over one prepared query.
#[derive(Clone, Debug)]
pub struct WarehouseAnalysis {
    /// The `k` most probable fully-described services.
    pub top: AnswerSet,
    /// All answers with probability at least the requested confidence.
    pub confident: AnswerSet,
    /// Expected number of fully-described services over the worlds.
    pub expected_services: f64,
    /// Per-answer provenance of `top`: the update-confidence events each
    /// top answer's presence depends on ([`Lineage`] semiring view).
    pub top_lineage: Vec<BTreeSet<EventId>>,
    /// Number of matched services that are possible at all — present in
    /// some positive-probability world ([`Possibility`] semiring view).
    pub possible_services: usize,
}

/// One extraction round of [`run_scenario_live`]: the analysis served
/// right after the round's update, and how the prepared state was brought
/// current (patched in place, or re-prepared because the update touched
/// the query's spine labels).
#[derive(Clone, Debug)]
pub struct LiveRound {
    /// The post-round analysis, served from the maintained prepared state.
    pub analysis: WarehouseAnalysis,
    /// How `maintain` brought the state up to date for this round.
    pub outcome: MaintainOutcome,
}

/// The outcome of [`run_scenario_live`]: the final warehouse plus the
/// per-round analyses and the maintenance telemetry of the one prepared
/// query that served them all.
#[derive(Clone, Debug)]
pub struct LiveScenario {
    /// The final warehouse (same contents as [`run_scenario`]).
    pub warehouse: Warehouse,
    /// One entry per extraction round, in order.
    pub rounds: Vec<LiveRound>,
    /// Cumulative maintenance counters of the prepared analysis query.
    pub maintenance: MaintainStats,
}

/// Runs the extraction pipeline **live**: the warehouse is wrapped in a
/// versioned [`Document`], the canonical analysis query is prepared once
/// ([`QueryEngine::prepare_doc`]), and after every update round the
/// prepared state is brought current with
/// [`pxml_core::PreparedQuery::maintain`] instead of being re-prepared —
/// the access pattern the motivating application (Section 1 of the paper)
/// actually has: extractors keep updating the warehouse while the same
/// analyses are served between rounds.
///
/// Rounds whose update only touches labels outside the query's footprint
/// (e.g. `keyword` facts, for the endpoint-and-contact query) are patched
/// in place; rounds inserting or deleting `endpoint`/`contact` facts fall
/// back to a full re-prepare. Both cases serve answers identical to
/// [`analyze`] on the round's tree.
pub fn run_scenario_live<R: Rng + ?Sized>(
    config: &WarehouseConfig,
    rng: &mut R,
    k: usize,
    min_confidence: f64,
) -> LiveScenario {
    let (script, log) = scenario_script(config, rng);
    let mut doc = Document::new(skeleton(config.services));
    let query = services_with_endpoint_and_contact();
    let query_engine = QueryEngine::new();
    let update_engine = UpdateEngine::new();
    let mut prepared = query_engine.prepare_doc(&doc, &query);
    let mut rounds = Vec::with_capacity(script.len());
    let mut steps = Vec::with_capacity(script.len());
    for update in script.steps() {
        let delta = update_engine.apply_doc(&mut doc, update);
        steps.push(delta.report.clone());
        let outcome = prepared
            .maintain(&doc)
            .expect("prepared against this document");
        rounds.push(LiveRound {
            analysis: analysis_views(&prepared, k, min_confidence),
            outcome,
        });
    }
    let maintenance = prepared.maintenance_stats();
    LiveScenario {
        warehouse: Warehouse {
            tree: doc.snapshot().as_ref().clone(),
            log,
            report: ScriptReport { steps },
        },
        rounds,
        maintenance,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn skeleton_shape() {
        let tree = skeleton(3);
        assert_eq!(tree.num_nodes(), 1 + 3 * 2);
        assert_eq!(tree.events().len(), 0);
    }

    #[test]
    fn warehouse_dtd_accepts_the_skeleton_and_scenario_worlds() {
        let dtd = warehouse_dtd();
        assert!(pxml_dtd::validates(skeleton(4).tree(), &dtd));
        // Every possible world of a small scenario run stays valid: the
        // script only inserts facts under services and deletes facts.
        let mut rng = StdRng::seed_from_u64(0xD7D);
        let config = WarehouseConfig {
            services: 2,
            extraction_rounds: 6,
            deletion_ratio: 0.3,
        };
        let warehouse = run_scenario(&config, &mut rng);
        let pw = pxml_core::semantics::possible_worlds(&warehouse.tree, 16).unwrap();
        for (world, _) in pw.iter() {
            assert!(pxml_dtd::validates(world, &dtd));
        }
        // A service without a name is rejected.
        let mut bad = ProbTree::new("warehouse");
        let root = bad.tree().root();
        bad.add_child(root, "service", Condition::always());
        assert!(!pxml_dtd::validates(bad.tree(), &dtd));
    }

    #[test]
    fn scenario_accumulates_events_and_facts() {
        let mut rng = StdRng::seed_from_u64(0x11AB);
        let config = WarehouseConfig {
            services: 3,
            extraction_rounds: 8,
            deletion_ratio: 0.2,
        };
        let warehouse = run_scenario(&config, &mut rng);
        assert_eq!(warehouse.log.len(), 8);
        // Every update has confidence < 1, so each introduced an event.
        assert_eq!(warehouse.tree.events().len(), 8);
        // Insertions added nodes under the services.
        assert!(warehouse.tree.num_nodes() > skeleton(3).num_nodes());
        // The engine report covers every round and chains sizes.
        assert_eq!(warehouse.report.steps.len(), 8);
        assert!(warehouse.report.peak_size() >= warehouse.tree.size());
    }

    #[test]
    fn scenario_is_deterministic_per_seed() {
        let config = WarehouseConfig::default();
        let a = run_scenario(&config, &mut StdRng::seed_from_u64(1));
        let b = run_scenario(&config, &mut StdRng::seed_from_u64(1));
        assert_eq!(a.tree.num_nodes(), b.tree.num_nodes());
        assert_eq!(a.tree.num_literals(), b.tree.num_literals());
    }

    #[test]
    fn analysis_query_returns_weighted_answers() {
        let mut rng = StdRng::seed_from_u64(0x77);
        let config = WarehouseConfig {
            services: 2,
            extraction_rounds: 10,
            deletion_ratio: 0.0,
        };
        let warehouse = run_scenario(&config, &mut rng);
        let query = services_with_endpoint_and_contact();
        let prepared = QueryEngine::new().prepare(&warehouse.tree, &query);
        for answer in prepared.answers() {
            assert!(answer.probability >= 0.0 && answer.probability <= 1.0);
        }
    }

    // The one-shot wrappers are deprecated but must stay semantically
    // identical to the prepared views while they exist.
    #[allow(deprecated)]
    #[test]
    fn analysis_report_views_agree_with_the_free_functions() {
        let mut rng = StdRng::seed_from_u64(0x77);
        let config = WarehouseConfig {
            services: 3,
            extraction_rounds: 12,
            deletion_ratio: 0.1,
        };
        let warehouse = run_scenario(&config, &mut rng);
        let analysis = analyze(&warehouse, 2, 0.5);
        let query = services_with_endpoint_and_contact();
        // The prepared views agree with the one-shot wrappers.
        let reference = pxml_core::query::ranked::top_k(&query, &warehouse.tree, 2);
        assert_eq!(analysis.top.len(), reference.len());
        for (a, b) in analysis.top.iter().zip(&reference) {
            assert_eq!(a.probability, b.probability);
            assert_eq!(a.subtree, b.subtree);
        }
        let expected = pxml_core::query::ranked::expected_matches(&query, &warehouse.tree);
        assert!((analysis.expected_services - expected).abs() < 1e-12);
        // Every confident answer clears the threshold and ranks best-first.
        assert!(analysis.confident.iter().all(|a| a.probability >= 0.5));
        assert!(analysis
            .confident
            .windows(2)
            .all(|w| w[0].probability >= w[1].probability));
    }

    #[test]
    fn provenance_views_ride_the_same_prepared_state() {
        let mut rng = StdRng::seed_from_u64(0x77);
        let config = WarehouseConfig {
            services: 3,
            extraction_rounds: 12,
            deletion_ratio: 0.1,
        };
        let warehouse = run_scenario(&config, &mut rng);
        let analysis = analyze(&warehouse, 3, 0.0);
        assert_eq!(analysis.top_lineage.len(), analysis.top.len());
        for (answer, lineage) in analysis.top.iter().zip(&analysis.top_lineage) {
            // An uncertain answer must depend on at least one update
            // confidence, and every lineage event is a declared one.
            if answer.probability < 1.0 {
                assert!(!lineage.is_empty(), "uncertain answer with no lineage");
            }
            for &event in lineage {
                assert!(event.index() < warehouse.tree.events().len());
            }
        }
        // Possibility counts exactly the answers with positive probability.
        let query = services_with_endpoint_and_contact();
        let prepared = QueryEngine::new().prepare(&warehouse.tree, &query);
        let positive = prepared.answers().filter(|a| a.probability > 0.0).count();
        assert_eq!(analysis.possible_services, positive);
        assert!(analysis.possible_services > 0);
    }

    #[test]
    fn live_scenario_agrees_with_batch_reanalysis_every_round() {
        let config = WarehouseConfig {
            services: 3,
            extraction_rounds: 10,
            deletion_ratio: 0.2,
        };
        let seed = 0xBEEF;
        let live = run_scenario_live(&config, &mut StdRng::seed_from_u64(seed), 2, 0.5);
        assert_eq!(live.rounds.len(), 10);

        // Replay the same script through the batch engine, re-preparing
        // from scratch after every round: the maintained prepared state
        // must serve the exact same analyses.
        let (script, _) = scenario_script(&config, &mut StdRng::seed_from_u64(seed));
        let engine = UpdateEngine::new();
        let mut tree = skeleton(config.services);
        for (round, update) in script.steps().iter().enumerate() {
            let (next, _) = engine.apply(&tree, update);
            tree = next;
            let fresh = analyze(
                &Warehouse {
                    tree: tree.clone(),
                    log: Vec::new(),
                    report: ScriptReport { steps: Vec::new() },
                },
                2,
                0.5,
            );
            let served = &live.rounds[round].analysis;
            assert_eq!(served.top.len(), fresh.top.len(), "round {round}");
            for (a, b) in served.top.iter().zip(fresh.top.iter()) {
                assert_eq!(a.probability, b.probability, "round {round}");
            }
            assert_eq!(served.confident.len(), fresh.confident.len());
            assert!((served.expected_services - fresh.expected_services).abs() < 1e-12);
        }

        // The scenario mixes keyword-only rounds (patched in place) with
        // endpoint/contact rounds (spine-touching fallbacks); the
        // cumulative counters must reflect both paths.
        let fallbacks = live
            .rounds
            .iter()
            .filter(|r| matches!(r.outcome, MaintainOutcome::Fallback { .. }))
            .count();
        assert_eq!(live.maintenance.fallbacks, fallbacks);
        assert!(
            live.maintenance.steps_patched > 0,
            "some rounds must be patched in place: {:?}",
            live.maintenance
        );

        // Same final warehouse as the batch pipeline.
        let batch = run_scenario(&config, &mut StdRng::seed_from_u64(seed));
        assert_eq!(live.warehouse.tree.num_nodes(), batch.tree.num_nodes());
        assert_eq!(
            live.warehouse.tree.num_literals(),
            batch.tree.num_literals()
        );
        assert_eq!(live.warehouse.report.steps.len(), batch.report.steps.len());
    }

    #[test]
    fn corpus_interning_shares_shapes_across_warehouses() {
        let config = WarehouseConfig {
            services: 3,
            extraction_rounds: 6,
            deletion_ratio: 0.0,
        };
        // Three identical pipeline runs: every subtree of each document
        // recurs in the other two, so the corpus stores one copy.
        let warehouses: Vec<Warehouse> = (0..3)
            .map(|_| run_scenario(&config, &mut StdRng::seed_from_u64(42)))
            .collect();
        let single = corpus_stats(&warehouses[..1]);
        let corpus = corpus_stats(&warehouses);
        assert_eq!(corpus.logical_nodes, 3 * single.logical_nodes);
        assert_eq!(
            corpus.distinct_nodes, single.distinct_nodes,
            "identical documents must not add distinct stored nodes"
        );
        assert!(corpus.dedup_ratio() > 2.0 * single.dedup_ratio());
        // Differently-seeded runs still share the skeleton and any facts
        // drawn alike, so the corpus stays below the logical sum.
        let mixed: Vec<Warehouse> = (0..3)
            .map(|seed| run_scenario(&config, &mut StdRng::seed_from_u64(seed)))
            .collect();
        let mixed_stats = corpus_stats(&mixed);
        assert!(mixed_stats.distinct_nodes < mixed_stats.logical_nodes);
    }

    #[test]
    fn deletions_do_not_grow_the_event_table_beyond_rounds() {
        let mut rng = StdRng::seed_from_u64(0x99);
        let config = WarehouseConfig {
            services: 2,
            extraction_rounds: 15,
            deletion_ratio: 0.5,
        };
        let warehouse = run_scenario(&config, &mut rng);
        assert!(warehouse.tree.events().len() <= 15);
        assert!(warehouse.log.iter().any(|u| u.is_deletion));
    }
}
