//! Random generation of data trees, prob-trees and queries.

use rand::Rng;

use pxml_core::probtree::ProbTree;
use pxml_core::query::pattern::PatternQuery;
use pxml_events::{Condition, Literal};
use pxml_tree::DataTree;

/// Parameters for random data-tree generation.
#[derive(Clone, Copy, Debug)]
pub struct TreeConfig {
    /// Target number of nodes.
    pub nodes: usize,
    /// Maximum number of children per node.
    pub max_fanout: usize,
    /// Number of distinct labels (`L0`, `L1`, …).
    pub labels: usize,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            nodes: 100,
            max_fanout: 5,
            labels: 4,
        }
    }
}

/// Generates a random unordered labeled tree with exactly `config.nodes`
/// nodes by repeatedly attaching new nodes under uniformly random existing
/// nodes (bounded by `max_fanout`).
pub fn random_tree<R: Rng + ?Sized>(config: &TreeConfig, rng: &mut R) -> DataTree {
    assert!(config.nodes >= 1);
    assert!(config.max_fanout >= 1);
    assert!(config.labels >= 1);
    let label = |rng: &mut R| format!("L{}", rng.gen_range(0..config.labels));
    let mut tree = DataTree::new(label(rng));
    let mut attachable = vec![tree.root()];
    while tree.len() < config.nodes {
        let idx = rng.gen_range(0..attachable.len());
        let parent = attachable[idx];
        let child = tree.add_child(parent, label(rng));
        attachable.push(child);
        if tree.children(parent).len() >= config.max_fanout {
            attachable.swap_remove(idx);
        }
    }
    tree
}

/// Parameters for random prob-tree generation.
#[derive(Clone, Copy, Debug)]
pub struct ProbTreeConfig {
    /// Shape of the underlying data tree.
    pub tree: TreeConfig,
    /// Number of event variables.
    pub events: usize,
    /// Fraction of non-root nodes that carry a condition.
    pub annotation_density: f64,
    /// Maximum number of literals per condition.
    pub max_literals: usize,
}

impl Default for ProbTreeConfig {
    fn default() -> Self {
        ProbTreeConfig {
            tree: TreeConfig::default(),
            events: 8,
            annotation_density: 0.4,
            max_literals: 2,
        }
    }
}

/// Generates a random prob-tree.
pub fn random_probtree<R: Rng + ?Sized>(config: &ProbTreeConfig, rng: &mut R) -> ProbTree {
    let data = random_tree(&config.tree, rng);
    let mut tree = ProbTree::from_data_tree(data, pxml_events::EventTable::new());
    let events: Vec<_> = (0..config.events)
        .map(|_| tree.events_mut().fresh(rng.gen_range(0.05..=0.95)))
        .collect();
    let nodes: Vec<_> = tree.tree().iter().collect();
    for node in nodes {
        if node == tree.tree().root() || events.is_empty() {
            continue;
        }
        if rng.gen_bool(config.annotation_density) {
            let count = rng.gen_range(1..=config.max_literals.max(1));
            let condition = Condition::from_literals((0..count).map(|_| Literal {
                event: events[rng.gen_range(0..events.len())],
                positive: rng.gen_bool(0.5),
            }));
            tree.set_condition(node, condition);
        }
    }
    tree
}

/// Builds a deterministic prob-tree whose relevant events partition into
/// exactly `components` co-occurrence components of `events_per` events
/// each — the many-small-components workload of the factorized world
/// engine (`Σ_c 2^{|C_i|}` shard states vs `2^{components · events_per}`
/// joint assignments).
///
/// Component `i` hangs a group node `G{i}` (always present) under the
/// root; its children chain the component's events pairwise
/// (`e_0 ∧ e_1`, `e_1 ∧ e_2`, …, forcing one co-occurrence component)
/// plus one single-literal child per event, so worlds genuinely vary with
/// every event. All probabilities are ½.
pub fn many_components_probtree(components: usize, events_per: usize) -> ProbTree {
    assert!(events_per >= 1);
    let mut tree = ProbTree::new("R");
    let root = tree.tree().root();
    for i in 0..components {
        let events: Vec<_> = (0..events_per)
            .map(|_| tree.events_mut().fresh(0.5))
            .collect();
        let group = tree.add_child(root, format!("G{i}"), Condition::always());
        for pair in events.windows(2) {
            tree.add_child(
                group,
                "P",
                Condition::from_literals([Literal::pos(pair[0]), Literal::pos(pair[1])]),
            );
        }
        for &event in &events {
            tree.add_child(group, "S", Condition::of(Literal::pos(event)));
        }
    }
    tree
}

/// Generates a random tree-pattern query compatible with the label
/// alphabet of [`random_tree`]: a root constraint plus `extra_nodes`
/// child/descendant steps.
pub fn random_pattern_query<R: Rng + ?Sized>(
    labels: usize,
    extra_nodes: usize,
    rng: &mut R,
) -> PatternQuery {
    let label = |rng: &mut R| format!("L{}", rng.gen_range(0..labels));
    let mut query = PatternQuery::new(Some(&label(rng)));
    let mut nodes = vec![query.root()];
    for _ in 0..extra_nodes {
        let parent = nodes[rng.gen_range(0..nodes.len())];
        let node = if rng.gen_bool(0.5) {
            query.add_child(parent, &label(rng))
        } else {
            query.add_descendant(parent, &label(rng))
        };
        nodes.push(node);
    }
    query
}

#[cfg(test)]
mod tests {
    use super::*;
    use pxml_tree::stats::stats;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xBEEF)
    }

    #[test]
    fn random_tree_has_requested_size_and_fanout() {
        let mut r = rng();
        for nodes in [1usize, 10, 250] {
            let config = TreeConfig {
                nodes,
                max_fanout: 3,
                labels: 2,
            };
            let t = random_tree(&config, &mut r);
            let s = stats(&t);
            assert_eq!(s.nodes, nodes);
            assert!(s.max_fanout <= 3);
            assert!(s.distinct_labels <= 2);
        }
    }

    #[test]
    fn many_components_probtree_has_the_advertised_partition() {
        let tree = many_components_probtree(8, 3);
        assert_eq!(tree.events().len(), 24);
        let engine = pxml_core::WorldEngine::new(&tree);
        assert_eq!(engine.num_relevant(), 24);
        assert_eq!(engine.components().len(), 8);
        assert!(engine.components().iter().all(|c| c.len() == 3));
        // Every single-literal child makes each event world-relevant.
        let single = many_components_probtree(2, 1);
        assert_eq!(pxml_core::WorldEngine::new(&single).components().len(), 2);
    }

    #[test]
    fn random_probtree_respects_annotation_density_bounds() {
        let mut r = rng();
        let config = ProbTreeConfig {
            tree: TreeConfig {
                nodes: 200,
                max_fanout: 4,
                labels: 3,
            },
            events: 6,
            annotation_density: 0.5,
            max_literals: 2,
        };
        let t = random_probtree(&config, &mut r);
        assert_eq!(t.num_nodes(), 200);
        assert_eq!(t.events().len(), 6);
        let annotated = t
            .tree()
            .iter()
            .filter(|&n| !t.condition(n).is_empty())
            .count();
        assert!(annotated > 40 && annotated < 160, "annotated = {annotated}");
        assert!(t.num_literals() <= 2 * annotated);
    }

    #[test]
    fn random_probtree_with_zero_density_is_certain() {
        let mut r = rng();
        let config = ProbTreeConfig {
            annotation_density: 0.0,
            ..ProbTreeConfig::default()
        };
        let t = random_probtree(&config, &mut r);
        assert_eq!(t.num_literals(), 0);
    }

    #[test]
    fn random_queries_have_requested_shape() {
        let mut r = rng();
        let q = random_pattern_query(3, 4, &mut r);
        assert_eq!(q.len(), 5);
    }

    #[test]
    fn generation_is_deterministic_given_a_seed() {
        let config = ProbTreeConfig::default();
        let a = random_probtree(&config, &mut StdRng::seed_from_u64(7));
        let b = random_probtree(&config, &mut StdRng::seed_from_u64(7));
        assert_eq!(a.num_nodes(), b.num_nodes());
        assert_eq!(a.num_literals(), b.num_literals());
    }
}
