//! Sparse multivariate polynomials with degree ≤ 1 in every variable.
//!
//! Characteristic polynomials of normalized DNF formulas (Definition 11)
//! are multilinear: every variable appears with degree at most one, because
//! duplicate literals inside a disjunct are removed. A monomial is
//! therefore a *set* of variables, and a polynomial is a map from variable
//! sets to integer coefficients.
//!
//! Expanding a characteristic polynomial can take exponential time and
//! space (each disjunct with `k` negative literals expands into `2^k`
//! monomials); this type is the exact baseline, and also the witness used
//! to test Lemma 1 against the naive count-equivalence decision.

use std::collections::BTreeMap;

use pxml_events::EventId;

use crate::field::Fp;

/// A multilinear monomial: the sorted set of variables (event ids) it
/// multiplies.
pub type Monomial = Vec<EventId>;

/// A sparse multilinear polynomial with integer (`i128`) coefficients over
/// variables identified by [`EventId`].
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct MPoly {
    /// Map from monomial (sorted variable list) to non-zero coefficient.
    terms: BTreeMap<Monomial, i128>,
}

impl MPoly {
    /// The zero polynomial.
    pub fn zero() -> Self {
        MPoly::default()
    }

    /// The constant polynomial `c`.
    pub fn constant(c: i128) -> Self {
        let mut p = MPoly::zero();
        if c != 0 {
            p.terms.insert(Vec::new(), c);
        }
        p
    }

    /// The polynomial `X_v`.
    pub fn var(v: EventId) -> Self {
        let mut p = MPoly::zero();
        p.terms.insert(vec![v], 1);
        p
    }

    /// The polynomial `1 − X_v` (characteristic-polynomial image of a
    /// negative literal).
    pub fn one_minus_var(v: EventId) -> Self {
        let mut p = MPoly::zero();
        p.terms.insert(Vec::new(), 1);
        p.terms.insert(vec![v], -1);
        p
    }

    /// Whether this is the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    /// Number of monomials with non-zero coefficient.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// The coefficient of a monomial (0 if absent). The monomial need not
    /// be sorted.
    pub fn coeff(&self, monomial: &[EventId]) -> i128 {
        let mut m = monomial.to_vec();
        m.sort_unstable();
        m.dedup();
        self.terms.get(&m).copied().unwrap_or(0)
    }

    /// Iterates over the (monomial, coefficient) pairs.
    pub fn terms(&self) -> impl Iterator<Item = (&Monomial, i128)> + '_ {
        self.terms.iter().map(|(m, &c)| (m, c))
    }

    fn insert_term(&mut self, monomial: Monomial, coeff: i128) {
        if coeff == 0 {
            return;
        }
        let entry = self.terms.entry(monomial).or_insert(0);
        *entry += coeff;
        if *entry == 0 {
            // Remove cancelled terms to keep equality syntactic.
            let key: Vec<EventId> = self
                .terms
                .iter()
                .find(|(_, &c)| c == 0)
                .map(|(k, _)| k.clone())
                .expect("just inserted");
            self.terms.remove(&key);
        }
    }

    /// Polynomial addition.
    pub fn add(&self, other: &MPoly) -> MPoly {
        let mut out = self.clone();
        for (m, c) in other.terms() {
            out.insert_term(m.clone(), c);
        }
        out
    }

    /// Polynomial subtraction.
    pub fn sub(&self, other: &MPoly) -> MPoly {
        let mut out = self.clone();
        for (m, c) in other.terms() {
            out.insert_term(m.clone(), -c);
        }
        out
    }

    /// Polynomial multiplication. Multiplying two terms that share a
    /// variable keeps degree 1 in that variable (X² = X never arises in
    /// characteristic polynomials because a disjunct never multiplies `X_i`
    /// by `X_i`, and `X_i · (1 − X_i)` only arises for inconsistent
    /// disjuncts, which Definition 11 removes before expansion).
    ///
    /// # Panics
    /// Panics if the two factors share a variable (which would break the
    /// multilinear invariant).
    pub fn mul(&self, other: &MPoly) -> MPoly {
        let mut out = MPoly::zero();
        for (ma, ca) in self.terms() {
            for (mb, cb) in other.terms() {
                let mut m = ma.clone();
                for v in mb {
                    assert!(
                        !m.contains(v),
                        "multilinear multiplication would square variable {v:?}"
                    );
                    m.push(*v);
                }
                m.sort_unstable();
                out.insert_term(m, ca * cb);
            }
        }
        out
    }

    /// Evaluates the polynomial over 𝔽_p at the given point. `point(v)`
    /// must return the value of variable `v`.
    pub fn eval_fp(&self, point: &dyn Fn(EventId) -> Fp) -> Fp {
        let mut acc = Fp::ZERO;
        for (m, c) in self.terms() {
            let mut term = Fp::from_i128(c);
            for &v in m {
                term = term.mul(point(v));
            }
            acc = acc.add(term);
        }
        acc
    }

    /// Evaluates the polynomial over the integers at a 0/1 point. This is
    /// exactly "the number of disjuncts satisfied by the valuation" when
    /// the polynomial is a characteristic polynomial (proof of Lemma 1).
    pub fn eval_01(&self, point: &dyn Fn(EventId) -> bool) -> i128 {
        let mut acc: i128 = 0;
        for (m, c) in self.terms() {
            if m.iter().all(|&v| point(v)) {
                acc += c;
            }
        }
        acc
    }

    /// The total degree of the polynomial (size of the largest monomial).
    pub fn degree(&self) -> usize {
        self.terms.keys().map(Vec::len).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(i: usize) -> EventId {
        EventId::from_index(i)
    }

    #[test]
    fn constants_and_vars() {
        assert!(MPoly::zero().is_zero());
        assert!(MPoly::constant(0).is_zero());
        assert_eq!(MPoly::constant(3).coeff(&[]), 3);
        assert_eq!(MPoly::var(e(2)).coeff(&[e(2)]), 1);
        assert_eq!(MPoly::var(e(2)).coeff(&[]), 0);
    }

    #[test]
    fn one_minus_var_expansion() {
        let p = MPoly::one_minus_var(e(0));
        assert_eq!(p.coeff(&[]), 1);
        assert_eq!(p.coeff(&[e(0)]), -1);
        assert_eq!(p.num_terms(), 2);
    }

    #[test]
    fn addition_cancels_terms() {
        let p = MPoly::var(e(0)).add(&MPoly::constant(2));
        let q = MPoly::var(e(0)).sub(&MPoly::constant(2));
        let sum = p.add(&q);
        assert_eq!(sum.coeff(&[e(0)]), 2);
        assert_eq!(sum.coeff(&[]), 0);
        let diff = p.sub(&p);
        assert!(diff.is_zero());
    }

    #[test]
    fn multiplication_expands_products() {
        // (1 - X0)(1 - X1) = 1 - X0 - X1 + X0X1
        let p = MPoly::one_minus_var(e(0)).mul(&MPoly::one_minus_var(e(1)));
        assert_eq!(p.coeff(&[]), 1);
        assert_eq!(p.coeff(&[e(0)]), -1);
        assert_eq!(p.coeff(&[e(1)]), -1);
        assert_eq!(p.coeff(&[e(0), e(1)]), 1);
        assert_eq!(p.degree(), 2);
    }

    #[test]
    #[should_panic(expected = "square variable")]
    fn multiplication_rejects_shared_variables() {
        MPoly::var(e(0)).mul(&MPoly::var(e(0)));
    }

    #[test]
    fn eval_01_counts_like_characteristic_polynomial() {
        // X0 + X0·X1 evaluated at (1,1) is 2, at (1,0) is 1, at (0,*) is 0.
        let p = MPoly::var(e(0)).add(&MPoly::var(e(0)).mul(&MPoly::var(e(1))));
        assert_eq!(p.eval_01(&|_| true), 2);
        assert_eq!(p.eval_01(&|v| v == e(0)), 1);
        assert_eq!(p.eval_01(&|_| false), 0);
    }

    #[test]
    fn eval_fp_matches_eval_01_on_01_points() {
        let p = MPoly::one_minus_var(e(0))
            .mul(&MPoly::var(e(1)))
            .add(&MPoly::constant(5));
        for bits in 0..4u32 {
            let point01 = move |v: EventId| (bits >> v.index()) & 1 == 1;
            let pointfp = move |v: EventId| {
                if (bits >> v.index()) & 1 == 1 {
                    Fp::ONE
                } else {
                    Fp::ZERO
                }
            };
            let exact = p.eval_01(&point01);
            assert_eq!(p.eval_fp(&pointfp), Fp::from_i128(exact));
        }
    }

    #[test]
    fn coeff_accepts_unsorted_monomials() {
        let p = MPoly::var(e(3)).mul(&MPoly::var(e(1)));
        assert_eq!(p.coeff(&[e(3), e(1)]), 1);
        assert_eq!(p.coeff(&[e(1), e(3)]), 1);
    }
}
