//! Characteristic polynomials of DNF formulas (Definition 11).
//!
//! Given a DNF formula `ψ`, its characteristic polynomial `P_ψ` is obtained
//! by (after removing inconsistent disjuncts) replacing positive literals
//! `X_i` by themselves, negative literals `¬X_i` by `(1 − X_i)`,
//! conjunction by product and disjunction by sum. The key facts used by the
//! paper:
//!
//! * the value of `P_ψ` at a 0/1 point equals the number of disjuncts the
//!   corresponding valuation satisfies (proof of Lemma 1), and
//! * `ψ ≡⁺ ψ'` (count-equivalence) iff `P_ψ = P_ψ'` (Lemma 1),
//!
//! which reduces count-equivalence to polynomial identity testing.
//!
//! Two interfaces are provided: [`characteristic_polynomial`] expands the
//! polynomial explicitly (exponential in the number of negative literals
//! per disjunct — exact baseline), and [`eval_characteristic`] evaluates it
//! at a field point directly from the DNF in linear time, which is all the
//! Schwartz–Zippel test needs.

use pxml_events::{Condition, Dnf, EventId};

use crate::field::Fp;
use crate::mpoly::MPoly;

/// Explicitly expands the characteristic polynomial `P_ψ` of a DNF formula.
///
/// Worst-case exponential in the number of negative literals per disjunct;
/// use [`eval_characteristic`] inside randomized tests instead.
pub fn characteristic_polynomial(dnf: &Dnf) -> MPoly {
    let mut acc = MPoly::zero();
    for disjunct in dnf.normalized().disjuncts() {
        acc = acc.add(&condition_polynomial(disjunct));
    }
    acc
}

/// The characteristic polynomial of a single (consistent) conjunction.
pub fn condition_polynomial(condition: &Condition) -> MPoly {
    let mut acc = MPoly::constant(1);
    for literal in condition.literals() {
        let factor = if literal.positive {
            MPoly::var(literal.event)
        } else {
            MPoly::one_minus_var(literal.event)
        };
        acc = acc.mul(&factor);
    }
    acc
}

/// Evaluates `P_ψ` at the field point `point` **without expanding** the
/// polynomial: for each consistent disjunct, multiply `point(X_i)` for
/// positive literals and `1 − point(X_i)` for negative ones, then sum.
/// Linear in the number of literals of the formula.
pub fn eval_characteristic(dnf: &Dnf, point: &dyn Fn(EventId) -> Fp) -> Fp {
    let mut acc = Fp::ZERO;
    for disjunct in dnf.disjuncts() {
        if !disjunct.is_consistent() {
            continue;
        }
        let mut term = Fp::ONE;
        for literal in disjunct.literals() {
            let x = point(literal.event);
            term = term.mul(if literal.positive { x } else { x.one_minus() });
        }
        acc = acc.add(term);
    }
    acc
}

/// Evaluates `P_ψ − P_ψ'` at a field point, directly from the two DNFs.
pub fn eval_characteristic_difference(lhs: &Dnf, rhs: &Dnf, point: &dyn Fn(EventId) -> Fp) -> Fp {
    eval_characteristic(lhs, point).sub(eval_characteristic(rhs, point))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pxml_events::Literal;

    // pxml_events does not expose a convenience constructor for enumerating
    // valuations over n events with the default guard, so define one here.
    mod helpers {
        use pxml_events::valuation::{all_valuations, Valuation};
        pub(super) fn vals(n: usize) -> Vec<Valuation> {
            all_valuations(n, 20).unwrap().collect()
        }
    }

    fn e(i: usize) -> EventId {
        EventId::from_index(i)
    }

    #[test]
    fn single_positive_literal() {
        let dnf = Dnf::of(Condition::of(Literal::pos(e(0))));
        let p = characteristic_polynomial(&dnf);
        assert_eq!(p.coeff(&[e(0)]), 1);
        assert_eq!(p.num_terms(), 1);
    }

    #[test]
    fn negative_literal_expands_to_one_minus_x() {
        let dnf = Dnf::of(Condition::of(Literal::neg(e(0))));
        let p = characteristic_polynomial(&dnf);
        assert_eq!(p.coeff(&[]), 1);
        assert_eq!(p.coeff(&[e(0)]), -1);
    }

    #[test]
    fn inconsistent_disjunct_contributes_zero() {
        let inconsistent = Condition::from_literals([Literal::pos(e(0)), Literal::neg(e(0))]);
        let dnf = Dnf::from_disjuncts([inconsistent]);
        assert!(characteristic_polynomial(&dnf).is_zero());
        assert_eq!(eval_characteristic(&dnf, &|_| Fp::new(7)), Fp::ZERO);
    }

    #[test]
    fn empty_condition_is_the_constant_one() {
        let dnf = Dnf::of(Condition::always());
        let p = characteristic_polynomial(&dnf);
        assert_eq!(p.coeff(&[]), 1);
        assert_eq!(eval_characteristic(&dnf, &|_| Fp::new(999)), Fp::ONE);
    }

    #[test]
    fn lemma1_forward_direction_on_example() {
        // A ∨ (A ∧ B) vs A: equivalent but not count-equivalent, so the
        // characteristic polynomials must differ.
        let lhs = Dnf::from_disjuncts([
            Condition::of(Literal::pos(e(0))),
            Condition::from_literals([Literal::pos(e(0)), Literal::pos(e(1))]),
        ]);
        let rhs = Dnf::of(Condition::of(Literal::pos(e(0))));
        assert_ne!(
            characteristic_polynomial(&lhs),
            characteristic_polynomial(&rhs)
        );
    }

    #[test]
    fn value_at_01_point_counts_satisfied_disjuncts() {
        // Proof of Lemma 1: P_ψ(ν) = number of disjuncts satisfied by ν.
        let dnf = Dnf::from_disjuncts([
            Condition::from_literals([Literal::pos(e(0)), Literal::neg(e(1))]),
            Condition::of(Literal::pos(e(2))),
            Condition::of(Literal::pos(e(0))),
        ]);
        let p = characteristic_polynomial(&dnf);
        for v in helpers::vals(3) {
            let expected = dnf.count_satisfied(&v) as i128;
            let got = p.eval_01(&|ev| v.get(ev));
            assert_eq!(got, expected, "valuation {v:?}");
        }
    }

    #[test]
    fn eval_characteristic_agrees_with_expansion_at_random_like_points() {
        let dnf = Dnf::from_disjuncts([
            Condition::from_literals([Literal::pos(e(0)), Literal::neg(e(1)), Literal::neg(e(2))]),
            Condition::from_literals([Literal::neg(e(0)), Literal::pos(e(2))]),
        ]);
        let p = characteristic_polynomial(&dnf);
        // A few deterministic "random" points.
        for seed in [1u64, 17, 123_456, 987_654_321] {
            let point = move |v: EventId| Fp::new(seed.wrapping_mul(v.index() as u64 + 3) + 11);
            assert_eq!(p.eval_fp(&point), eval_characteristic(&dnf, &point));
        }
    }

    #[test]
    fn difference_of_identical_formulas_is_zero_everywhere() {
        let dnf = Dnf::from_disjuncts([
            Condition::from_literals([Literal::pos(e(0)), Literal::neg(e(1))]),
            Condition::of(Literal::pos(e(1))),
        ]);
        for x in [0u64, 1, 2, 55_555] {
            let point = move |v: EventId| Fp::new(x + v.index() as u64);
            assert_eq!(eval_characteristic_difference(&dnf, &dnf, &point), Fp::ZERO);
        }
    }

    #[test]
    fn count_equivalent_reorderings_have_equal_polynomials() {
        let d1 = Condition::from_literals([Literal::pos(e(0)), Literal::neg(e(1))]);
        let d2 = Condition::of(Literal::pos(e(2)));
        let a = Dnf::from_disjuncts([d1.clone(), d2.clone()]);
        let b = Dnf::from_disjuncts([d2, d1]);
        assert_eq!(characteristic_polynomial(&a), characteristic_polynomial(&b));
    }
}
