//! Randomized count-equivalence testing (Schwartz–Zippel).
//!
//! Theorem 2 of the paper tests whether two DNF formulas are
//! count-equivalent by evaluating the difference of their characteristic
//! polynomials at `m` random points with coordinates drawn from a finite
//! set `S`. By the Schwartz–Zippel lemma, a non-zero polynomial of total
//! degree `d` evaluates to zero at such a point with probability at most
//! `d / |S|`, so `m` independent trials make the one-sided error at most
//! `(d / |S|)^m`.
//!
//! The test never errs when the formulas *are* count-equivalent (it always
//! answers `true`), matching the co-RP guarantee.

use rand::Rng;

use pxml_events::{Dnf, EventId};

use crate::charpoly::eval_characteristic_difference;
use crate::field::Fp;

/// Parameters of the randomized count-equivalence test.
#[derive(Clone, Copy, Debug)]
pub struct ZippelConfig {
    /// Number of random evaluation points (`m` in Figure 3).
    pub trials: usize,
    /// Size of the sample set `S ⊆ 𝔽_p` coordinates are drawn from.
    pub sample_set_size: u64,
}

impl Default for ZippelConfig {
    fn default() -> Self {
        // With degree ≤ a few thousand literals and |S| = 2^32, a single
        // trial already has error < 10^-6; we default to 2 trials for the
        // same "overkill" margin the paper's parameter discussion implies.
        ZippelConfig {
            trials: 2,
            sample_set_size: 1 << 32,
        }
    }
}

impl ZippelConfig {
    /// Config sized to guarantee one-sided error at most `1/2` for formulas
    /// with at most `num_literals` literals, matching the bound used in the
    /// proof of Theorem 2 (a single trial with `|S| ≥ 2·d` suffices;
    /// we round up generously).
    pub fn for_error_half(num_literals: usize) -> Self {
        ZippelConfig {
            trials: 1,
            sample_set_size: (num_literals.max(1) as u64) * 4,
        }
    }

    /// Upper bound on the probability that the test wrongly answers
    /// "count-equivalent" for formulas that are not, given the total number
    /// of literals (an upper bound on the degree of the difference
    /// polynomial).
    pub fn error_bound(&self, num_literals: usize) -> f64 {
        let per_trial = (num_literals as f64) / (self.sample_set_size as f64);
        per_trial.min(1.0).powi(self.trials as i32)
    }
}

/// Randomized test for count-equivalence of two DNF formulas
/// (Definition 10 / Lemma 1).
///
/// * Returns `true` whenever the formulas are count-equivalent.
/// * Returns `false` with probability at least
///   `1 − config.error_bound(...)` when they are not.
pub fn count_equivalent_randomized<R: Rng + ?Sized>(
    lhs: &Dnf,
    rhs: &Dnf,
    config: &ZippelConfig,
    rng: &mut R,
) -> bool {
    // Variables appearing in either formula; all other coordinates are
    // irrelevant to the difference polynomial.
    let mut vars: Vec<EventId> = lhs.events();
    vars.extend(rhs.events());
    vars.sort_unstable();
    vars.dedup();

    for _ in 0..config.trials.max(1) {
        // Draw one random point; store coordinates indexed by position in
        // `vars`.
        let coords: Vec<Fp> = vars
            .iter()
            .map(|_| Fp::new(rng.gen_range(0..config.sample_set_size)))
            .collect();
        let point = |event: EventId| -> Fp {
            match vars.binary_search(&event) {
                Ok(idx) => coords[idx],
                // Events not mentioned in either formula cannot be queried
                // by the evaluation, but be defensive.
                Err(_) => Fp::ZERO,
            }
        };
        if eval_characteristic_difference(lhs, rhs, &point) != Fp::ZERO {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use pxml_events::{Condition, Literal};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn e(i: usize) -> EventId {
        EventId::from_index(i)
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x5EED)
    }

    #[test]
    fn identical_formulas_always_pass() {
        let dnf = Dnf::from_disjuncts([
            Condition::from_literals([Literal::pos(e(0)), Literal::neg(e(1))]),
            Condition::of(Literal::pos(e(2))),
        ]);
        let mut r = rng();
        for _ in 0..50 {
            assert!(count_equivalent_randomized(
                &dnf,
                &dnf,
                &ZippelConfig::default(),
                &mut r
            ));
        }
    }

    #[test]
    fn reordered_disjuncts_pass() {
        let d1 = Condition::from_literals([Literal::pos(e(0)), Literal::neg(e(1))]);
        let d2 = Condition::of(Literal::pos(e(1)));
        let a = Dnf::from_disjuncts([d1.clone(), d2.clone()]);
        let b = Dnf::from_disjuncts([d2, d1]);
        let mut r = rng();
        assert!(count_equivalent_randomized(
            &a,
            &b,
            &ZippelConfig::default(),
            &mut r
        ));
    }

    #[test]
    fn equivalent_but_not_count_equivalent_is_rejected() {
        // A ∨ (A ∧ B) vs A.
        let lhs = Dnf::from_disjuncts([
            Condition::of(Literal::pos(e(0))),
            Condition::from_literals([Literal::pos(e(0)), Literal::pos(e(1))]),
        ]);
        let rhs = Dnf::of(Condition::of(Literal::pos(e(0))));
        let mut r = rng();
        // With |S| = 2^32 the per-trial failure probability is ~2/2^32, so
        // 20 repetitions should all answer false.
        for _ in 0..20 {
            assert!(!count_equivalent_randomized(
                &lhs,
                &rhs,
                &ZippelConfig::default(),
                &mut r
            ));
        }
    }

    #[test]
    fn disjoint_variable_sets_are_rejected() {
        let lhs = Dnf::of(Condition::of(Literal::pos(e(0))));
        let rhs = Dnf::of(Condition::of(Literal::pos(e(5))));
        let mut r = rng();
        assert!(!count_equivalent_randomized(
            &lhs,
            &rhs,
            &ZippelConfig::default(),
            &mut r
        ));
    }

    #[test]
    fn agreement_with_naive_decision_on_random_formulas() {
        use rand::Rng as _;
        let mut r = rng();
        let num_events = 5usize;
        for _ in 0..200 {
            let random_dnf = |r: &mut StdRng| {
                let disjuncts = r.gen_range(0..4usize);
                Dnf::from_disjuncts((0..disjuncts).map(|_| {
                    let lits = r.gen_range(1..4usize);
                    Condition::from_literals((0..lits).map(|_| Literal {
                        event: e(r.gen_range(0..num_events)),
                        positive: r.gen_bool(0.5),
                    }))
                }))
            };
            let a = random_dnf(&mut r);
            let b = random_dnf(&mut r);
            let naive = a.count_equivalent_naive(&b, num_events, 20).unwrap();
            let randomized = count_equivalent_randomized(&a, &b, &ZippelConfig::default(), &mut r);
            // One-sided error: randomized == true whenever naive == true;
            // with the default config the reverse direction failing is
            // astronomically unlikely, so assert exact agreement.
            assert_eq!(naive, randomized, "a={a:?} b={b:?}");
        }
    }

    #[test]
    fn error_bound_shrinks_with_trials_and_sample_size() {
        let small = ZippelConfig {
            trials: 1,
            sample_set_size: 100,
        };
        let big = ZippelConfig {
            trials: 3,
            sample_set_size: 10_000,
        };
        assert!(big.error_bound(50) < small.error_bound(50));
        assert!(small.error_bound(50) <= 0.5);
        assert!(ZippelConfig::for_error_half(50).error_bound(50) <= 0.5);
    }

    #[test]
    fn empty_formulas_are_count_equivalent() {
        let mut r = rng();
        assert!(count_equivalent_randomized(
            &Dnf::none(),
            &Dnf::none(),
            &ZippelConfig::default(),
            &mut r
        ));
        // false vs an inconsistent-only DNF: both characteristic
        // polynomials are zero, and indeed both formulas are unsatisfiable
        // with 0 disjuncts satisfied everywhere... except the inconsistent
        // disjunct never counts, so they are count-equivalent.
        let inconsistent = Dnf::of(Condition::from_literals([
            Literal::pos(e(0)),
            Literal::neg(e(0)),
        ]));
        assert!(count_equivalent_randomized(
            &Dnf::none(),
            &inconsistent,
            &ZippelConfig::default(),
            &mut r
        ));
    }
}
