//! # pxml-poly — polynomial identity testing for count-equivalence
//!
//! Theorem 2 of Senellart & Abiteboul (PODS 2007) gives a co-RP decision
//! procedure for structural equivalence of prob-trees. Its workhorse is
//! Lemma 1: two DNF formulas are *count-equivalent* iff their
//! *characteristic polynomials* (Definition 11) are equal as multivariate
//! polynomials, which can be tested probabilistically by evaluating the
//! difference at random points (the Schwartz–Zippel lemma).
//!
//! This crate provides:
//!
//! * [`field::Fp`] — arithmetic in the prime field 𝔽_p with
//!   p = 2⁶¹ − 1 (a Mersenne prime, so reduction is cheap and the field is
//!   comfortably larger than any sample-set size the algorithm needs).
//! * [`mpoly::MPoly`] — an explicit sparse multivariate polynomial type
//!   (degree ≤ 1 in each variable), used for the *exact* — exponential in
//!   the worst case — baseline and for testing Lemma 1 itself.
//! * [`charpoly`] — construction and direct evaluation of characteristic
//!   polynomials of DNF formulas.
//! * [`zippel`] — the randomized count-equivalence test with the error
//!   bound tracking of Theorem 2.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod charpoly;
pub mod field;
pub mod mpoly;
pub mod zippel;

pub use charpoly::{characteristic_polynomial, eval_characteristic};
pub use field::Fp;
pub use zippel::{count_equivalent_randomized, ZippelConfig};
