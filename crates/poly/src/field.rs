//! Arithmetic in the prime field 𝔽_p, p = 2⁶¹ − 1.
//!
//! The Schwartz–Zippel test needs to evaluate polynomials with integer
//! coefficients at random points without overflow or rounding. Working
//! modulo a large prime keeps every value in one machine word; since the
//! characteristic polynomials have integer coefficients, equality over ℤ
//! implies equality mod p, and a difference that is non-zero over ℤ is
//! non-zero mod p unless p divides every coefficient — impossible here
//! because coefficients are bounded by the number of disjuncts (≪ p).

/// The Mersenne prime 2⁶¹ − 1.
pub const P: u64 = (1u64 << 61) - 1;

/// An element of 𝔽_p with p = 2⁶¹ − 1.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct Fp(u64);

#[allow(clippy::should_implement_trait)] // `+ - * neg` operator impls are also provided below
impl Fp {
    /// The additive identity.
    pub const ZERO: Fp = Fp(0);
    /// The multiplicative identity.
    pub const ONE: Fp = Fp(1);

    /// Builds a field element from a non-negative integer.
    #[inline]
    pub fn new(value: u64) -> Self {
        Fp(value % P)
    }

    /// Builds a field element from a signed integer (negative values map to
    /// their residue).
    #[inline]
    pub fn from_i64(value: i64) -> Self {
        let m = value.rem_euclid(P as i64) as u64;
        Fp(m)
    }

    /// Builds a field element from a (possibly large) signed integer.
    pub fn from_i128(value: i128) -> Self {
        let m = value.rem_euclid(P as i128) as u64;
        Fp(m)
    }

    /// The canonical representative in `[0, p)`.
    #[inline]
    pub fn value(self) -> u64 {
        self.0
    }

    /// Addition in 𝔽_p.
    #[inline]
    pub fn add(self, other: Fp) -> Fp {
        let sum = self.0 + other.0; // < 2^62, no overflow
        Fp(if sum >= P { sum - P } else { sum })
    }

    /// Subtraction in 𝔽_p.
    #[inline]
    pub fn sub(self, other: Fp) -> Fp {
        Fp(if self.0 >= other.0 {
            self.0 - other.0
        } else {
            self.0 + P - other.0
        })
    }

    /// Negation in 𝔽_p.
    #[inline]
    pub fn neg(self) -> Fp {
        if self.0 == 0 {
            Fp(0)
        } else {
            Fp(P - self.0)
        }
    }

    /// Multiplication in 𝔽_p.
    #[inline]
    pub fn mul(self, other: Fp) -> Fp {
        let prod = (self.0 as u128) * (other.0 as u128);
        Fp((prod % (P as u128)) as u64)
    }

    /// Exponentiation by squaring.
    pub fn pow(self, mut exp: u64) -> Fp {
        let mut base = self;
        let mut acc = Fp::ONE;
        while exp > 0 {
            if exp & 1 == 1 {
                acc = acc.mul(base);
            }
            base = base.mul(base);
            exp >>= 1;
        }
        acc
    }

    /// Multiplicative inverse (Fermat's little theorem).
    ///
    /// # Panics
    /// Panics on zero.
    pub fn inv(self) -> Fp {
        assert!(self.0 != 0, "division by zero in Fp");
        self.pow(P - 2)
    }

    /// `1 − self`, the evaluation of a negative literal `(1 − X_i)`.
    #[inline]
    pub fn one_minus(self) -> Fp {
        Fp::ONE.sub(self)
    }
}

impl std::ops::Add for Fp {
    type Output = Fp;
    fn add(self, rhs: Fp) -> Fp {
        Fp::add(self, rhs)
    }
}

impl std::ops::Sub for Fp {
    type Output = Fp;
    fn sub(self, rhs: Fp) -> Fp {
        Fp::sub(self, rhs)
    }
}

impl std::ops::Mul for Fp {
    type Output = Fp;
    fn mul(self, rhs: Fp) -> Fp {
        Fp::mul(self, rhs)
    }
}

impl std::ops::Neg for Fp {
    type Output = Fp;
    fn neg(self) -> Fp {
        Fp::neg(self)
    }
}

impl std::fmt::Display for Fp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addition_wraps_around_p() {
        let a = Fp::new(P - 1);
        let b = Fp::new(5);
        assert_eq!(a.add(b).value(), 4);
    }

    #[test]
    fn subtraction_and_negation() {
        let a = Fp::new(3);
        let b = Fp::new(10);
        assert_eq!(a.sub(b).value(), P - 7);
        assert_eq!(b.neg().add(b), Fp::ZERO);
        assert_eq!(Fp::ZERO.neg(), Fp::ZERO);
    }

    #[test]
    fn multiplication_large_operands() {
        let a = Fp::new(P - 2);
        let b = Fp::new(P - 3);
        // (p-2)(p-3) = p^2 -5p + 6 ≡ 6 (mod p)
        assert_eq!(a.mul(b).value(), 6);
    }

    #[test]
    fn from_signed_values() {
        assert_eq!(Fp::from_i64(-1).value(), P - 1);
        assert_eq!(Fp::from_i128(-(P as i128) - 5).value(), P - 5);
        assert_eq!(Fp::from_i64(42).value(), 42);
    }

    #[test]
    fn pow_and_inverse() {
        let a = Fp::new(123_456_789);
        assert_eq!(a.pow(0), Fp::ONE);
        assert_eq!(a.pow(1), a);
        assert_eq!(a.mul(a.inv()), Fp::ONE);
        // Fermat: a^(p-1) = 1.
        assert_eq!(a.pow(P - 1), Fp::ONE);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn inverse_of_zero_panics() {
        Fp::ZERO.inv();
    }

    #[test]
    fn one_minus() {
        assert_eq!(Fp::new(1).one_minus(), Fp::ZERO);
        assert_eq!(Fp::ZERO.one_minus(), Fp::ONE);
        assert_eq!(Fp::new(7).one_minus().add(Fp::new(7)), Fp::ONE);
    }

    #[test]
    fn operator_overloads_match_methods() {
        let a = Fp::new(11);
        let b = Fp::new(13);
        assert_eq!(a + b, a.add(b));
        assert_eq!(a - b, a.sub(b));
        assert_eq!(a * b, a.mul(b));
        assert_eq!(-a, a.neg());
    }

    #[test]
    fn field_axioms_on_samples() {
        let xs = [
            Fp::new(0),
            Fp::new(1),
            Fp::new(17),
            Fp::new(P - 1),
            Fp::new(1 << 40),
        ];
        for &a in &xs {
            for &b in &xs {
                assert_eq!(a + b, b + a);
                assert_eq!(a * b, b * a);
                for &c in &xs {
                    assert_eq!((a + b) + c, a + (b + c));
                    assert_eq!(a * (b + c), a * b + a * c);
                }
            }
        }
    }
}
