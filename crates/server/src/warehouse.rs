//! The warehouse: a registry of named p-documents behind epoch snapshots,
//! with per-document maintenance hubs and O(1) scenario branches.
//!
//! ## Concurrency discipline
//!
//! Every document lives in a cell with three locks, each held briefly and
//! never nested the other way around:
//!
//! 1. a **writer mutex** serializing committers (so optimistic staging
//!    never loses a race inside one warehouse);
//! 2. a **document `RwLock`**: readers (snapshots, view serves) hold it
//!    shared; a commit holds it shared while *staging* the expensive
//!    engine step and exclusively only for the cheap diff-and-swap of
//!    [`pxml_core::Document::commit_staged`];
//! 3. the hub's internal per-view locks (see [`crate::hub`]).
//!
//! Because every committed epoch is an immutable `Arc<ProbTree>`, a
//! [`Snapshot`] outlives any number of subsequent commits unchanged —
//! readers pin an epoch instead of blocking writers (and vice versa).

use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex, RwLock};

use pxml_core::query::Query;
use pxml_core::update::{ProbabilisticUpdate, UpdateScript};
use pxml_core::{
    AnswerSet, Document, Epoch, ProbTree, QueryEngine, StageConflict, UpdateDelta, UpdateEngine,
    DEFAULT_DELTA_LOG_CAPACITY,
};
use pxml_events::{EventId, Lineage, Possibility};
use pxml_tree::Semantics;

use crate::hub::{HubStats, MaintenanceHub};

/// Why a warehouse operation failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServerError {
    /// No document registered under this name.
    UnknownDocument(String),
    /// A document is already registered under this name.
    DuplicateDocument(String),
    /// The document has no view registered under this name.
    UnknownView(String),
    /// The document already has a view registered under this name.
    DuplicateView(String),
    /// A staged step lost a commit race (should not happen through the
    /// warehouse's own serialized write path; surfaced for completeness).
    Conflict(StageConflict),
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::UnknownDocument(name) => write!(f, "unknown document {name:?}"),
            ServerError::DuplicateDocument(name) => {
                write!(f, "document {name:?} is already registered")
            }
            ServerError::UnknownView(name) => write!(f, "unknown view {name:?}"),
            ServerError::DuplicateView(name) => write!(f, "view {name:?} is already registered"),
            ServerError::Conflict(conflict) => write!(f, "commit conflict: {conflict}"),
        }
    }
}

impl std::error::Error for ServerError {}

/// An immutable reader pin: the tree of one committed epoch. Holding a
/// snapshot never blocks writers, and no later commit can change what it
/// sees — commits swap a fresh `Arc`, they never mutate the held tree.
#[derive(Clone, Debug)]
pub struct Snapshot {
    /// The epoch this snapshot pins.
    pub epoch: Epoch,
    /// The epoch's tree.
    pub tree: Arc<ProbTree>,
}

/// One document's cell: the versioned document, its view hub, and the
/// writer-serialization mutex.
struct DocCell {
    doc: RwLock<Document>,
    hub: MaintenanceHub,
    write: Mutex<()>,
}

/// The difference between two branches' answer sets under one query,
/// keyed by the canonical form of each answer tree (multiset semantics,
/// so node identities — which diverge across branches — never matter).
#[derive(Clone, Debug, Default)]
pub struct BranchDiff {
    /// Canonical answers present only in the left branch.
    pub only_left: Vec<String>,
    /// Canonical answers present only in the right branch.
    pub only_right: Vec<String>,
    /// Canonical answers present in both but with shifted expected
    /// multiplicity: `(canonical, left, right)`.
    pub shifted: Vec<(String, f64, f64)>,
    /// Canonical answers whose expected multiplicity agrees.
    pub unchanged: usize,
}

impl BranchDiff {
    /// `true` when the two branches answer the query identically.
    pub fn is_empty(&self) -> bool {
        self.only_left.is_empty() && self.only_right.is_empty() && self.shifted.is_empty()
    }
}

/// The concurrent p-document warehouse. See the [module docs](self).
pub struct Warehouse {
    docs: RwLock<BTreeMap<String, Arc<DocCell>>>,
    update_engine: UpdateEngine,
    query_engine: QueryEngine,
    log_capacity: usize,
}

impl Default for Warehouse {
    fn default() -> Self {
        Warehouse::with_log_capacity(DEFAULT_DELTA_LOG_CAPACITY)
    }
}

impl Warehouse {
    /// An empty warehouse with the default per-document delta-log
    /// capacity.
    pub fn new() -> Self {
        Warehouse::default()
    }

    /// An empty warehouse whose documents keep `log_capacity` pending
    /// deltas — how far behind a view may fall before its maintenance
    /// degrades to a full re-prepare.
    pub fn with_log_capacity(log_capacity: usize) -> Self {
        Warehouse {
            docs: RwLock::new(BTreeMap::new()),
            update_engine: UpdateEngine::new(),
            query_engine: QueryEngine::new(),
            log_capacity,
        }
    }

    /// A warehouse configured from the environment:
    /// `PXML_SERVER_LOG_CAPACITY` overrides the delta-log capacity
    /// (best-effort, like the world engine's `from_env`).
    pub fn from_env() -> Self {
        let capacity =
            pxml_core::config::env::parse_lenient(pxml_core::config::env::SERVER_LOG_CAPACITY)
                .unwrap_or(DEFAULT_DELTA_LOG_CAPACITY);
        Warehouse::with_log_capacity(capacity)
    }

    /// Registers `tree` as a fresh document under `name`.
    pub fn register(&self, name: &str, tree: ProbTree) -> Result<(), ServerError> {
        self.register_document(name, Document::with_log_capacity(tree, self.log_capacity))
    }

    fn register_document(&self, name: &str, doc: Document) -> Result<(), ServerError> {
        let mut docs = self.docs.write().expect("warehouse registry poisoned");
        if docs.contains_key(name) {
            return Err(ServerError::DuplicateDocument(name.to_owned()));
        }
        docs.insert(
            name.to_owned(),
            Arc::new(DocCell {
                doc: RwLock::new(doc),
                hub: MaintenanceHub::new(),
                write: Mutex::new(()),
            }),
        );
        Ok(())
    }

    fn cell(&self, name: &str) -> Result<Arc<DocCell>, ServerError> {
        self.docs
            .read()
            .expect("warehouse registry poisoned")
            .get(name)
            .cloned()
            .ok_or_else(|| ServerError::UnknownDocument(name.to_owned()))
    }

    /// The registered document names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.docs
            .read()
            .expect("warehouse registry poisoned")
            .keys()
            .cloned()
            .collect()
    }

    /// The current epoch of `name`.
    pub fn epoch(&self, name: &str) -> Result<Epoch, ServerError> {
        let cell = self.cell(name)?;
        let doc = cell.doc.read().expect("document lock poisoned");
        Ok(doc.epoch())
    }

    /// Pins the current epoch of `name` as an immutable [`Snapshot`].
    pub fn snapshot(&self, name: &str) -> Result<Snapshot, ServerError> {
        let cell = self.cell(name)?;
        let doc = cell.doc.read().expect("document lock poisoned");
        Ok(Snapshot {
            epoch: doc.epoch(),
            tree: doc.snapshot(),
        })
    }

    /// Commits one probabilistic update to `name` as its next epoch.
    ///
    /// The expensive engine work (matching, grafting, simplification) is
    /// *staged* while readers proceed; the exclusive document lock is
    /// held only for the diff-and-swap commit. Writers to the same
    /// document are serialized, so staging never loses a race.
    pub fn commit(
        &self,
        name: &str,
        update: &ProbabilisticUpdate,
    ) -> Result<Arc<UpdateDelta>, ServerError> {
        let cell = self.cell(name)?;
        let _writer = cell.write.lock().expect("writer lock poisoned");
        let staged = {
            let doc = cell.doc.read().expect("document lock poisoned");
            self.update_engine.stage_doc(&doc, update)
        };
        let delta = {
            let mut doc = cell.doc.write().expect("document lock poisoned");
            doc.commit_staged(staged).map_err(ServerError::Conflict)?
        };
        cell.hub.observe_commit();
        Ok(delta)
    }

    /// Commits every step of `script` in order, returning the deltas.
    pub fn commit_script(
        &self,
        name: &str,
        script: &UpdateScript,
    ) -> Result<Vec<Arc<UpdateDelta>>, ServerError> {
        script
            .steps()
            .iter()
            .map(|update| self.commit(name, update))
            .collect()
    }

    /// Registers a prepared view of `doc` under `view`, shared through
    /// the document's maintenance hub: every subsequent commit marks it
    /// dirty once, and reads bring it current through the hub's shared
    /// composed delta window.
    pub fn register_view(
        &self,
        doc: &str,
        view: &str,
        query: Arc<dyn Query>,
    ) -> Result<(), ServerError> {
        let cell = self.cell(doc)?;
        let prepared = {
            let doc = cell.doc.read().expect("document lock poisoned");
            self.query_engine.prepare_doc_shared(&doc, query)
        };
        if cell.hub.register(view, prepared) {
            Ok(())
        } else {
            Err(ServerError::DuplicateView(view.to_owned()))
        }
    }

    /// Serves `view` of `doc`, bringing the view current first (see
    /// [`MaintenanceHub::serve`]). The document's reader lock is held for
    /// the duration of `f`, so the served state is consistent with one
    /// epoch.
    pub fn with_view<T>(
        &self,
        doc: &str,
        view: &str,
        f: impl FnOnce(&pxml_core::PreparedQuery<'static>) -> T,
    ) -> Result<T, ServerError> {
        let cell = self.cell(doc)?;
        let guard = cell.doc.read().expect("document lock poisoned");
        cell.hub
            .serve(&guard, view, f)
            .ok_or_else(|| ServerError::UnknownView(view.to_owned()))
    }

    /// The `k` most probable answers of `view`.
    pub fn top_k(&self, doc: &str, view: &str, k: usize) -> Result<AnswerSet, ServerError> {
        self.with_view(doc, view, |prepared| prepared.top_k(k))
    }

    /// The answers of `view` with probability at least `threshold`.
    pub fn above(&self, doc: &str, view: &str, threshold: f64) -> Result<AnswerSet, ServerError> {
        self.with_view(doc, view, |prepared| prepared.above(threshold))
    }

    /// The expected number of matches of `view` (Definition 8 aggregate).
    pub fn expected_matches(&self, doc: &str, view: &str) -> Result<f64, ServerError> {
        self.with_view(doc, view, pxml_core::PreparedQuery::expected_matches)
    }

    /// Per-answer lineage of `view`: the update-confidence events each
    /// answer's presence depends on, via the cached [`Lineage`] semiring
    /// view (repeated serves hit the per-semiring condition cache).
    pub fn lineage(&self, doc: &str, view: &str) -> Result<Vec<BTreeSet<EventId>>, ServerError> {
        self.with_view(doc, view, |prepared| {
            prepared
                .answers_in_cached(&Lineage)
                .into_iter()
                .map(|(_, lineage)| lineage.unwrap_or_default())
                .collect()
        })
    }

    /// Number of answers of `view` that are possible at all (positive in
    /// the [`Possibility`] semiring), via the cached semiring view.
    pub fn possible_count(&self, doc: &str, view: &str) -> Result<usize, ServerError> {
        self.with_view(doc, view, |prepared| {
            prepared
                .answers_in_cached(&Possibility)
                .into_iter()
                .filter(|(_, possible)| *possible)
                .count()
        })
    }

    /// The maintenance-hub counters of `doc` (plus the aggregated
    /// maintenance telemetry of its views).
    pub fn hub_stats(&self, doc: &str) -> Result<HubStats, ServerError> {
        Ok(self.cell(doc)?.hub.stats())
    }

    /// Forks `from` at its current epoch into a new document `to`: an
    /// O(1) copy-on-write branch (the snapshot `Arc` is shared; the first
    /// commit on either side swaps in its own tree). The branch starts
    /// with an empty view hub — register what-if views explicitly.
    pub fn branch(&self, from: &str, to: &str) -> Result<(), ServerError> {
        let forked = {
            let cell = self.cell(from)?;
            let doc = cell.doc.read().expect("document lock poisoned");
            doc.fork()
        };
        self.register_document(to, forked)
    }

    /// Compares two documents' answers to `query`, keyed by canonical
    /// answer form (multiset semantics — node identities diverge across
    /// branches and must not matter). Expected multiplicity — the sum of
    /// the probabilities of isomorphic answers — is compared per shape,
    /// with agreement up to `1e-12`.
    pub fn diff(
        &self,
        left: &str,
        right: &str,
        query: &dyn Query,
    ) -> Result<BranchDiff, ServerError> {
        let left_answers = self.canonical_answers(left, query)?;
        let right_answers = self.canonical_answers(right, query)?;
        let mut diff = BranchDiff::default();
        for (canonical, &l) in &left_answers {
            match right_answers.get(canonical) {
                None => diff.only_left.push(canonical.clone()),
                Some(&r) if (l - r).abs() > 1e-12 => {
                    diff.shifted.push((canonical.clone(), l, r));
                }
                Some(_) => diff.unchanged += 1,
            }
        }
        for canonical in right_answers.keys() {
            if !left_answers.contains_key(canonical) {
                diff.only_right.push(canonical.clone());
            }
        }
        Ok(diff)
    }

    /// The canonical-form → expected-multiplicity map of one document's
    /// answers to `query`, computed against its pinned snapshot.
    fn canonical_answers(
        &self,
        name: &str,
        query: &dyn Query,
    ) -> Result<BTreeMap<String, f64>, ServerError> {
        let snapshot = self.snapshot(name)?;
        let prepared = self.query_engine.prepare(&snapshot.tree, query);
        let mut answers: BTreeMap<String, f64> = BTreeMap::new();
        for index in 0..prepared.len() {
            let canonical = prepared
                .subtree(index)
                .canonical_string(snapshot.tree.tree(), Semantics::MultiSet);
            *answers.entry(canonical).or_default() += prepared.probability(index);
        }
        Ok(answers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pxml_core::update::UpdateOperation;
    use pxml_core::PatternQuery;
    use pxml_tree::DataTree;
    use pxml_workloads::warehouse::{services_with_endpoint_and_contact, skeleton};

    fn insert_under(label: &str, inserted: &str, confidence: f64) -> ProbabilisticUpdate {
        let q = PatternQuery::new(Some(label));
        let at = q.root();
        ProbabilisticUpdate::new(
            UpdateOperation::insert(q, at, DataTree::new(inserted)),
            confidence,
        )
    }

    fn delete_at(label: &str, confidence: f64) -> ProbabilisticUpdate {
        let q = PatternQuery::new(Some(label));
        let at = q.root();
        ProbabilisticUpdate::new(UpdateOperation::delete(q, at), confidence)
    }

    #[test]
    fn registry_rejects_duplicates_and_unknown_names() {
        let warehouse = Warehouse::new();
        warehouse.register("a", skeleton(2)).unwrap();
        assert_eq!(
            warehouse.register("a", skeleton(2)),
            Err(ServerError::DuplicateDocument("a".to_owned()))
        );
        warehouse.register("b", skeleton(1)).unwrap();
        assert_eq!(warehouse.names(), ["a", "b"]);
        assert_eq!(
            warehouse.epoch("missing").unwrap_err(),
            ServerError::UnknownDocument("missing".to_owned())
        );
        assert_eq!(
            warehouse.top_k("a", "missing", 1).unwrap_err(),
            ServerError::UnknownView("missing".to_owned())
        );
    }

    #[test]
    fn snapshots_pin_an_epoch_across_later_commits() {
        let warehouse = Warehouse::new();
        warehouse.register("doc", skeleton(2)).unwrap();
        let pinned = warehouse.snapshot("doc").unwrap();
        assert_eq!(pinned.epoch, 0);

        let delta = warehouse
            .commit("doc", &insert_under("service", "endpoint", 0.8))
            .unwrap();
        assert_eq!(delta.epoch, 1);
        assert_eq!(warehouse.epoch("doc").unwrap(), 1);

        // The pinned snapshot still sees the pre-commit tree: commits swap
        // in a fresh Arc, they never mutate the held one.
        let current = warehouse.snapshot("doc").unwrap();
        assert_eq!(current.epoch, 1);
        assert_eq!(
            pinned.tree.tree().len() + 2,
            current.tree.tree().len(),
            "one endpoint inserted under each of the two services"
        );
    }

    #[test]
    fn views_are_served_lazily_through_the_hub() {
        let warehouse = Warehouse::new();
        warehouse.register("doc", skeleton(2)).unwrap();
        let query = Arc::new(services_with_endpoint_and_contact());
        warehouse.register_view("doc", "q", query.clone()).unwrap();
        assert_eq!(
            warehouse
                .register_view("doc", "q", query.clone())
                .unwrap_err(),
            ServerError::DuplicateView("q".to_owned())
        );

        warehouse
            .commit("doc", &insert_under("service", "endpoint", 0.8))
            .unwrap();
        warehouse
            .commit("doc", &insert_under("service", "contact", 0.7))
            .unwrap();

        // No read yet: all maintenance is still pending.
        let before = warehouse.hub_stats("doc").unwrap();
        assert_eq!(before.deltas_observed, 2);
        assert_eq!(before.flags_fanned, 2);
        assert_eq!(before.view_maintains, 0);

        let expected = warehouse.expected_matches("doc", "q").unwrap();
        let fresh = {
            let snapshot = warehouse.snapshot("doc").unwrap();
            QueryEngine::new()
                .prepare(&snapshot.tree, query.as_ref())
                .expected_matches()
        };
        assert!((expected - fresh).abs() < 1e-12, "{expected} vs {fresh}");
        assert!((expected - 2.0 * 0.8 * 0.7).abs() < 1e-12);

        // Repeated reads of a current view do no further maintenance.
        assert_eq!(warehouse.possible_count("doc", "q").unwrap(), 2);
        assert_eq!(warehouse.top_k("doc", "q", 1).unwrap().len(), 1);
        assert_eq!(warehouse.above("doc", "q", 0.5).unwrap().len(), 2);
        let lineage = warehouse.lineage("doc", "q").unwrap();
        assert_eq!(lineage.len(), 2);
        assert!(lineage.iter().all(|events| events.len() == 2));
        let after = warehouse.hub_stats("doc").unwrap();
        assert_eq!(
            after.view_maintains, 1,
            "one composed pass served both deltas"
        );
        assert_eq!(after.windows_composed, 1);
    }

    #[test]
    fn branches_fork_cheaply_and_diff_reports_divergence() {
        let warehouse = Warehouse::new();
        warehouse.register("main", skeleton(2)).unwrap();
        warehouse
            .commit("main", &insert_under("service", "endpoint", 1.0))
            .unwrap();
        warehouse
            .commit("main", &insert_under("service", "contact", 1.0))
            .unwrap();

        warehouse.branch("main", "what-if").unwrap();
        assert_eq!(warehouse.epoch("what-if").unwrap(), 0);
        assert_eq!(
            warehouse.branch("main", "what-if").unwrap_err(),
            ServerError::DuplicateDocument("what-if".to_owned())
        );

        let query = services_with_endpoint_and_contact();
        let same = warehouse.diff("main", "what-if", &query).unwrap();
        assert!(same.is_empty());
        assert_eq!(same.unchanged, 1, "both services answer isomorphically");

        // A speculative retraction on the branch shifts the answers'
        // expected multiplicity without touching the trunk.
        warehouse
            .commit("what-if", &delete_at("contact", 0.4))
            .unwrap();
        assert_eq!(warehouse.epoch("main").unwrap(), 2);
        let diff = warehouse.diff("main", "what-if", &query).unwrap();
        assert!(!diff.is_empty());
        assert_eq!(diff.shifted.len(), 1);
        let (_, left, right) = &diff.shifted[0];
        assert!((left - 2.0).abs() < 1e-12);
        assert!((right - 2.0 * 0.6).abs() < 1e-12, "right = {right}");
    }

    #[test]
    fn commit_script_lands_every_step_in_order() {
        let warehouse = Warehouse::new();
        warehouse.register("doc", skeleton(1)).unwrap();
        let mut script = UpdateScript::new();
        script.push(insert_under("service", "endpoint", 0.9));
        script.push(insert_under("service", "contact", 0.9));
        let deltas = warehouse.commit_script("doc", &script).unwrap();
        assert_eq!(deltas.len(), 2);
        assert_eq!(deltas[0].epoch, 1);
        assert_eq!(deltas[1].epoch, 2);
        assert_eq!(warehouse.epoch("doc").unwrap(), 2);
    }
}
