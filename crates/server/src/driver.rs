//! The multi-tenant traffic driver: a deterministic seeded workload mix
//! over a scoped-thread worker pool.
//!
//! Each tenant owns one warehouse document (its extraction scenario from
//! [`pxml_workloads::warehouse`]) and four hub-maintained views. A lane
//! interleaves extractor commits with application reads; lanes are claimed
//! by workers through a work-stealing counter, so wall-clock scales with
//! the thread budget while the *logical* workload stays deterministic —
//! a document is only ever written by its own lane, every read lands at a
//! known epoch, and the per-tenant answer checksums (and hub counters)
//! are byte-identical run to run.
//!
//! Tunables come from `PXML_SERVER_THREADS` / `PXML_SERVER_TENANTS` via
//! [`TrafficConfig::from_env`].

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use pxml_core::config::env;
use pxml_workloads::warehouse::{
    scenario_script, services_with_endpoint_and_contact, skeleton, WarehouseConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::hub::HubStats;
use crate::warehouse::Warehouse;

/// The hub-maintained views each tenant registers, one per read kind.
const VIEW_NAMES: [&str; 4] = ["top", "above", "expected", "possible"];

/// Shape of one traffic run. All fields are logical workload parameters
/// except `threads`, which only affects wall-clock.
#[derive(Clone, Debug)]
pub struct TrafficConfig {
    /// Number of tenants (= documents = independent write lanes).
    pub tenants: usize,
    /// Worker threads claiming tenant lanes (work stealing).
    pub threads: usize,
    /// Commit rounds per tenant (one probabilistic update each).
    pub rounds: usize,
    /// View reads per tenant after each commit.
    pub reads_per_round: usize,
    /// Services in each tenant's warehouse skeleton.
    pub services: usize,
    /// Probability that a commit round is a retraction.
    pub deletion_ratio: f64,
    /// Master seed; tenant `t` uses stream `seed + t`.
    pub seed: u64,
    /// `k` for the top-k read kind.
    pub top_k: usize,
    /// Threshold for the above-threshold read kind.
    pub threshold: f64,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            tenants: 4,
            threads: 4,
            rounds: 6,
            reads_per_round: 8,
            services: 6,
            deletion_ratio: 0.25,
            seed: 0x2007_0611,
            top_k: 3,
            threshold: 0.5,
        }
    }
}

impl TrafficConfig {
    /// The default mix with `PXML_SERVER_THREADS` / `PXML_SERVER_TENANTS`
    /// overrides applied (best-effort parsing, like the other engines'
    /// `from_env` constructors).
    pub fn from_env() -> Self {
        let mut config = TrafficConfig::default();
        if let Some(threads) = env::parse_lenient(env::SERVER_THREADS) {
            config.threads = threads;
        }
        if let Some(tenants) = env::parse_lenient(env::SERVER_TENANTS) {
            config.tenants = tenants;
        }
        config
    }
}

/// Order statistics of one operation class's latencies.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LatencySummary {
    /// Number of operations sampled.
    pub count: usize,
    /// Median latency.
    pub p50: Duration,
    /// 95th-percentile latency.
    pub p95: Duration,
    /// 99th-percentile latency.
    pub p99: Duration,
    /// Worst observed latency.
    pub max: Duration,
}

impl LatencySummary {
    fn from_samples(mut samples: Vec<Duration>) -> Self {
        samples.sort_unstable();
        let percentile = |p: f64| {
            if samples.is_empty() {
                Duration::ZERO
            } else {
                samples[((samples.len() - 1) as f64 * p / 100.0).round() as usize]
            }
        };
        LatencySummary {
            count: samples.len(),
            p50: percentile(50.0),
            p95: percentile(95.0),
            p99: percentile(99.0),
            max: samples.last().copied().unwrap_or(Duration::ZERO),
        }
    }

    /// Operations per second, were this class served back to back for
    /// `elapsed` — i.e. `count / elapsed`.
    pub fn throughput(&self, elapsed: Duration) -> f64 {
        if elapsed.is_zero() {
            return 0.0;
        }
        self.count as f64 / elapsed.as_secs_f64()
    }
}

/// What one traffic run did and how fast. The `checksum` (a sum of every
/// read's scalar result, combined in tenant order) and the `hub` counters
/// are deterministic for a fixed [`TrafficConfig`]; the latency fields
/// are the only wall-clock-dependent parts.
#[derive(Clone, Debug)]
pub struct TrafficReport {
    /// The configuration that produced this report.
    pub config: TrafficConfig,
    /// Wall-clock time of the whole run.
    pub elapsed: Duration,
    /// Latency order statistics of the commit path.
    pub commits: LatencySummary,
    /// Latency order statistics of the view-read path.
    pub reads: LatencySummary,
    /// Maintenance-hub counters summed over all tenants.
    pub hub: HubStats,
    /// Sum of every read's scalar result (deterministic per config).
    pub checksum: f64,
}

impl TrafficReport {
    /// Total operations (commits + reads) per second of wall-clock.
    pub fn ops_per_second(&self) -> f64 {
        (self.commits.count + self.reads.count) as f64
            / self.elapsed.as_secs_f64().max(f64::MIN_POSITIVE)
    }
}

/// One timed operation flowing back to the aggregator.
enum Sample {
    Commit(Duration),
    Read(Duration),
    /// A finished lane's answer checksum, keyed by tenant for
    /// order-independent (hence deterministic) combination.
    Lane(usize, f64),
}

/// Runs the configured traffic mix against a fresh [`Warehouse`] and
/// reports throughput, latency order statistics, the aggregated hub
/// counters and the deterministic answer checksum.
pub fn run_traffic(config: &TrafficConfig) -> TrafficReport {
    let warehouse = Warehouse::new();
    let query = services_with_endpoint_and_contact();
    let scenario = WarehouseConfig {
        services: config.services,
        extraction_rounds: config.rounds,
        deletion_ratio: config.deletion_ratio,
    };

    // Stage every tenant's document, views and script before the clock
    // starts: the run measures serving, not setup.
    let mut scripts = Vec::with_capacity(config.tenants);
    for t in 0..config.tenants {
        let name = tenant_name(t);
        warehouse
            .register(&name, skeleton(config.services))
            .expect("fresh warehouse");
        for view in VIEW_NAMES {
            warehouse
                .register_view(&name, view, Arc::new(query.clone()))
                .expect("fresh document");
        }
        let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(t as u64));
        let (script, _) = scenario_script(&scenario, &mut rng);
        scripts.push(script);
    }

    let next = AtomicUsize::new(0);
    let (sender, receiver) = mpsc::channel::<Sample>();
    let workers = config.threads.clamp(1, config.tenants.max(1));
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let sender = sender.clone();
            scope.spawn(|| {
                let sender = sender;
                loop {
                    let t = next.fetch_add(1, Ordering::Relaxed);
                    if t >= config.tenants {
                        break;
                    }
                    let checksum = run_lane(&warehouse, config, t, &scripts[t], &sender);
                    sender
                        .send(Sample::Lane(t, checksum))
                        .expect("aggregator alive");
                }
            });
        }
        drop(sender);
    });
    let elapsed = start.elapsed();

    let mut commits = Vec::new();
    let mut reads = Vec::new();
    let mut lanes = vec![0.0; config.tenants];
    for sample in receiver {
        match sample {
            Sample::Commit(d) => commits.push(d),
            Sample::Read(d) => reads.push(d),
            Sample::Lane(t, checksum) => lanes[t] = checksum,
        }
    }
    let mut hub = HubStats::default();
    for t in 0..config.tenants {
        hub += warehouse
            .hub_stats(&tenant_name(t))
            .expect("tenant registered");
    }
    TrafficReport {
        config: config.clone(),
        elapsed,
        commits: LatencySummary::from_samples(commits),
        reads: LatencySummary::from_samples(reads),
        hub,
        checksum: lanes.iter().sum(),
    }
}

fn tenant_name(t: usize) -> String {
    format!("tenant{t}")
}

/// One tenant's lane: alternate one extractor commit with a burst of view
/// reads. The document is only written here, so every read lands at a
/// known epoch and the returned checksum is deterministic.
fn run_lane(
    warehouse: &Warehouse,
    config: &TrafficConfig,
    tenant: usize,
    script: &pxml_core::UpdateScript,
    sender: &mpsc::Sender<Sample>,
) -> f64 {
    let name = tenant_name(tenant);
    let mut checksum = 0.0;
    for (round, update) in script.steps().iter().enumerate() {
        let begin = Instant::now();
        warehouse.commit(&name, update).expect("serialized writer");
        sender
            .send(Sample::Commit(begin.elapsed()))
            .expect("aggregator alive");
        for read in 0..config.reads_per_round {
            let kind = (tenant + round + read) % VIEW_NAMES.len();
            let begin = Instant::now();
            let value = match kind {
                0 => warehouse
                    .top_k(&name, "top", config.top_k)
                    .expect("view registered")
                    .total_probability(),
                1 => warehouse
                    .above(&name, "above", config.threshold)
                    .expect("view registered")
                    .len() as f64,
                2 => warehouse
                    .expected_matches(&name, "expected")
                    .expect("view registered"),
                _ => warehouse
                    .possible_count(&name, "possible")
                    .expect("view registered") as f64,
            };
            sender
                .send(Sample::Read(begin.elapsed()))
                .expect("aggregator alive");
            checksum += value;
        }
    }
    checksum
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> TrafficConfig {
        TrafficConfig {
            tenants: 3,
            threads: 2,
            rounds: 4,
            reads_per_round: 4,
            services: 4,
            ..TrafficConfig::default()
        }
    }

    #[test]
    fn traffic_is_deterministic_across_runs_and_thread_counts() {
        let config = small();
        let a = run_traffic(&config);
        let b = run_traffic(&TrafficConfig {
            threads: 1,
            ..config.clone()
        });
        assert_eq!(a.checksum.to_bits(), b.checksum.to_bits());
        assert_eq!(a.hub, b.hub);
        assert!(a.checksum.is_finite());
        assert!(a.checksum > 0.0, "reads observed live answers");
    }

    #[test]
    fn sample_counts_match_the_configured_mix() {
        let config = small();
        let report = run_traffic(&config);
        assert_eq!(report.commits.count, config.tenants * config.rounds);
        assert_eq!(
            report.reads.count,
            config.tenants * config.rounds * config.reads_per_round
        );
        assert_eq!(
            report.hub.deltas_observed,
            (config.tenants * config.rounds) as u64
        );
        assert_eq!(
            report.hub.flags_fanned,
            (config.tenants * config.rounds * VIEW_NAMES.len()) as u64
        );
        assert!(report.ops_per_second() > 0.0);
        assert!(report.reads.p50 <= report.reads.p95);
        assert!(report.reads.p95 <= report.reads.p99);
        assert!(report.reads.p99 <= report.reads.max);
    }

    #[test]
    fn latency_summary_orders_percentiles() {
        let samples: Vec<Duration> = (1..=100).map(Duration::from_micros).collect();
        let summary = LatencySummary::from_samples(samples);
        assert_eq!(summary.count, 100);
        assert_eq!(summary.p50, Duration::from_micros(51));
        assert_eq!(summary.p95, Duration::from_micros(95));
        assert_eq!(summary.p99, Duration::from_micros(99));
        assert_eq!(summary.max, Duration::from_micros(100));
        assert_eq!(
            LatencySummary::from_samples(Vec::new()),
            LatencySummary::default()
        );
    }
}
