//! # pxml-server — a concurrent p-document warehouse
//!
//! The motivating application of the paper (Section 1) is a *warehouse*:
//! crawlers and extractors keep committing probabilistic updates while
//! applications keep querying the accumulated document. `pxml-core` gives
//! the single-document machinery — versioned [`pxml_core::Document`]s,
//! structured [`pxml_core::UpdateDelta`]s, incrementally-maintained
//! [`pxml_core::PreparedQuery`] views; this crate serves that machinery
//! **concurrently**, to many readers and writers at once:
//!
//! * [`Warehouse`] — a registry of named documents
//!   behind **epoch snapshots**: every committed epoch is an immutable
//!   `Arc<ProbTree>`, so readers pin an epoch and never block (and are
//!   never torn) while writers stage expensive update work under shared
//!   access and commit under a short exclusive swap;
//! * [`MaintenanceHub`](hub) — per-document shared view maintenance: each
//!   committed span is composed into **one**
//!   [`pxml_core::DeltaWindow`] that every registered view threads in a
//!   single pass, instead of `views × deltas` independent re-threads;
//! * **scenario branches** ([`warehouse::Warehouse::branch`]) — O(1)
//!   copy-on-write forks for what-if update scripts, with answer-level
//!   [diff analyses](warehouse::Warehouse::diff) between branches;
//! * a multi-tenant **traffic driver** ([`driver`]) — a deterministic
//!   seeded workload mix over a scoped-thread worker pool, reporting
//!   throughput and p50/p95/p99 latencies.
//!
//! Tunables come from typed `PXML_SERVER_*` environment switches parsed
//! by [`pxml_core::config::env`]: `PXML_SERVER_THREADS`,
//! `PXML_SERVER_TENANTS` and `PXML_SERVER_LOG_CAPACITY`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod driver;
pub mod hub;
pub mod warehouse;

pub use driver::{run_traffic, LatencySummary, TrafficConfig, TrafficReport};
pub use hub::HubStats;
pub use warehouse::{BranchDiff, ServerError, Snapshot, Warehouse};
