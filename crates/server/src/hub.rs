//! The shared maintenance hub: one delta window per committed span, fanned
//! out to every registered view.
//!
//! Before the hub, N live views over one document each re-threaded the
//! same pending [`pxml_core::UpdateDelta`]s independently — `N × deltas`
//! node-map walks for work that is identical across views. The hub owns
//! the views of one [`Document`] and restores the obvious sharing:
//!
//! * a **commit** is observed once ([`MaintenanceHub::observe_commit`]):
//!   the delta counter advances and a dirty flag is fanned out to every
//!   view — no maintenance work happens on the write path;
//! * a **read** ([`MaintenanceHub::serve`]) lazily brings just the
//!   requested view current. The pending span is composed into one
//!   [`DeltaWindow`] (cached, so concurrent readers of different views
//!   compose it once) and threaded in a single pass via
//!   [`PreparedQuery::maintain_windowed`] — a view that is `d` deltas
//!   behind pays one composed walk, not `d`.
//!
//! The counters ([`MaintenanceHub::stats`]) make the sharing auditable:
//! `view_maintains` grows per *served read batch*, not per view-delta
//! pair, and `windows_composed` stays at one per distinct span.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use pxml_core::{DeltaWindow, Document, Epoch, PreparedQuery};

/// Cumulative counters of one document's maintenance hub — the evidence
/// that N views share one delta thread instead of re-walking it N times.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HubStats {
    /// Commits observed (one per committed epoch).
    pub deltas_observed: u64,
    /// Dirty flags fanned out (= commits × views registered at the time).
    pub flags_fanned: u64,
    /// Distinct pending spans composed into a [`DeltaWindow`]. Shared:
    /// views lagging by the same span reuse one composition.
    pub windows_composed: u64,
    /// View maintenance passes performed on the read path. Lazy: grows
    /// per served read of a stale view, **not** per view-delta pair.
    pub view_maintains: u64,
    /// Sum of the views' [`pxml_core::MaintainStats::windows_applied`].
    pub windows_applied: u64,
    /// Sum of the views' [`pxml_core::MaintainStats::steps_patched`].
    pub steps_patched: u64,
    /// Sum of the views' [`pxml_core::MaintainStats::fallbacks`].
    pub fallbacks: u64,
    /// Sum of the views' [`pxml_core::MaintainStats::unions_rebuilt`].
    pub unions_rebuilt: u64,
    /// Sum of the views' [`pxml_core::MaintainStats::unions_carried`].
    pub unions_carried: u64,
    /// Sum of the views' [`pxml_core::MaintainStats::answers_remapped`].
    pub answers_remapped: u64,
    /// Sum of the views' per-semiring cache folds
    /// ([`pxml_core::SemiringCacheStats::computed`]).
    pub semiring_values_computed: u64,
    /// Sum of the views' per-semiring cache hits
    /// ([`pxml_core::SemiringCacheStats::hits`]).
    pub semiring_cache_hits: u64,
}

impl std::ops::AddAssign for HubStats {
    fn add_assign(&mut self, other: HubStats) {
        self.deltas_observed += other.deltas_observed;
        self.flags_fanned += other.flags_fanned;
        self.windows_composed += other.windows_composed;
        self.view_maintains += other.view_maintains;
        self.windows_applied += other.windows_applied;
        self.steps_patched += other.steps_patched;
        self.fallbacks += other.fallbacks;
        self.unions_rebuilt += other.unions_rebuilt;
        self.unions_carried += other.unions_carried;
        self.answers_remapped += other.answers_remapped;
        self.semiring_values_computed += other.semiring_values_computed;
        self.semiring_cache_hits += other.semiring_cache_hits;
    }
}

/// One registered view: its prepared state and the commit-side dirty flag.
struct ViewCell {
    prepared: Mutex<PreparedQuery<'static>>,
    dirty: AtomicBool,
}

/// The per-document maintenance hub. See the [module docs](self).
///
/// The hub does not own the [`Document`]; callers pass the document into
/// [`MaintenanceHub::serve`] under whatever locking discipline they use
/// (the warehouse serves it under its per-document reader lock, so the
/// epoch cannot advance mid-serve).
#[derive(Default)]
pub struct MaintenanceHub {
    views: RwLock<BTreeMap<String, Arc<ViewCell>>>,
    /// The last composed window, keyed by its span — concurrent readers
    /// of different views lagging by the same span compose it once.
    window: Mutex<Option<(Epoch, Epoch, Arc<DeltaWindow>)>>,
    deltas_observed: AtomicU64,
    flags_fanned: AtomicU64,
    windows_composed: AtomicU64,
    view_maintains: AtomicU64,
}

impl MaintenanceHub {
    /// An empty hub with no views.
    pub fn new() -> Self {
        MaintenanceHub::default()
    }

    /// Registers a prepared view under `name`. Returns `false` (and drops
    /// the state) if the name is taken.
    pub fn register(&self, name: &str, prepared: PreparedQuery<'static>) -> bool {
        let mut views = self.views.write().expect("hub views lock poisoned");
        if views.contains_key(name) {
            return false;
        }
        views.insert(
            name.to_owned(),
            Arc::new(ViewCell {
                prepared: Mutex::new(prepared),
                dirty: AtomicBool::new(false),
            }),
        );
        true
    }

    /// The registered view names, sorted.
    pub fn views(&self) -> Vec<String> {
        self.views
            .read()
            .expect("hub views lock poisoned")
            .keys()
            .cloned()
            .collect()
    }

    /// Records one committed delta: the write path only counts and fans
    /// out dirty flags — all maintenance work is deferred to the reads
    /// that actually happen.
    pub fn observe_commit(&self) {
        self.deltas_observed.fetch_add(1, Ordering::Relaxed);
        let views = self.views.read().expect("hub views lock poisoned");
        for cell in views.values() {
            cell.dirty.store(true, Ordering::Release);
            self.flags_fanned.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Serves `view` against `doc`, bringing it current first if any
    /// commit was observed since the view's epoch. Returns `None` for an
    /// unknown view name.
    ///
    /// `doc` must be the document the view was prepared against, held so
    /// its epoch cannot advance during the call (the warehouse passes it
    /// under its reader lock).
    pub fn serve<T>(
        &self,
        doc: &Document,
        view: &str,
        f: impl FnOnce(&PreparedQuery<'static>) -> T,
    ) -> Option<T> {
        let cell = self
            .views
            .read()
            .expect("hub views lock poisoned")
            .get(view)
            .cloned()?;
        let mut prepared = cell.prepared.lock().expect("view lock poisoned");
        let behind = prepared.document_stamp().map(|(_, e)| e) != Some(doc.epoch());
        if cell.dirty.swap(false, Ordering::AcqRel) || behind {
            self.maintain_view(doc, &mut prepared);
        }
        Some(f(&prepared))
    }

    /// Brings one view current through the shared composed window.
    fn maintain_view(&self, doc: &Document, prepared: &mut PreparedQuery<'static>) {
        let (_, from) = prepared
            .document_stamp()
            .expect("hub views are document-backed");
        if from == doc.epoch() {
            return; // flag raced ahead of an identity span — nothing to do
        }
        self.view_maintains.fetch_add(1, Ordering::Relaxed);
        match self.window_for(doc, from) {
            Some(window) => prepared
                .maintain_windowed(doc, &window)
                .expect("view prepared against this document"),
            // The span was trimmed out of the delta log; `maintain`
            // surfaces that as a re-prepare fallback.
            None => prepared
                .maintain(doc)
                .expect("view prepared against this document"),
        };
    }

    /// The composed window covering `from..doc.epoch()`, from the shared
    /// cache when the last reader needed the same span. `None` when the
    /// document's delta log no longer covers `from`.
    fn window_for(&self, doc: &Document, from: Epoch) -> Option<Arc<DeltaWindow>> {
        let mut cache = self.window.lock().expect("hub window lock poisoned");
        if let Some((f, t, window)) = &*cache {
            if *f == from && *t == doc.epoch() {
                return Some(Arc::clone(window));
            }
        }
        let window = Arc::new(doc.window_since(from)?);
        self.windows_composed.fetch_add(1, Ordering::Relaxed);
        *cache = Some((from, doc.epoch(), Arc::clone(&window)));
        Some(window)
    }

    /// A snapshot of the hub counters plus the aggregated maintenance and
    /// semiring-cache telemetry of every registered view.
    pub fn stats(&self) -> HubStats {
        let mut stats = HubStats {
            deltas_observed: self.deltas_observed.load(Ordering::Relaxed),
            flags_fanned: self.flags_fanned.load(Ordering::Relaxed),
            windows_composed: self.windows_composed.load(Ordering::Relaxed),
            view_maintains: self.view_maintains.load(Ordering::Relaxed),
            ..HubStats::default()
        };
        let views = self.views.read().expect("hub views lock poisoned");
        for cell in views.values() {
            let prepared = cell.prepared.lock().expect("view lock poisoned");
            let maint = prepared.maintenance_stats();
            stats.windows_applied += maint.windows_applied as u64;
            stats.steps_patched += maint.steps_patched as u64;
            stats.fallbacks += maint.fallbacks as u64;
            stats.unions_rebuilt += maint.unions_rebuilt as u64;
            stats.unions_carried += maint.unions_carried as u64;
            stats.answers_remapped += maint.answers_remapped as u64;
            let caches = prepared.semiring_cache_stats();
            stats.semiring_values_computed += caches.computed;
            stats.semiring_cache_hits += caches.hits;
        }
        stats
    }
}
