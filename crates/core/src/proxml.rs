//! ProXML: an XML document format for prob-trees.
//!
//! The paper's motivating system stores imprecise data in an XML
//! warehouse. This module round-trips prob-trees through a simple XML
//! dialect built on the `pxml-xml` substrate:
//!
//! ```xml
//! <prob-tree>
//!   <events>
//!     <event name="w1" prob="0.8"/>
//!     <event name="w2" prob="0.7"/>
//!   </events>
//!   <node label="A">
//!     <node label="B" cond="w1 !w2"/>
//!     <node label="C">
//!       <node label="D" cond="w2"/>
//!     </node>
//!   </node>
//! </prob-tree>
//! ```
//!
//! Conditions are space-separated literals; `!` marks negation. Node labels
//! and event names may contain arbitrary characters (they are XML-escaped).

use std::fmt;

use pxml_events::{Condition, EventTable, Literal};
use pxml_tree::NodeId;
use pxml_xml::dom::{Element, XmlNode};
use pxml_xml::parser::{parse, ParseError};
use pxml_xml::writer::write_document;

use crate::probtree::ProbTree;

/// Error produced while reading a ProXML document.
#[derive(Clone, Debug)]
pub enum ProXmlError {
    /// The document is not well-formed XML.
    Xml(ParseError),
    /// The document is well-formed XML but not valid ProXML.
    Format(String),
}

impl fmt::Display for ProXmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProXmlError::Xml(e) => write!(f, "{e}"),
            ProXmlError::Format(msg) => write!(f, "invalid ProXML document: {msg}"),
        }
    }
}

impl std::error::Error for ProXmlError {}

impl From<ParseError> for ProXmlError {
    fn from(e: ParseError) -> Self {
        ProXmlError::Xml(e)
    }
}

/// Serializes a prob-tree as a ProXML document. Shared (stored) children
/// are serialized through the expanded view: ProXML has no sharing syntax,
/// so the document spells out every logical occurrence.
pub fn to_xml(tree: &ProbTree) -> String {
    let tree = tree.expanded();
    let tree = tree.as_ref();
    let mut root = Element::new("prob-tree");

    let mut events_el = Element::new("events");
    for event in tree.events().iter() {
        events_el.children.push(XmlNode::Element(
            Element::new("event")
                .with_attr("name", tree.events().name(event))
                .with_attr("prob", format!("{}", tree.events().prob(event))),
        ));
    }
    root.children.push(XmlNode::Element(events_el));

    fn node_to_element(tree: &ProbTree, node: NodeId) -> Element {
        let mut el = Element::new("node").with_attr("label", tree.tree().label(node));
        let cond = tree.condition(node);
        if !cond.is_empty() {
            let text = cond
                .literals()
                .iter()
                .map(|l| {
                    let name = tree.events().name(l.event);
                    if l.positive {
                        name.to_string()
                    } else {
                        format!("!{name}")
                    }
                })
                .collect::<Vec<_>>()
                .join(" ");
            el = el.with_attr("cond", text);
        }
        for &child in tree.tree().children(node) {
            el.children
                .push(XmlNode::Element(node_to_element(tree, child)));
        }
        el
    }
    root.children
        .push(XmlNode::Element(node_to_element(tree, tree.tree().root())));

    write_document(&root)
}

/// Parses a ProXML document back into a prob-tree.
pub fn from_xml(text: &str) -> Result<ProbTree, ProXmlError> {
    let doc = parse(text)?;
    if doc.name != "prob-tree" {
        return Err(ProXmlError::Format(format!(
            "expected root element <prob-tree>, found <{}>",
            doc.name
        )));
    }

    let mut events = EventTable::new();
    if let Some(events_el) = doc.child_named("events") {
        for event_el in events_el.child_elements() {
            if event_el.name != "event" {
                return Err(ProXmlError::Format(format!(
                    "unexpected element <{}> inside <events>",
                    event_el.name
                )));
            }
            let name = event_el
                .attr("name")
                .ok_or_else(|| ProXmlError::Format("<event> without name".to_string()))?;
            let prob: f64 = event_el
                .attr("prob")
                .ok_or_else(|| ProXmlError::Format("<event> without prob".to_string()))?
                .parse()
                .map_err(|_| ProXmlError::Format("unparsable probability".to_string()))?;
            if !(prob > 0.0 && prob <= 1.0) {
                return Err(ProXmlError::Format(format!(
                    "event probability {prob} out of (0, 1]"
                )));
            }
            events.insert(name, prob);
        }
    }

    let root_el = doc
        .child_named("node")
        .ok_or_else(|| ProXmlError::Format("missing root <node>".to_string()))?;
    let root_label = root_el
        .attr("label")
        .ok_or_else(|| ProXmlError::Format("<node> without label".to_string()))?;
    if root_el.attr("cond").is_some() {
        return Err(ProXmlError::Format(
            "the root node cannot carry a condition".to_string(),
        ));
    }

    let mut tree = ProbTree::new(root_label);
    *tree.events_mut() = events;

    fn parse_condition(text: &str, events: &EventTable) -> Result<Condition, ProXmlError> {
        let mut literals = Vec::new();
        for token in text.split_whitespace() {
            let (positive, name) = match token.strip_prefix('!') {
                Some(rest) => (false, rest),
                None => (true, token),
            };
            let event = events.by_name(name).ok_or_else(|| {
                ProXmlError::Format(format!("condition mentions unknown event {name:?}"))
            })?;
            literals.push(Literal { event, positive });
        }
        Ok(Condition::from_literals(literals))
    }

    fn parse_children(
        el: &Element,
        tree: &mut ProbTree,
        parent: NodeId,
    ) -> Result<(), ProXmlError> {
        for child_el in el.child_elements() {
            if child_el.name != "node" {
                return Err(ProXmlError::Format(format!(
                    "unexpected element <{}> inside <node>",
                    child_el.name
                )));
            }
            let label = child_el
                .attr("label")
                .ok_or_else(|| ProXmlError::Format("<node> without label".to_string()))?;
            let condition = match child_el.attr("cond") {
                Some(text) => parse_condition(text, tree.events())?,
                None => Condition::always(),
            };
            let id = tree.add_child(parent, label, condition);
            parse_children(child_el, tree, id)?;
        }
        Ok(())
    }

    let root = tree.tree().root();
    parse_children(root_el, &mut tree, root)?;
    Ok(tree)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equivalence::structural_equivalent_exhaustive;
    use crate::probtree::figure1_example;

    #[test]
    fn figure1_roundtrip() {
        let t = figure1_example();
        let xml = to_xml(&t);
        assert!(xml.contains("<prob-tree>"));
        assert!(xml.contains("cond=\"w1 !w2\""));
        let back = from_xml(&xml).expect("parse back");
        assert!(structural_equivalent_exhaustive(&t, &back, 20).unwrap());
    }

    #[test]
    fn unknown_event_in_condition_is_rejected() {
        let doc = r#"<prob-tree><events/><node label="A"><node label="B" cond="mystery"/></node></prob-tree>"#;
        let err = from_xml(doc).unwrap_err();
        assert!(err.to_string().contains("unknown event"));
    }

    #[test]
    fn root_condition_is_rejected() {
        let doc = r#"<prob-tree>
            <events><event name="w" prob="0.5"/></events>
            <node label="A" cond="w"/>
        </prob-tree>"#;
        assert!(from_xml(doc).is_err());
    }

    #[test]
    fn invalid_probability_is_rejected() {
        let doc = r#"<prob-tree>
            <events><event name="w" prob="1.5"/></events>
            <node label="A"/>
        </prob-tree>"#;
        assert!(from_xml(doc).is_err());
    }

    #[test]
    fn malformed_xml_is_reported_as_xml_error() {
        let err = from_xml("<prob-tree><node").unwrap_err();
        assert!(matches!(err, ProXmlError::Xml(_)));
    }

    #[test]
    fn wrong_root_element_is_rejected() {
        let err = from_xml("<not-a-prob-tree/>").unwrap_err();
        assert!(err.to_string().contains("prob-tree"));
    }

    #[test]
    fn labels_with_special_characters_roundtrip() {
        // Note: event names may not contain whitespace (the cond attribute
        // is whitespace-separated), but XML-significant characters are fine.
        let mut t = ProbTree::new("A & B <tricky>");
        let w = t.events_mut().insert("w\"quoted\"", 0.5);
        let root = t.tree().root();
        t.add_child(root, "child > node", Condition::of(Literal::pos(w)));
        let xml = to_xml(&t);
        let back = from_xml(&xml).expect("roundtrip");
        assert_eq!(back.tree().label(back.tree().root()), "A & B <tricky>");
        assert_eq!(
            back.events().name(pxml_events::EventId::from_index(0)),
            "w\"quoted\""
        );
    }
}
