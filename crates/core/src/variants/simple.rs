//! The simple probabilistic model (reference \[3\] of the paper).
//!
//! Every non-root node carries an independent existence probability; a node
//! is present when its parent is present and its own coin toss succeeds.
//! This model has a polynomial-size bound (probabilities of bounded
//! precision, trees of bounded size ⇒ bounded representation) but, as the
//! paper recalls, it is strictly less expressive than the possible-world
//! model: it cannot express correlations such as mutually exclusive
//! siblings. [`SimpleProbTree::to_probtree`] embeds it into the full
//! prob-tree model with one fresh event per annotated node.

use std::collections::HashMap;

use pxml_events::{Condition, Literal};
use pxml_tree::{DataTree, NodeId};

use crate::probtree::ProbTree;
use crate::pwset::PossibleWorldSet;

/// A data tree with independent per-node existence probabilities.
#[derive(Clone, Debug)]
pub struct SimpleProbTree {
    tree: DataTree,
    /// Existence probability of each non-root node; missing entries mean 1.
    probabilities: HashMap<NodeId, f64>,
}

impl SimpleProbTree {
    /// Creates a simple probabilistic tree with a single root node.
    pub fn new(label: impl Into<String>) -> Self {
        SimpleProbTree {
            tree: DataTree::new(label),
            probabilities: HashMap::new(),
        }
    }

    /// The underlying data tree.
    pub fn tree(&self) -> &DataTree {
        &self.tree
    }

    /// Adds a child existing with probability `p ∈ (0, 1]`.
    pub fn add_child(&mut self, parent: NodeId, label: impl Into<String>, p: f64) -> NodeId {
        assert!(
            p > 0.0 && p <= 1.0,
            "probability must lie in (0, 1], got {p}"
        );
        let id = self.tree.add_child(parent, label);
        if p < 1.0 {
            self.probabilities.insert(id, p);
        }
        id
    }

    /// The existence probability of a node (1 for the root and certain
    /// nodes).
    pub fn probability(&self, node: NodeId) -> f64 {
        self.probabilities.get(&node).copied().unwrap_or(1.0)
    }

    /// Embeds the simple model into the prob-tree model: every uncertain
    /// node gets a fresh event variable with its probability, used as a
    /// positive single-literal condition.
    pub fn to_probtree(&self) -> ProbTree {
        let mut out = ProbTree::from_data_tree(self.tree.clone(), pxml_events::EventTable::new());
        let nodes: Vec<NodeId> = self.tree.iter().collect();
        for node in nodes {
            if node == self.tree.root() {
                continue;
            }
            let p = self.probability(node);
            if p < 1.0 {
                let w = out.events_mut().fresh(p);
                out.set_condition(node, Condition::of(Literal::pos(w)));
            }
        }
        out
    }

    /// Number of uncertain nodes (= number of event variables the
    /// embedding uses).
    pub fn num_uncertain(&self) -> usize {
        self.probabilities.len()
    }
}

/// Decides whether a (normalized) PW set is expressible in the simple
/// model **over the same underlying tree shape**, by brute-force search
/// over the per-node probabilities implied by the worlds. This is a
/// semi-decision helper used to demonstrate the expressiveness gap: it
/// checks whether world probabilities factor into independent per-node
/// probabilities.
///
/// Returns `Some(simple_tree)` if an equivalent simple probabilistic tree
/// over the union tree exists, `None` otherwise. Only supports PW sets
/// whose worlds are all sub-datatrees of a common "union" tree of height 1
/// (which is the shape used in the paper's discussion and in our tests).
pub fn expressible_in_simple_model(pw: &PossibleWorldSet) -> Option<SimpleProbTree> {
    // Build the union of root-child labels with multiplicity 1: the helper
    // only handles height-1 worlds with distinct child labels.
    let root_label = pw.root_label()?;
    let mut child_labels: Vec<String> = Vec::new();
    for (world, _) in pw.iter() {
        if world.height() > 1 {
            return None;
        }
        for &c in world.children(world.root()) {
            let label = world.label(c).to_string();
            if world
                .children(world.root())
                .iter()
                .filter(|&&other| world.label(other) == label)
                .count()
                > 1
            {
                return None; // duplicate labels not supported by the helper
            }
            if !child_labels.contains(&label) {
                child_labels.push(label);
            }
        }
    }
    // Marginal probability of each child label.
    let mut marginals: HashMap<String, f64> = HashMap::new();
    for label in &child_labels {
        let mass: f64 = pw
            .iter()
            .filter(|(world, _)| {
                world
                    .children(world.root())
                    .iter()
                    .any(|&c| world.label(c) == *label)
            })
            .map(|(_, p)| p)
            .sum();
        marginals.insert(label.clone(), mass);
    }
    // The simple model forces world probabilities to be the product of the
    // marginals (presence) and complements (absence). Verify.
    let normalized = pw.normalized();
    let mut total_checked = 0.0;
    for (world, p) in normalized.iter() {
        let mut expected = 1.0;
        for label in &child_labels {
            let present = world
                .children(world.root())
                .iter()
                .any(|&c| world.label(c) == *label);
            let m = marginals[label];
            expected *= if present { m } else { 1.0 - m };
        }
        if (expected - p).abs() > 1e-9 {
            return None;
        }
        total_checked += p;
    }
    if (total_checked - 1.0).abs() > 1e-6 {
        return None;
    }
    // Build the witness.
    let mut out = SimpleProbTree::new(root_label);
    let root = out.tree().root();
    for label in &child_labels {
        let m = marginals[label];
        if m > 0.0 {
            out.add_child(root, label.clone(), m.min(1.0));
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantics::possible_worlds;
    use pxml_events::prob_eq;
    use pxml_tree::builder::TreeSpec;

    #[test]
    fn simple_tree_semantics_via_embedding() {
        let mut s = SimpleProbTree::new("A");
        let root = s.tree().root();
        s.add_child(root, "B", 0.5);
        s.add_child(root, "C", 1.0);
        assert_eq!(s.num_uncertain(), 1);
        let probtree = s.to_probtree();
        assert_eq!(probtree.events().len(), 1);
        let pw = possible_worlds(&probtree, 20).unwrap().normalized();
        assert_eq!(pw.len(), 2);
        assert!(prob_eq(pw.total_probability(), 1.0));
    }

    #[test]
    fn independent_products_are_expressible() {
        // Independent children B (0.3) and C (0.6).
        let b = 0.3f64;
        let c = 0.6f64;
        let worlds = PossibleWorldSet::from_worlds([
            (TreeSpec::node("A", vec![]).build(), (1.0 - b) * (1.0 - c)),
            (
                TreeSpec::node("A", vec![TreeSpec::leaf("B")]).build(),
                b * (1.0 - c),
            ),
            (
                TreeSpec::node("A", vec![TreeSpec::leaf("C")]).build(),
                (1.0 - b) * c,
            ),
            (
                TreeSpec::node("A", vec![TreeSpec::leaf("B"), TreeSpec::leaf("C")]).build(),
                b * c,
            ),
        ]);
        let simple = expressible_in_simple_model(&worlds).expect("expressible");
        let back = possible_worlds(&simple.to_probtree(), 20)
            .unwrap()
            .normalized();
        assert!(back.isomorphic(&worlds.normalized()));
    }

    #[test]
    fn mutually_exclusive_siblings_are_not_expressible() {
        // The expressiveness gap: either B or C, never both, never neither.
        let worlds = PossibleWorldSet::from_worlds([
            (TreeSpec::node("A", vec![TreeSpec::leaf("B")]).build(), 0.5),
            (TreeSpec::node("A", vec![TreeSpec::leaf("C")]).build(), 0.5),
        ]);
        assert!(expressible_in_simple_model(&worlds).is_none());
        // ... while the full prob-tree model expresses it exactly.
        let probtree = crate::semantics::pw_set_to_probtree(&worlds).unwrap();
        let back = possible_worlds(&probtree, 20).unwrap().normalized();
        assert!(back.isomorphic(&worlds.normalized()));
    }

    #[test]
    #[should_panic(expected = "must lie in (0, 1]")]
    fn invalid_probability_is_rejected() {
        let mut s = SimpleProbTree::new("A");
        let root = s.tree().root();
        s.add_child(root, "B", 0.0);
    }

    #[test]
    fn helper_bails_out_on_deep_worlds() {
        let worlds = PossibleWorldSet::from_worlds([(
            TreeSpec::node("A", vec![TreeSpec::node("B", vec![TreeSpec::leaf("C")])]).build(),
            1.0,
        )]);
        assert!(expressible_in_simple_model(&worlds).is_none());
    }
}
