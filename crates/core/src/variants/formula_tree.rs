//! Prob-trees with arbitrary propositional formulas as conditions
//! (Section 5, "Arbitrary Propositional Formula").
//!
//! Allowing disjunctions in node conditions flips the complexity trade-off
//! of the base model:
//!
//! * **updates become cheap** — a deletion can simply conjoin `¬(selection
//!   formula)` onto the deleted node, so the output stays linear in the
//!   input even for the Theorem 3 family;
//! * **queries become expensive** — deciding whether a boolean query has a
//!   match with non-zero probability is NP-complete (by reduction from
//!   SAT), and computing answer probabilities requires weighted model
//!   counting instead of a product of independent literals.
//!
//! The paper concludes this variant "is not adapted to the applications
//! that motivated our work"; the E10 experiment measures both sides of the
//! trade-off.

use std::collections::HashMap;

use pxml_events::valuation::{all_valuations, TooManyValuations};
use pxml_events::{EventTable, Valuation};
use pxml_sat::{solve_dpll, Formula, Var};
use pxml_tree::{DataTree, NodeId};

use crate::pwset::PossibleWorldSet;
use crate::query::pattern::{PatternNodeId, PatternQuery};

/// A prob-tree whose non-root nodes carry arbitrary propositional formulas
/// over the event variables.
#[derive(Clone, Debug)]
pub struct FormulaProbTree {
    tree: DataTree,
    events: EventTable,
    /// Formula of every non-root node; absent means `true`. Formula
    /// variables are event indices (`Var(i)` ↔ the `i`-th event).
    formulas: HashMap<NodeId, Formula>,
}

impl FormulaProbTree {
    /// Creates a formula-tree with a single root node.
    pub fn new(label: impl Into<String>) -> Self {
        FormulaProbTree {
            tree: DataTree::new(label),
            events: EventTable::new(),
            formulas: HashMap::new(),
        }
    }

    /// The underlying data tree.
    pub fn tree(&self) -> &DataTree {
        &self.tree
    }

    /// The event table.
    pub fn events(&self) -> &EventTable {
        &self.events
    }

    /// Mutable access to the event table.
    pub fn events_mut(&mut self) -> &mut EventTable {
        &mut self.events
    }

    /// The formula of a node (`true` if unannotated).
    pub fn formula(&self, node: NodeId) -> Formula {
        self.formulas.get(&node).cloned().unwrap_or(Formula::True)
    }

    /// Sets the formula of a non-root node.
    pub fn set_formula(&mut self, node: NodeId, formula: Formula) {
        assert!(node != self.tree.root(), "the root carries no condition");
        self.formulas.insert(node, formula);
    }

    /// Adds a child with the given formula.
    pub fn add_child(
        &mut self,
        parent: NodeId,
        label: impl Into<String>,
        formula: Formula,
    ) -> NodeId {
        let id = self.tree.add_child(parent, label);
        if formula != Formula::True {
            self.formulas.insert(id, formula);
        }
        id
    }

    /// Total number of formula AST nodes (the size measure used by the E10
    /// experiment).
    pub fn formula_size(&self) -> usize {
        self.tree
            .iter()
            .map(|n| self.formulas.get(&n).map_or(0, Formula::size))
            .sum()
    }

    /// Size of the formula-tree: nodes + formula AST nodes.
    pub fn size(&self) -> usize {
        self.tree.len() + self.formula_size()
    }

    /// The world defined by a valuation (same pruning rule as Definition 4,
    /// with formula evaluation instead of conjunction evaluation).
    pub fn value_in_world(&self, valuation: &Valuation) -> DataTree {
        let assignment: Vec<bool> = (0..self.events.len())
            .map(|i| valuation.get(pxml_events::EventId::from_index(i)))
            .collect();
        let mut keep: HashMap<NodeId, bool> = HashMap::new();
        for node in self.tree.iter() {
            let parent_kept = self.tree.parent(node).is_none_or(|p| keep[&p]);
            let own = self.formula(node).eval(&assignment);
            keep.insert(node, parent_kept && own);
        }
        let (out, _) = self.tree.extract(&|n| keep[&n]);
        out
    }

    /// Exhaustive possible-world semantics (exponential; guarded).
    pub fn possible_worlds(
        &self,
        max_events: usize,
    ) -> Result<PossibleWorldSet, TooManyValuations> {
        let mut out = PossibleWorldSet::new();
        for valuation in all_valuations(self.events.len(), max_events)? {
            let world = self.value_in_world(&valuation);
            out.push(world, valuation.probability(&self.events));
        }
        Ok(out)
    }

    /// The formula under which `node` is present in a world: the
    /// conjunction of its own formula and those of its strict ancestors.
    pub fn path_formula(&self, node: NodeId) -> Formula {
        let mut parts = vec![self.formula(node)];
        for anc in self.tree.ancestors(node) {
            parts.push(self.formula(anc));
        }
        Formula::And(parts)
    }

    /// **Boolean query evaluation** — "does the query match with non-zero
    /// probability?" — decided with a SAT solver on the disjunction over
    /// matches of the conjunction of the matched nodes' path formulas.
    /// NP-complete in general (Section 5).
    pub fn query_possible(&self, query: &PatternQuery) -> bool {
        let selection = self.selection_formula(query);
        let cnf = selection.to_cnf_tseitin(self.events.len());
        solve_dpll(&cnf).is_some()
    }

    /// The selection formula of a query: the disjunction, over matches, of
    /// the conjunction of the matched nodes' formulas (including ancestor
    /// formulas, so it is exactly "some match survives in this world").
    pub fn selection_formula(&self, query: &PatternQuery) -> Formula {
        let mut disjuncts = Vec::new();
        for m in query.matches(&self.tree) {
            let sub = m.induced_subtree(&self.tree);
            let parts: Vec<Formula> = sub.nodes().map(|n| self.formula(n)).collect();
            disjuncts.push(Formula::And(parts));
        }
        if disjuncts.is_empty() {
            Formula::False
        } else {
            Formula::Or(disjuncts)
        }
    }

    /// Probability that the query has at least one match, computed by
    /// exhaustive weighted model counting (exponential; the hard direction
    /// of the Section 5 trade-off).
    pub fn query_probability_naive(
        &self,
        query: &PatternQuery,
        max_events: usize,
    ) -> Result<f64, TooManyValuations> {
        let selection = self.selection_formula(query);
        let mut total = 0.0;
        for valuation in all_valuations(self.events.len(), max_events)? {
            let assignment: Vec<bool> = (0..self.events.len())
                .map(|i| valuation.get(pxml_events::EventId::from_index(i)))
                .collect();
            if selection.eval(&assignment) {
                total += valuation.probability(&self.events);
            }
        }
        Ok(total)
    }

    /// **Cheap deletion** (the easy direction of the Section 5 trade-off):
    /// delete the nodes selected by `query` at pattern node `at` by
    /// conjoining the negation of the relevant selection formulas onto the
    /// deleted nodes. Output size grows only by the size of the query's
    /// match formulas — polynomial, in contrast with Theorem 3.
    ///
    /// With a confidence `c < 1`, a fresh event of probability `c` is
    /// added, and the node survives when the update event is false or the
    /// selection does not apply.
    pub fn delete(&mut self, query: &PatternQuery, at: PatternNodeId, confidence: f64) {
        assert!(
            confidence > 0.0 && confidence <= 1.0,
            "update confidence must lie in (0, 1], got {confidence}"
        );
        let matches = query.matches(&self.tree);
        if matches.is_empty() {
            return;
        }
        let update_event = if confidence < 1.0 {
            Some(self.events.fresh(confidence))
        } else {
            None
        };
        // Group selection formulas per target node.
        let mut by_target: HashMap<NodeId, Vec<Formula>> = HashMap::new();
        for m in &matches {
            let target = m.node(at);
            let sub = m.induced_subtree(&self.tree);
            let parts: Vec<Formula> = sub.nodes().map(|n| self.formula(n)).collect();
            by_target
                .entry(target)
                .or_default()
                .push(Formula::And(parts));
        }
        for (target, selections) in by_target {
            let mut selection = Formula::Or(selections);
            if let Some(w) = update_event {
                selection = selection.and(Formula::Var(Var(w.index() as u32)));
            }
            let survives = self.formula(target).and(selection.not());
            self.formulas.insert(target, survives);
        }
    }

    /// Cheap insertion: grafts `subtree` under every node matched at `at`,
    /// guarded by the match's selection formula (and the update event when
    /// `confidence < 1`).
    pub fn insert(
        &mut self,
        query: &PatternQuery,
        at: PatternNodeId,
        subtree: &DataTree,
        confidence: f64,
    ) {
        assert!(
            confidence > 0.0 && confidence <= 1.0,
            "update confidence must lie in (0, 1], got {confidence}"
        );
        let matches = query.matches(&self.tree);
        if matches.is_empty() {
            return;
        }
        let update_event = if confidence < 1.0 {
            Some(self.events.fresh(confidence))
        } else {
            None
        };
        for m in &matches {
            let target = m.node(at);
            let sub = m.induced_subtree(&self.tree);
            // Formulas of matched nodes that are not on the target's path
            // (the path part is implied by the tree structure).
            let mut parts: Vec<Formula> = sub
                .nodes()
                .filter(|&n| !self.tree.is_ancestor_or_self(n, target))
                .map(|n| self.formula(n))
                .collect();
            if let Some(w) = update_event {
                parts.push(Formula::Var(Var(w.index() as u32)));
            }
            let guard = Formula::And(parts);
            let (new_root, _) = self.tree.graft(target, subtree);
            if guard != Formula::And(vec![]) {
                self.formulas.insert(new_root, guard);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pxml_events::prob_eq;

    /// The Theorem 3 family, expressed as a formula-tree: root A, one B
    /// child, and n C children each guarded by `w_i0 ∧ w_i1`.
    fn theorem3_formula_tree(n: usize) -> FormulaProbTree {
        let mut t = FormulaProbTree::new("A");
        let root = t.tree().root();
        t.add_child(root, "B", Formula::True);
        for _ in 0..n {
            let w0 = t.events_mut().fresh(0.5);
            let w1 = t.events_mut().fresh(0.5);
            t.add_child(
                root,
                "C",
                Formula::Var(Var(w0.index() as u32)).and(Formula::Var(Var(w1.index() as u32))),
            );
        }
        t
    }

    fn d0_query() -> (PatternQuery, PatternNodeId) {
        let mut q = PatternQuery::anchored(Some("A"));
        let b = q.add_child(q.root(), "B");
        let _c = q.add_child(q.root(), "C");
        (q, b)
    }

    #[test]
    fn formula_tree_semantics_matches_conjunctive_special_case() {
        // A formula-tree using only conjunctions agrees with the plain
        // prob-tree on Figure 1.
        let plain = crate::probtree::figure1_example();
        let mut ft = FormulaProbTree::new("A");
        let w1 = ft.events_mut().insert("w1", 0.8);
        let w2 = ft.events_mut().insert("w2", 0.7);
        let root = ft.tree().root();
        ft.add_child(
            root,
            "B",
            Formula::Var(Var(w1.index() as u32)).and(Formula::Var(Var(w2.index() as u32)).not()),
        );
        let c = ft.add_child(root, "C", Formula::True);
        ft.add_child(c, "D", Formula::Var(Var(w2.index() as u32)));
        let a = crate::semantics::possible_worlds(&plain, 20)
            .unwrap()
            .normalized();
        let b = ft.possible_worlds(20).unwrap().normalized();
        assert!(a.isomorphic(&b));
    }

    #[test]
    fn deletion_stays_linear_on_theorem3_family() {
        // The headline of the Section 5 variant: the Theorem 3 deletion
        // leaves the output linear in the input instead of exponential.
        let mut sizes = Vec::new();
        for n in [2usize, 4, 8] {
            let mut t = theorem3_formula_tree(n);
            let before = t.size();
            let (q, b) = d0_query();
            t.delete(&q, b, 1.0);
            let after = t.size();
            assert!(after <= before + 8 * n + 8, "n={n}: {before} -> {after}");
            sizes.push(after);
        }
        // Linear growth: doubling n roughly doubles the size, far from 2^n.
        assert!(sizes[2] < 4 * sizes[0]);
    }

    #[test]
    fn deletion_is_semantically_correct_for_small_n() {
        for n in 1..=3usize {
            let mut t = theorem3_formula_tree(n);
            let before = t.possible_worlds(20).unwrap();
            let (q, b) = d0_query();
            // Apply the same deletion to every world directly.
            let op = crate::update::UpdateOperation::delete(q.clone(), b);
            let expected = PossibleWorldSet::from_worlds(
                before
                    .iter()
                    .map(|(w, p)| (op.apply_to_data_tree(w), *p))
                    .collect::<Vec<_>>(),
            )
            .normalized();
            t.delete(&q, b, 1.0);
            let after = t.possible_worlds(20).unwrap().normalized();
            assert!(after.isomorphic(&expected), "n = {n}");
        }
    }

    #[test]
    fn deletion_with_confidence_splits_worlds() {
        let mut t = theorem3_formula_tree(1);
        let (q, b) = d0_query();
        let before = t.possible_worlds(20).unwrap();
        let op = crate::update::UpdateOperation::delete(q.clone(), b);
        let pu = crate::update::ProbabilisticUpdate::new(op, 0.7);
        let expected = pu.apply_to_pw_set(&before).normalized();
        t.delete(&q, b, 0.7);
        let after = t.possible_worlds(20).unwrap().normalized();
        assert!(after.isomorphic(&expected));
    }

    #[test]
    fn insertion_is_semantically_correct() {
        let mut t = theorem3_formula_tree(2);
        let mut q = PatternQuery::anchored(Some("A"));
        let c = q.add_child(q.root(), "C");
        let before = t.possible_worlds(20).unwrap();
        let op = crate::update::UpdateOperation::insert(q.clone(), c, DataTree::new("E"));
        let pu = crate::update::ProbabilisticUpdate::new(op, 0.9);
        let expected = pu.apply_to_pw_set(&before).normalized();
        t.insert(&q, c, &DataTree::new("E"), 0.9);
        let after = t.possible_worlds(20).unwrap().normalized();
        assert!(after.isomorphic(&expected));
    }

    #[test]
    fn query_possible_uses_sat() {
        let mut t = FormulaProbTree::new("A");
        let w = t.events_mut().fresh(0.5);
        let root = t.tree().root();
        // B exists iff w; C exists iff ¬w. A query requiring both B and C
        // is impossible.
        t.add_child(root, "B", Formula::Var(Var(w.index() as u32)));
        t.add_child(root, "C", Formula::Var(Var(w.index() as u32)).not());
        let mut q_both = PatternQuery::anchored(Some("A"));
        q_both.add_child(q_both.root(), "B");
        q_both.add_child(q_both.root(), "C");
        assert!(!t.query_possible(&q_both));
        assert!(prob_eq(
            t.query_probability_naive(&q_both, 20).unwrap(),
            0.0
        ));

        let mut q_b = PatternQuery::anchored(Some("A"));
        q_b.add_child(q_b.root(), "B");
        assert!(t.query_possible(&q_b));
        assert!(prob_eq(t.query_probability_naive(&q_b, 20).unwrap(), 0.5));
    }

    #[test]
    fn query_probability_after_cheap_deletion() {
        // After deleting B (confidence 1) whenever a C is present, the
        // probability of finding a B drops accordingly.
        let mut t = theorem3_formula_tree(1);
        let mut q_b = PatternQuery::anchored(Some("A"));
        q_b.add_child(q_b.root(), "B");
        assert!(prob_eq(t.query_probability_naive(&q_b, 20).unwrap(), 1.0));
        let (q, b) = d0_query();
        t.delete(&q, b, 1.0);
        // B survives unless the single C (probability 1/4) is present.
        assert!(prob_eq(t.query_probability_naive(&q_b, 20).unwrap(), 0.75));
    }
}
