//! Variants of the prob-tree model (Section 5 of the paper).
//!
//! * [`simple`] — the *simple probabilistic model* of the authors' earlier
//!   work (reference \[3\]): independent per-node probabilities. It admits a
//!   polynomial bound on representation size but is strictly less
//!   expressive than the possible-world model.
//! * [`formula_tree`] — prob-trees whose conditions are arbitrary
//!   propositional formulas instead of conjunctions. Updates (including
//!   deletions) become polynomial, but evaluating boolean queries becomes
//!   NP-complete; the model "privileges updates against queries".
//! * Set semantics is not a separate type: the relevant entry points in
//!   [`crate::pwset`], [`crate::equivalence`] and `pxml-tree` take a
//!   [`pxml_tree::canon::Semantics`] parameter.

pub mod formula_tree;
pub mod simple;

pub use formula_tree::FormulaProbTree;
pub use simple::SimpleProbTree;
