//! The relevant-event world engine.
//!
//! Every exhaustive operation on a prob-tree — computing `JT K`
//! (Definition 4), threshold and DTD restriction, structural and semantic
//! equivalence, the Theorem 1 cross-check — ultimately enumerates
//! valuations of the event variables. The naive baseline
//! ([`crate::semantics::possible_worlds`]) walks all `2^{|W|}` valuations
//! of the *declared* event table, so its cost is exponential in how many
//! events were declared rather than in how many the tree actually *uses*.
//!
//! [`WorldEngine`] fixes that asymmetry:
//!
//! 1. **Relevant events.** It computes the union of the condition supports
//!    over the tree. Flipping an event no condition mentions never changes
//!    `V(T)`, so such events can be marginalized analytically (their true
//!    and false branches sum to 1) and only `2^{|relevant|}` partial
//!    valuations need to be materialized.
//! 2. **Streaming normalization.** Instead of collecting one cloned world
//!    per valuation and canonicalizing in a second pass, worlds are
//!    streamed into an interned canonical-form accumulator
//!    (`HashMap<canonical string, slot>`), so the *normalized* PW set is
//!    produced directly with one retained tree per isomorphism class.
//! 3. **Connected components & zero-probability pruning.** Relevant events
//!    are partitioned into connected components induced by co-occurrence
//!    in conditions, and enumeration proceeds component-major. Events with
//!    `π(w) = 1` have a zero-probability false branch; in probability-
//!    weighted enumeration they are pinned true, pruning the whole
//!    component subtree of assignments below the dead branch. The
//!    component partition is also the substrate future sharding/batching
//!    work needs: each component's assignments can be enumerated (and
//!    eventually distributed) independently, for a per-component bound of
//!    `Σ_c 2^{|c|}` enumeration states instead of `2^{|relevant|}`.
//!
//! The engine is exact: its output is isomorphic (`∼`) to the normalized
//! output of the full enumeration — a property-tested invariant.

use std::collections::hash_map::Entry;
use std::collections::HashMap;

use pxml_events::valuation::TooManyValuations;
use pxml_events::{EventId, EventTable, Valuation};
use pxml_tree::canon::{canonical_string, Semantics};
use pxml_tree::DataTree;

use crate::probtree::ProbTree;
use crate::pwset::PossibleWorldSet;

/// Relevant-event world enumeration for one prob-tree (or a pair of
/// prob-trees over the same event table — see [`WorldEngine::for_pair`]).
#[derive(Clone, Debug)]
pub struct WorldEngine<'a> {
    tree: &'a ProbTree,
    /// Length of the valuations handed out (covers every declared event so
    /// conditions can be evaluated without re-indexing).
    valuation_len: usize,
    /// Union of the condition supports, sorted by event id.
    relevant: Vec<EventId>,
    /// Partition of `relevant` into connected components induced by
    /// co-occurrence in a condition; each component is sorted, components
    /// are ordered by their smallest event.
    components: Vec<Vec<EventId>>,
}

impl<'a> WorldEngine<'a> {
    /// Builds the engine for one prob-tree: relevant events are the events
    /// mentioned by at least one node condition.
    pub fn new(tree: &'a ProbTree) -> Self {
        Self::build(tree, tree.events().len(), std::iter::empty())
    }

    /// Builds the engine with additional events forced into the relevant
    /// set (e.g. the event whose influence an independence check probes).
    pub fn with_extra_events<I: IntoIterator<Item = EventId>>(
        tree: &'a ProbTree,
        extra: I,
    ) -> Self {
        Self::build(tree, tree.events().len(), extra)
    }

    /// Builds the engine for a *pair* of prob-trees over the same declared
    /// event distribution (the structural-equivalence setting of
    /// Definition 9): relevant events are the union of both trees'
    /// condition supports, so one shared enumeration decides both values.
    /// Probabilities are read from `a`'s table.
    ///
    /// # Panics
    /// Panics if the two trees do not declare the same event distribution
    /// (structural equivalence is only defined in that case — callers that
    /// cannot guarantee it should check
    /// [`EventTable::same_distribution`] first and short-circuit).
    pub fn for_pair(a: &'a ProbTree, b: &ProbTree) -> Self {
        assert!(
            a.events().same_distribution(b.events()),
            "WorldEngine::for_pair requires both prob-trees to declare the \
             same event variables and distribution"
        );
        let extra: Vec<EventId> = b
            .tree()
            .iter()
            .flat_map(|n| b.condition(n).events().collect::<Vec<_>>())
            .collect();
        Self::build(a, a.events().len(), extra)
    }

    fn build<I: IntoIterator<Item = EventId>>(
        tree: &'a ProbTree,
        valuation_len: usize,
        extra: I,
    ) -> Self {
        // Union-find over event indices, driven by co-occurrence inside a
        // single condition. `find` is iterative (chase then compress) so
        // that a long chain of pairwise co-occurring events cannot
        // overflow the stack.
        let mut parent: HashMap<EventId, EventId> = HashMap::new();
        fn find(parent: &mut HashMap<EventId, EventId>, e: EventId) -> EventId {
            let mut root = *parent.entry(e).or_insert(e);
            while parent[&root] != root {
                root = parent[&root];
            }
            let mut cur = e;
            while cur != root {
                let next = parent[&cur];
                parent.insert(cur, root);
                cur = next;
            }
            root
        }
        let union = |parent: &mut HashMap<EventId, EventId>, a: EventId, b: EventId| {
            let (ra, rb) = (find(parent, a), find(parent, b));
            if ra != rb {
                parent.insert(ra.max(rb), ra.min(rb));
            }
        };
        let conditions = tree.tree().iter().map(|n| tree.condition(n));
        for condition in conditions {
            let mut events = condition.events();
            if let Some(first) = events.next() {
                find(&mut parent, first);
                for e in events {
                    union(&mut parent, first, e);
                }
            }
        }
        for e in extra {
            find(&mut parent, e);
        }

        let mut relevant: Vec<EventId> = parent.keys().copied().collect();
        relevant.sort_unstable();
        let mut groups: HashMap<EventId, Vec<EventId>> = HashMap::new();
        for &e in &relevant {
            groups.entry(find(&mut parent, e)).or_default().push(e);
        }
        let mut components: Vec<Vec<EventId>> = groups.into_values().collect();
        for component in &mut components {
            component.sort_unstable();
        }
        components.sort_unstable_by_key(|c| c[0]);

        WorldEngine {
            tree,
            valuation_len,
            relevant,
            components,
        }
    }

    /// The prob-tree the engine enumerates.
    pub fn tree(&self) -> &ProbTree {
        self.tree
    }

    /// The relevant event set — the union of the condition supports (plus
    /// any extra events the engine was built with), sorted by id.
    pub fn relevant_events(&self) -> &[EventId] {
        &self.relevant
    }

    /// Number of relevant events (`k` in the `2^k` enumeration bound).
    pub fn num_relevant(&self) -> usize {
        self.relevant.len()
    }

    /// The connected components of the relevant events under co-occurrence
    /// in a condition. Enumeration is component-major, and the partition is
    /// the unit future per-component sharding operates on.
    pub fn components(&self) -> &[Vec<EventId>] {
        &self.components
    }

    /// Probability-weighted enumeration of the relevant partial valuations
    /// (`JT K`-style semantics): yields `(valuation, p)` where `p` is the
    /// marginal probability of the partial assignment. Zero-probability
    /// branches are pruned — events with `π(w) = 1` are pinned true, so the
    /// enumeration drops to `2^{|{w relevant : π(w) < 1}|}` states.
    ///
    /// Fails when the relevant set exceeds `max_events` (the same
    /// exponential-work guard as the legacy full enumeration, now counting
    /// only events that actually matter).
    pub fn valuations(
        &self,
        max_events: usize,
    ) -> Result<WeightedValuations<'_>, TooManyValuations> {
        Ok(WeightedValuations {
            inner: self.enumerate(max_events, true)?,
        })
    }

    /// Enumeration of **all** `2^{|relevant|}` relevant partial valuations,
    /// including zero-probability branches. Structural equivalence
    /// (Definition 9) and event independence quantify over every valuation
    /// `V ⊆ W` regardless of probability, so they must not prune — and
    /// they never read probabilities, so none are computed on this path.
    pub fn all_valuations(
        &self,
        max_events: usize,
    ) -> Result<RelevantValuations<'_>, TooManyValuations> {
        self.enumerate(max_events, false)
    }

    fn enumerate(
        &self,
        max_events: usize,
        prune_zero_probability: bool,
    ) -> Result<RelevantValuations<'_>, TooManyValuations> {
        if self.relevant.len() > max_events {
            return Err(TooManyValuations {
                num_events: self.relevant.len(),
                max_events,
            });
        }
        let events = self.tree.events();
        let mut start = Valuation::empty(self.valuation_len);
        // Component-major enumeration order; in weighted mode, pin π = 1
        // events true instead of enumerating their dead false branch.
        let mut free = Vec::with_capacity(self.relevant.len());
        for component in &self.components {
            for &e in component {
                if prune_zero_probability && events.prob(e) >= 1.0 {
                    start.set(e, true);
                } else {
                    free.push(e);
                }
            }
        }
        Ok(RelevantValuations {
            events,
            free,
            next: Some(start),
        })
    }

    /// The normalized possible-world semantics `JT K` of the tree,
    /// accumulated directly: worlds are streamed into an interned
    /// canonical-form accumulator, so exactly one tree per isomorphism
    /// class is retained and no second normalization pass (or
    /// clone-per-valuation buffer) is needed.
    pub fn normalized_worlds(
        &self,
        max_events: usize,
    ) -> Result<PossibleWorldSet, TooManyValuations> {
        self.normalized_worlds_with(max_events, Semantics::MultiSet)
    }

    /// [`WorldEngine::normalized_worlds`] under an explicit data-tree
    /// semantics (the Section 5 set-semantics variant uses
    /// [`Semantics::Set`]).
    pub fn normalized_worlds_with(
        &self,
        max_events: usize,
        semantics: Semantics,
    ) -> Result<PossibleWorldSet, TooManyValuations> {
        let mut slots: HashMap<String, usize> = HashMap::new();
        let mut worlds: Vec<(DataTree, f64)> = Vec::new();
        for (valuation, p) in self.valuations(max_events)? {
            let world = self.tree.value_in_world(&valuation);
            match slots.entry(canonical_string(&world, semantics)) {
                Entry::Occupied(slot) => worlds[*slot.get()].1 += p,
                Entry::Vacant(slot) => {
                    slot.insert(worlds.len());
                    worlds.push((world, p));
                }
            }
        }
        Ok(PossibleWorldSet::from_worlds(worlds))
    }
}

/// Iterator over the relevant partial valuations of a [`WorldEngine`], in
/// binary-counter order over the free events (component-major). Yields
/// full-length valuations — every declared event has a defined bit, so
/// [`ProbTree::value_in_world`] applies unchanged. No probabilities are
/// computed; the ∀-quantified consumers (equivalence, independence,
/// brute-force DTD checks) never need them.
#[derive(Debug)]
pub struct RelevantValuations<'e> {
    events: &'e EventTable,
    free: Vec<EventId>,
    next: Option<Valuation>,
}

impl Iterator for RelevantValuations<'_> {
    type Item = Valuation;

    fn next(&mut self) -> Option<Valuation> {
        let current = self.next.take()?;
        // Binary increment restricted to the free positions; stop after the
        // all-true assignment.
        let mut succ = current.clone();
        let mut carried = true;
        for &e in &self.free {
            if succ.get(e) {
                succ.set(e, false);
            } else {
                succ.set(e, true);
                carried = false;
                break;
            }
        }
        if !carried {
            self.next = Some(succ);
        }
        Some(current)
    }
}

/// [`RelevantValuations`] paired with the marginal probability of each
/// relevant partial assignment — the probability-weighted, zero-branch-
/// pruned enumeration behind [`WorldEngine::valuations`].
#[derive(Debug)]
pub struct WeightedValuations<'e> {
    inner: RelevantValuations<'e>,
}

impl Iterator for WeightedValuations<'_> {
    type Item = (Valuation, f64);

    fn next(&mut self) -> Option<(Valuation, f64)> {
        let valuation = self.inner.next()?;
        let p = valuation.probability_over(self.inner.events, self.inner.free.iter().copied());
        Some((valuation, p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probtree::figure1_example;
    use crate::semantics::possible_worlds;
    use pxml_events::{prob_eq, Condition, Literal};

    #[test]
    fn figure1_engine_matches_legacy_normalization() {
        let t = figure1_example();
        let engine = WorldEngine::new(&t);
        assert_eq!(engine.num_relevant(), 2);
        let fast = engine.normalized_worlds(20).unwrap();
        let legacy = possible_worlds(&t, 20).unwrap().normalized();
        assert_eq!(fast.len(), 3);
        assert!(fast.isomorphic(&legacy));
        assert!(prob_eq(fast.total_probability(), 1.0));
    }

    #[test]
    fn unused_events_are_marginalized_not_enumerated() {
        // 40 declared events, 10 mentioned: the legacy path refuses at the
        // default 2^24 guard, the engine answers instantly.
        let mut t = ProbTree::new("A");
        let root = t.tree().root();
        let mut mentioned = Vec::new();
        for i in 0..40 {
            let w = t.events_mut().fresh(0.5);
            if i < 10 {
                mentioned.push(w);
            }
        }
        for (i, &w) in mentioned.iter().enumerate() {
            t.add_child(root, format!("C{i}"), Condition::of(Literal::pos(w)));
        }
        assert!(
            possible_worlds(&t, 24).is_err(),
            "legacy path must refuse 2^40"
        );

        let engine = WorldEngine::new(&t);
        assert_eq!(engine.num_relevant(), 10);
        assert_eq!(engine.components().len(), 10, "one singleton per child");
        let pw = engine.normalized_worlds(24).unwrap();
        assert_eq!(pw.len(), 1 << 10);
        assert!(prob_eq(pw.total_probability(), 1.0));
    }

    #[test]
    fn relevant_set_is_the_union_of_condition_supports() {
        let mut t = ProbTree::new("A");
        let w1 = t.events_mut().insert("w1", 0.5);
        let w2 = t.events_mut().insert("w2", 0.5);
        let w3 = t.events_mut().insert("w3", 0.5);
        let _unused = t.events_mut().insert("unused", 0.5);
        let root = t.tree().root();
        let b = t.add_child(
            root,
            "B",
            Condition::from_literals([Literal::pos(w1), Literal::neg(w2)]),
        );
        t.add_child(b, "C", Condition::of(Literal::pos(w3)));
        let engine = WorldEngine::new(&t);
        assert_eq!(engine.relevant_events(), &[w1, w2, w3]);
        // {w1, w2} co-occur in B's condition; w3 is alone in C's.
        assert_eq!(engine.components(), &[vec![w1, w2], vec![w3]]);
    }

    #[test]
    fn components_merge_transitively_across_conditions() {
        // w1–w2 co-occur, w2–w3 co-occur: one component {w1, w2, w3}.
        let mut t = ProbTree::new("A");
        let w1 = t.events_mut().insert("w1", 0.5);
        let w2 = t.events_mut().insert("w2", 0.5);
        let w3 = t.events_mut().insert("w3", 0.5);
        let w4 = t.events_mut().insert("w4", 0.5);
        let root = t.tree().root();
        t.add_child(
            root,
            "B",
            Condition::from_literals([Literal::pos(w1), Literal::pos(w2)]),
        );
        t.add_child(
            root,
            "C",
            Condition::from_literals([Literal::neg(w2), Literal::pos(w3)]),
        );
        t.add_child(root, "D", Condition::of(Literal::pos(w4)));
        let engine = WorldEngine::new(&t);
        assert_eq!(engine.components(), &[vec![w1, w2, w3], vec![w4]]);
    }

    #[test]
    fn weighted_enumeration_prunes_certain_events() {
        // π(w) = 1: the false branch has probability 0 and is pruned, so a
        // single valuation remains and the node is always present.
        let mut t = ProbTree::new("A");
        let certain = t.events_mut().insert("certain", 1.0);
        let w = t.events_mut().insert("w", 0.5);
        let root = t.tree().root();
        t.add_child(root, "B", Condition::of(Literal::pos(certain)));
        t.add_child(root, "C", Condition::of(Literal::pos(w)));
        let engine = WorldEngine::new(&t);
        let weighted: Vec<_> = engine.valuations(10).unwrap().collect();
        assert_eq!(weighted.len(), 2, "certain event pinned true");
        assert!(weighted.iter().all(|(v, _)| v.get(certain)));
        let total: f64 = weighted.iter().map(|(_, p)| p).sum();
        assert!(prob_eq(total, 1.0));
        // ∀-enumeration must keep the zero-probability branch.
        let all: Vec<_> = engine.all_valuations(10).unwrap().collect();
        assert_eq!(all.len(), 4);
        // Worlds: B always present, C half the time.
        let pw = engine.normalized_worlds(10).unwrap();
        assert_eq!(pw.len(), 2);
        assert!(pw
            .iter()
            .all(|(world, _)| { world.iter().any(|n| world.label(n) == "B") }));
    }

    #[test]
    fn condition_free_tree_yields_the_single_certain_world() {
        let mut t = ProbTree::new("A");
        for _ in 0..30 {
            t.events_mut().fresh(0.5);
        }
        let root = t.tree().root();
        t.add_child(root, "B", Condition::always());
        let engine = WorldEngine::new(&t);
        assert_eq!(engine.num_relevant(), 0);
        // 30 declared events would be 2^30 valuations for the legacy path.
        let pw = engine.normalized_worlds(0).unwrap();
        assert_eq!(pw.len(), 1);
        assert!(prob_eq(pw.total_probability(), 1.0));
    }

    #[test]
    fn guard_counts_relevant_events_only() {
        let mut t = ProbTree::new("A");
        let root = t.tree().root();
        for i in 0..12 {
            let w = t.events_mut().fresh(0.5);
            t.add_child(root, format!("C{i}"), Condition::of(Literal::pos(w)));
        }
        let engine = WorldEngine::new(&t);
        let err = engine.normalized_worlds(10).unwrap_err();
        assert_eq!(err.num_events, 12);
        assert_eq!(err.max_events, 10);
        assert!(engine.normalized_worlds(12).is_ok());
    }

    #[test]
    fn pair_engine_covers_both_trees_supports() {
        // Same declared distribution (the Definition 9 precondition), but
        // only b's conditions mention the third event.
        let mut a = figure1_example();
        a.events_mut().insert("w3", 0.5);
        let mut b = figure1_example();
        let w3 = b.events_mut().insert("w3", 0.5);
        let root = b.tree().root();
        b.add_child(root, "E", Condition::of(Literal::pos(w3)));
        assert!(a.events().same_distribution(b.events()));
        let engine = WorldEngine::for_pair(&a, &b);
        assert_eq!(engine.num_relevant(), 3);
        // Valuations are long enough for both trees' tables.
        let v = engine.all_valuations(10).unwrap().next().unwrap();
        assert_eq!(v.len(), 3);
        assert_eq!(engine.all_valuations(10).unwrap().count(), 8);
    }

    #[test]
    fn long_cooccurrence_chains_do_not_overflow_the_stack() {
        // Pairwise-chained conditions declared root-last build a union-find
        // parent chain of depth ~n; the iterative find must absorb it (the
        // recursive version overflowed the test-thread stack around this
        // size).
        let mut t = ProbTree::new("A");
        let n = 50_000usize;
        let events: Vec<_> = (0..n).map(|_| t.events_mut().fresh(0.5)).collect();
        let root = t.tree().root();
        for i in (1..n).rev() {
            t.add_child(
                root,
                "B",
                Condition::from_literals([Literal::pos(events[i - 1]), Literal::pos(events[i])]),
            );
        }
        let engine = WorldEngine::new(&t);
        assert_eq!(engine.num_relevant(), n);
        assert_eq!(engine.components().len(), 1);
        assert!(engine.normalized_worlds(24).is_err(), "still guarded");
    }

    #[test]
    #[should_panic(expected = "same event variables and distribution")]
    fn pair_engine_rejects_mismatched_distributions() {
        let a = figure1_example();
        let mut b = figure1_example();
        b.events_mut().insert("w3", 0.5);
        let _ = WorldEngine::for_pair(&a, &b);
    }

    #[test]
    fn streamed_accumulator_keeps_one_tree_per_class() {
        // Both valuations of w produce the same world (the condition is on
        // a node that doesn't exist — no, simpler: two children with
        // complementary conditions and the same label produce isomorphic
        // worlds for both valuations).
        let mut t = ProbTree::new("A");
        let w = t.events_mut().insert("w", 0.3);
        let root = t.tree().root();
        t.add_child(root, "B", Condition::of(Literal::pos(w)));
        t.add_child(root, "B", Condition::of(Literal::neg(w)));
        let engine = WorldEngine::new(&t);
        let pw = engine.normalized_worlds(10).unwrap();
        assert_eq!(pw.len(), 1, "both valuations land in one class");
        assert!(prob_eq(pw.total_probability(), 1.0));
    }
}
