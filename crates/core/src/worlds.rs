//! The relevant-event world engine.
//!
//! Every exhaustive operation on a prob-tree — computing `JT K`
//! (Definition 4), threshold and DTD restriction, structural and semantic
//! equivalence, the Theorem 1 cross-check — ultimately enumerates
//! valuations of the event variables. The naive baseline
//! ([`crate::semantics::possible_worlds`]) walks all `2^{|W|}` valuations
//! of the *declared* event table, so its cost is exponential in how many
//! events were declared rather than in how many the tree actually *uses*.
//!
//! [`WorldEngine`] fixes that asymmetry:
//!
//! 1. **Relevant events.** It computes the union of the condition supports
//!    over the tree. Flipping an event no condition mentions never changes
//!    `V(T)`, so such events can be marginalized analytically (their true
//!    and false branches sum to 1) and only `2^{|relevant|}` partial
//!    valuations need to be materialized.
//! 2. **Streaming normalization.** Instead of collecting one cloned world
//!    per valuation and canonicalizing in a second pass, worlds are
//!    streamed into an interned canonical-form accumulator
//!    (`HashMap<canonical string, slot>`), so the *normalized* PW set is
//!    produced directly with one retained tree per isomorphism class.
//! 3. **Connected components & zero-probability pruning.** Relevant events
//!    are partitioned into connected components induced by co-occurrence
//!    in conditions, and enumeration proceeds component-major. Events with
//!    `π(w) = 1` have a zero-probability false branch; in probability-
//!    weighted enumeration they are pinned true, pruning the whole
//!    component subtree of assignments below the dead branch. Components
//!    are ordered by a total criterion (length, then event ids), so shard
//!    iteration order is identical no matter in which order conditions
//!    were inserted.
//! 4. **Factorized per-component shards.** Because co-occurrence drives
//!    the partition, *every condition's support lies inside exactly one
//!    component*. [`ShardExecutor`] exploits that: each component is
//!    enumerated independently (`2^{|C_i|}` partial assignments, so
//!    `Σ_c 2^{|C_i|}` enumeration states in total instead of
//!    `2^{|relevant|}`) into a [`ComponentShard`] accumulator — partial
//!    valuations of the component's events keyed by the truth signature
//!    they give the component's conditions, each carrying the marginal
//!    probability mass of its class. Independent components run on a
//!    scoped thread pool (plain `std` threads) when
//!    [`WorldEngineConfig::parallelism`] allows, with a sequential
//!    fallback; shards are reassembled in component order either way, so
//!    the result is deterministic.
//!
//! ## The shard-combine contract
//!
//! A [`FactorizedWorlds`] value answers two kinds of questions:
//!
//! * **Shard-local folds** never touch the cross product. A condition's
//!   support lives inside one component, so its probability is a fold over
//!   that single component's enumeration
//!   ([`FactorizedWorlds::condition_probability`] multiplies the
//!   per-component folds of an arbitrary conjunction — for independent
//!   events this re-derives the `O(|literals|)` analytic product
//!   [`Condition::probability`], so it serves as the decomposition's
//!   cross-check and as the template for aggregates without a closed
//!   form), and enumeration accounting
//!   ([`FactorizedWorlds::states_enumerated`],
//!   [`FactorizedWorlds::num_joint_assignments`]) is pure arithmetic over
//!   shard sizes.
//! * **Joint materialization is still forced** whenever the consumer needs
//!   actual worlds or valuations rather than aggregates: the normalized PW
//!   set (`JT K` has up to `Π_c` classes — the output itself is the cross
//!   product), DTD satisfiability/validity sweeps (a DTD couples sibling
//!   counts across components), and structural-equivalence/independence
//!   checks (they compare worlds per valuation). For those,
//!   [`FactorizedWorlds::joint_valuations`] lazily walks the cross product
//!   of the *deduplicated* shard classes — often far fewer than
//!   `2^{|relevant|}` states, guarded by
//!   [`WorldEngineConfig::max_joint_worlds`] — and recombines
//!   probabilities by product of the per-shard class masses.
//!
//! Shard classes merge assignments that give every condition of *this
//! engine's tree* the same truth values, so `FactorizedWorlds` is only
//! valid for consumers that observe valuations through those conditions
//! (worlds, world probabilities, condition folds). Consumers that
//! distinguish valuations beyond the tree's own conditions — the
//! [`WorldEngine::for_pair`] structural-equivalence setting, where the
//! second tree's conditions also matter, and the event-independence probe
//! — must keep using the exact enumerations
//! ([`WorldEngine::all_valuations`]).
//!
//! All engines are exact: their output is isomorphic (`∼`) to the
//! normalized output of the full enumeration — a property-tested
//! invariant asserting legacy `possible_worlds` ≡ the streamed engine ≡
//! the factorized shard executor.

use std::collections::hash_map::Entry;
use std::collections::HashMap;

use pxml_events::valuation::TooManyValuations;
use pxml_events::{Condition, EventId, EventTable, Semiring, Valuation};
use pxml_tree::canon::{canonical_string, Semantics};
use pxml_tree::DataTree;

use crate::probtree::ProbTree;
use crate::pwset::PossibleWorldSet;

/// Relevant-event world enumeration for one prob-tree (or a pair of
/// prob-trees over the same event table — see [`WorldEngine::for_pair`]).
#[derive(Clone, Debug)]
pub struct WorldEngine<'a> {
    tree: &'a ProbTree,
    /// Length of the valuations handed out (covers every declared event so
    /// conditions can be evaluated without re-indexing).
    valuation_len: usize,
    /// Union of the condition supports, sorted by event id.
    relevant: Vec<EventId>,
    /// Partition of `relevant` into connected components induced by
    /// co-occurrence in a condition; each component is sorted, and the
    /// component list follows the total shard order — length first, then
    /// event ids — so iteration is insertion-order independent.
    components: Vec<Vec<EventId>>,
}

impl<'a> WorldEngine<'a> {
    /// Builds the engine for one prob-tree: relevant events are the events
    /// mentioned by at least one node condition.
    pub fn new(tree: &'a ProbTree) -> Self {
        Self::build(tree, tree.events().len(), std::iter::empty())
    }

    /// Builds the engine with additional events forced into the relevant
    /// set (e.g. the event whose influence an independence check probes).
    pub fn with_extra_events<I: IntoIterator<Item = EventId>>(
        tree: &'a ProbTree,
        extra: I,
    ) -> Self {
        Self::build(tree, tree.events().len(), extra)
    }

    /// Builds the engine for a *pair* of prob-trees over the same declared
    /// event distribution (the structural-equivalence setting of
    /// Definition 9): relevant events are the union of both trees'
    /// condition supports, so one shared enumeration decides both values.
    /// Probabilities are read from `a`'s table.
    ///
    /// # Panics
    /// Panics if the two trees do not declare the same event distribution
    /// (structural equivalence is only defined in that case — callers that
    /// cannot guarantee it should check
    /// [`EventTable::same_distribution`] first and short-circuit).
    pub fn for_pair(a: &'a ProbTree, b: &ProbTree) -> Self {
        assert!(
            a.events().same_distribution(b.events()),
            "WorldEngine::for_pair requires both prob-trees to declare the \
             same event variables and distribution"
        );
        let extra: Vec<EventId> = b
            .all_conditions()
            .into_iter()
            .flat_map(|c| c.events().collect::<Vec<_>>())
            .collect();
        Self::build(a, a.events().len(), extra)
    }

    fn build<I: IntoIterator<Item = EventId>>(
        tree: &'a ProbTree,
        valuation_len: usize,
        extra: I,
    ) -> Self {
        // Union-find over event indices, driven by co-occurrence inside a
        // single condition. `find` is iterative (chase then compress) so
        // that a long chain of pairwise co-occurring events cannot
        // overflow the stack.
        let mut parent: HashMap<EventId, EventId> = HashMap::new();
        fn find(parent: &mut HashMap<EventId, EventId>, e: EventId) -> EventId {
            let mut root = *parent.entry(e).or_insert(e);
            while parent[&root] != root {
                root = parent[&root];
            }
            let mut cur = e;
            while cur != root {
                let next = parent[&cur];
                parent.insert(cur, root);
                cur = next;
            }
            root
        }
        let union = |parent: &mut HashMap<EventId, EventId>, a: EventId, b: EventId| {
            let (ra, rb) = (find(parent, a), find(parent, b));
            if ra != rb {
                parent.insert(ra.max(rb), ra.min(rb));
            }
        };
        // `all_conditions` walks the shared representation directly —
        // handle conditions and stored-shape annotations included — so
        // world enumeration never needs to materialize shared subtrees.
        let conditions = tree.all_conditions();
        for condition in conditions {
            let mut events = condition.events();
            if let Some(first) = events.next() {
                find(&mut parent, first);
                for e in events {
                    union(&mut parent, first, e);
                }
            }
        }
        for e in extra {
            find(&mut parent, e);
        }

        let mut relevant: Vec<EventId> = parent.keys().copied().collect();
        relevant.sort_unstable();
        let mut groups: HashMap<EventId, Vec<EventId>> = HashMap::new();
        for &e in &relevant {
            groups.entry(find(&mut parent, e)).or_default().push(e);
        }
        let mut components: Vec<Vec<EventId>> = groups.into_values().collect();
        for component in &mut components {
            component.sort_unstable();
        }
        // Total order — length first, then the sorted event ids — so shard
        // iteration order is deterministic regardless of the order in which
        // conditions were declared or components popped out of the
        // union-find map.
        components.sort_unstable_by(|a, b| a.len().cmp(&b.len()).then_with(|| a.cmp(b)));

        WorldEngine {
            tree,
            valuation_len,
            relevant,
            components,
        }
    }

    /// The prob-tree the engine enumerates.
    pub fn tree(&self) -> &ProbTree {
        self.tree
    }

    /// The relevant event set — the union of the condition supports (plus
    /// any extra events the engine was built with), sorted by id.
    pub fn relevant_events(&self) -> &[EventId] {
        &self.relevant
    }

    /// Number of relevant events (`k` in the `2^k` enumeration bound).
    pub fn num_relevant(&self) -> usize {
        self.relevant.len()
    }

    /// The connected components of the relevant events under co-occurrence
    /// in a condition. Enumeration is component-major, and the partition is
    /// the unit future per-component sharding operates on.
    pub fn components(&self) -> &[Vec<EventId>] {
        &self.components
    }

    /// The static shard plan of this engine's factorized enumeration:
    /// per-component free-event counts (after π = 1 pinning when
    /// `weighted`) and the predicted workload `Σ_c 2^{|free_c|}` —
    /// computed with cheap arithmetic, without enumerating a single
    /// world. [`ShardExecutor::run`] takes its guards from this plan, so
    /// the prediction and the execution share one source of truth (the
    /// plan's [`ShardPlan::predicted_states`] equals the executor's
    /// [`FactorizedWorlds::states_enumerated`] exactly).
    pub fn shard_plan(&self, weighted: bool) -> ShardPlan {
        let events = self.tree.events();
        let free_sizes: Vec<usize> = self
            .components
            .iter()
            .map(|component| {
                component
                    .iter()
                    .filter(|&&e| !(weighted && events.prob(e) >= 1.0))
                    .count()
            })
            .collect();
        ShardPlan { free_sizes }
    }

    /// Probability-weighted enumeration of the relevant partial valuations
    /// (`JT K`-style semantics): yields `(valuation, p)` where `p` is the
    /// marginal probability of the partial assignment. Zero-probability
    /// branches are pruned — events with `π(w) = 1` are pinned true, so the
    /// enumeration drops to `2^{|{w relevant : π(w) < 1}|}` states.
    ///
    /// Fails when the relevant set exceeds `max_events` (the same
    /// exponential-work guard as the legacy full enumeration, now counting
    /// only events that actually matter).
    pub fn valuations(
        &self,
        max_events: usize,
    ) -> Result<WeightedValuations<'_>, TooManyValuations> {
        Ok(WeightedValuations {
            inner: self.enumerate(max_events, true)?,
        })
    }

    /// Enumeration of **all** `2^{|relevant|}` relevant partial valuations,
    /// including zero-probability branches. Structural equivalence
    /// (Definition 9) and event independence quantify over every valuation
    /// `V ⊆ W` regardless of probability, so they must not prune — and
    /// they never read probabilities, so none are computed on this path.
    pub fn all_valuations(
        &self,
        max_events: usize,
    ) -> Result<RelevantValuations<'_>, TooManyValuations> {
        self.enumerate(max_events, false)
    }

    fn enumerate(
        &self,
        max_events: usize,
        prune_zero_probability: bool,
    ) -> Result<RelevantValuations<'_>, TooManyValuations> {
        if self.relevant.len() > max_events {
            return Err(TooManyValuations {
                num_events: self.relevant.len(),
                max_events,
            });
        }
        let events = self.tree.events();
        let mut start = Valuation::empty(self.valuation_len);
        // Component-major enumeration order; in weighted mode, pin π = 1
        // events true instead of enumerating their dead false branch.
        let mut free = Vec::with_capacity(self.relevant.len());
        for component in &self.components {
            for &e in component {
                if prune_zero_probability && events.prob(e) >= 1.0 {
                    start.set(e, true);
                } else {
                    free.push(e);
                }
            }
        }
        Ok(RelevantValuations {
            events,
            free,
            next: Some(start),
        })
    }

    /// The normalized possible-world semantics `JT K` of the tree,
    /// accumulated directly: worlds are streamed into an interned
    /// canonical-form accumulator, so exactly one tree per isomorphism
    /// class is retained and no second normalization pass (or
    /// clone-per-valuation buffer) is needed.
    pub fn normalized_worlds(
        &self,
        max_events: usize,
    ) -> Result<PossibleWorldSet, TooManyValuations> {
        self.normalized_worlds_with(max_events, Semantics::MultiSet)
    }

    /// [`WorldEngine::normalized_worlds`] under an explicit data-tree
    /// semantics (the Section 5 set-semantics variant uses
    /// [`Semantics::Set`]).
    pub fn normalized_worlds_with(
        &self,
        max_events: usize,
        semantics: Semantics,
    ) -> Result<PossibleWorldSet, TooManyValuations> {
        let mut slots: HashMap<String, usize> = HashMap::new();
        let mut worlds: Vec<(DataTree, f64)> = Vec::new();
        for (valuation, p) in self.valuations(max_events)? {
            let world = self.tree.value_in_world(&valuation);
            match slots.entry(canonical_string(&world, semantics)) {
                Entry::Occupied(slot) => worlds[*slot.get()].1 += p,
                Entry::Vacant(slot) => {
                    slot.insert(worlds.len());
                    worlds.push((world, p));
                }
            }
        }
        Ok(PossibleWorldSet::from_worlds(worlds))
    }

    /// Probability-weighted enumeration of a *single* component's partial
    /// valuations (all other events left false), in binary-counter order.
    /// With `prune_zero_probability`, events with `π(w) = 1` are pinned
    /// true exactly as in the joint enumeration.
    ///
    /// This is the raw, un-deduplicated per-component stream behind the
    /// factorized shard accumulators — `2^{|C_i|}` states for component
    /// `i` (fewer under pinning), independent of every other component.
    pub fn component_valuations(
        &self,
        component: usize,
        prune_zero_probability: bool,
    ) -> RelevantValuations<'_> {
        let events = self.tree.events();
        let mut start = Valuation::empty(self.valuation_len);
        let mut free = Vec::new();
        for &e in &self.components[component] {
            if prune_zero_probability && events.prob(e) >= 1.0 {
                start.set(e, true);
            } else {
                free.push(e);
            }
        }
        RelevantValuations {
            events,
            free,
            next: Some(start),
        }
    }

    /// Runs the factorized shard executor in probability-weighted mode:
    /// every component is enumerated independently (`Σ_c 2^{|C_i|}` states,
    /// `π(w) = 1` events pinned) into per-shard class accumulators. The
    /// per-component guard refuses components larger than `max_events`
    /// free events, and refuses when the *total* shard work
    /// `Σ_c 2^{|free_c|}` exceeds `2^{max_events}` — the same enumeration
    /// budget the joint guard grants, now spent per component.
    pub fn sharded(
        &self,
        config: &WorldEngineConfig,
        max_events: usize,
    ) -> Result<FactorizedWorlds<'a>, TooManyValuations> {
        ShardExecutor::new(config.clone()).run(self, true, max_events)
    }

    /// [`WorldEngine::sharded`] without zero-probability pruning: every
    /// `2^{|C_i|}` component assignment is enumerated, including the dead
    /// `π(w) = 1` false branches. This is the shard substrate for sweeps
    /// that quantify over *worlds* regardless of probability (brute-force
    /// DTD satisfiability and validity).
    pub fn sharded_all(
        &self,
        config: &WorldEngineConfig,
        max_events: usize,
    ) -> Result<FactorizedWorlds<'a>, TooManyValuations> {
        ShardExecutor::new(config.clone()).run(self, false, max_events)
    }
}

/// Iterator over the relevant partial valuations of a [`WorldEngine`], in
/// binary-counter order over the free events (component-major). Yields
/// full-length valuations — every declared event has a defined bit, so
/// [`ProbTree::value_in_world`] applies unchanged. No probabilities are
/// computed; the ∀-quantified consumers (equivalence, independence,
/// brute-force DTD checks) never need them.
#[derive(Debug)]
pub struct RelevantValuations<'e> {
    events: &'e EventTable,
    free: Vec<EventId>,
    next: Option<Valuation>,
}

impl Iterator for RelevantValuations<'_> {
    type Item = Valuation;

    fn next(&mut self) -> Option<Valuation> {
        let current = self.next.take()?;
        // Binary increment restricted to the free positions; stop after the
        // all-true assignment.
        let mut succ = current.clone();
        let mut carried = true;
        for &e in &self.free {
            if succ.get(e) {
                succ.set(e, false);
            } else {
                succ.set(e, true);
                carried = false;
                break;
            }
        }
        if !carried {
            self.next = Some(succ);
        }
        Some(current)
    }
}

/// [`RelevantValuations`] paired with the marginal probability of each
/// relevant partial assignment — the probability-weighted, zero-branch-
/// pruned enumeration behind [`WorldEngine::valuations`].
#[derive(Debug)]
pub struct WeightedValuations<'e> {
    inner: RelevantValuations<'e>,
}

impl Iterator for WeightedValuations<'_> {
    type Item = (Valuation, f64);

    fn next(&mut self) -> Option<(Valuation, f64)> {
        let valuation = self.inner.next()?;
        let p = valuation.probability_over(self.inner.events, self.inner.free.iter().copied());
        Some((valuation, p))
    }
}

/// Configuration of the factorized shard executor: how many threads may
/// enumerate components concurrently, and how large a joint cross product
/// a shard-combining consumer may materialize.
///
/// The environment can override both knobs (`PXML_WORLDS_PARALLELISM`,
/// `PXML_WORLDS_MAX_JOINT`) via [`WorldEngineConfig::from_env`], which the
/// production call sites ([`crate::semantics::possible_worlds_normalized`]
/// and the DTD sweeps) use.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorldEngineConfig {
    /// Maximum number of worker threads enumerating components
    /// concurrently; `0` or `1` means fully sequential on the caller's
    /// thread. Small shard sets stay sequential regardless — the executor
    /// only spawns when the predicted work crosses
    /// [`PARALLEL_SHARD_THRESHOLD`] states.
    pub parallelism: usize,
    /// Cap on the number of joint assignments (the product of the shard
    /// class counts) that [`FactorizedWorlds::joint_valuations`] and the
    /// consumers built on it may walk.
    pub max_joint_worlds: u128,
}

/// Minimum predicted shard work (total `Σ_c 2^{|free_c|}` states) before
/// the executor spawns worker threads; below it, thread setup costs more
/// than the enumeration itself.
pub const PARALLEL_SHARD_THRESHOLD: u128 = 4096;

impl Default for WorldEngineConfig {
    fn default() -> Self {
        WorldEngineConfig {
            parallelism: std::thread::available_parallelism().map_or(1, std::num::NonZero::get),
            max_joint_worlds: 1 << 24,
        }
    }
}

impl WorldEngineConfig {
    /// A fully sequential configuration with the default joint cap.
    pub fn sequential() -> Self {
        WorldEngineConfig {
            parallelism: 1,
            ..WorldEngineConfig::default()
        }
    }

    /// The default configuration with environment overrides applied:
    /// `PXML_WORLDS_PARALLELISM` (worker-thread cap, `1` disables the
    /// thread pool) and `PXML_WORLDS_MAX_JOINT` (joint cross-product cap).
    /// Unparsable or missing values fall back to the defaults.
    pub fn from_env() -> Self {
        Self::apply_env(WorldEngineConfig::default())
    }

    /// The environment-aware configuration for consumers whose public
    /// contract is an event-count guard (`max_events`): the joint cap
    /// defaults to exactly `2^{max_events}` — the enumeration budget the
    /// caller already granted, so every input the streamed `2^{|relevant|}`
    /// guard accepted stays accepted — while `PXML_WORLDS_PARALLELISM` and
    /// an explicitly set `PXML_WORLDS_MAX_JOINT` still override their
    /// knobs.
    pub fn for_event_budget(max_events: usize) -> Self {
        Self::apply_env(WorldEngineConfig {
            max_joint_worlds: pow2_saturating(max_events),
            ..WorldEngineConfig::default()
        })
    }

    fn apply_env(mut config: WorldEngineConfig) -> Self {
        use crate::config::env;
        if let Some(parallelism) = env::parse_lenient(env::WORLDS_PARALLELISM) {
            config.parallelism = parallelism;
        }
        if let Some(max_joint) = env::parse_lenient(env::WORLDS_MAX_JOINT) {
            config.max_joint_worlds = max_joint;
        }
        config
    }

    /// Caps `max_joint_worlds` at `2^bits` — used by consumers whose
    /// public contract is an event-count guard (`max_events`), so the
    /// joint combine never exceeds the work the caller budgeted for.
    pub fn with_joint_cap_bits(mut self, bits: usize) -> Self {
        self.max_joint_worlds = self.max_joint_worlds.min(pow2_saturating(bits));
        self
    }
}

/// `2^bits` as a `u128`, saturating instead of overflowing.
fn pow2_saturating(bits: usize) -> u128 {
    if bits >= 127 {
        u128::MAX
    } else {
        1u128 << bits
    }
}

/// One deduplicated partial assignment of a component's events: the
/// representative valuation (restricted to the component, every other
/// event false), the total semiring mass of its class, and how many raw
/// assignments the class merged.
///
/// Classes are keyed by the truth signature the assignment gives the
/// component's conditions — two assignments that satisfy exactly the same
/// conditions produce the same world contribution, so only their mass
/// matters downstream.
///
/// The mass type defaults to `f64` — the probability-semiring
/// instantiation every pre-semiring consumer was written against; a
/// generic run ([`ShardExecutor::run_in`]) accumulates whatever
/// `S::Value` its semiring produces.
#[derive(Clone, Debug)]
pub struct ShardAssignment<V = f64> {
    /// Representative valuation of the class (the first one enumerated, in
    /// binary-counter order over the component's free events).
    pub valuation: Valuation,
    /// Total marginal semiring mass of the class under the component's
    /// events (under the probability semiring, masses of one shard sum
    /// to 1).
    pub probability: V,
    /// Number of raw component assignments merged into this class.
    pub merged: u64,
}

/// The per-component accumulator produced by the [`ShardExecutor`]: the
/// component's events, its deduplicated assignment classes, and the raw
/// enumeration count (`2^{|free|}`) that produced them. Generic over the
/// class-mass type like [`ShardAssignment`] (default `f64`).
#[derive(Clone, Debug)]
pub struct ComponentShard<V = f64> {
    /// The component's events, sorted by id.
    pub events: Vec<EventId>,
    /// Events actually enumerated (`π(w) = 1` events are pinned true in
    /// weighted mode and excluded here).
    pub free: Vec<EventId>,
    /// Deduplicated assignment classes, in first-seen (binary-counter)
    /// order.
    pub assignments: Vec<ShardAssignment<V>>,
    /// Raw assignments enumerated to build this shard: exactly
    /// `2^{|free|}`.
    pub states_enumerated: u64,
}

/// Error returned when combining shards would walk a joint cross product
/// larger than [`WorldEngineConfig::max_joint_worlds`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JointTooLarge {
    /// Number of joint assignments the combine would have to walk (the
    /// product of the shard class counts).
    pub joint_assignments: u128,
    /// The configured cap.
    pub max_joint_worlds: u128,
}

impl std::fmt::Display for JointTooLarge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "combining shards would materialize {} joint assignments, \
             exceeding the configured cap of {}",
            self.joint_assignments, self.max_joint_worlds
        )
    }
}

impl std::error::Error for JointTooLarge {}

/// The static plan of a factorized world enumeration, produced by
/// [`WorldEngine::shard_plan`]: per-component free-event counts and the
/// predicted raw workload, all from arithmetic on the co-occurrence
/// partition — no possible world is touched. The `pxml_analysis` census
/// wraps this plan, and [`ShardExecutor::run`] derives its budget guards
/// from it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardPlan {
    /// Free (actually enumerated) events per component, in the engine's
    /// deterministic component order.
    free_sizes: Vec<usize>,
}

impl ShardPlan {
    /// Number of co-occurrence components.
    pub fn num_components(&self) -> usize {
        self.free_sizes.len()
    }

    /// Free-event count per component, in component order.
    pub fn free_sizes(&self) -> &[usize] {
        &self.free_sizes
    }

    /// The largest per-component free-event count (0 with no components)
    /// — the quantity the per-component budget guard compares against
    /// `max_events`.
    pub fn largest_free_component(&self) -> usize {
        self.free_sizes.iter().copied().max().unwrap_or(0)
    }

    /// Total free events across components.
    pub fn num_free_events(&self) -> usize {
        self.free_sizes.iter().sum()
    }

    /// Predicted raw enumeration workload `Σ_c 2^{|free_c|}` (saturating)
    /// — exactly the [`FactorizedWorlds::states_enumerated`] counter the
    /// executor will report.
    pub fn predicted_states(&self) -> u128 {
        self.free_sizes
            .iter()
            .fold(0u128, |acc, &f| acc.saturating_add(pow2_saturating(f)))
    }

    /// The executor's tractability verdict: a single component with more
    /// than `max_events` free events is refused, and so is a total
    /// workload above `2^{max_events}` — the factorized path never does
    /// more enumeration than the caller budgeted for the joint path.
    pub fn check_budget(&self, max_events: usize) -> Result<(), TooManyValuations> {
        let largest = self.largest_free_component();
        if largest > max_events {
            return Err(TooManyValuations {
                num_events: largest,
                max_events,
            });
        }
        if self.predicted_states() > pow2_saturating(max_events) {
            return Err(TooManyValuations {
                num_events: self.num_free_events(),
                max_events,
            });
        }
        Ok(())
    }
}

/// Runs the per-component shard enumeration, on a scoped thread pool when
/// the configuration allows and the predicted work justifies it, and
/// reassembles the shards in component order (so the output is
/// deterministic regardless of scheduling).
#[derive(Clone, Debug)]
pub struct ShardExecutor {
    config: WorldEngineConfig,
}

impl ShardExecutor {
    /// Creates an executor with the given configuration.
    pub fn new(config: WorldEngineConfig) -> Self {
        ShardExecutor { config }
    }

    /// The executor's configuration.
    pub fn config(&self) -> &WorldEngineConfig {
        &self.config
    }

    /// Enumerates every component of `engine` into a [`ComponentShard`]
    /// and wraps the result as [`FactorizedWorlds`]. `weighted` selects
    /// zero-probability pruning (the `JT K` semantics) vs the unpruned
    /// ∀-world sweep.
    ///
    /// Guards: a single component with more than `max_events` free events
    /// is refused, and so is a total shard workload `Σ_c 2^{|free_c|}`
    /// above `2^{max_events}` — the factorized path never does more
    /// enumeration than the caller budgeted for the joint path.
    pub fn run<'a>(
        &self,
        engine: &WorldEngine<'a>,
        weighted: bool,
        max_events: usize,
    ) -> Result<FactorizedWorlds<'a>, TooManyValuations> {
        // The static shard plan supplies the guards and the parallelism
        // decision — cheap arithmetic, no enumeration.
        let plan = engine.shard_plan(weighted);
        plan.check_budget(max_events)?;
        let total_states = plan.predicted_states();

        let num_components = engine.components.len();
        let conditions = conditions_by_component(engine);
        let workers = self.config.parallelism.min(num_components);
        let shards = if workers > 1 && total_states >= PARALLEL_SHARD_THRESHOLD {
            run_parallel(engine, &conditions, weighted, workers)
        } else {
            (0..num_components)
                .map(|i| enumerate_component(engine, i, &conditions[i], weighted))
                .collect()
        };
        Ok(FactorizedWorlds {
            engine: engine.clone(),
            shards,
            weighted,
            max_joint_worlds: self.config.max_joint_worlds,
        })
    }

    /// [`ShardExecutor::run`] generalized over a [`Semiring`]: every class
    /// accumulates `S::Value` mass instead of `f64` probability. The same
    /// budget guards apply; the generic path enumerates sequentially (the
    /// probability fast path keeps the parallel executor to itself).
    ///
    /// `weighted` pins `π(w) = 1` events exactly as in the probability
    /// run; semirings that weigh unmentioned events (e.g. `Counting`)
    /// usually want `weighted = false` so every component event is
    /// enumerated.
    pub fn run_in<'a, S: Semiring>(
        &self,
        engine: &WorldEngine<'a>,
        semiring: &S,
        weighted: bool,
        max_events: usize,
    ) -> Result<FactorizedWorlds<'a, S::Value>, TooManyValuations> {
        let plan = engine.shard_plan(weighted);
        plan.check_budget(max_events)?;
        let conditions = conditions_by_component(engine);
        let shards = (0..engine.components.len())
            .map(|i| enumerate_component_in(engine, i, &conditions[i], weighted, semiring))
            .collect();
        Ok(FactorizedWorlds {
            engine: engine.clone(),
            shards,
            weighted,
            max_joint_worlds: self.config.max_joint_worlds,
        })
    }
}

/// Groups the tree's distinct non-empty conditions by the component their
/// support lives in. Co-occurrence within a condition is exactly what the
/// union-find merged, so a condition's events never straddle components.
fn conditions_by_component(engine: &WorldEngine<'_>) -> Vec<Vec<Condition>> {
    let mut component_of: HashMap<EventId, usize> = HashMap::new();
    for (i, component) in engine.components.iter().enumerate() {
        for &e in component {
            component_of.insert(e, i);
        }
    }
    let mut out: Vec<Vec<Condition>> = vec![Vec::new(); engine.components.len()];
    let mut seen: std::collections::HashSet<Vec<pxml_events::Literal>> =
        std::collections::HashSet::new();
    // `all_conditions` covers both arena nodes and shared (stored) children,
    // so factorization sees every constraint without materializing handles.
    for condition in engine.tree.all_conditions() {
        let Some(first) = condition.events().next() else {
            continue; // the empty condition constrains nothing
        };
        let component = component_of[&first];
        debug_assert!(
            condition.events().all(|e| component_of[&e] == component),
            "a condition's support must live inside one component"
        );
        if seen.insert(condition.literals().to_vec()) {
            out[component].push(condition.clone());
        }
    }
    out
}

/// Enumerates one component's `2^{|free|}` partial assignments and folds
/// them into signature-keyed classes. The probability-semiring
/// instantiation of [`enumerate_component_in`] — the parallel executor's
/// worker, kept monomorphic so the fast path's codegen (and its
/// bit-exact accumulation order) is pinned.
fn enumerate_component(
    engine: &WorldEngine<'_>,
    component: usize,
    conditions: &[Condition],
    weighted: bool,
) -> ComponentShard {
    enumerate_component_in(
        engine,
        component,
        conditions,
        weighted,
        &pxml_events::Probability,
    )
}

/// [`enumerate_component`] over an arbitrary [`Semiring`]: each class
/// accumulates the `add`-fold of its raw assignments'
/// [`Valuation::weight_over_in`] masses, in binary-counter enumeration
/// order (under the probability semiring this is exactly the historical
/// `class.probability += probability`).
fn enumerate_component_in<S: Semiring>(
    engine: &WorldEngine<'_>,
    component: usize,
    conditions: &[Condition],
    weighted: bool,
    semiring: &S,
) -> ComponentShard<S::Value> {
    let events = engine.tree.events();
    let component_events = engine.components[component].clone();
    let mut classes: HashMap<Vec<u64>, usize> = HashMap::new();
    let mut assignments: Vec<ShardAssignment<S::Value>> = Vec::new();
    let mut states = 0u64;
    for valuation in engine.component_valuations(component, weighted) {
        states += 1;
        let probability =
            valuation.weight_over_in(semiring, events, component_events.iter().copied());
        let mut signature = vec![0u64; conditions.len().div_ceil(64)];
        for (i, condition) in conditions.iter().enumerate() {
            if condition.eval(&valuation) {
                signature[i / 64] |= 1 << (i % 64);
            }
        }
        match classes.entry(signature) {
            Entry::Occupied(slot) => {
                let class = &mut assignments[*slot.get()];
                class.probability = semiring.add(class.probability.clone(), probability);
                class.merged += 1;
            }
            Entry::Vacant(slot) => {
                slot.insert(assignments.len());
                assignments.push(ShardAssignment {
                    valuation,
                    probability,
                    merged: 1,
                });
            }
        }
    }
    let free = component_events
        .iter()
        .copied()
        .filter(|&e| !(weighted && events.prob(e) >= 1.0))
        .collect();
    ComponentShard {
        events: component_events,
        free,
        assignments,
        states_enumerated: states,
    }
}

/// Work-stealing parallel shard enumeration over `std::thread::scope`:
/// each worker pulls the next component index off an atomic counter and
/// sends its shard home over a channel; the main thread reassembles the
/// shards in component order.
fn run_parallel(
    engine: &WorldEngine<'_>,
    conditions: &[Vec<Condition>],
    weighted: bool,
    workers: usize,
) -> Vec<ComponentShard> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;

    let num_components = engine.components.len();
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, ComponentShard)>();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= num_components {
                    break;
                }
                let shard = enumerate_component(engine, i, &conditions[i], weighted);
                if tx.send((i, shard)).is_err() {
                    break;
                }
            });
        }
    });
    drop(tx);
    let mut slots: Vec<Option<ComponentShard>> = vec![None; num_components];
    for (i, shard) in rx {
        slots[i] = Some(shard);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every component enumerated exactly once"))
        .collect()
}

/// The factorized possible-world computation of one prob-tree: one
/// [`ComponentShard`] per co-occurrence component, combinable by product
/// only where a consumer genuinely needs joint worlds (see the
/// *shard-combine contract* in the module docs).
///
/// Generic over the shard class-mass type `V` (default `f64`, the
/// probability semiring): [`ShardExecutor::run`] produces the classic
/// `FactorizedWorlds<'a>` with the full joint/normalization API, while
/// [`ShardExecutor::run_in`] produces a `FactorizedWorlds<'a, S::Value>`
/// whose shard-local folds carry arbitrary semiring values.
#[derive(Clone, Debug)]
pub struct FactorizedWorlds<'a, V = f64> {
    engine: WorldEngine<'a>,
    shards: Vec<ComponentShard<V>>,
    weighted: bool,
    max_joint_worlds: u128,
}

impl<'a, V> FactorizedWorlds<'a, V> {
    /// The per-component shards, in the engine's (total) component order.
    pub fn shards(&self) -> &[ComponentShard<V>] {
        &self.shards
    }

    /// Total raw enumeration states visited across all shards — exactly
    /// `Σ_c 2^{|free_c|}`. This is the counter the factorized-vs-joint
    /// benches assert on.
    pub fn states_enumerated(&self) -> u64 {
        self.shards.iter().map(|s| s.states_enumerated).sum()
    }

    /// Total number of free (actually enumerated) events across shards.
    pub fn num_free_events(&self) -> usize {
        self.shards.iter().map(|s| s.free.len()).sum()
    }

    /// Number of joint assignments a combine would walk: the product of
    /// the per-shard class counts (saturating).
    pub fn num_joint_assignments(&self) -> u128 {
        self.shards.iter().fold(1u128, |acc, s| {
            acc.saturating_mul(s.assignments.len() as u128)
        })
    }

    /// Semiring value of an arbitrary conjunction of literals, computed as
    /// a `mul` of per-component `add`-folds over the raw shard
    /// enumerations — the generic form of
    /// [`FactorizedWorlds::condition_probability`] (which is its
    /// probability-semiring instantiation). Involved components are folded
    /// in component order; literals over events outside every component
    /// multiply in directly; an event constrained by both polarities
    /// yields the semiring's zero. When the semiring weighs unmentioned
    /// events ([`Semiring::constrains_unmentioned`], e.g. `Counting`),
    /// every table event not covered by an involved component or an
    /// out-of-component literal contributes its [`Semiring::unmentioned`]
    /// factor, so the fold ranges over the full event universe.
    pub fn condition_value_in<S: Semiring<Value = V>>(
        &self,
        semiring: &S,
        condition: &Condition,
    ) -> V {
        let events = self.engine.tree.events();
        let mut component_of: HashMap<EventId, usize> = HashMap::new();
        for (i, shard) in self.shards.iter().enumerate() {
            for &e in &shard.events {
                component_of.insert(e, i);
            }
        }
        // Group the literals by component (detecting contradictions on the
        // way); iterate involved components in sorted order so generic
        // accumulation is deterministic.
        let mut per_component: std::collections::BTreeMap<usize, Vec<pxml_events::Literal>> =
            std::collections::BTreeMap::new();
        let mut polarity: HashMap<EventId, bool> = HashMap::new();
        let mut acc = semiring.one();
        for &literal in condition.literals() {
            if let Some(&prev) = polarity.get(&literal.event) {
                if prev != literal.positive {
                    return semiring.zero(); // w ∧ ¬w
                }
                continue; // duplicate literal
            }
            polarity.insert(literal.event, literal.positive);
            match component_of.get(&literal.event) {
                Some(&component) => per_component.entry(component).or_default().push(literal),
                None => acc = semiring.mul(acc, semiring.literal(literal, events)),
            }
        }
        for (&component, literals) in &per_component {
            let component_events = &self.shards[component].events;
            let mut fold = semiring.zero();
            for v in self
                .engine
                .component_valuations(component, self.weighted)
                .filter(|v| literals.iter().all(|l| l.eval(v)))
            {
                fold = semiring.add(
                    fold,
                    v.weight_over_in(semiring, events, component_events.iter().copied()),
                );
            }
            acc = semiring.mul(acc, fold);
        }
        if semiring.constrains_unmentioned() {
            for e in events.iter() {
                let in_involved_component = component_of
                    .get(&e)
                    .is_some_and(|c| per_component.contains_key(c));
                if !in_involved_component && !polarity.contains_key(&e) {
                    acc = semiring.mul(acc, semiring.unmentioned(e, events));
                }
            }
        }
        acc
    }
}

impl<'a> FactorizedWorlds<'a> {
    /// Probability of an arbitrary conjunction of literals over the
    /// engine's event table, computed as a product of per-component folds
    /// over the raw shard enumerations — the cross product is never
    /// materialized. Literals over events outside every component (events
    /// no tree condition mentions) are folded analytically; an event
    /// constrained by both polarities yields 0.
    ///
    /// This is the *independent cross-check* of the shard decomposition:
    /// because events are mutually independent, the production path for a
    /// conjunction's probability is the `O(|literals|)` analytic product
    /// [`Condition::probability`], and the property suite asserts this
    /// exhaustive per-component marginalization (`Σ_c 2^{|C_i|}` work over
    /// the involved components) always re-derives the same value. Use the
    /// analytic product in hot paths; use this fold to validate shard
    /// plumbing or as the template for per-component aggregates that have
    /// no analytic closed form.
    ///
    /// Only meaningful on weighted shards ([`WorldEngine::sharded`]).
    pub fn condition_probability(&self, condition: &Condition) -> f64 {
        self.condition_value_in(&pxml_events::Probability, condition)
    }

    /// Lazily walks the cross product of the shard classes, yielding the
    /// joint representative valuation (the union of the per-component
    /// representatives) with the product of the class masses. Refuses when
    /// the product of the class counts exceeds the configured
    /// [`WorldEngineConfig::max_joint_worlds`].
    pub fn joint_valuations(&self) -> Result<JointValuations<'_>, JointTooLarge> {
        let joint = self.num_joint_assignments();
        if joint > self.max_joint_worlds {
            return Err(JointTooLarge {
                joint_assignments: joint,
                max_joint_worlds: self.max_joint_worlds,
            });
        }
        Ok(JointValuations {
            shards: &self.shards,
            valuation_len: self.engine.valuation_len,
            indices: vec![0; self.shards.len()],
            done: false,
        })
    }

    /// The normalized possible-world semantics `JT K` assembled from the
    /// shards: the joint classes are streamed into the same interned
    /// canonical-form accumulator as [`WorldEngine::normalized_worlds`],
    /// but each joint state carries a whole class of valuations (its
    /// probability is the product of class masses), so the walk visits
    /// `Π_c |classes_c|` states — never more, and usually far fewer, than
    /// the `2^{|free|}` of the streamed engine.
    pub fn normalized_worlds_with(
        &self,
        semantics: Semantics,
    ) -> Result<PossibleWorldSet, JointTooLarge> {
        let mut slots: HashMap<String, usize> = HashMap::new();
        let mut worlds: Vec<(DataTree, f64)> = Vec::new();
        for (valuation, p) in self.joint_valuations()? {
            let world = self.engine.tree.value_in_world(&valuation);
            match slots.entry(canonical_string(&world, semantics)) {
                Entry::Occupied(slot) => worlds[*slot.get()].1 += p,
                Entry::Vacant(slot) => {
                    slot.insert(worlds.len());
                    worlds.push((world, p));
                }
            }
        }
        Ok(PossibleWorldSet::from_worlds(worlds))
    }

    /// [`FactorizedWorlds::normalized_worlds_with`] under the paper's
    /// default multiset semantics.
    pub fn normalized_worlds(&self) -> Result<PossibleWorldSet, JointTooLarge> {
        self.normalized_worlds_with(Semantics::MultiSet)
    }

    /// Consumes the factorized computation into an *owning* joint walk —
    /// the same lazy odometer as [`FactorizedWorlds::joint_valuations`],
    /// for callers that need to return the iterator (e.g. the DTD
    /// brute-force sweeps) rather than borrow the shards.
    pub fn into_joint_valuations(self) -> Result<IntoJointValuations, JointTooLarge> {
        let joint = self.num_joint_assignments();
        if joint > self.max_joint_worlds {
            return Err(JointTooLarge {
                joint_assignments: joint,
                max_joint_worlds: self.max_joint_worlds,
            });
        }
        let indices = vec![0; self.shards.len()];
        Ok(IntoJointValuations {
            valuation_len: self.engine.valuation_len,
            shards: self.shards,
            indices,
            done: false,
        })
    }
}

/// Steps the joint odometer once: assembles the current representative
/// joint valuation (union of the selected per-shard classes) with the
/// product of the class masses, then advances least-significant shard
/// first.
fn joint_step(
    shards: &[ComponentShard],
    valuation_len: usize,
    indices: &mut [usize],
    done: &mut bool,
) -> Option<(Valuation, f64)> {
    if *done {
        return None;
    }
    let mut valuation = Valuation::empty(valuation_len);
    let mut probability = 1.0;
    for (shard, &i) in shards.iter().zip(indices.iter()) {
        let class = &shard.assignments[i];
        valuation.union_with(&class.valuation);
        probability *= class.probability;
    }
    *done = true;
    for (shard, index) in shards.iter().zip(indices.iter_mut()) {
        *index += 1;
        if *index < shard.assignments.len() {
            *done = false;
            break;
        }
        *index = 0;
    }
    Some((valuation, probability))
}

/// Owning variant of [`JointValuations`], produced by
/// [`FactorizedWorlds::into_joint_valuations`].
#[derive(Debug)]
pub struct IntoJointValuations {
    shards: Vec<ComponentShard>,
    valuation_len: usize,
    indices: Vec<usize>,
    done: bool,
}

impl Iterator for IntoJointValuations {
    type Item = (Valuation, f64);

    fn next(&mut self) -> Option<(Valuation, f64)> {
        joint_step(
            &self.shards,
            self.valuation_len,
            &mut self.indices,
            &mut self.done,
        )
    }
}

/// Lazy odometer over the cross product of the shard classes — the joint
/// combine of the factorized enumeration. Yields full-length valuations
/// (the union of per-shard representatives) with the product of the class
/// masses.
#[derive(Debug)]
pub struct JointValuations<'f> {
    shards: &'f [ComponentShard],
    valuation_len: usize,
    indices: Vec<usize>,
    done: bool,
}

impl Iterator for JointValuations<'_> {
    type Item = (Valuation, f64);

    fn next(&mut self) -> Option<(Valuation, f64)> {
        joint_step(
            self.shards,
            self.valuation_len,
            &mut self.indices,
            &mut self.done,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probtree::figure1_example;
    use crate::semantics::possible_worlds;
    use pxml_events::{prob_eq, Condition, Literal};

    #[test]
    fn figure1_engine_matches_legacy_normalization() {
        let t = figure1_example();
        let engine = WorldEngine::new(&t);
        assert_eq!(engine.num_relevant(), 2);
        let fast = engine.normalized_worlds(20).unwrap();
        let legacy = possible_worlds(&t, 20).unwrap().normalized();
        assert_eq!(fast.len(), 3);
        assert!(fast.isomorphic(&legacy));
        assert!(prob_eq(fast.total_probability(), 1.0));
    }

    #[test]
    fn unused_events_are_marginalized_not_enumerated() {
        // 40 declared events, 10 mentioned: the legacy path refuses at the
        // default 2^24 guard, the engine answers instantly.
        let mut t = ProbTree::new("A");
        let root = t.tree().root();
        let mut mentioned = Vec::new();
        for i in 0..40 {
            let w = t.events_mut().fresh(0.5);
            if i < 10 {
                mentioned.push(w);
            }
        }
        for (i, &w) in mentioned.iter().enumerate() {
            t.add_child(root, format!("C{i}"), Condition::of(Literal::pos(w)));
        }
        assert!(
            possible_worlds(&t, 24).is_err(),
            "legacy path must refuse 2^40"
        );

        let engine = WorldEngine::new(&t);
        assert_eq!(engine.num_relevant(), 10);
        assert_eq!(engine.components().len(), 10, "one singleton per child");
        let pw = engine.normalized_worlds(24).unwrap();
        assert_eq!(pw.len(), 1 << 10);
        assert!(prob_eq(pw.total_probability(), 1.0));
    }

    #[test]
    fn relevant_set_is_the_union_of_condition_supports() {
        let mut t = ProbTree::new("A");
        let w1 = t.events_mut().insert("w1", 0.5);
        let w2 = t.events_mut().insert("w2", 0.5);
        let w3 = t.events_mut().insert("w3", 0.5);
        let _unused = t.events_mut().insert("unused", 0.5);
        let root = t.tree().root();
        let b = t.add_child(
            root,
            "B",
            Condition::from_literals([Literal::pos(w1), Literal::neg(w2)]),
        );
        t.add_child(b, "C", Condition::of(Literal::pos(w3)));
        let engine = WorldEngine::new(&t);
        assert_eq!(engine.relevant_events(), &[w1, w2, w3]);
        // {w1, w2} co-occur in B's condition; w3 is alone in C's. Shorter
        // components sort first (total length-then-ids order).
        assert_eq!(engine.components(), &[vec![w3], vec![w1, w2]]);
    }

    #[test]
    fn components_merge_transitively_across_conditions() {
        // w1–w2 co-occur, w2–w3 co-occur: one component {w1, w2, w3}.
        let mut t = ProbTree::new("A");
        let w1 = t.events_mut().insert("w1", 0.5);
        let w2 = t.events_mut().insert("w2", 0.5);
        let w3 = t.events_mut().insert("w3", 0.5);
        let w4 = t.events_mut().insert("w4", 0.5);
        let root = t.tree().root();
        t.add_child(
            root,
            "B",
            Condition::from_literals([Literal::pos(w1), Literal::pos(w2)]),
        );
        t.add_child(
            root,
            "C",
            Condition::from_literals([Literal::neg(w2), Literal::pos(w3)]),
        );
        t.add_child(root, "D", Condition::of(Literal::pos(w4)));
        let engine = WorldEngine::new(&t);
        assert_eq!(engine.components(), &[vec![w4], vec![w1, w2, w3]]);
    }

    #[test]
    fn component_order_is_total_and_insertion_invariant() {
        // Build the same co-occurrence structure with conditions declared
        // in opposite orders: the component lists must come out identical
        // (length first, then ids), so shard iteration is deterministic.
        let build = |reversed: bool| {
            let mut t = ProbTree::new("A");
            let w: Vec<_> = (0..5).map(|_| t.events_mut().fresh(0.5)).collect();
            let root = t.tree().root();
            let mut children: Vec<(&str, Condition)> = vec![
                (
                    "B",
                    Condition::from_literals([Literal::pos(w[0]), Literal::neg(w[3])]),
                ),
                ("C", Condition::of(Literal::pos(w[4]))),
                (
                    "D",
                    Condition::from_literals([Literal::pos(w[1]), Literal::pos(w[2])]),
                ),
            ];
            if reversed {
                children.reverse();
            }
            for (label, condition) in children {
                t.add_child(root, label, condition);
            }
            (t, w)
        };
        let (a, w) = build(false);
        let (b, _) = build(true);
        let ca = WorldEngine::new(&a).components().to_vec();
        let cb = WorldEngine::new(&b).components().to_vec();
        assert_eq!(ca, cb);
        // Singleton {w4} first, then the two pairs by ids.
        assert_eq!(ca, vec![vec![w[4]], vec![w[0], w[3]], vec![w[1], w[2]]]);
    }

    #[test]
    fn factorized_matches_streamed_and_legacy_on_figure1() {
        let t = figure1_example();
        let engine = WorldEngine::new(&t);
        let factorized = engine
            .sharded(&WorldEngineConfig::sequential(), 20)
            .unwrap();
        let fast = factorized.normalized_worlds().unwrap();
        let streamed = engine.normalized_worlds(20).unwrap();
        let legacy = possible_worlds(&t, 20).unwrap().normalized();
        assert!(fast.isomorphic(&streamed));
        assert!(fast.isomorphic(&legacy));
        assert!(prob_eq(fast.total_probability(), 1.0));
    }

    #[test]
    fn shard_counter_is_sum_of_component_powers() {
        // 3 components of sizes 1, 2, 3 → Σ 2^{|C_i|} = 2 + 4 + 8 = 14
        // shard states, while the joint enumeration walks 2^6 = 64.
        let mut t = ProbTree::new("A");
        let w: Vec<_> = (0..6).map(|_| t.events_mut().fresh(0.5)).collect();
        let root = t.tree().root();
        t.add_child(root, "B", Condition::of(Literal::pos(w[0])));
        t.add_child(
            root,
            "C",
            Condition::from_literals([Literal::pos(w[1]), Literal::neg(w[2])]),
        );
        t.add_child(
            root,
            "D",
            Condition::from_literals([Literal::pos(w[3]), Literal::pos(w[4])]),
        );
        t.add_child(
            root,
            "E",
            Condition::from_literals([Literal::pos(w[4]), Literal::pos(w[5])]),
        );
        let engine = WorldEngine::new(&t);
        assert_eq!(engine.components().len(), 3);
        let factorized = engine
            .sharded(&WorldEngineConfig::sequential(), 20)
            .unwrap();
        assert_eq!(factorized.states_enumerated(), 2 + 4 + 8);
        let per_shard: Vec<u64> = factorized
            .shards()
            .iter()
            .map(|s| s.states_enumerated)
            .collect();
        assert_eq!(per_shard, vec![2, 4, 8]);
        // Each shard's class masses sum to 1.
        for shard in factorized.shards() {
            let total: f64 = shard.assignments.iter().map(|a| a.probability).sum();
            assert!(prob_eq(total, 1.0));
        }
        // Worlds still agree with the joint paths.
        let fast = factorized.normalized_worlds().unwrap();
        let legacy = possible_worlds(&t, 20).unwrap().normalized();
        assert!(fast.isomorphic(&legacy));
    }

    #[test]
    fn signature_dedup_merges_condition_equivalent_assignments() {
        // One component of 3 chained events with 2 conditions: 8 raw
        // assignments collapse to the 4 reachable condition signatures.
        let mut t = ProbTree::new("A");
        let w: Vec<_> = (0..3).map(|_| t.events_mut().fresh(0.5)).collect();
        let root = t.tree().root();
        t.add_child(
            root,
            "B",
            Condition::from_literals([Literal::pos(w[0]), Literal::pos(w[1])]),
        );
        t.add_child(
            root,
            "C",
            Condition::from_literals([Literal::pos(w[1]), Literal::pos(w[2])]),
        );
        let engine = WorldEngine::new(&t);
        assert_eq!(engine.components().len(), 1);
        let factorized = engine
            .sharded(&WorldEngineConfig::sequential(), 20)
            .unwrap();
        let shard = &factorized.shards()[0];
        assert_eq!(shard.states_enumerated, 8);
        assert_eq!(shard.assignments.len(), 4);
        let merged: u64 = shard.assignments.iter().map(|a| a.merged).sum();
        assert_eq!(merged, 8);
        // The joint walk visits only the 4 classes, and the worlds agree
        // with the undeduplicated enumeration.
        assert_eq!(factorized.num_joint_assignments(), 4);
        let fast = factorized.normalized_worlds().unwrap();
        let legacy = possible_worlds(&t, 20).unwrap().normalized();
        assert!(fast.isomorphic(&legacy));
    }

    #[test]
    fn joint_guard_refuses_oversized_cross_products() {
        // 12 singleton components: shard work is 24 states, fine; the
        // joint combine would walk 2^12 classes, above a cap of 2^10.
        let mut t = ProbTree::new("A");
        let root = t.tree().root();
        for i in 0..12 {
            let w = t.events_mut().fresh(0.5);
            t.add_child(root, format!("C{i}"), Condition::of(Literal::pos(w)));
        }
        let engine = WorldEngine::new(&t);
        let config = WorldEngineConfig::sequential().with_joint_cap_bits(10);
        let factorized = engine.sharded(&config, 10).unwrap();
        assert_eq!(factorized.states_enumerated(), 24);
        let err = factorized.joint_valuations().unwrap_err();
        assert_eq!(err.joint_assignments, 1 << 12);
        assert_eq!(err.max_joint_worlds, 1 << 10);
        assert!(factorized.normalized_worlds().is_err());
    }

    #[test]
    fn event_budget_config_grants_the_full_joint_budget() {
        // The contract regression the joint cap must not introduce: a
        // consumer guarded by `max_events` grants the joint walk exactly
        // `2^{max_events}`, even above the standalone default of `2^24` —
        // so every input the streamed engine accepted stays accepted.
        assert_eq!(
            WorldEngineConfig::for_event_budget(26).max_joint_worlds,
            1 << 26
        );
        assert_eq!(
            WorldEngineConfig::for_event_budget(10).max_joint_worlds,
            1 << 10
        );
        assert_eq!(
            WorldEngineConfig::for_event_budget(200).max_joint_worlds,
            u128::MAX
        );
        assert_eq!(WorldEngineConfig::default().max_joint_worlds, 1 << 24);
    }

    #[test]
    fn per_component_guard_counts_the_largest_component() {
        let mut t = ProbTree::new("A");
        let w: Vec<_> = (0..8).map(|_| t.events_mut().fresh(0.5)).collect();
        let root = t.tree().root();
        t.add_child(
            root,
            "B",
            Condition::from_literals(w.iter().map(|&e| Literal::pos(e))),
        );
        let engine = WorldEngine::new(&t);
        let err = engine
            .sharded(&WorldEngineConfig::sequential(), 6)
            .unwrap_err();
        assert_eq!(err.num_events, 8);
        assert_eq!(err.max_events, 6);
        assert!(engine.sharded(&WorldEngineConfig::sequential(), 8).is_ok());
    }

    #[test]
    fn parallel_executor_matches_sequential() {
        // 4 components of 12 chained events each: 4 · 2^12 = 16384 shard
        // states, above PARALLEL_SHARD_THRESHOLD, so parallelism > 1
        // really engages the scoped thread pool.
        let mut t = ProbTree::new("A");
        let root = t.tree().root();
        for i in 0..4 {
            let w: Vec<_> = (0..12)
                .map(|j| t.events_mut().fresh(0.3 + 0.04 * ((i + j) % 10) as f64))
                .collect();
            for pair in w.windows(2) {
                t.add_child(
                    root,
                    format!("C{i}"),
                    Condition::from_literals([Literal::pos(pair[0]), Literal::pos(pair[1])]),
                );
            }
        }
        let engine = WorldEngine::new(&t);
        assert_eq!(engine.components().len(), 4);
        let sequential = engine
            .sharded(&WorldEngineConfig::sequential(), 14)
            .unwrap();
        let parallel_config = WorldEngineConfig {
            parallelism: 4,
            ..WorldEngineConfig::sequential()
        };
        let parallel = engine.sharded(&parallel_config, 14).unwrap();
        assert_eq!(sequential.states_enumerated(), 4 * (1 << 12));
        assert_eq!(sequential.states_enumerated(), parallel.states_enumerated());
        assert_eq!(sequential.shards().len(), parallel.shards().len());
        for (a, b) in sequential.shards().iter().zip(parallel.shards()) {
            assert_eq!(a.events, b.events);
            assert_eq!(a.assignments.len(), b.assignments.len());
            for (x, y) in a.assignments.iter().zip(&b.assignments) {
                assert_eq!(x.valuation, y.valuation);
                assert!(prob_eq(x.probability, y.probability));
                assert_eq!(x.merged, y.merged);
            }
        }
    }

    #[test]
    fn condition_probability_folds_without_joint_materialization() {
        let mut t = ProbTree::new("A");
        let w: Vec<_> = [0.8, 0.7, 0.5, 0.4]
            .iter()
            .map(|&p| t.events_mut().fresh(p))
            .collect();
        let root = t.tree().root();
        t.add_child(
            root,
            "B",
            Condition::from_literals([Literal::pos(w[0]), Literal::neg(w[1])]),
        );
        t.add_child(root, "C", Condition::of(Literal::pos(w[2])));
        let unused = t.events_mut().fresh(0.25);
        t.add_child(root, "D", Condition::of(Literal::pos(w[3])));
        let engine = WorldEngine::new(&t);
        let factorized = engine
            .sharded(&WorldEngineConfig::sequential(), 20)
            .unwrap();
        // Cross-component conjunction: independent events multiply.
        let cond =
            Condition::from_literals([Literal::pos(w[0]), Literal::neg(w[1]), Literal::pos(w[2])]);
        let expected = cond.probability(t.events());
        assert!(prob_eq(factorized.condition_probability(&cond), expected));
        // Literals on events no condition mentions fold analytically.
        let with_unused = Condition::from_literals([Literal::pos(w[2]), Literal::neg(unused)]);
        assert!(prob_eq(
            factorized.condition_probability(&with_unused),
            0.5 * 0.75
        ));
        // Contradictions are 0, even on unmentioned events.
        let contradiction = Condition::from_literals([Literal::pos(unused), Literal::neg(unused)]);
        assert!(prob_eq(
            factorized.condition_probability(&contradiction),
            0.0
        ));
        // The empty condition is certain.
        assert!(prob_eq(
            factorized.condition_probability(&Condition::always()),
            1.0
        ));
    }

    #[test]
    fn weighted_shards_pin_certain_events() {
        let mut t = ProbTree::new("A");
        let certain = t.events_mut().insert("certain", 1.0);
        let w = t.events_mut().insert("w", 0.5);
        let root = t.tree().root();
        t.add_child(root, "B", Condition::of(Literal::pos(certain)));
        t.add_child(root, "C", Condition::of(Literal::pos(w)));
        let engine = WorldEngine::new(&t);
        let weighted = engine
            .sharded(&WorldEngineConfig::sequential(), 10)
            .unwrap();
        // The certain component enumerates a single pinned state.
        assert_eq!(weighted.states_enumerated(), 1 + 2);
        assert!(weighted
            .joint_valuations()
            .unwrap()
            .all(|(v, _)| v.get(certain)));
        // The ∀-sweep keeps the dead branch.
        let all = engine
            .sharded_all(&WorldEngineConfig::sequential(), 10)
            .unwrap();
        assert_eq!(all.states_enumerated(), 2 + 2);
        assert_eq!(all.num_joint_assignments(), 4);
    }

    #[test]
    fn factorized_zero_components_yield_the_certain_world() {
        let mut t = ProbTree::new("A");
        for _ in 0..5 {
            t.events_mut().fresh(0.5);
        }
        let root = t.tree().root();
        t.add_child(root, "B", Condition::always());
        let engine = WorldEngine::new(&t);
        let factorized = engine.sharded(&WorldEngineConfig::sequential(), 0).unwrap();
        assert_eq!(factorized.states_enumerated(), 0);
        assert_eq!(factorized.num_joint_assignments(), 1);
        let joint: Vec<_> = factorized.joint_valuations().unwrap().collect();
        assert_eq!(joint.len(), 1);
        assert!(prob_eq(joint[0].1, 1.0));
        let pw = factorized.normalized_worlds().unwrap();
        assert_eq!(pw.len(), 1);
    }

    #[test]
    fn weighted_enumeration_prunes_certain_events() {
        // π(w) = 1: the false branch has probability 0 and is pruned, so a
        // single valuation remains and the node is always present.
        let mut t = ProbTree::new("A");
        let certain = t.events_mut().insert("certain", 1.0);
        let w = t.events_mut().insert("w", 0.5);
        let root = t.tree().root();
        t.add_child(root, "B", Condition::of(Literal::pos(certain)));
        t.add_child(root, "C", Condition::of(Literal::pos(w)));
        let engine = WorldEngine::new(&t);
        let weighted: Vec<_> = engine.valuations(10).unwrap().collect();
        assert_eq!(weighted.len(), 2, "certain event pinned true");
        assert!(weighted.iter().all(|(v, _)| v.get(certain)));
        let total: f64 = weighted.iter().map(|(_, p)| p).sum();
        assert!(prob_eq(total, 1.0));
        // ∀-enumeration must keep the zero-probability branch.
        let all: Vec<_> = engine.all_valuations(10).unwrap().collect();
        assert_eq!(all.len(), 4);
        // Worlds: B always present, C half the time.
        let pw = engine.normalized_worlds(10).unwrap();
        assert_eq!(pw.len(), 2);
        assert!(pw
            .iter()
            .all(|(world, _)| { world.iter().any(|n| world.label(n) == "B") }));
    }

    #[test]
    fn condition_free_tree_yields_the_single_certain_world() {
        let mut t = ProbTree::new("A");
        for _ in 0..30 {
            t.events_mut().fresh(0.5);
        }
        let root = t.tree().root();
        t.add_child(root, "B", Condition::always());
        let engine = WorldEngine::new(&t);
        assert_eq!(engine.num_relevant(), 0);
        // 30 declared events would be 2^30 valuations for the legacy path.
        let pw = engine.normalized_worlds(0).unwrap();
        assert_eq!(pw.len(), 1);
        assert!(prob_eq(pw.total_probability(), 1.0));
    }

    #[test]
    fn guard_counts_relevant_events_only() {
        let mut t = ProbTree::new("A");
        let root = t.tree().root();
        for i in 0..12 {
            let w = t.events_mut().fresh(0.5);
            t.add_child(root, format!("C{i}"), Condition::of(Literal::pos(w)));
        }
        let engine = WorldEngine::new(&t);
        let err = engine.normalized_worlds(10).unwrap_err();
        assert_eq!(err.num_events, 12);
        assert_eq!(err.max_events, 10);
        assert!(engine.normalized_worlds(12).is_ok());
    }

    #[test]
    fn pair_engine_covers_both_trees_supports() {
        // Same declared distribution (the Definition 9 precondition), but
        // only b's conditions mention the third event.
        let mut a = figure1_example();
        a.events_mut().insert("w3", 0.5);
        let mut b = figure1_example();
        let w3 = b.events_mut().insert("w3", 0.5);
        let root = b.tree().root();
        b.add_child(root, "E", Condition::of(Literal::pos(w3)));
        assert!(a.events().same_distribution(b.events()));
        let engine = WorldEngine::for_pair(&a, &b);
        assert_eq!(engine.num_relevant(), 3);
        // Valuations are long enough for both trees' tables.
        let v = engine.all_valuations(10).unwrap().next().unwrap();
        assert_eq!(v.len(), 3);
        assert_eq!(engine.all_valuations(10).unwrap().count(), 8);
    }

    #[test]
    fn long_cooccurrence_chains_do_not_overflow_the_stack() {
        // Pairwise-chained conditions declared root-last build a union-find
        // parent chain of depth ~n; the iterative find must absorb it (the
        // recursive version overflowed the test-thread stack around this
        // size).
        let mut t = ProbTree::new("A");
        let n = 50_000usize;
        let events: Vec<_> = (0..n).map(|_| t.events_mut().fresh(0.5)).collect();
        let root = t.tree().root();
        for i in (1..n).rev() {
            t.add_child(
                root,
                "B",
                Condition::from_literals([Literal::pos(events[i - 1]), Literal::pos(events[i])]),
            );
        }
        let engine = WorldEngine::new(&t);
        assert_eq!(engine.num_relevant(), n);
        assert_eq!(engine.components().len(), 1);
        assert!(engine.normalized_worlds(24).is_err(), "still guarded");
    }

    #[test]
    #[should_panic(expected = "same event variables and distribution")]
    fn pair_engine_rejects_mismatched_distributions() {
        let a = figure1_example();
        let mut b = figure1_example();
        b.events_mut().insert("w3", 0.5);
        let _ = WorldEngine::for_pair(&a, &b);
    }

    #[test]
    fn streamed_accumulator_keeps_one_tree_per_class() {
        // Both valuations of w produce the same world (the condition is on
        // a node that doesn't exist — no, simpler: two children with
        // complementary conditions and the same label produce isomorphic
        // worlds for both valuations).
        let mut t = ProbTree::new("A");
        let w = t.events_mut().insert("w", 0.3);
        let root = t.tree().root();
        t.add_child(root, "B", Condition::of(Literal::pos(w)));
        t.add_child(root, "B", Condition::of(Literal::neg(w)));
        let engine = WorldEngine::new(&t);
        let pw = engine.normalized_worlds(10).unwrap();
        assert_eq!(pw.len(), 1, "both valuations land in one class");
        assert!(prob_eq(pw.total_probability(), 1.0));
    }
}
