//! Workspace-wide runtime configuration helpers.
//!
//! The only configuration channel besides explicit `*Config` structs is a
//! small set of environment overrides. Their parsing used to be
//! re-implemented ad hoc at every consumer (the world engine's knobs in
//! [`crate::worlds`], the benchmark quick-mode switch in `pxml-bench`);
//! [`mod@env`] is the single shared implementation, with typed errors instead
//! of silent `Option` collapses so strict callers can distinguish "unset"
//! from "set to garbage".

pub mod env {
    //! Typed parsing of `PXML_*` environment overrides.
    //!
    //! Recognized variables:
    //!
    //! * [`WORLDS_PARALLELISM`] — worker-thread cap of the factorized
    //!   world executor (`1` disables the pool);
    //! * [`WORLDS_MAX_JOINT`] — cap on joint cross-product assignments a
    //!   shard-combining consumer may materialize;
    //! * [`BENCH_QUICK`] — truthy flag shrinking benchmark workloads to
    //!   smoke-test size (any value except `0`, `false`, `off`, `no`);
    //! * [`SERVER_THREADS`] — worker-thread cap of the warehouse traffic
    //!   driver (`pxml-server`; `1` runs tenants sequentially);
    //! * [`SERVER_TENANTS`] — tenant (lane) count of the warehouse
    //!   traffic driver;
    //! * [`SERVER_LOG_CAPACITY`] — delta-log capacity of documents
    //!   registered in a warehouse (how far behind a view may fall
    //!   before maintenance falls back to a full re-prepare).

    use std::fmt;
    use std::str::FromStr;

    /// Worker-thread cap of the factorized world executor.
    pub const WORLDS_PARALLELISM: &str = "PXML_WORLDS_PARALLELISM";
    /// Joint cross-product cap of shard-combining world consumers.
    pub const WORLDS_MAX_JOINT: &str = "PXML_WORLDS_MAX_JOINT";
    /// Truthy flag shrinking benchmark workloads to smoke-test size.
    pub const BENCH_QUICK: &str = "PXML_BENCH_QUICK";
    /// Worker-thread cap of the warehouse traffic driver.
    pub const SERVER_THREADS: &str = "PXML_SERVER_THREADS";
    /// Tenant (lane) count of the warehouse traffic driver.
    pub const SERVER_TENANTS: &str = "PXML_SERVER_TENANTS";
    /// Delta-log capacity of warehouse-registered documents.
    pub const SERVER_LOG_CAPACITY: &str = "PXML_SERVER_LOG_CAPACITY";

    /// Why an environment override could not be read as a `T`.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub enum EnvError {
        /// The variable is set but its bytes are not valid Unicode.
        NotUnicode {
            /// The variable's name.
            name: &'static str,
        },
        /// The variable is set to a value `T::from_str` rejects.
        Invalid {
            /// The variable's name.
            name: &'static str,
            /// The offending value, verbatim.
            value: String,
            /// The parser's own error message.
            reason: String,
        },
    }

    impl fmt::Display for EnvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                EnvError::NotUnicode { name } => {
                    write!(f, "{name} is set to a non-Unicode value")
                }
                EnvError::Invalid {
                    name,
                    value,
                    reason,
                } => write!(f, "{name}={value:?} is invalid: {reason}"),
            }
        }
    }

    impl std::error::Error for EnvError {}

    /// Reads and parses the override `name`: `Ok(None)` when unset,
    /// `Ok(Some(value))` when set and parsable, a typed [`EnvError`]
    /// otherwise.
    pub fn parse<T>(name: &'static str) -> Result<Option<T>, EnvError>
    where
        T: FromStr,
        T::Err: fmt::Display,
    {
        match std::env::var(name) {
            Err(std::env::VarError::NotPresent) => Ok(None),
            Err(std::env::VarError::NotUnicode(_)) => Err(EnvError::NotUnicode { name }),
            Ok(value) => value
                .parse()
                .map(Some)
                .map_err(|e: T::Err| EnvError::Invalid {
                    name,
                    value,
                    reason: e.to_string(),
                }),
        }
    }

    /// [`parse`] collapsed to the historical lenient behavior: unset *and*
    /// invalid both yield `None`. Consumers whose contract is "overrides
    /// are best-effort" (the world engine's `from_env`) use this; strict
    /// consumers call [`parse`] and surface the error.
    pub fn parse_lenient<T>(name: &'static str) -> Option<T>
    where
        T: FromStr,
        T::Err: fmt::Display,
    {
        parse(name).ok().flatten()
    }

    /// Reads the override `name` as a boolean flag: unset, `0`, `false`,
    /// `off` and `no` (case-insensitive) are `false`, anything else is
    /// `true`. Never errors — a flag's presence is meaningful even when
    /// its bytes are not Unicode.
    pub fn flag(name: &'static str) -> bool {
        match std::env::var(name) {
            Err(std::env::VarError::NotPresent) => false,
            Err(std::env::VarError::NotUnicode(_)) => true,
            Ok(value) => !matches!(
                value.to_ascii_lowercase().as_str(),
                "0" | "false" | "off" | "no"
            ),
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        // Each test uses a variable name unique to it: the test harness
        // runs tests concurrently in one process and the environment is
        // shared.

        #[test]
        fn unset_parses_to_none() {
            assert_eq!(parse::<usize>("PXML_TEST_ENV_UNSET"), Ok(None));
            assert_eq!(parse_lenient::<usize>("PXML_TEST_ENV_UNSET"), None);
            assert!(!flag("PXML_TEST_ENV_UNSET"));
        }

        #[test]
        fn set_value_parses() {
            std::env::set_var("PXML_TEST_ENV_SET", "42");
            assert_eq!(parse::<usize>("PXML_TEST_ENV_SET"), Ok(Some(42)));
            assert_eq!(parse_lenient::<u128>("PXML_TEST_ENV_SET"), Some(42));
            assert!(flag("PXML_TEST_ENV_SET"));
        }

        #[test]
        fn invalid_value_is_a_typed_error() {
            std::env::set_var("PXML_TEST_ENV_BAD", "many");
            let err = parse::<usize>("PXML_TEST_ENV_BAD").unwrap_err();
            match &err {
                EnvError::Invalid { name, value, .. } => {
                    assert_eq!(*name, "PXML_TEST_ENV_BAD");
                    assert_eq!(value, "many");
                }
                other => panic!("expected Invalid, got {other:?}"),
            }
            assert!(err.to_string().contains("PXML_TEST_ENV_BAD"));
            assert_eq!(parse_lenient::<usize>("PXML_TEST_ENV_BAD"), None);
        }

        #[test]
        fn flag_recognizes_falsy_spellings() {
            for falsy in ["0", "false", "OFF", "No"] {
                std::env::set_var("PXML_TEST_ENV_FLAG", falsy);
                assert!(!flag("PXML_TEST_ENV_FLAG"), "{falsy} should be falsy");
            }
            for truthy in ["1", "true", "yes", "quick"] {
                std::env::set_var("PXML_TEST_ENV_FLAG", truthy);
                assert!(flag("PXML_TEST_ENV_FLAG"), "{truthy} should be truthy");
            }
        }
    }
}
