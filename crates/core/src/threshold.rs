//! Threshold restriction of prob-trees (Theorem 4 of the paper).
//!
//! Given a prob-tree `T` and a probability threshold `p`, the restriction
//! `JT K≥p` keeps only the possible worlds whose (normalized) probability
//! reaches the threshold. The result is a *subset* of a PW set (its
//! probabilities no longer sum to 1) and is compared with `∼sub`
//! (Definition 3). Theorem 4 shows that, in general, no prob-tree of
//! polynomial size represents the restriction — the E7 experiment measures
//! that blow-up on the paper's witness family.

use pxml_events::valuation::TooManyValuations;

use crate::probtree::ProbTree;
use crate::pwset::PossibleWorldSet;
use crate::semantics::{possible_worlds_normalized, pw_set_to_probtree, PwSetError};

/// Outcome of a threshold restriction.
#[derive(Clone, Debug)]
pub struct ThresholdRestriction {
    /// The surviving worlds (a subset of the normalized semantics; does not
    /// sum to 1 in general).
    pub worlds: PossibleWorldSet,
    /// Number of worlds of the normalized semantics before restriction.
    pub total_worlds: usize,
    /// Probability mass retained.
    pub retained_mass: f64,
}

/// Computes `JT K≥p`: normalizes the possible-world semantics of `tree` and
/// keeps the worlds with probability at least `threshold` (an exact `≥` —
/// see [`PossibleWorldSet::restrict_to_threshold`]).
///
/// Exponential in the worst case (this is inherent — see Theorem 4), but
/// the normalization runs on the factorized shard executor: each
/// co-occurrence component is enumerated independently (`Σ_c 2^{|C_i|}`
/// states) and only the condition-distinct classes are crossed, so trees
/// whose relevant events split into many small components restrict far
/// beyond the old `2^{|relevant|}` guard. `max_events` bounds the largest
/// component, the total shard work, and the joint combine.
pub fn restrict_to_threshold(
    tree: &ProbTree,
    threshold: f64,
    max_events: usize,
) -> Result<ThresholdRestriction, TooManyValuations> {
    let normalized = possible_worlds_normalized(tree, max_events)?;
    let total_worlds = normalized.len();
    let worlds = normalized.restrict_to_threshold(threshold);
    let retained_mass = worlds.total_probability();
    Ok(ThresholdRestriction {
        worlds,
        total_worlds,
        retained_mass,
    })
}

/// Represents the restriction as a prob-tree `T'` with
/// `JT K≥p ∼sub JT'K`, following Definition 3: the lost probability mass is
/// assigned to the root-only world. The construction goes through the
/// generic PW-set → prob-tree encoding, so its size is essentially the
/// total size of the surviving worlds (which Theorem 4 shows cannot be
/// avoided in general).
pub fn restriction_as_probtree(
    tree: &ProbTree,
    threshold: f64,
    max_events: usize,
) -> Result<Result<ProbTree, PwSetError>, TooManyValuations> {
    let restriction = restrict_to_threshold(tree, threshold, max_events)?;
    let root_label = tree.tree().label(tree.tree().root()).to_string();
    let missing = 1.0 - restriction.retained_mass;
    let mut completed = restriction.worlds.clone();
    if missing > pxml_events::PROB_EPS {
        completed.push(pxml_tree::DataTree::new(root_label), missing);
    }
    Ok(pw_set_to_probtree(&completed.normalized()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probtree::figure1_example;
    use pxml_events::{prob_eq, Condition, Literal};

    #[test]
    fn figure1_threshold_keeps_high_probability_worlds() {
        let t = figure1_example();
        // Worlds: 0.06, 0.70, 0.24. Threshold 0.2 keeps two of them.
        let r = restrict_to_threshold(&t, 0.2, 20).unwrap();
        assert_eq!(r.total_worlds, 3);
        assert_eq!(r.worlds.len(), 2);
        assert!(prob_eq(r.retained_mass, 0.94));
    }

    #[test]
    fn zero_threshold_keeps_everything() {
        let t = figure1_example();
        let r = restrict_to_threshold(&t, 0.0, 20).unwrap();
        assert_eq!(r.worlds.len(), 3);
        assert!(prob_eq(r.retained_mass, 1.0));
    }

    #[test]
    fn restriction_as_probtree_satisfies_sub_isomorphism() {
        let t = figure1_example();
        let restricted = restrict_to_threshold(&t, 0.2, 20).unwrap();
        let rep = restriction_as_probtree(&t, 0.2, 20).unwrap().unwrap();
        let rep_worlds = possible_worlds_normalized(&rep, 20).unwrap();
        // JT K≥p ∼sub JT'K  (Definition 3).
        assert!(restricted.worlds.isomorphic_sub(&rep_worlds, "A"));
    }

    #[test]
    fn theorem4_family_restriction_grows_exponentially() {
        // The Theorem 4 witness: root A with 2n children C_i, each with its
        // own event of probability 1/2. All worlds are equiprobable
        // (2^{-2n}); a threshold at that value keeps every world, and the
        // prob-tree produced for the restriction has one selector event per
        // world — exponential in n. Every world's probability is an exact
        // power of two (a product of 0.5 factors, no summation), so the
        // threshold can be the exact common probability — the old
        // `− 1e-12` offset only existed to compensate for the epsilon
        // slack `restrict_to_threshold` used to apply.
        let mut sizes = Vec::new();
        for n in 1..=3usize {
            let mut t = ProbTree::new("A");
            let root = t.tree().root();
            for i in 0..2 * n {
                let w = t.events_mut().fresh(0.5);
                t.add_child(root, format!("C{i}"), Condition::of(Literal::pos(w)));
            }
            let threshold = 0.5f64.powi(2 * n as i32);
            let rep = restriction_as_probtree(&t, threshold, 20).unwrap().unwrap();
            sizes.push(rep.size());
            let r = restrict_to_threshold(&t, threshold, 20).unwrap();
            assert_eq!(r.worlds.len(), 1 << (2 * n));
        }
        assert!(sizes[1] > 2 * sizes[0]);
        assert!(sizes[2] > 2 * sizes[1]);
    }

    #[test]
    fn threshold_boundary_is_exact_not_eps_padded() {
        use pxml_events::PROB_EPS;
        let t = figure1_example();
        // The middle world has probability ≈ 0.24; a threshold half an
        // epsilon below keeps it, half an epsilon above drops it (the old
        // `≥ threshold − PROB_EPS` slack kept it in both cases).
        let keep = restrict_to_threshold(&t, 0.24 - PROB_EPS / 2.0, 20).unwrap();
        assert_eq!(keep.worlds.len(), 2);
        let drop = restrict_to_threshold(&t, 0.24 + PROB_EPS / 2.0, 20).unwrap();
        assert_eq!(drop.worlds.len(), 1);
    }

    #[test]
    fn threshold_restriction_ignores_unused_declared_events() {
        // 30 declared, 2 mentioned: far beyond the legacy 2^24 guard, easy
        // for the relevant-event engine.
        let mut t = figure1_example();
        for _ in 0..28 {
            t.events_mut().fresh(0.5);
        }
        let r = restrict_to_threshold(&t, 0.2, 24).unwrap();
        assert_eq!(r.total_worlds, 3);
        assert_eq!(r.worlds.len(), 2);
        assert!(prob_eq(r.retained_mass, 0.94));
    }

    /// 18 relevant events in 6 components of 3 (one 3-literal condition
    /// each) exceed a `max_events = 16` budget for the streamed engine,
    /// but factorize into `Σ 2^3 = 48` shard states and 64 joint classes:
    /// the restriction answers, and exactly, at the class probabilities.
    #[test]
    fn factorized_threshold_handles_many_small_components() {
        let mut t = ProbTree::new("A");
        let root = t.tree().root();
        for i in 0..6 {
            let w: Vec<_> = (0..3).map(|_| t.events_mut().fresh(0.5)).collect();
            t.add_child(
                root,
                format!("C{i}"),
                Condition::from_literals(w.iter().map(|&e| Literal::pos(e))),
            );
        }
        assert_eq!(t.events().len(), 18);
        // Each C_i is present with probability 1/8; world probabilities
        // are (1/8)^k (7/8)^{6-k}. Threshold at the all-absent world's
        // probability keeps exactly that single world.
        let all_absent = (7.0f64 / 8.0).powi(6);
        let r = restrict_to_threshold(&t, all_absent, 16).unwrap();
        assert_eq!(r.total_worlds, 64);
        assert_eq!(r.worlds.len(), 1);
        assert!(prob_eq(r.retained_mass, all_absent));
    }

    #[test]
    fn high_threshold_keeps_nothing() {
        let t = figure1_example();
        let r = restrict_to_threshold(&t, 0.9, 20).unwrap();
        assert!(r.worlds.is_empty());
        assert_eq!(r.retained_mass, 0.0);
        // The prob-tree representation is then the root-only tree.
        let rep = restriction_as_probtree(&t, 0.9, 20).unwrap().unwrap();
        assert_eq!(rep.num_nodes(), 1);
    }
}
