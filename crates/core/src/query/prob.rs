//! Query evaluation on possible-world sets and prob-trees
//! (Definitions 7–8 and Theorem 1 of the paper).
//!
//! * On a PW set, a query is applied world by world; each answer keeps the
//!   probability of its world (Definition 7). The resulting collection does
//!   not sum to 1 — it is a weighted answer multiset compared with the same
//!   `∼` notion as PW sets.
//! * On a prob-tree, a **locally monotone** query is evaluated directly on
//!   the underlying data tree; each answer sub-datatree `u` is weighted by
//!   `eval(⋃_{n ∈ u} γ(n))` — the probability of the conjunction of the
//!   conditions of its nodes (Definition 8). Theorem 1 states the two
//!   agree: `Q(T) ∼ Q(JT K)`.
//!
//! The `eval` in Definition 8 is one instance of a semiring fold: the
//! prepared engine generalizes it to any [`pxml_events::Semiring`]
//! (possibility, counting, lineage, top-k proofs) via
//! [`super::engine::PreparedQuery::answers_in`], with the f64 path here
//! remaining the bit-identical [`pxml_events::Probability`] instance.

use pxml_tree::subtree::SubDataTree;
use pxml_tree::DataTree;

use crate::probtree::ProbTree;
use crate::pwset::PossibleWorldSet;

use super::engine::{QueryEngine, QueryEngineConfig};
use super::{Query, Theorem1Error};

/// One answer of a query over a prob-tree: the answer tree (materialized),
/// the node-set it came from, and its probability.
#[derive(Clone, Debug)]
pub struct ProbAnswer {
    /// The answer, materialized as an independent data tree.
    pub tree: DataTree,
    /// The answer as a node subset of the queried prob-tree.
    pub subtree: SubDataTree,
    /// `eval` of the union of the node conditions (Definition 8).
    pub probability: f64,
}

/// Evaluates a query on a possible-world set (Definition 7). The result is
/// a weighted set of answer trees; probabilities do not sum to 1.
pub fn query_pw_set(query: &dyn Query, pw: &PossibleWorldSet) -> PossibleWorldSet {
    let mut out = PossibleWorldSet::new();
    for (world, p) in pw.iter() {
        for answer in query.evaluate(world) {
            out.push(answer.to_tree(world), *p);
        }
    }
    out
}

/// Evaluates a locally monotone query on a prob-tree (Definition 8): run
/// the query on the underlying data tree, then weight every answer by the
/// probability of the conjunction of the conditions of its nodes.
///
/// The cost is `time(Q(t)) + O(|Q(t)| · |T|)` (Proposition 2).
///
/// One-shot wrapper over a default [`QueryEngine`]: prepares the query
/// and drains the full answer stream. Repeated consumers should call
/// [`QueryEngine::prepare`] themselves and reuse the
/// [`PreparedQuery`](super::engine::PreparedQuery).
#[deprecated(note = "use QueryEngine / Document")]
pub fn query_probtree(query: &dyn Query, tree: &ProbTree) -> Vec<ProbAnswer> {
    QueryEngine::new().prepare(tree, query).answers().collect()
}

/// The answers of [`query_probtree`] repackaged as a weighted world set, so
/// they can be compared (`∼`) against [`query_pw_set`] answers — this is
/// exactly the statement of Theorem 1.
pub fn query_probtree_as_pw(query: &dyn Query, tree: &ProbTree) -> PossibleWorldSet {
    QueryEngine::new().prepare(tree, query).as_pw_set()
}

/// Checks Theorem 1 on a concrete prob-tree and query by exhaustive
/// expansion of the possible worlds: returns `true` iff
/// `Q(T) ∼ Q(JT K)`. Exponential in the worst case (guarded by
/// `max_events`): the expansion runs on the factorized normalized world
/// set — per-component shards whose event-probability aggregation
/// recombines by product of the class masses — which is `∼`-equal to the
/// raw Definition 4 enumeration, and querying world-by-world commutes
/// with merging isomorphic worlds.
///
/// Wrapper over
/// [`PreparedQuery::theorem1_check`](super::engine::PreparedQuery::theorem1_check)
/// on an engine budgeted at `max_events`.
#[deprecated(note = "use QueryEngine / Document")]
pub fn check_theorem1(
    query: &dyn Query,
    tree: &ProbTree,
    max_events: usize,
) -> Result<bool, Theorem1Error> {
    QueryEngine::with_config(QueryEngineConfig::for_event_budget(max_events))
        .prepare(tree, query)
        .theorem1_check()
}

#[cfg(test)]
mod tests {
    #![allow(deprecated)] // the deprecated one-shot wrappers are the units under test

    use super::*;
    use crate::probtree::figure1_example;
    use crate::query::pattern::PatternQuery;
    use crate::semantics::possible_worlds_normalized;
    use pxml_events::prob_eq;

    #[test]
    fn query_on_figure1_probtree() {
        let t = figure1_example();
        // //C/D : C nodes with a D child, keeping the path to the root.
        let mut q = PatternQuery::new(Some("C"));
        q.add_child(q.root(), "D");
        let answers = query_probtree(&q, &t);
        assert_eq!(answers.len(), 1);
        // The answer is A→C→D with probability π(w2) = 0.7.
        assert_eq!(answers[0].tree.len(), 3);
        assert!(prob_eq(answers[0].probability, 0.7));
    }

    #[test]
    fn query_answers_keep_path_to_root() {
        let t = figure1_example();
        let q = PatternQuery::new(Some("D"));
        let answers = query_probtree(&q, &t);
        assert_eq!(answers.len(), 1);
        assert_eq!(answers[0].tree.label(answers[0].tree.root()), "A");
    }

    #[test]
    fn theorem1_holds_on_figure1_for_several_queries() {
        let t = figure1_example();
        let queries: Vec<PatternQuery> = vec![
            {
                let mut q = PatternQuery::new(Some("C"));
                q.add_child(q.root(), "D");
                q
            },
            PatternQuery::new(Some("B")),
            PatternQuery::new(Some("D")),
            {
                let mut q = PatternQuery::anchored(Some("A"));
                q.add_descendant(q.root(), "D");
                q
            },
            PatternQuery::new(Some("Z")), // no match
        ];
        for q in &queries {
            assert!(
                check_theorem1(q, &t, 20).unwrap(),
                "Theorem 1 violated for {}",
                q.describe()
            );
        }
    }

    /// Theorem 1 checked on a tree the streamed engine refuses at this
    /// budget (18 relevant events > 16) but the factorized expansion
    /// handles: 6 components of 3 events, 64 joint classes.
    #[test]
    fn theorem1_via_factorized_expansion_beyond_streamed_guard() {
        let mut t = ProbTree::new("A");
        let root = t.tree().root();
        for i in 0..6 {
            let w: Vec<_> = (0..3).map(|_| t.events_mut().fresh(0.5)).collect();
            let c = t.add_child(
                root,
                "B",
                pxml_events::Condition::from_literals(
                    w.iter().map(|&e| pxml_events::Literal::pos(e)),
                ),
            );
            t.add_child(c, format!("D{i}"), pxml_events::Condition::always());
        }
        assert_eq!(t.events().len(), 18);
        assert!(crate::worlds::WorldEngine::new(&t)
            .normalized_worlds(16)
            .is_err());
        let q = PatternQuery::new(Some("B"));
        assert!(check_theorem1(&q, &t, 16).unwrap());
    }

    #[test]
    fn query_pw_set_weights_by_world_probability() {
        let t = figure1_example();
        let pw = possible_worlds_normalized(&t, 20).unwrap();
        let q = PatternQuery::new(Some("B"));
        let answers = query_pw_set(&q, &pw);
        // B is present only in the 0.24 world.
        assert_eq!(answers.len(), 1);
        assert!(prob_eq(answers.total_probability(), 0.24));
    }

    #[test]
    fn inconsistent_answers_are_dropped_from_pw_view() {
        // Build a prob-tree where a B node and a C node carry contradictory
        // conditions; a query matching both yields probability 0.
        let mut t = ProbTree::new("A");
        let w = t.events_mut().insert("w", 0.5);
        let root = t.tree().root();
        t.add_child(
            root,
            "B",
            pxml_events::Condition::of(pxml_events::Literal::pos(w)),
        );
        t.add_child(
            root,
            "C",
            pxml_events::Condition::of(pxml_events::Literal::neg(w)),
        );
        let mut q = PatternQuery::anchored(Some("A"));
        q.add_child(q.root(), "B");
        q.add_child(q.root(), "C");
        let answers = query_probtree(&q, &t);
        assert_eq!(answers.len(), 1);
        assert_eq!(answers[0].probability, 0.0);
        assert!(query_probtree_as_pw(&q, &t).is_empty());
        assert!(check_theorem1(&q, &t, 20).unwrap());
    }

    #[test]
    fn theorem1_holds_with_joins() {
        let t = figure1_example();
        let mut q = PatternQuery::anchored(Some("A"));
        let c1 = q.add_node(q.root(), crate::query::pattern::Axis::Child, None);
        let c2 = q.add_node(q.root(), crate::query::pattern::Axis::Child, None);
        q.add_join(vec![c1, c2]);
        assert!(check_theorem1(&q, &t, 20).unwrap());
    }
}
