//! Tree-pattern queries with joins (the query language of the paper's
//! reference \[3\], used throughout Section 2).
//!
//! A pattern is itself a small tree. Every pattern node has an optional
//! label constraint (a `None` constraint is a wildcard) and is connected to
//! its parent by either a *child* or a *descendant* axis. In addition, a
//! query may contain **join constraints**: sets of pattern nodes that must
//! be matched to data nodes carrying the same label (this is what "with
//! joins" means for a data model whose only values are labels).
//!
//! A *match* is a mapping `µ` from pattern nodes to data nodes respecting
//! labels, axes and joins. Following Definition 6, the answer for a match
//! is the sub-datatree induced by the image of `µ` (closed under ancestors
//! so that the path to the root is kept); the query answer `Q(t)` is the
//! set of distinct such sub-datatrees. The mappings themselves are kept
//! (Appendix A's `µ_Q`) because updates anchor insertions and deletions on
//! a designated pattern node.

use std::collections::BTreeSet;

use pxml_tree::subtree::SubDataTree;
use pxml_tree::{DataTree, NodeId};

use super::{MonotonicityCertificate, Query};

/// Identifier of a node of the *pattern* tree (the set `N_Q` of
/// Appendix A).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PatternNodeId(pub usize);

/// The axis connecting a pattern node to its pattern parent.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Axis {
    /// The data node must be a child of the parent's match.
    #[default]
    Child,
    /// The data node must be a strict descendant of the parent's match.
    Descendant,
}

#[derive(Clone, Debug)]
struct PatternNode {
    /// Required label; `None` is a wildcard.
    label: Option<String>,
    /// Parent pattern node and the axis to it (`None` for the pattern
    /// root).
    parent: Option<(PatternNodeId, Axis)>,
}

/// A tree-pattern query with joins.
#[derive(Clone, Debug, Default)]
pub struct PatternQuery {
    nodes: Vec<PatternNode>,
    /// Each join constraint is a set of pattern nodes whose matched data
    /// nodes must all carry the same label.
    joins: Vec<Vec<PatternNodeId>>,
    /// Whether the pattern root must match the data root (anchored) or may
    /// match any node.
    anchored: bool,
}

/// One match of a pattern in a data tree: the mapping `µ_Q` from pattern
/// nodes to data nodes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PatternMatch {
    /// `mapping[i]` is the data node matched by pattern node `i`.
    pub mapping: Vec<NodeId>,
}

impl PatternMatch {
    /// The data node matched by `node`.
    pub fn node(&self, node: PatternNodeId) -> NodeId {
        self.mapping[node.0]
    }

    /// The sub-datatree induced by this match (image of the mapping, closed
    /// under ancestors).
    pub fn induced_subtree(&self, tree: &DataTree) -> SubDataTree {
        SubDataTree::from_nodes(tree, self.mapping.iter().copied())
    }
}

impl PatternQuery {
    /// Creates a pattern whose root node has the given label constraint
    /// (`None` = wildcard). The pattern root may match **any** data node.
    pub fn new(root_label: Option<&str>) -> Self {
        PatternQuery {
            nodes: vec![PatternNode {
                label: root_label.map(str::to_string),
                parent: None,
            }],
            joins: Vec::new(),
            anchored: false,
        }
    }

    /// Creates a pattern whose root must match the data-tree root.
    pub fn anchored(root_label: Option<&str>) -> Self {
        let mut q = PatternQuery::new(root_label);
        q.anchored = true;
        q
    }

    /// The pattern root.
    pub fn root(&self) -> PatternNodeId {
        PatternNodeId(0)
    }

    /// Adds a pattern node below `parent` with the given axis and label
    /// constraint, returning its id.
    pub fn add_node(
        &mut self,
        parent: PatternNodeId,
        axis: Axis,
        label: Option<&str>,
    ) -> PatternNodeId {
        assert!(parent.0 < self.nodes.len(), "unknown pattern parent");
        let id = PatternNodeId(self.nodes.len());
        self.nodes.push(PatternNode {
            label: label.map(str::to_string),
            parent: Some((parent, axis)),
        });
        id
    }

    /// Convenience: adds a child-axis node with a label constraint.
    pub fn add_child(&mut self, parent: PatternNodeId, label: &str) -> PatternNodeId {
        self.add_node(parent, Axis::Child, Some(label))
    }

    /// Convenience: adds a descendant-axis node with a label constraint.
    pub fn add_descendant(&mut self, parent: PatternNodeId, label: &str) -> PatternNodeId {
        self.add_node(parent, Axis::Descendant, Some(label))
    }

    /// Adds a join constraint: all the given pattern nodes must match data
    /// nodes with equal labels.
    pub fn add_join(&mut self, nodes: Vec<PatternNodeId>) {
        assert!(
            nodes.len() >= 2,
            "a join constraint needs at least two nodes"
        );
        self.joins.push(nodes);
    }

    /// Number of pattern nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// A pattern always has at least its root node.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The label constraint of a pattern node (`None` = wildcard).
    pub fn label(&self, node: PatternNodeId) -> Option<&str> {
        self.nodes[node.0].label.as_deref()
    }

    /// The parent of a pattern node together with the connecting axis
    /// (`None` for the pattern root).
    pub fn parent_of(&self, node: PatternNodeId) -> Option<(PatternNodeId, Axis)> {
        self.nodes[node.0].parent
    }

    /// The join constraints: each entry is a set of pattern nodes whose
    /// matched data nodes must carry equal labels.
    pub fn joins(&self) -> &[Vec<PatternNodeId>] {
        &self.joins
    }

    /// Whether the pattern root must match the data root.
    pub fn is_anchored(&self) -> bool {
        self.anchored
    }

    /// Computes all matches `µ_Q` of the pattern in `tree`.
    pub fn matches(&self, tree: &DataTree) -> Vec<PatternMatch> {
        // One pre-order index for the whole evaluation: descendant-axis
        // candidates are contiguous slices of the pre-order listing, so
        // each partial match reads a slice instead of re-collecting
        // `tree.descendants` (which made descendant patterns quadratic on
        // deep trees).
        let index = PreOrderIndex::new(tree);
        let mut results = Vec::new();
        let root_candidates: &[NodeId] = if self.anchored {
            std::slice::from_ref(&index.order[0])
        } else {
            &index.order
        };
        let mut mapping: Vec<Option<NodeId>> = vec![None; self.nodes.len()];
        for &candidate in root_candidates {
            if self.label_ok(PatternNodeId(0), tree, candidate) {
                mapping[0] = Some(candidate);
                self.extend_match(tree, &index, 1, &mut mapping, &mut results);
                mapping[0] = None;
            }
        }
        results
    }

    fn label_ok(&self, node: PatternNodeId, tree: &DataTree, data: NodeId) -> bool {
        match &self.nodes[node.0].label {
            Some(required) => tree.label(data) == required,
            None => true,
        }
    }

    fn joins_ok(&self, tree: &DataTree, mapping: &[Option<NodeId>]) -> bool {
        self.joins.iter().all(|group| {
            let labels: Vec<&str> = group
                .iter()
                .filter_map(|p| mapping[p.0].map(|d| tree.label(d)))
                .collect();
            labels.windows(2).all(|w| w[0] == w[1])
        })
    }

    fn extend_match(
        &self,
        tree: &DataTree,
        index: &PreOrderIndex,
        next: usize,
        mapping: &mut Vec<Option<NodeId>>,
        results: &mut Vec<PatternMatch>,
    ) {
        if next == self.nodes.len() {
            if self.joins_ok(tree, mapping) {
                results.push(PatternMatch {
                    mapping: mapping
                        .iter()
                        .map(|m| m.expect("complete mapping"))
                        .collect(),
                });
            }
            return;
        }
        let (parent_pattern, axis) = self.nodes[next]
            .parent
            .expect("non-root pattern nodes have a parent");
        let parent_data = mapping[parent_pattern.0].expect("parents are matched first");
        let candidates: &[NodeId] = match axis {
            Axis::Child => tree.children(parent_data),
            Axis::Descendant => index.strict_descendants(parent_data),
        };
        for &candidate in candidates {
            if self.label_ok(PatternNodeId(next), tree, candidate) {
                mapping[next] = Some(candidate);
                // Early join pruning: partial mappings must not already
                // violate a join.
                if self.joins_ok(tree, mapping) {
                    self.extend_match(tree, index, next + 1, mapping, results);
                }
                mapping[next] = None;
            }
        }
    }
}

/// Pre-order positions and subtree sizes of the reachable nodes of one
/// data tree. Any DFS pre-order lists the subtree of a node contiguously
/// right after the node itself, so the strict descendants of `n` are the
/// slice `order[pos(n) + 1 .. pos(n) + size(n)]` — O(1) to obtain, built
/// once per [`PatternQuery::matches`] call.
struct PreOrderIndex {
    order: Vec<NodeId>,
    /// Indexed by `NodeId::index()`: (position in `order`, subtree size).
    /// Entries of detached arena slots stay `(0, 0)` and are never read.
    span: Vec<(u32, u32)>,
}

impl PreOrderIndex {
    fn new(tree: &DataTree) -> Self {
        let order: Vec<NodeId> = tree.iter().collect();
        let mut span = vec![(0u32, 0u32); tree.arena_len()];
        for (pos, &node) in order.iter().enumerate() {
            span[node.index()] = (pos as u32, 1);
        }
        // Children appear after their parents in pre-order, so a reverse
        // sweep accumulates subtree sizes bottom-up.
        for &node in order.iter().rev() {
            if let Some(parent) = tree.parent(node) {
                span[parent.index()].1 += span[node.index()].1;
            }
        }
        PreOrderIndex { order, span }
    }

    fn strict_descendants(&self, node: NodeId) -> &[NodeId] {
        let (pos, size) = self.span[node.index()];
        &self.order[pos as usize + 1..pos as usize + size as usize]
    }
}

impl Query for PatternQuery {
    fn evaluate(&self, tree: &DataTree) -> Vec<SubDataTree> {
        let mut seen: BTreeSet<SubDataTree> = BTreeSet::new();
        for m in self.matches(tree) {
            seen.insert(m.induced_subtree(tree));
        }
        seen.into_iter().collect()
    }

    fn describe(&self) -> String {
        format!(
            "tree-pattern query ({} nodes, {} joins{})",
            self.nodes.len(),
            self.joins.len(),
            if self.anchored { ", anchored" } else { "" }
        )
    }

    /// A fully labeled pattern's answers bind only nodes carrying the
    /// pattern's labels (plus their ancestors, kept by the parent
    /// closure), so the label set is a sound maintenance footprint. One
    /// wildcard makes the reachable label set unbounded — `None`.
    fn label_footprint(&self) -> Option<BTreeSet<String>> {
        self.nodes.iter().map(|n| n.label.clone()).collect()
    }

    /// Positive tree patterns (with joins) are locally monotone: a match
    /// lives entirely inside its induced sub-datatree, so membership of
    /// an answer never depends on nodes outside it. The certificate is an
    /// O(|pattern|) well-formedness walk — the type only admits positive
    /// label/axis/join constraints, so every well-formed pattern is
    /// certified.
    fn monotonicity(&self) -> MonotonicityCertificate {
        for (i, node) in self.nodes.iter().enumerate() {
            match node.parent {
                None if i != 0 => {
                    return MonotonicityCertificate::Rejected {
                        reason: format!("pattern node {i} is a second root"),
                    }
                }
                Some((parent, _)) if parent.0 >= i => {
                    return MonotonicityCertificate::Rejected {
                        reason: format!("pattern node {i} precedes its parent"),
                    }
                }
                _ => {}
            }
        }
        for join in &self.joins {
            if join.iter().any(|p| p.0 >= self.nodes.len()) {
                return MonotonicityCertificate::Rejected {
                    reason: "join references an unknown pattern node".to_string(),
                };
            }
        }
        MonotonicityCertificate::Certified
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pxml_tree::builder::TreeSpec;

    /// A small "warehouse" fixture:
    /// A
    /// ├── B
    /// │   └── D
    /// ├── C
    /// │   └── D
    /// └── C
    fn fixture() -> DataTree {
        TreeSpec::node(
            "A",
            vec![
                TreeSpec::node("B", vec![TreeSpec::leaf("D")]),
                TreeSpec::node("C", vec![TreeSpec::leaf("D")]),
                TreeSpec::leaf("C"),
            ],
        )
        .build()
    }

    #[test]
    fn child_axis_matching() {
        let tree = fixture();
        // //C with a D child.
        let mut q = PatternQuery::new(Some("C"));
        q.add_child(q.root(), "D");
        let matches = q.matches(&tree);
        assert_eq!(matches.len(), 1);
        let results = q.evaluate(&tree);
        assert_eq!(results.len(), 1);
        // The answer keeps the path to the root: A, C, D.
        assert_eq!(results[0].len(), 3);
    }

    #[test]
    fn descendant_axis_matching() {
        let tree = fixture();
        // A anchored at the root with any D descendant.
        let mut q = PatternQuery::anchored(Some("A"));
        q.add_descendant(q.root(), "D");
        let matches = q.matches(&tree);
        assert_eq!(matches.len(), 2, "two D nodes below the root");
        // Two distinct sub-datatrees (through B and through C).
        assert_eq!(q.evaluate(&tree).len(), 2);
    }

    #[test]
    fn wildcard_labels() {
        let tree = fixture();
        // Any node with a D child.
        let mut q = PatternQuery::new(None);
        q.add_child(q.root(), "D");
        assert_eq!(q.matches(&tree).len(), 2);
    }

    #[test]
    fn unanchored_root_matches_everywhere() {
        let tree = fixture();
        let q = PatternQuery::new(Some("C"));
        assert_eq!(q.matches(&tree).len(), 2);
        let anchored = PatternQuery::anchored(Some("C"));
        assert_eq!(anchored.matches(&tree).len(), 0);
    }

    #[test]
    fn join_constraint_requires_equal_labels() {
        // A with two children that must carry the same label.
        let tree = TreeSpec::node(
            "A",
            vec![
                TreeSpec::leaf("X"),
                TreeSpec::leaf("X"),
                TreeSpec::leaf("Y"),
            ],
        )
        .build();
        let mut q = PatternQuery::anchored(Some("A"));
        let c1 = q.add_node(q.root(), Axis::Child, None);
        let c2 = q.add_node(q.root(), Axis::Child, None);
        q.add_join(vec![c1, c2]);
        let matches = q.matches(&tree);
        // Pairs with equal labels: (X1,X1), (X1,X2), (X2,X1), (X2,X2),
        // (Y,Y) = 5 ordered pairs.
        assert_eq!(matches.len(), 5);
        for m in &matches {
            let l1 = tree.label(m.node(c1));
            let l2 = tree.label(m.node(c2));
            assert_eq!(l1, l2);
        }
    }

    #[test]
    fn evaluate_deduplicates_subtrees() {
        // Two matches mapping different pattern nodes to the same data
        // nodes induce the same sub-datatree.
        let tree = TreeSpec::node("A", vec![TreeSpec::leaf("X"), TreeSpec::leaf("X")]).build();
        let mut q = PatternQuery::anchored(Some("A"));
        q.add_node(q.root(), Axis::Child, Some("X"));
        q.add_node(q.root(), Axis::Child, Some("X"));
        // 4 matches (each pattern child can go to either X), but only 3
        // distinct node sets: {X1}, {X2}, {X1, X2}... plus the root, and
        // actually {X1,X1} collapses to {A,X1}.
        let matches = q.matches(&tree);
        assert_eq!(matches.len(), 4);
        let results = q.evaluate(&tree);
        assert_eq!(results.len(), 3);
    }

    #[test]
    fn no_match_returns_empty_answer() {
        let tree = fixture();
        let mut q = PatternQuery::new(Some("Z"));
        q.add_child(q.root(), "D");
        assert!(q.matches(&tree).is_empty());
        assert!(q.evaluate(&tree).is_empty());
    }

    #[test]
    fn describe_mentions_shape() {
        let mut q = PatternQuery::anchored(Some("A"));
        let c = q.add_child(q.root(), "B");
        let d = q.add_child(q.root(), "C");
        q.add_join(vec![c, d]);
        let text = q.describe();
        assert!(text.contains("3 nodes"));
        assert!(text.contains("1 joins"));
        assert!(text.contains("anchored"));
    }

    #[test]
    #[should_panic(expected = "at least two nodes")]
    fn join_with_single_node_is_rejected() {
        let mut q = PatternQuery::new(None);
        let root = q.root();
        q.add_join(vec![root]);
    }

    /// Reference matcher: identical backtracking, but descendant-axis
    /// candidates re-collected via `tree.descendants` per partial match
    /// (the pre-index behaviour). Ground truth for the span-index path.
    fn matches_naive(q: &PatternQuery, tree: &DataTree) -> Vec<PatternMatch> {
        fn extend(
            q: &PatternQuery,
            tree: &DataTree,
            next: usize,
            mapping: &mut Vec<Option<NodeId>>,
            results: &mut Vec<PatternMatch>,
        ) {
            if next == q.nodes.len() {
                if q.joins_ok(tree, mapping) {
                    results.push(PatternMatch {
                        mapping: mapping.iter().map(|m| m.unwrap()).collect(),
                    });
                }
                return;
            }
            let (parent_pattern, axis) = q.nodes[next].parent.unwrap();
            let parent_data = mapping[parent_pattern.0].unwrap();
            let candidates: Vec<NodeId> = match axis {
                Axis::Child => tree.children(parent_data).to_vec(),
                Axis::Descendant => {
                    let mut d = tree.descendants(parent_data);
                    d.retain(|&n| n != parent_data);
                    d
                }
            };
            for candidate in candidates {
                if q.label_ok(PatternNodeId(next), tree, candidate) {
                    mapping[next] = Some(candidate);
                    if q.joins_ok(tree, mapping) {
                        extend(q, tree, next + 1, mapping, results);
                    }
                    mapping[next] = None;
                }
            }
        }
        let mut results = Vec::new();
        let root_candidates: Vec<NodeId> = if q.anchored {
            vec![tree.root()]
        } else {
            tree.iter().collect()
        };
        let mut mapping: Vec<Option<NodeId>> = vec![None; q.nodes.len()];
        for candidate in root_candidates {
            if q.label_ok(PatternNodeId(0), tree, candidate) {
                mapping[0] = Some(candidate);
                extend(q, tree, 1, &mut mapping, &mut results);
                mapping[0] = None;
            }
        }
        results
    }

    /// The span index serves exactly the matches the per-partial-match
    /// `descendants` collection used to, on a deep path where the
    /// quadratic behaviour was worst.
    #[test]
    fn descendant_index_agrees_with_naive_on_deep_paths() {
        let mut tree = DataTree::new("A");
        let mut cur = tree.root();
        for i in 0..200 {
            cur = tree.add_child(cur, if i % 7 == 0 { "M" } else { "A" });
        }
        let mut q = PatternQuery::new(None);
        q.add_descendant(q.root(), "M");
        let fast = q.matches(&tree);
        let naive = matches_naive(&q, &tree);
        assert_eq!(fast.len(), naive.len());
        let key = |ms: &[PatternMatch]| {
            let mut v: Vec<Vec<NodeId>> = ms.iter().map(|m| m.mapping.clone()).collect();
            v.sort();
            v
        };
        assert_eq!(key(&fast), key(&naive));
        // 29 M nodes, each a strict descendant of everything above it.
        assert!(!fast.is_empty());
    }

    #[test]
    fn descendant_index_agrees_with_naive_on_branchy_trees() {
        // A deterministic pseudo-random shape with repeated labels, two
        // descendant axes and a join — exercises slices at every depth.
        let mut tree = DataTree::new("R");
        let mut nodes = vec![tree.root()];
        let mut state = 0x9E37u32;
        for _ in 0..120 {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            let parent = nodes[(state >> 8) as usize % nodes.len()];
            let label = ["A", "B", "C"][(state >> 3) as usize % 3];
            nodes.push(tree.add_child(parent, label));
        }
        let mut q = PatternQuery::new(Some("A"));
        let x = q.add_node(q.root(), Axis::Descendant, None);
        let y = q.add_node(q.root(), Axis::Descendant, None);
        q.add_join(vec![x, y]);
        let fast = q.matches(&tree);
        let naive = matches_naive(&q, &tree);
        let key = |ms: &[PatternMatch]| {
            let mut v: Vec<Vec<NodeId>> = ms.iter().map(|m| m.mapping.clone()).collect();
            v.sort();
            v
        };
        assert_eq!(key(&fast), key(&naive));
    }

    /// The index must ignore detached arena slots (matching runs on trees
    /// that have been updated in place).
    #[test]
    fn matching_after_detach_skips_detached_subtrees() {
        let mut tree = DataTree::new("A");
        let root = tree.root();
        let b = tree.add_child(root, "B");
        tree.add_child(b, "D");
        let c = tree.add_child(root, "C");
        tree.add_child(c, "D");
        tree.detach(b);
        let mut q = PatternQuery::new(None);
        q.add_descendant(q.root(), "D");
        // Only C's D remains reachable: matched from A and from C.
        assert_eq!(q.matches(&tree).len(), 2);
    }

    #[test]
    fn results_are_subdatatrees() {
        // Every answer must contain the data root and be closed under
        // parents (Definition 5 / 6).
        let tree = fixture();
        let q = PatternQuery::new(Some("D"));
        let _ = q;
        let q = PatternQuery::new(Some("D"));
        for sub in q.evaluate(&tree) {
            assert!(sub.contains(tree.root()));
            for n in sub.nodes() {
                if let Some(p) = tree.parent(n) {
                    assert!(sub.contains(p));
                }
            }
        }
    }
}
