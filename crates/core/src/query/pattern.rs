//! Tree-pattern queries with joins (the query language of the paper's
//! reference \[3\], used throughout Section 2).
//!
//! A pattern is itself a small tree. Every pattern node has an optional
//! label constraint (a `None` constraint is a wildcard) and is connected to
//! its parent by either a *child* or a *descendant* axis. In addition, a
//! query may contain **join constraints**: sets of pattern nodes that must
//! be matched to data nodes carrying the same label (this is what "with
//! joins" means for a data model whose only values are labels).
//!
//! A *match* is a mapping `µ` from pattern nodes to data nodes respecting
//! labels, axes and joins. Following Definition 6, the answer for a match
//! is the sub-datatree induced by the image of `µ` (closed under ancestors
//! so that the path to the root is kept); the query answer `Q(t)` is the
//! set of distinct such sub-datatrees. The mappings themselves are kept
//! (Appendix A's `µ_Q`) because updates anchor insertions and deletions on
//! a designated pattern node.

use std::collections::BTreeSet;

use pxml_tree::subtree::SubDataTree;
use pxml_tree::{DataTree, NodeId};

use super::Query;

/// Identifier of a node of the *pattern* tree (the set `N_Q` of
/// Appendix A).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PatternNodeId(pub usize);

/// The axis connecting a pattern node to its pattern parent.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Axis {
    /// The data node must be a child of the parent's match.
    #[default]
    Child,
    /// The data node must be a strict descendant of the parent's match.
    Descendant,
}

#[derive(Clone, Debug)]
struct PatternNode {
    /// Required label; `None` is a wildcard.
    label: Option<String>,
    /// Parent pattern node and the axis to it (`None` for the pattern
    /// root).
    parent: Option<(PatternNodeId, Axis)>,
}

/// A tree-pattern query with joins.
#[derive(Clone, Debug, Default)]
pub struct PatternQuery {
    nodes: Vec<PatternNode>,
    /// Each join constraint is a set of pattern nodes whose matched data
    /// nodes must all carry the same label.
    joins: Vec<Vec<PatternNodeId>>,
    /// Whether the pattern root must match the data root (anchored) or may
    /// match any node.
    anchored: bool,
}

/// One match of a pattern in a data tree: the mapping `µ_Q` from pattern
/// nodes to data nodes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PatternMatch {
    /// `mapping[i]` is the data node matched by pattern node `i`.
    pub mapping: Vec<NodeId>,
}

impl PatternMatch {
    /// The data node matched by `node`.
    pub fn node(&self, node: PatternNodeId) -> NodeId {
        self.mapping[node.0]
    }

    /// The sub-datatree induced by this match (image of the mapping, closed
    /// under ancestors).
    pub fn induced_subtree(&self, tree: &DataTree) -> SubDataTree {
        SubDataTree::from_nodes(tree, self.mapping.iter().copied())
    }
}

impl PatternQuery {
    /// Creates a pattern whose root node has the given label constraint
    /// (`None` = wildcard). The pattern root may match **any** data node.
    pub fn new(root_label: Option<&str>) -> Self {
        PatternQuery {
            nodes: vec![PatternNode {
                label: root_label.map(str::to_string),
                parent: None,
            }],
            joins: Vec::new(),
            anchored: false,
        }
    }

    /// Creates a pattern whose root must match the data-tree root.
    pub fn anchored(root_label: Option<&str>) -> Self {
        let mut q = PatternQuery::new(root_label);
        q.anchored = true;
        q
    }

    /// The pattern root.
    pub fn root(&self) -> PatternNodeId {
        PatternNodeId(0)
    }

    /// Adds a pattern node below `parent` with the given axis and label
    /// constraint, returning its id.
    pub fn add_node(
        &mut self,
        parent: PatternNodeId,
        axis: Axis,
        label: Option<&str>,
    ) -> PatternNodeId {
        assert!(parent.0 < self.nodes.len(), "unknown pattern parent");
        let id = PatternNodeId(self.nodes.len());
        self.nodes.push(PatternNode {
            label: label.map(str::to_string),
            parent: Some((parent, axis)),
        });
        id
    }

    /// Convenience: adds a child-axis node with a label constraint.
    pub fn add_child(&mut self, parent: PatternNodeId, label: &str) -> PatternNodeId {
        self.add_node(parent, Axis::Child, Some(label))
    }

    /// Convenience: adds a descendant-axis node with a label constraint.
    pub fn add_descendant(&mut self, parent: PatternNodeId, label: &str) -> PatternNodeId {
        self.add_node(parent, Axis::Descendant, Some(label))
    }

    /// Adds a join constraint: all the given pattern nodes must match data
    /// nodes with equal labels.
    pub fn add_join(&mut self, nodes: Vec<PatternNodeId>) {
        assert!(
            nodes.len() >= 2,
            "a join constraint needs at least two nodes"
        );
        self.joins.push(nodes);
    }

    /// Number of pattern nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// A pattern always has at least its root node.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Computes all matches `µ_Q` of the pattern in `tree`.
    pub fn matches(&self, tree: &DataTree) -> Vec<PatternMatch> {
        let mut results = Vec::new();
        let root_candidates: Vec<NodeId> = if self.anchored {
            vec![tree.root()]
        } else {
            tree.iter().collect()
        };
        let mut mapping: Vec<Option<NodeId>> = vec![None; self.nodes.len()];
        for candidate in root_candidates {
            if self.label_ok(PatternNodeId(0), tree, candidate) {
                mapping[0] = Some(candidate);
                self.extend_match(tree, 1, &mut mapping, &mut results);
                mapping[0] = None;
            }
        }
        results
    }

    fn label_ok(&self, node: PatternNodeId, tree: &DataTree, data: NodeId) -> bool {
        match &self.nodes[node.0].label {
            Some(required) => tree.label(data) == required,
            None => true,
        }
    }

    fn joins_ok(&self, tree: &DataTree, mapping: &[Option<NodeId>]) -> bool {
        self.joins.iter().all(|group| {
            let labels: Vec<&str> = group
                .iter()
                .filter_map(|p| mapping[p.0].map(|d| tree.label(d)))
                .collect();
            labels.windows(2).all(|w| w[0] == w[1])
        })
    }

    fn extend_match(
        &self,
        tree: &DataTree,
        next: usize,
        mapping: &mut Vec<Option<NodeId>>,
        results: &mut Vec<PatternMatch>,
    ) {
        if next == self.nodes.len() {
            if self.joins_ok(tree, mapping) {
                results.push(PatternMatch {
                    mapping: mapping
                        .iter()
                        .map(|m| m.expect("complete mapping"))
                        .collect(),
                });
            }
            return;
        }
        let (parent_pattern, axis) = self.nodes[next]
            .parent
            .expect("non-root pattern nodes have a parent");
        let parent_data = mapping[parent_pattern.0].expect("parents are matched first");
        let candidates: Vec<NodeId> = match axis {
            Axis::Child => tree.children(parent_data).to_vec(),
            Axis::Descendant => {
                let mut d = tree.descendants(parent_data);
                d.retain(|&n| n != parent_data);
                d
            }
        };
        for candidate in candidates {
            if self.label_ok(PatternNodeId(next), tree, candidate) {
                mapping[next] = Some(candidate);
                // Early join pruning: partial mappings must not already
                // violate a join.
                if self.joins_ok(tree, mapping) {
                    self.extend_match(tree, next + 1, mapping, results);
                }
                mapping[next] = None;
            }
        }
    }
}

impl Query for PatternQuery {
    fn evaluate(&self, tree: &DataTree) -> Vec<SubDataTree> {
        let mut seen: BTreeSet<SubDataTree> = BTreeSet::new();
        for m in self.matches(tree) {
            seen.insert(m.induced_subtree(tree));
        }
        seen.into_iter().collect()
    }

    fn describe(&self) -> String {
        format!(
            "tree-pattern query ({} nodes, {} joins{})",
            self.nodes.len(),
            self.joins.len(),
            if self.anchored { ", anchored" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pxml_tree::builder::TreeSpec;

    /// A small "warehouse" fixture:
    /// A
    /// ├── B
    /// │   └── D
    /// ├── C
    /// │   └── D
    /// └── C
    fn fixture() -> DataTree {
        TreeSpec::node(
            "A",
            vec![
                TreeSpec::node("B", vec![TreeSpec::leaf("D")]),
                TreeSpec::node("C", vec![TreeSpec::leaf("D")]),
                TreeSpec::leaf("C"),
            ],
        )
        .build()
    }

    #[test]
    fn child_axis_matching() {
        let tree = fixture();
        // //C with a D child.
        let mut q = PatternQuery::new(Some("C"));
        q.add_child(q.root(), "D");
        let matches = q.matches(&tree);
        assert_eq!(matches.len(), 1);
        let results = q.evaluate(&tree);
        assert_eq!(results.len(), 1);
        // The answer keeps the path to the root: A, C, D.
        assert_eq!(results[0].len(), 3);
    }

    #[test]
    fn descendant_axis_matching() {
        let tree = fixture();
        // A anchored at the root with any D descendant.
        let mut q = PatternQuery::anchored(Some("A"));
        q.add_descendant(q.root(), "D");
        let matches = q.matches(&tree);
        assert_eq!(matches.len(), 2, "two D nodes below the root");
        // Two distinct sub-datatrees (through B and through C).
        assert_eq!(q.evaluate(&tree).len(), 2);
    }

    #[test]
    fn wildcard_labels() {
        let tree = fixture();
        // Any node with a D child.
        let mut q = PatternQuery::new(None);
        q.add_child(q.root(), "D");
        assert_eq!(q.matches(&tree).len(), 2);
    }

    #[test]
    fn unanchored_root_matches_everywhere() {
        let tree = fixture();
        let q = PatternQuery::new(Some("C"));
        assert_eq!(q.matches(&tree).len(), 2);
        let anchored = PatternQuery::anchored(Some("C"));
        assert_eq!(anchored.matches(&tree).len(), 0);
    }

    #[test]
    fn join_constraint_requires_equal_labels() {
        // A with two children that must carry the same label.
        let tree = TreeSpec::node(
            "A",
            vec![
                TreeSpec::leaf("X"),
                TreeSpec::leaf("X"),
                TreeSpec::leaf("Y"),
            ],
        )
        .build();
        let mut q = PatternQuery::anchored(Some("A"));
        let c1 = q.add_node(q.root(), Axis::Child, None);
        let c2 = q.add_node(q.root(), Axis::Child, None);
        q.add_join(vec![c1, c2]);
        let matches = q.matches(&tree);
        // Pairs with equal labels: (X1,X1), (X1,X2), (X2,X1), (X2,X2),
        // (Y,Y) = 5 ordered pairs.
        assert_eq!(matches.len(), 5);
        for m in &matches {
            let l1 = tree.label(m.node(c1));
            let l2 = tree.label(m.node(c2));
            assert_eq!(l1, l2);
        }
    }

    #[test]
    fn evaluate_deduplicates_subtrees() {
        // Two matches mapping different pattern nodes to the same data
        // nodes induce the same sub-datatree.
        let tree = TreeSpec::node("A", vec![TreeSpec::leaf("X"), TreeSpec::leaf("X")]).build();
        let mut q = PatternQuery::anchored(Some("A"));
        q.add_node(q.root(), Axis::Child, Some("X"));
        q.add_node(q.root(), Axis::Child, Some("X"));
        // 4 matches (each pattern child can go to either X), but only 3
        // distinct node sets: {X1}, {X2}, {X1, X2}... plus the root, and
        // actually {X1,X1} collapses to {A,X1}.
        let matches = q.matches(&tree);
        assert_eq!(matches.len(), 4);
        let results = q.evaluate(&tree);
        assert_eq!(results.len(), 3);
    }

    #[test]
    fn no_match_returns_empty_answer() {
        let tree = fixture();
        let mut q = PatternQuery::new(Some("Z"));
        q.add_child(q.root(), "D");
        assert!(q.matches(&tree).is_empty());
        assert!(q.evaluate(&tree).is_empty());
    }

    #[test]
    fn describe_mentions_shape() {
        let mut q = PatternQuery::anchored(Some("A"));
        let c = q.add_child(q.root(), "B");
        let d = q.add_child(q.root(), "C");
        q.add_join(vec![c, d]);
        let text = q.describe();
        assert!(text.contains("3 nodes"));
        assert!(text.contains("1 joins"));
        assert!(text.contains("anchored"));
    }

    #[test]
    #[should_panic(expected = "at least two nodes")]
    fn join_with_single_node_is_rejected() {
        let mut q = PatternQuery::new(None);
        let root = q.root();
        q.add_join(vec![root]);
    }

    #[test]
    fn results_are_subdatatrees() {
        // Every answer must contain the data root and be closed under
        // parents (Definition 5 / 6).
        let tree = fixture();
        let q = PatternQuery::new(Some("D"));
        let _ = q;
        let q = PatternQuery::new(Some("D"));
        for sub in q.evaluate(&tree) {
            assert!(sub.contains(tree.root()));
            for n in sub.nodes() {
                if let Some(p) = tree.parent(n) {
                    assert!(sub.contains(p));
                }
            }
        }
    }
}
