//! Queries over data trees, possible-world sets and prob-trees
//! (Definitions 5–8, Theorem 1 and Proposition 2 of the paper).
//!
//! A query maps a data tree `t` to a set of *sub-datatrees* of `t`
//! (Definition 6). The class the paper's algorithms support is the
//! **locally monotone** queries: membership of a sub-datatree `u` in the
//! answer only depends on `u` and not on the rest of the tree
//! (`u ∈ Q(t) ⇔ u ∈ Q(t')` whenever `u ≤ t' ≤ t`). Tree-pattern queries
//! with joins ([`pattern::PatternQuery`]) are locally monotone; queries
//! with negation are not.
//!
//! Evaluation over prob-trees goes through the [`engine::QueryEngine`]:
//! [`engine::QueryEngine::prepare`] computes the match set and per-answer
//! condition unions once, and the returned [`engine::PreparedQuery`]
//! serves streaming, top-k, threshold, aggregate and Theorem 1 consumers
//! from that shared state. The free functions of [`prob`] and [`ranked`]
//! are thin one-shot wrappers over a default engine.

pub mod engine;
pub mod monotone;
pub mod pattern;
pub mod prob;
pub mod ranked;

pub use engine::{
    AnswerSet, FallbackReason, MaintainError, MaintainOutcome, MaintainStats, PreparedQuery,
    QueryEngine, QueryEngineConfig, QueryHints, SelectionStats, SemiringCacheStats, TieBreak,
};

use pxml_events::valuation::TooManyValuations;
use pxml_tree::subtree::SubDataTree;
use pxml_tree::DataTree;

/// A *static* local-monotonicity verdict for a query (Definition 6 of the
/// paper): whether membership of a sub-datatree in the answer can be
/// decided from the sub-datatree alone.
///
/// The certificate is syntactic — it is produced in O(|query|) without
/// evaluating the query on any tree — and sound in one direction:
/// [`Certified`](MonotonicityCertificate::Certified) implies semantic
/// local monotonicity (property-tested against
/// [`monotone::is_locally_monotone_on`]), while
/// [`Rejected`](MonotonicityCertificate::Rejected) means the query's
/// syntax puts it outside the locally monotone class, so the Theorem 1
/// construction must not be trusted.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MonotonicityCertificate {
    /// The query is syntactically certified locally monotone (e.g. a
    /// positive tree-pattern query).
    Certified,
    /// The query is statically known *not* to be locally monotone; the
    /// reason is human-readable.
    Rejected {
        /// Why the certificate was refused (e.g. "negation on label X").
        reason: String,
    },
    /// The implementation makes no static claim (default for foreign
    /// `Query` impls); consumers fall back to runtime checks.
    Unknown,
}

/// Error returned by the engine's Theorem 1 check
/// ([`engine::PreparedQuery::theorem1_check`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Theorem1Error {
    /// The static pass rejected the query's local-monotonicity
    /// certificate, so the Theorem 1 construction does not apply and the
    /// (exponential) cross-check was not attempted.
    NotCertifiedMonotone {
        /// The reason carried by the query's
        /// [`MonotonicityCertificate::Rejected`] certificate.
        reason: String,
    },
    /// The possible-world expansion needed by the cross-check exceeds the
    /// configured event budget.
    TooManyValuations(TooManyValuations),
}

impl std::fmt::Display for Theorem1Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Theorem1Error::NotCertifiedMonotone { reason } => {
                write!(f, "query not certified locally monotone: {reason}")
            }
            Theorem1Error::TooManyValuations(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for Theorem1Error {}

impl From<TooManyValuations> for Theorem1Error {
    fn from(e: TooManyValuations) -> Self {
        Theorem1Error::TooManyValuations(e)
    }
}

/// A query over data trees (Definition 6): for every data tree `t`,
/// `evaluate(t)` returns a set of sub-datatrees of `t`.
///
/// Implementations must return each sub-datatree at most once (set
/// semantics on node-sets).
///
/// `Send + Sync` is a supertrait: queries are immutable descriptions, and
/// the warehouse server shares `Arc<dyn Query>`-backed prepared state
/// across reader threads ([`engine::QueryEngine::prepare_doc_shared`]).
/// Impls that count calls for tests use atomics, not `Cell`.
pub trait Query: Send + Sync {
    /// Evaluates the query, returning the answer sub-datatrees.
    fn evaluate(&self, tree: &DataTree) -> Vec<SubDataTree>;

    /// A short human-readable description (used in benchmark tables).
    fn describe(&self) -> String {
        "query".to_string()
    }

    /// The query's static local-monotonicity certificate. The default
    /// makes no claim; implementations that can decide the property from
    /// their syntax should override it.
    fn monotonicity(&self) -> MonotonicityCertificate {
        MonotonicityCertificate::Unknown
    }

    /// The query's *label footprint*: a finite label set such that every
    /// node any answer can ever contain is either labeled from the set or
    /// an ancestor of such a node. `Some(labels)` licenses incremental
    /// maintenance ([`engine::PreparedQuery::maintain`]): an update delta
    /// inserting and removing only labels outside the set provably
    /// preserves the match set. `None` (the default, and the only sound
    /// answer for label wildcards) forces maintenance to re-prepare.
    fn label_footprint(&self) -> Option<std::collections::BTreeSet<String>> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pxml_tree::builder::TreeSpec;

    /// A trivial query returning the root-only sub-datatree of every tree —
    /// used to exercise the trait object path.
    struct RootQuery;

    impl Query for RootQuery {
        fn evaluate(&self, tree: &DataTree) -> Vec<SubDataTree> {
            vec![SubDataTree::root_only(tree)]
        }
    }

    #[test]
    fn trait_objects_work() {
        let q: Box<dyn Query> = Box::new(RootQuery);
        let t = TreeSpec::node("A", vec![TreeSpec::leaf("B")]).build();
        let results = q.evaluate(&t);
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].len(), 1);
        assert_eq!(q.describe(), "query");
        assert_eq!(q.monotonicity(), MonotonicityCertificate::Unknown);
    }
}
