//! Queries over data trees, possible-world sets and prob-trees
//! (Definitions 5–8, Theorem 1 and Proposition 2 of the paper).
//!
//! A query maps a data tree `t` to a set of *sub-datatrees* of `t`
//! (Definition 6). The class the paper's algorithms support is the
//! **locally monotone** queries: membership of a sub-datatree `u` in the
//! answer only depends on `u` and not on the rest of the tree
//! (`u ∈ Q(t) ⇔ u ∈ Q(t')` whenever `u ≤ t' ≤ t`). Tree-pattern queries
//! with joins ([`pattern::PatternQuery`]) are locally monotone; queries
//! with negation are not.
//!
//! Evaluation over prob-trees goes through the [`engine::QueryEngine`]:
//! [`engine::QueryEngine::prepare`] computes the match set and per-answer
//! condition unions once, and the returned [`engine::PreparedQuery`]
//! serves streaming, top-k, threshold, aggregate and Theorem 1 consumers
//! from that shared state. The free functions of [`prob`] and [`ranked`]
//! are thin one-shot wrappers over a default engine.

pub mod engine;
pub mod monotone;
pub mod pattern;
pub mod prob;
pub mod ranked;

pub use engine::{
    AnswerSet, PreparedQuery, QueryEngine, QueryEngineConfig, SelectionStats, TieBreak,
};

use pxml_tree::subtree::SubDataTree;
use pxml_tree::DataTree;

/// A query over data trees (Definition 6): for every data tree `t`,
/// `evaluate(t)` returns a set of sub-datatrees of `t`.
///
/// Implementations must return each sub-datatree at most once (set
/// semantics on node-sets).
pub trait Query {
    /// Evaluates the query, returning the answer sub-datatrees.
    fn evaluate(&self, tree: &DataTree) -> Vec<SubDataTree>;

    /// A short human-readable description (used in benchmark tables).
    fn describe(&self) -> String {
        "query".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pxml_tree::builder::TreeSpec;

    /// A trivial query returning the root-only sub-datatree of every tree —
    /// used to exercise the trait object path.
    struct RootQuery;

    impl Query for RootQuery {
        fn evaluate(&self, tree: &DataTree) -> Vec<SubDataTree> {
            vec![SubDataTree::root_only(tree)]
        }
    }

    #[test]
    fn trait_objects_work() {
        let q: Box<dyn Query> = Box::new(RootQuery);
        let t = TreeSpec::node("A", vec![TreeSpec::leaf("B")]).build();
        let results = q.evaluate(&t);
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].len(), 1);
        assert_eq!(q.describe(), "query");
    }
}
