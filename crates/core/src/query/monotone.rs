//! Verification helpers for *local monotonicity* (Definition 6).
//!
//! A query `Q` is locally monotone iff for any data trees `u ≤ t' ≤ t`,
//! `u ∈ Q(t) ⇔ u ∈ Q(t')` — equivalently `Q(t') = Q(t) ∩ Sub(t')`.
//! Local monotonicity is a *semantic* property; this module provides an
//! exhaustive checker over all sub-datatrees of a given (small) tree, used
//! by tests to confirm that [`crate::query::pattern::PatternQuery`] is
//! locally monotone and that a negation query is not.

use std::collections::BTreeSet;

use pxml_tree::subtree::{enumerate_subdatatrees, SubDataTree};
use pxml_tree::{DataTree, NodeId};

use super::{MonotonicityCertificate, Query};

/// Exhaustively checks condition (ii) of Definition 6 on one tree `t`:
/// for every sub-datatree `t'` of `t`, `Q(t') = Q(t) ∩ Sub(t')`.
///
/// Exponential in the size of `t` — intended for tests on small trees.
pub fn is_locally_monotone_on(query: &dyn Query, tree: &DataTree) -> bool {
    let answers_on_t: Vec<SubDataTree> = query.evaluate(tree);
    for sub in enumerate_subdatatrees(tree) {
        // Materialize t' and remember the correspondence from t'-nodes back
        // to t-nodes so that answers can be compared as node sets of t.
        let keep: BTreeSet<NodeId> = sub.nodes().collect();
        let (t_prime, mapping) = tree.extract(&|n| keep.contains(&n));
        // mapping: old (t) node -> new (t') node. Invert it.
        let mut back: std::collections::HashMap<NodeId, NodeId> = std::collections::HashMap::new();
        for (old, new) in &mapping {
            back.insert(*new, *old);
        }

        // Q(t'), expressed as node sets of t.
        let answers_on_t_prime: BTreeSet<SubDataTree> = query
            .evaluate(&t_prime)
            .into_iter()
            .map(|a| SubDataTree::from_nodes(tree, a.nodes().map(|n| back[&n])))
            .collect();

        // Q(t) ∩ Sub(t'): the answers of Q(t) fully contained in t'.
        let restricted: BTreeSet<SubDataTree> = answers_on_t
            .iter()
            .filter(|a| a.nodes().all(|n| keep.contains(&n)))
            .cloned()
            .collect();

        if answers_on_t_prime != restricted {
            return false;
        }
    }
    true
}

/// A deliberately **non**-locally-monotone query used in tests and in the
/// documentation of the model's limits: it returns the root-only
/// sub-datatree iff the tree contains *no* node labeled `forbidden`
/// (negation).
#[derive(Clone, Debug)]
pub struct NegationQuery {
    /// Label whose absence is required.
    pub forbidden: String,
}

impl Query for NegationQuery {
    fn evaluate(&self, tree: &DataTree) -> Vec<SubDataTree> {
        if tree.iter().any(|n| tree.label(n) == self.forbidden) {
            Vec::new()
        } else {
            vec![SubDataTree::root_only(tree)]
        }
    }

    fn describe(&self) -> String {
        format!("negation query (no {} anywhere)", self.forbidden)
    }

    /// Negation makes answer membership depend on the *absence* of nodes
    /// outside the answer, so the static pass rejects the certificate.
    fn monotonicity(&self) -> MonotonicityCertificate {
        MonotonicityCertificate::Rejected {
            reason: format!(
                "negation on label {:?}: answers depend on the absence of nodes outside them",
                self.forbidden
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::pattern::PatternQuery;
    use pxml_tree::builder::TreeSpec;

    fn fixture() -> DataTree {
        TreeSpec::node(
            "A",
            vec![
                TreeSpec::node("B", vec![TreeSpec::leaf("D")]),
                TreeSpec::node("C", vec![TreeSpec::leaf("D")]),
            ],
        )
        .build()
    }

    #[test]
    fn pattern_queries_are_locally_monotone() {
        let tree = fixture();
        let queries = vec![
            {
                let mut q = PatternQuery::new(Some("C"));
                q.add_child(q.root(), "D");
                q
            },
            PatternQuery::new(Some("D")),
            {
                let mut q = PatternQuery::anchored(Some("A"));
                q.add_descendant(q.root(), "D");
                q
            },
        ];
        for q in &queries {
            assert!(
                is_locally_monotone_on(q, &tree),
                "{} should be locally monotone",
                q.describe()
            );
        }
    }

    #[test]
    fn pattern_query_with_joins_is_locally_monotone() {
        let tree = TreeSpec::node(
            "A",
            vec![
                TreeSpec::leaf("X"),
                TreeSpec::leaf("X"),
                TreeSpec::leaf("Y"),
            ],
        )
        .build();
        let mut q = PatternQuery::anchored(Some("A"));
        let c1 = q.add_node(q.root(), crate::query::pattern::Axis::Child, None);
        let c2 = q.add_node(q.root(), crate::query::pattern::Axis::Child, None);
        q.add_join(vec![c1, c2]);
        assert!(is_locally_monotone_on(&q, &tree));
    }

    #[test]
    fn negation_query_is_not_locally_monotone() {
        // On the fixture, removing the B branch changes whether the
        // root-only answer is returned, violating local monotonicity.
        let tree = TreeSpec::node("A", vec![TreeSpec::leaf("B"), TreeSpec::leaf("C")]).build();
        let q = NegationQuery {
            forbidden: "B".to_string(),
        };
        assert!(!is_locally_monotone_on(&q, &tree));
    }

    /// Local monotonicity is exactly the precondition of the query
    /// engine's Definition-8 weighting: for the (non-locally-monotone)
    /// negation query, the static pass rejects the certificate and
    /// `theorem1_check` returns the typed error *without* enumerating any
    /// possible world.
    #[test]
    fn engine_theorem1_check_detects_non_locally_monotone_queries() {
        use crate::probtree::ProbTree;
        use crate::query::engine::QueryEngine;
        use crate::query::Theorem1Error;
        use pxml_events::{Condition, Literal};

        let mut t = ProbTree::new("A");
        let w = t.events_mut().insert("w", 0.5);
        let root = t.tree().root();
        t.add_child(root, "B", Condition::of(Literal::pos(w)));
        let q = NegationQuery {
            forbidden: "B".to_string(),
        };
        // Directly on the underlying tree, B is present, so the prepared
        // match set is empty; but the w=false world (mass 0.5) answers —
        // the static certificate catches this before any enumeration.
        let engine = QueryEngine::new();
        let prepared = engine.prepare(&t, &q);
        assert!(prepared.is_empty());
        match prepared.theorem1_check() {
            Err(Theorem1Error::NotCertifiedMonotone { reason }) => {
                assert!(reason.contains("negation"), "unexpected reason: {reason}");
            }
            other => panic!("expected NotCertifiedMonotone, got {other:?}"),
        }

        // A locally monotone query on the same tree passes.
        let ok = crate::query::pattern::PatternQuery::new(Some("B"));
        assert!(engine.prepare(&t, &ok).theorem1_check().unwrap());
    }

    /// The static certificates agree with the exhaustive semantic checker
    /// on the canonical examples: positive patterns certified, negation
    /// rejected.
    #[test]
    fn static_certificates_match_semantics() {
        let mut q = PatternQuery::new(Some("C"));
        q.add_child(q.root(), "D");
        assert_eq!(q.monotonicity(), MonotonicityCertificate::Certified);
        let neg = NegationQuery {
            forbidden: "B".to_string(),
        };
        assert!(matches!(
            neg.monotonicity(),
            MonotonicityCertificate::Rejected { .. }
        ));
    }

    #[test]
    fn negation_query_on_clean_tree_is_vacuously_fine() {
        // If the forbidden label never appears, the query behaves like a
        // constant query and the exhaustive check passes on that tree —
        // local monotonicity is a per-tree check here.
        let tree = TreeSpec::node("A", vec![TreeSpec::leaf("C")]).build();
        let q = NegationQuery {
            forbidden: "B".to_string(),
        };
        assert!(is_locally_monotone_on(&q, &tree));
    }
}
