//! Ranked (top-k) query answers.
//!
//! The paper's conclusion lists "algorithms obtaining the most probable
//! results first" as a natural follow-up to the prob-tree model: since
//! every answer of a locally monotone query carries a probability
//! (Definition 8), answers can be ranked by that probability and
//! applications usually only need the best few. This module provides the
//! ranking layer on top of [`super::prob::query_probtree`]:
//!
//! * [`top_k`] — the `k` most probable answers, ties broken
//!   deterministically by the answer's canonical form;
//! * [`above`] — all answers with probability at least a threshold;
//! * [`expected_matches`] — the expected number of answers over the
//!   possible worlds (a simple aggregate; the multiset semantics makes this
//!   the plain sum of answer probabilities).

use pxml_tree::canon::{canonical_string, Semantics};

use crate::probtree::ProbTree;
use crate::query::prob::{query_probtree, ProbAnswer};
use crate::query::Query;

/// The `k` most probable answers of `query` on `tree`, sorted by
/// decreasing probability. Zero-probability answers (inconsistent
/// condition sets) are dropped. Ties are broken by the canonical form of
/// the answer tree so the result is deterministic.
pub fn top_k(query: &dyn Query, tree: &ProbTree, k: usize) -> Vec<ProbAnswer> {
    let mut answers: Vec<ProbAnswer> = query_probtree(query, tree)
        .into_iter()
        .filter(|a| a.probability > 0.0)
        .collect();
    answers.sort_by(|a, b| {
        b.probability
            .partial_cmp(&a.probability)
            .expect("probabilities are finite")
            .then_with(|| {
                canonical_string(&a.tree, Semantics::MultiSet)
                    .cmp(&canonical_string(&b.tree, Semantics::MultiSet))
            })
    });
    answers.truncate(k);
    answers
}

/// All answers with probability at least `threshold`, sorted by decreasing
/// probability.
pub fn above(query: &dyn Query, tree: &ProbTree, threshold: f64) -> Vec<ProbAnswer> {
    let mut answers = top_k(query, tree, usize::MAX);
    answers.retain(|a| a.probability >= threshold);
    answers
}

/// The expected number of query answers over the possible worlds of the
/// prob-tree. Because the model uses multiset semantics and answers are
/// sub-datatrees of the underlying tree, linearity of expectation makes
/// this the sum of the per-answer probabilities — a cheap aggregate that
/// needs no world expansion.
pub fn expected_matches(query: &dyn Query, tree: &ProbTree) -> f64 {
    query_probtree(query, tree)
        .iter()
        .map(|a| a.probability)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probtree::figure1_example;
    use crate::query::pattern::PatternQuery;
    use crate::semantics::possible_worlds;
    use pxml_events::{prob_eq, Condition, Literal};

    /// A root with three children of the same label but different
    /// probabilities, so ranking is non-trivial.
    fn catalog() -> ProbTree {
        let mut t = ProbTree::new("catalog");
        let high = t.events_mut().insert("high", 0.9);
        let mid = t.events_mut().insert("mid", 0.5);
        let low = t.events_mut().insert("low", 0.2);
        let root = t.tree().root();
        let a = t.add_child(root, "item", Condition::of(Literal::pos(high)));
        t.add_child(a, "sku_a", Condition::always());
        let b = t.add_child(root, "item", Condition::of(Literal::pos(mid)));
        t.add_child(b, "sku_b", Condition::always());
        let c = t.add_child(root, "item", Condition::of(Literal::pos(low)));
        t.add_child(c, "sku_c", Condition::always());
        t
    }

    #[test]
    fn top_k_orders_by_probability() {
        let t = catalog();
        let q = PatternQuery::new(Some("item"));
        let top = top_k(&q, &t, 2);
        assert_eq!(top.len(), 2);
        assert!(prob_eq(top[0].probability, 0.9));
        assert!(prob_eq(top[1].probability, 0.5));
        let all = top_k(&q, &t, 10);
        assert_eq!(all.len(), 3);
        assert!(prob_eq(all[2].probability, 0.2));
    }

    #[test]
    fn top_k_is_deterministic_under_ties() {
        let t = catalog();
        // Query the sku leaves: all three answers have distinct
        // probabilities inherited from their parents; query items instead
        // with equal probabilities to force ties.
        let mut tie_tree = ProbTree::new("r");
        let w1 = tie_tree.events_mut().insert("w1", 0.5);
        let w2 = tie_tree.events_mut().insert("w2", 0.5);
        let root = tie_tree.tree().root();
        let x = tie_tree.add_child(root, "x", Condition::of(Literal::pos(w1)));
        tie_tree.add_child(x, "a", Condition::always());
        let y = tie_tree.add_child(root, "x", Condition::of(Literal::pos(w2)));
        tie_tree.add_child(y, "b", Condition::always());
        let q = PatternQuery::new(Some("x"));
        let first = top_k(&q, &tie_tree, 2);
        let second = top_k(&q, &tie_tree, 2);
        let keys: Vec<String> = first
            .iter()
            .map(|a| canonical_string(&a.tree, Semantics::MultiSet))
            .collect();
        let keys2: Vec<String> = second
            .iter()
            .map(|a| canonical_string(&a.tree, Semantics::MultiSet))
            .collect();
        assert_eq!(keys, keys2);
        let _ = t;
    }

    #[test]
    fn zero_probability_answers_are_dropped() {
        let mut t = ProbTree::new("A");
        let w = t.events_mut().insert("w", 0.5);
        let root = t.tree().root();
        t.add_child(root, "B", Condition::of(Literal::pos(w)));
        t.add_child(root, "C", Condition::of(Literal::neg(w)));
        // A query needing both B and C has an answer whose condition set is
        // inconsistent.
        let mut q = PatternQuery::anchored(Some("A"));
        q.add_child(q.root(), "B");
        q.add_child(q.root(), "C");
        assert!(top_k(&q, &t, 10).is_empty());
        assert!(above(&q, &t, 0.0).is_empty());
    }

    #[test]
    fn above_threshold_filters() {
        let t = catalog();
        let q = PatternQuery::new(Some("item"));
        assert_eq!(above(&q, &t, 0.4).len(), 2);
        assert_eq!(above(&q, &t, 0.95).len(), 0);
        assert_eq!(above(&q, &t, 0.0).len(), 3);
    }

    #[test]
    fn expected_matches_agrees_with_world_expansion() {
        // Expected number of //C/D matches on Figure 1: only the 0.70 world
        // has one, so the expectation is 0.70.
        let t = figure1_example();
        let mut q = PatternQuery::new(Some("C"));
        q.add_child(q.root(), "D");
        let direct = expected_matches(&q, &t);
        // World-by-world expectation.
        use crate::query::Query as _;
        let mut via_worlds = 0.0;
        for (world, p) in possible_worlds(&t, 20).unwrap().normalized().iter() {
            via_worlds += p * q.evaluate(world).len() as f64;
        }
        assert!(prob_eq(direct, via_worlds));
        assert!(prob_eq(direct, 0.70));
    }

    #[test]
    fn expected_matches_counts_multiplicities() {
        let t = catalog();
        let q = PatternQuery::new(Some("item"));
        assert!(prob_eq(expected_matches(&q, &t), 0.9 + 0.5 + 0.2));
    }
}
