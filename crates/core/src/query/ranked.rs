//! Ranked (top-k) query answers.
//!
//! The paper's conclusion lists "algorithms obtaining the most probable
//! results first" as a natural follow-up to the prob-tree model: since
//! every answer of a locally monotone query carries a probability
//! (Definition 8), answers can be ranked by that probability and
//! applications usually only need the best few. This module provides the
//! ranking layer on top of [`super::prob::query_probtree`]:
//!
//! * [`top_k`] — the `k` most probable answers, ties broken
//!   deterministically by the answer's canonical form;
//! * [`above`] — all answers with probability at least a threshold;
//! * [`expected_matches`] — the expected number of answers over the
//!   possible worlds (a simple aggregate; the multiset semantics makes this
//!   the plain sum of answer probabilities).
//!
//! All three are one-shot wrappers over a default
//! [`QueryEngine`]: `top_k` runs the bounded
//! binary heap (`O(n log k)` with cached canonical tie-break keys),
//! `above` the short-circuit threshold path that only sorts qualifying
//! answers (it no longer full-sorts via `top_k(usize::MAX)`). Repeated
//! consumers should prepare once and reuse the
//! [`PreparedQuery`](super::engine::PreparedQuery).

use crate::probtree::ProbTree;
use crate::query::engine::QueryEngine;
use crate::query::prob::ProbAnswer;
use crate::query::Query;

/// The `k` most probable answers of `query` on `tree`, sorted by
/// decreasing probability. Zero-probability answers (inconsistent
/// condition sets) are dropped. Ties are broken by the canonical form of
/// the answer tree so the result is deterministic.
#[deprecated(note = "use QueryEngine / Document")]
pub fn top_k(query: &dyn Query, tree: &ProbTree, k: usize) -> Vec<ProbAnswer> {
    QueryEngine::new().prepare(tree, query).top_k(k).into_vec()
}

/// All answers with probability at least `threshold`, sorted by decreasing
/// probability.
#[deprecated(note = "use QueryEngine / Document")]
pub fn above(query: &dyn Query, tree: &ProbTree, threshold: f64) -> Vec<ProbAnswer> {
    QueryEngine::new()
        .prepare(tree, query)
        .above(threshold)
        .into_vec()
}

/// The expected number of query answers over the possible worlds of the
/// prob-tree. Because the model uses multiset semantics and answers are
/// sub-datatrees of the underlying tree, linearity of expectation makes
/// this the sum of the per-answer probabilities — a cheap aggregate that
/// needs no world expansion.
#[deprecated(note = "use QueryEngine / Document")]
pub fn expected_matches(query: &dyn Query, tree: &ProbTree) -> f64 {
    QueryEngine::new().prepare(tree, query).expected_matches()
}

#[cfg(test)]
mod tests {
    #![allow(deprecated)] // the deprecated one-shot wrappers are the units under test

    use super::*;
    use crate::probtree::figure1_example;
    use crate::query::pattern::PatternQuery;
    use crate::semantics::possible_worlds;
    use pxml_events::{prob_eq, Condition, Literal};
    use pxml_tree::canon::{canonical_string, Semantics};

    /// A root with three children of the same label but different
    /// probabilities, so ranking is non-trivial.
    fn catalog() -> ProbTree {
        let mut t = ProbTree::new("catalog");
        let high = t.events_mut().insert("high", 0.9);
        let mid = t.events_mut().insert("mid", 0.5);
        let low = t.events_mut().insert("low", 0.2);
        let root = t.tree().root();
        let a = t.add_child(root, "item", Condition::of(Literal::pos(high)));
        t.add_child(a, "sku_a", Condition::always());
        let b = t.add_child(root, "item", Condition::of(Literal::pos(mid)));
        t.add_child(b, "sku_b", Condition::always());
        let c = t.add_child(root, "item", Condition::of(Literal::pos(low)));
        t.add_child(c, "sku_c", Condition::always());
        t
    }

    #[test]
    fn top_k_orders_by_probability() {
        let t = catalog();
        let q = PatternQuery::new(Some("item"));
        let top = top_k(&q, &t, 2);
        assert_eq!(top.len(), 2);
        assert!(prob_eq(top[0].probability, 0.9));
        assert!(prob_eq(top[1].probability, 0.5));
        let all = top_k(&q, &t, 10);
        assert_eq!(all.len(), 3);
        assert!(prob_eq(all[2].probability, 0.2));
    }

    /// Regression test for deterministic tie handling: many
    /// equal-probability answers must come back in canonical-key order,
    /// identically across repeated calls, across `k` values at the tie
    /// boundary, and between the bounded-heap and full-sort paths.
    #[test]
    fn top_k_is_deterministic_under_ties() {
        let mut tie_tree = ProbTree::new("r");
        let root = tie_tree.tree().root();
        // Eight x-items, all with probability 0.5, pairwise distinct
        // shapes (leaf labels) so the canonical tie-break is total.
        for i in 0..8 {
            let w = tie_tree.events_mut().insert(format!("w{i}"), 0.5);
            let x = tie_tree.add_child(root, "x", Condition::of(Literal::pos(w)));
            tie_tree.add_child(x, format!("leaf{i}"), Condition::always());
        }
        let q = PatternQuery::new(Some("x"));
        let keys_of = |answers: &[ProbAnswer]| -> Vec<String> {
            answers
                .iter()
                .map(|a| canonical_string(&a.tree, Semantics::MultiSet))
                .collect()
        };
        let full = top_k(&q, &tie_tree, 8);
        let keys = keys_of(&full);
        // Equal probabilities everywhere, so the order IS the sorted
        // canonical-key order.
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted, "ties must follow the canonical order");
        // Repeated calls (fresh engines) agree byte for byte.
        assert_eq!(keys_of(&top_k(&q, &tie_tree, 8)), keys);
        // Every k slices the same ranking, even through the tie block.
        for k in 1..8 {
            assert_eq!(keys_of(&top_k(&q, &tie_tree, k)), keys[..k].to_vec());
        }
        // The heap path agrees with the full-sort reference.
        let prepared = crate::query::engine::QueryEngine::new().prepare(&tie_tree, &q);
        assert_eq!(keys_of(&prepared.ranked()), keys);
        assert_eq!(keys_of(&prepared.top_k(3)), keys[..3].to_vec());
    }

    #[test]
    fn zero_probability_answers_are_dropped() {
        let mut t = ProbTree::new("A");
        let w = t.events_mut().insert("w", 0.5);
        let root = t.tree().root();
        t.add_child(root, "B", Condition::of(Literal::pos(w)));
        t.add_child(root, "C", Condition::of(Literal::neg(w)));
        // A query needing both B and C has an answer whose condition set is
        // inconsistent.
        let mut q = PatternQuery::anchored(Some("A"));
        q.add_child(q.root(), "B");
        q.add_child(q.root(), "C");
        assert!(top_k(&q, &t, 10).is_empty());
        assert!(above(&q, &t, 0.0).is_empty());
    }

    #[test]
    fn above_threshold_filters() {
        let t = catalog();
        let q = PatternQuery::new(Some("item"));
        assert_eq!(above(&q, &t, 0.4).len(), 2);
        assert_eq!(above(&q, &t, 0.95).len(), 0);
        assert_eq!(above(&q, &t, 0.0).len(), 3);
    }

    #[test]
    fn expected_matches_agrees_with_world_expansion() {
        // Expected number of //C/D matches on Figure 1: only the 0.70 world
        // has one, so the expectation is 0.70.
        let t = figure1_example();
        let mut q = PatternQuery::new(Some("C"));
        q.add_child(q.root(), "D");
        let direct = expected_matches(&q, &t);
        // World-by-world expectation.
        use crate::query::Query as _;
        let mut via_worlds = 0.0;
        for (world, p) in possible_worlds(&t, 20).unwrap().normalized().iter() {
            via_worlds += p * q.evaluate(world).len() as f64;
        }
        assert!(prob_eq(direct, via_worlds));
        assert!(prob_eq(direct, 0.70));
    }

    #[test]
    fn expected_matches_counts_multiplicities() {
        let t = catalog();
        let q = PatternQuery::new(Some("item"));
        assert!(prob_eq(expected_matches(&q, &t), 0.9 + 0.5 + 0.2));
    }
}
