//! The prepared, streaming query engine.
//!
//! The free functions of [`prob`](super::prob) and [`ranked`](super::ranked)
//! each re-run the match from scratch, materialize every answer eagerly and
//! fully sort before truncating — the wrong shape for ranked retrieval,
//! where an application prepares a query once and then asks for the top
//! few answers, a threshold slice, or an aggregate, over and over.
//! [`QueryEngine::prepare`] instead evaluates the match set and the
//! per-answer condition unions of Definition 8 **exactly once** and returns
//! a [`PreparedQuery`] that serves every consumer from that shared state:
//!
//! * [`PreparedQuery::answers`] — a lazy stream; answer trees and
//!   probabilities are only computed for the answers actually pulled;
//! * [`PreparedQuery::top_k`] — the `k` best answers via a bounded binary
//!   heap, `O(n log k)` comparisons instead of a full `O(n log n)` sort,
//!   with tie-break keys built at most once per answer and cached;
//! * [`PreparedQuery::above`] — a threshold slice that short-circuits:
//!   non-qualifying answers never enter the ranking sort;
//! * [`PreparedQuery::expected_matches`], [`PreparedQuery::probability_of`]
//!   — aggregates and point lookups;
//! * [`PreparedQuery::theorem1_check`] — the Theorem 1 cross-check through
//!   the factorized world engine, honoring the engine's world budget and
//!   parallelism configuration.
//!
//! Condition unions are **interned**: distinct answers sharing the same
//! union (common in fan-out-heavy trees where siblings inherit one
//! ancestor condition) share one [`Condition`] and one lazily-computed
//! probability. The union itself is a single sorted merge
//! ([`Condition::union_of`]) instead of the quadratic repeated
//! [`Condition::and`] fold.

use std::any::{Any, TypeId};
use std::borrow::Cow;
use std::cell::Cell;
use std::cmp::Ordering;
use std::collections::hash_map::Entry;
use std::collections::{BTreeSet, BinaryHeap, HashMap};
use std::sync::{Arc, Mutex, OnceLock};

use pxml_events::{Condition, Semiring};
use pxml_tree::canon::Semantics;
use pxml_tree::subtree::SubDataTree;
use pxml_tree::NodeId;

use crate::document::{DeltaWindow, Document, DocumentId, Epoch};
use crate::probtree::ProbTree;
use crate::pwset::PossibleWorldSet;
use crate::semantics::possible_worlds_factorized;
use crate::worlds::WorldEngineConfig;

use super::prob::{query_pw_set, ProbAnswer};
use super::{MonotonicityCertificate, Query, Theorem1Error};

/// How equal-probability answers are ordered in ranked selection.
///
/// Every policy is refined by the answer's position in the
/// [`Query::evaluate`] output as a final discriminator, so the induced
/// order is **total**: the bounded-heap [`PreparedQuery::top_k`] and a
/// full-sort reference select exactly the same answers in the same order.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum TieBreak {
    /// Order ties by the canonical form of the answer tree under multiset
    /// semantics (the default, and the policy of the legacy
    /// [`top_k`](super::ranked::top_k)): deterministic across runs and
    /// independent of node identities.
    #[default]
    Canonical,
    /// Like [`TieBreak::Canonical`] but under set semantics (duplicate
    /// siblings collapse to one canonical child).
    CanonicalSet,
    /// Keep ties in match order (the [`Query::evaluate`] output order).
    /// Skips canonical-string construction entirely; deterministic for
    /// deterministic queries, but sensitive to node numbering.
    MatchOrder,
}

impl TieBreak {
    /// The canonicalization semantics of the policy, or `None` when ties
    /// are kept in match order.
    fn semantics(self) -> Option<Semantics> {
        match self {
            TieBreak::Canonical => Some(Semantics::MultiSet),
            TieBreak::CanonicalSet => Some(Semantics::Set),
            TieBreak::MatchOrder => None,
        }
    }
}

/// Configuration of a [`QueryEngine`].
#[derive(Clone, Debug)]
pub struct QueryEngineConfig {
    /// World budget of [`PreparedQuery::theorem1_check`]: the largest
    /// co-occurrence component (and, as `2^max_events`, the total shard
    /// and joint work) the factorized expansion may enumerate.
    pub max_events: usize,
    /// Passthrough to the factorized world engine (worker threads, joint
    /// cross-product cap; the environment switches
    /// `PXML_WORLDS_PARALLELISM` / `PXML_WORLDS_MAX_JOINT` apply).
    pub worlds: WorldEngineConfig,
    /// Tie-break policy of ranked selection.
    pub tie_break: TieBreak,
}

impl Default for QueryEngineConfig {
    fn default() -> Self {
        QueryEngineConfig::for_event_budget(crate::DEFAULT_MAX_EXHAUSTIVE_EVENTS)
    }
}

impl QueryEngineConfig {
    /// The configuration for consumers whose public contract is an
    /// event-count guard: the Theorem 1 cross-check refuses components
    /// larger than `max_events` and the world engine's joint cap defaults
    /// to the `2^{max_events}` budget granted here (mirroring
    /// [`WorldEngineConfig::for_event_budget`]).
    pub fn for_event_budget(max_events: usize) -> Self {
        QueryEngineConfig {
            max_events,
            worlds: WorldEngineConfig::for_event_budget(max_events),
            tie_break: TieBreak::default(),
        }
    }

    /// Returns the configuration with the given tie-break policy.
    pub fn with_tie_break(mut self, tie_break: TieBreak) -> Self {
        self.tie_break = tie_break;
        self
    }
}

/// Static-analysis hints a caller may pass to
/// [`QueryEngine::prepare_with_hints`], typically produced by the
/// `pxml_analysis` static analyzer.
#[derive(Clone, Debug, Default)]
pub struct QueryHints {
    /// The query was statically proven to have an empty answer set on
    /// every document valid under the warehouse's DTD (e.g. its pattern
    /// is unsatisfiable under the schema): preparation skips the match
    /// entirely and serves an empty prepared state.
    pub statically_empty: bool,
}

/// The query engine: a reusable configuration from which
/// [`PreparedQuery`] states are built.
///
/// The legacy free functions ([`super::prob::query_probtree`],
/// [`super::ranked::top_k`], …) are thin wrappers over a default engine,
/// mirroring how [`crate::update::ProbabilisticUpdate::apply_to_probtree`]
/// wraps the [`crate::update::UpdateEngine`].
#[derive(Clone, Debug, Default)]
pub struct QueryEngine {
    config: QueryEngineConfig,
}

impl QueryEngine {
    /// An engine with the default configuration.
    pub fn new() -> Self {
        QueryEngine::default()
    }

    /// An engine with an explicit configuration.
    pub fn with_config(config: QueryEngineConfig) -> Self {
        QueryEngine { config }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &QueryEngineConfig {
        &self.config
    }

    /// Evaluates the match set and the per-answer condition unions of
    /// Definition 8 — once — and returns the prepared state every
    /// consumer (stream, top-k, threshold, aggregates, Theorem 1 check)
    /// is served from.
    ///
    /// The query runs on the underlying data tree through
    /// [`Query::evaluate`] (for [`crate::PatternQuery`] this is the
    /// span-indexed matcher); each answer's condition union is a single
    /// sorted merge over its node conditions and is interned so equal
    /// unions share one condition and one lazily-computed probability.
    /// Cost: `time(Q(t)) + O(|Q(t)| · |T|)` (Proposition 2) — with no
    /// probability evaluation, tree materialization or sorting until a
    /// consumer asks.
    pub fn prepare<'a>(&self, tree: &'a ProbTree, query: &'a dyn Query) -> PreparedQuery<'a> {
        self.prepare_with_hints(tree, query, &QueryHints::default())
    }

    /// Like [`QueryEngine::prepare`], but consults static-analysis
    /// [`QueryHints`] first: a query hinted as statically empty
    /// short-circuits to an empty prepared state without running the
    /// matcher at all.
    pub fn prepare_with_hints<'a>(
        &self,
        tree: &'a ProbTree,
        query: &'a dyn Query,
        hints: &QueryHints,
    ) -> PreparedQuery<'a> {
        // Pattern matching and answer materialization address arena nodes,
        // so a tree with shared (stored) children is expanded once here;
        // trees without handles are borrowed as-is.
        build_prepared(
            self.config.clone(),
            TreeSlot::Borrowed(Box::new(tree.expanded())),
            QuerySlot::Borrowed(query),
            hints,
            None,
        )
    }

    /// Prepares against the current epoch of a [`Document`]. The returned
    /// state holds a cheap owning snapshot of the document's tree and is
    /// stamped with the document's identity and epoch, so it stays
    /// servable while the document moves on — and can be brought back up
    /// to date in place with [`PreparedQuery::maintain`].
    pub fn prepare_doc<'a>(&self, doc: &Document, query: &'a dyn Query) -> PreparedQuery<'a> {
        self.prepare_doc_with_hints(doc, query, &QueryHints::default())
    }

    /// [`QueryEngine::prepare_doc`] with static-analysis [`QueryHints`]
    /// (replayed on every maintenance fallback re-prepare).
    pub fn prepare_doc_with_hints<'a>(
        &self,
        doc: &Document,
        query: &'a dyn Query,
        hints: &QueryHints,
    ) -> PreparedQuery<'a> {
        build_prepared(
            self.config.clone(),
            TreeSlot::Shared(doc.snapshot()),
            QuerySlot::Borrowed(query),
            hints,
            Some((doc.id(), doc.epoch())),
        )
    }

    /// [`QueryEngine::prepare_doc`] from a shared owning query handle:
    /// the returned state borrows nothing (`PreparedQuery<'static>`), so
    /// it can be stored in long-lived registries and moved or shared
    /// across threads — the shape the warehouse server keeps per
    /// registered view. `Query` is `Send + Sync` by supertrait, so the
    /// state stays shareable.
    pub fn prepare_doc_shared(
        &self,
        doc: &Document,
        query: Arc<dyn Query>,
    ) -> PreparedQuery<'static> {
        self.prepare_doc_shared_with_hints(doc, query, &QueryHints::default())
    }

    /// [`QueryEngine::prepare_doc_shared`] with static-analysis
    /// [`QueryHints`] (replayed on every maintenance fallback).
    pub fn prepare_doc_shared_with_hints(
        &self,
        doc: &Document,
        query: Arc<dyn Query>,
        hints: &QueryHints,
    ) -> PreparedQuery<'static> {
        build_prepared(
            self.config.clone(),
            TreeSlot::Shared(doc.snapshot()),
            QuerySlot::Shared(query),
            hints,
            Some((doc.id(), doc.epoch())),
        )
    }
}

/// The one place prepared state is built — shared by borrow-based and
/// document-based preparation and by the maintenance fallback, so all
/// three produce byte-identical layouts (answer order, interning order,
/// empty caches).
fn build_prepared<'a>(
    config: QueryEngineConfig,
    tree: TreeSlot<'a>,
    query: QuerySlot<'a>,
    hints: &QueryHints,
    doc: Option<(DocumentId, Epoch)>,
) -> PreparedQuery<'a> {
    let subtrees = if hints.statically_empty {
        Vec::new()
    } else {
        query.get().evaluate(tree.get().tree())
    };
    let mut intern: HashMap<Condition, usize> = HashMap::new();
    let mut conditions: Vec<Condition> = Vec::new();
    let mut answers: Vec<AnswerState> = Vec::with_capacity(subtrees.len());
    for subtree in subtrees {
        let union =
            Condition::union_of(subtree.nodes().filter_map(|n| tree.get().condition_ref(n)));
        let condition = match intern.entry(union) {
            Entry::Occupied(slot) => *slot.get(),
            Entry::Vacant(slot) => {
                let index = conditions.len();
                conditions.push(slot.key().clone());
                slot.insert(index);
                index
            }
        };
        answers.push(AnswerState { subtree, condition });
    }
    let probabilities = std::iter::repeat_with(OnceLock::new)
        .take(conditions.len())
        .collect();
    let tie_keys = std::iter::repeat_with(OnceLock::new)
        .take(answers.len())
        .collect();
    let footprint = query.get().label_footprint();
    PreparedQuery {
        tree,
        query,
        footprint,
        hints: hints.clone(),
        doc,
        maint: MaintainStats::default(),
        config,
        answers,
        conditions,
        probabilities,
        tie_keys,
        by_subtree: OnceLock::new(),
        semiring: Mutex::new(SemiringCaches::default()),
    }
}

/// One answer in the prepared state: its node set and the index of its
/// interned condition union.
#[derive(Clone, Debug)]
struct AnswerState {
    subtree: SubDataTree,
    condition: usize,
}

/// How a [`PreparedQuery`] holds its tree: borrowed (the legacy
/// `prepare(&tree, …)` entry points — possibly an owned expansion of a
/// shared-children input) or an owning [`Document`] snapshot, which keeps
/// serving after the document commits further epochs.
enum TreeSlot<'a> {
    /// Borrow-based preparation ([`QueryEngine::prepare`]). Boxed so the
    /// possibly-owned expansion doesn't dominate the enum's size.
    Borrowed(Box<Cow<'a, ProbTree>>),
    /// Document-based preparation ([`QueryEngine::prepare_doc`]).
    Shared(Arc<ProbTree>),
}

impl TreeSlot<'_> {
    fn get(&self) -> &ProbTree {
        match self {
            TreeSlot::Borrowed(tree) => (**tree).as_ref(),
            TreeSlot::Shared(tree) => tree,
        }
    }
}

/// How a [`PreparedQuery`] holds its query: a borrow for the legacy
/// entry points, or a shared owning handle so the state can outlive the
/// caller and cross threads ([`QueryEngine::prepare_doc_shared`]).
#[derive(Clone)]
enum QuerySlot<'a> {
    /// Borrow-based preparation.
    Borrowed(&'a dyn Query),
    /// Owning preparation; `'static` states are built from this.
    Shared(Arc<dyn Query>),
}

impl QuerySlot<'_> {
    fn get(&self) -> &dyn Query {
        match self {
            QuerySlot::Borrowed(query) => *query,
            QuerySlot::Shared(query) => &**query,
        }
    }
}

/// Cumulative telemetry of the per-semiring value caches: the non-`f64`
/// twin of the probability cache, proving the warehouse's lineage and
/// possibility views recompute only what maintenance dirtied.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SemiringCacheStats {
    /// Condition values computed by a semiring fold (cache misses).
    pub computed: u64,
    /// Condition values served from the cache.
    pub hits: u64,
}

/// Cached per-condition semiring values, keyed by semiring type and
/// [`Semiring::cache_token`]: one slot per interned condition, `None`
/// until computed — and back to `None` when maintenance rebuilds the
/// union (the same dirty flags that drop the cached `f64`).
#[derive(Default)]
struct SemiringCaches {
    slots: HashMap<(TypeId, u64), Vec<CachedSemiringValue>>,
    stats: SemiringCacheStats,
}

/// One interned condition's cached value for one semiring instance:
/// `None` until computed, type-erased so every semiring shares the map.
type CachedSemiringValue = Option<Box<dyn Any + Send>>;

/// Cumulative maintenance telemetry of one [`PreparedQuery`] — the
/// counters the cross-check suites use to prove the patched path did not
/// silently fall back ([`fallbacks`](MaintainStats::fallbacks) stays 0 on
/// non-spine-touching deltas) and did less work than re-preparing
/// ([`unions_rebuilt`](MaintainStats::unions_rebuilt) vs the fresh
/// prepare's one-union-per-answer).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MaintainStats {
    /// Deltas patched in place across all [`PreparedQuery::maintain`]
    /// calls.
    pub steps_patched: usize,
    /// Full re-prepares forced by a fallback.
    pub fallbacks: usize,
    /// Per-answer condition unions recomputed because a delta rewrote a
    /// condition on one of the answer's nodes.
    pub unions_rebuilt: usize,
    /// Per-answer condition unions carried over unchanged (with their
    /// cached probabilities).
    pub unions_carried: usize,
    /// Answers remapped to new-frame node ids by patching.
    pub answers_remapped: usize,
    /// Patches applied through a composed [`DeltaWindow`]
    /// ([`PreparedQuery::maintain_windowed`]): the span's deltas counted
    /// once in [`steps_patched`](MaintainStats::steps_patched) but
    /// threaded in a single pass.
    pub windows_applied: usize,
}

/// What one [`PreparedQuery::maintain`] call did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MaintainOutcome {
    /// The prepared state already matches the document's epoch.
    UpToDate,
    /// All pending deltas were patched in place.
    Patched {
        /// Number of deltas patched.
        steps: usize,
    },
    /// Patching was not possible; the state was rebuilt by a full
    /// re-prepare against the document's current epoch (still in place —
    /// the prepared query is up to date afterwards either way).
    Fallback {
        /// Why the patch path was abandoned.
        reason: FallbackReason,
    },
}

/// Why [`PreparedQuery::maintain`] fell back to a full re-prepare.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FallbackReason {
    /// The query reports no finite label footprint
    /// ([`Query::label_footprint`] returned `None`, e.g. a pattern with a
    /// label wildcard), so no delta can be proven harmless.
    UnboundedFootprint,
    /// A delta inserted or removed a label inside the query's footprint —
    /// the match set may have changed, only re-matching can tell.
    SpineTouched,
    /// The document trimmed its delta log past this state's epoch.
    LogTrimmed,
    /// A patched answer referenced a node the delta removed without its
    /// label being in the footprint — defensively impossible for sound
    /// footprints, kept as a safety net rather than a panic.
    AnswerDisplaced,
}

/// Error of [`PreparedQuery::maintain`]: the call itself was invalid
/// (as opposed to a valid call that had to fall back — that is a
/// [`MaintainOutcome::Fallback`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MaintainError {
    /// The state came from a borrow-based `prepare`, which has no
    /// document identity or epoch to maintain against.
    NotDocumentBacked,
    /// The state was prepared against a different [`Document`].
    DocumentMismatch,
    /// The document's epoch is *behind* the prepared state's — the handle
    /// passed in is not the one the state was prepared against.
    EpochRewound,
}

impl std::fmt::Display for MaintainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MaintainError::NotDocumentBacked => {
                write!(f, "prepared state is not backed by a document")
            }
            MaintainError::DocumentMismatch => {
                write!(f, "prepared state belongs to a different document")
            }
            MaintainError::EpochRewound => {
                write!(f, "document epoch is behind the prepared state")
            }
        }
    }
}

impl std::error::Error for MaintainError {}

/// The shared state [`QueryEngine::prepare`] computes once per
/// `(tree, query)` pair: the match set (in [`Query::evaluate`] order) and
/// the interned per-answer condition unions. Everything else — answer
/// trees, probabilities, tie-break keys, rankings — is computed on demand
/// and cached where re-use pays (probabilities per interned condition,
/// tie-break keys per answer).
pub struct PreparedQuery<'a> {
    /// The queried tree — a borrow/owned-expansion for the legacy entry
    /// points, an owning snapshot for document-backed preparation.
    tree: TreeSlot<'a>,
    query: QuerySlot<'a>,
    /// The query's label footprint, computed once at prepare time — the
    /// label set [`PreparedQuery::maintain`] checks deltas against.
    footprint: Option<BTreeSet<String>>,
    /// The hints preparation ran under, replayed by fallback re-prepares.
    hints: QueryHints,
    /// Identity and epoch of the backing document (`None` for the legacy
    /// borrow-based entry points).
    doc: Option<(DocumentId, Epoch)>,
    /// Cumulative maintenance counters.
    maint: MaintainStats,
    config: QueryEngineConfig,
    answers: Vec<AnswerState>,
    /// Distinct condition unions, in first-occurrence order.
    conditions: Vec<Condition>,
    /// Lazily-computed `eval` probability of each interned condition.
    probabilities: Vec<OnceLock<f64>>,
    /// Lazily-built canonical tie-break key of each answer.
    tie_keys: Vec<OnceLock<String>>,
    /// Answer indices sorted by node set — built lazily on the first
    /// point lookup, so one-shot consumers never pay for the sort.
    by_subtree: OnceLock<Vec<usize>>,
    /// Lazily-computed per-condition values of non-`f64` semirings,
    /// keyed by semiring type and token (see
    /// [`PreparedQuery::answers_in_cached`]). A `Mutex` rather than a
    /// `RefCell` so the state stays `Sync` for the warehouse server's
    /// shared views; the lock is only held for the duration of one cache
    /// sweep.
    semiring: Mutex<SemiringCaches>,
}

impl<'a> PreparedQuery<'a> {
    /// The prob-tree the query was prepared against (the expanded view if
    /// the input tree had shared children; the stamped epoch's snapshot
    /// when document-backed).
    pub fn tree(&self) -> &ProbTree {
        self.tree.get()
    }

    /// Identity and epoch of the backing [`Document`], `None` for
    /// borrow-based preparation.
    pub fn document_stamp(&self) -> Option<(DocumentId, Epoch)> {
        self.doc
    }

    /// The label footprint maintenance checks deltas against (`None` =
    /// unbounded, every maintenance call re-prepares).
    pub fn footprint(&self) -> Option<&BTreeSet<String>> {
        self.footprint.as_ref()
    }

    /// Cumulative maintenance telemetry.
    pub fn maintenance_stats(&self) -> MaintainStats {
        self.maint
    }

    /// Brings document-backed prepared state up to date with `doc`,
    /// patching the match set, interned condition unions, probability
    /// cache and document stamp in place — answer by answer through the
    /// pending [`crate::UpdateDelta`]s — whenever every pending delta's
    /// inserted/removed labels avoid the query's
    /// [footprint](Query::label_footprint). Falls back to a full
    /// re-prepare (against the current epoch, replaying the original
    /// [`QueryHints`]) when the footprint is unbounded, a delta touches
    /// it, or the delta log was trimmed; the state is up to date on
    /// return either way.
    ///
    /// Patched state is **indistinguishable** from a fresh prepare on the
    /// document's current tree: same answers in the same order, the same
    /// interned-condition layout, bit-identical probabilities, and equal
    /// [`SelectionStats`] on every subsequent selection (property-tested
    /// against the fresh-prepare oracle).
    pub fn maintain(&mut self, doc: &Document) -> Result<MaintainOutcome, MaintainError> {
        let Some((id, epoch)) = self.doc else {
            return Err(MaintainError::NotDocumentBacked);
        };
        if id != doc.id() {
            return Err(MaintainError::DocumentMismatch);
        }
        if doc.epoch() < epoch {
            return Err(MaintainError::EpochRewound);
        }
        if doc.epoch() == epoch {
            return Ok(MaintainOutcome::UpToDate);
        }
        let Some(deltas) = doc.deltas_since(epoch) else {
            return Ok(self.reprepare(doc, FallbackReason::LogTrimmed));
        };
        let Some(footprint) = self.footprint.clone() else {
            return Ok(self.reprepare(doc, FallbackReason::UnboundedFootprint));
        };
        // Phase 1 — plan: thread every answer's node set through every
        // pending delta, tracking which answers had a condition rewritten
        // along the way. Nothing is mutated yet, so a fallback mid-plan
        // leaves the state consistent for `reprepare` to replace.
        let mut node_sets: Vec<Vec<NodeId>> = self
            .answers
            .iter()
            .map(|a| a.subtree.nodes().collect())
            .collect();
        let mut dirty = vec![false; self.answers.len()];
        let mut steps = 0usize;
        for delta in &deltas {
            if delta.touches(&footprint) {
                return Ok(self.reprepare(doc, FallbackReason::SpineTouched));
            }
            for (index, nodes) in node_sets.iter_mut().enumerate() {
                for node in nodes.iter_mut() {
                    match delta.map_node(*node) {
                        Some(mapped) => *node = mapped,
                        None => return Ok(self.reprepare(doc, FallbackReason::AnswerDisplaced)),
                    }
                }
                if nodes.iter().any(|n| delta.rewritten.contains(n)) {
                    dirty[index] = true;
                }
            }
            steps += 1;
        }
        Ok(self.commit_patch(id, doc, node_sets, dirty, steps))
    }

    /// Like [`PreparedQuery::maintain`], but threads the answers through a
    /// single pre-composed [`DeltaWindow`] instead of every pending delta
    /// in turn — the warehouse hub composes each document's pending span
    /// once and every registered view pays one pass, not one per delta.
    /// Equivalent to `maintain` (per-delta node maps are injective, so a
    /// window-composed map reaches the same node sets, and displaced or
    /// dirty answers are classified identically); delegates to `maintain`
    /// when the window does not span exactly this state's epoch range.
    pub fn maintain_windowed(
        &mut self,
        doc: &Document,
        window: &DeltaWindow,
    ) -> Result<MaintainOutcome, MaintainError> {
        let Some((id, epoch)) = self.doc else {
            return Err(MaintainError::NotDocumentBacked);
        };
        if id != doc.id() {
            return Err(MaintainError::DocumentMismatch);
        }
        if doc.epoch() < epoch {
            return Err(MaintainError::EpochRewound);
        }
        if doc.epoch() == epoch {
            return Ok(MaintainOutcome::UpToDate);
        }
        if window.from_epoch != epoch || window.to_epoch != doc.epoch() {
            return self.maintain(doc);
        }
        let Some(footprint) = self.footprint.clone() else {
            return Ok(self.reprepare(doc, FallbackReason::UnboundedFootprint));
        };
        if window.touches(&footprint) {
            return Ok(self.reprepare(doc, FallbackReason::SpineTouched));
        }
        let mut node_sets: Vec<Vec<NodeId>> = self
            .answers
            .iter()
            .map(|a| a.subtree.nodes().collect())
            .collect();
        let mut dirty = vec![false; self.answers.len()];
        for (index, nodes) in node_sets.iter_mut().enumerate() {
            for node in nodes.iter_mut() {
                match window.map_node(*node) {
                    Some(mapped) => *node = mapped,
                    None => return Ok(self.reprepare(doc, FallbackReason::AnswerDisplaced)),
                }
            }
            if nodes.iter().any(|n| window.rewritten.contains(n)) {
                dirty[index] = true;
            }
        }
        self.maint.windows_applied += 1;
        Ok(self.commit_patch(id, doc, node_sets, dirty, window.steps))
    }

    /// Phase 2 of maintenance — commit a remap plan: rebuild each answer
    /// against the new snapshot. Clean answers keep their condition union
    /// (and its cached probability — the union is over unchanged node
    /// conditions, and the event table only ever grows, so the value is
    /// bit-identical to what a fresh prepare would compute); dirty
    /// answers recompute the union from the new tree.
    fn commit_patch(
        &mut self,
        id: DocumentId,
        doc: &Document,
        node_sets: Vec<Vec<NodeId>>,
        dirty: Vec<bool>,
        steps: usize,
    ) -> MaintainOutcome {
        let snapshot = doc.snapshot();
        struct Patched {
            subtree: SubDataTree,
            condition: Condition,
            cached_probability: Option<f64>,
            /// Old condition slot a clean answer carried its union from —
            /// `None` for dirty answers, whose cached semiring values are
            /// stale.
            carried_from: Option<usize>,
        }
        let mut patched: Vec<Patched> = Vec::with_capacity(self.answers.len());
        for (index, nodes) in node_sets.into_iter().enumerate() {
            let subtree = SubDataTree::from_nodes(snapshot.tree(), nodes);
            let (condition, cached_probability, carried_from) = if dirty[index] {
                self.maint.unions_rebuilt += 1;
                let union =
                    Condition::union_of(subtree.nodes().filter_map(|n| snapshot.condition_ref(n)));
                (union, None, None)
            } else {
                self.maint.unions_carried += 1;
                let slot = self.answers[index].condition;
                (
                    self.conditions[slot].clone(),
                    self.probabilities[slot].get().copied(),
                    Some(slot),
                )
            };
            patched.push(Patched {
                subtree,
                condition,
                cached_probability,
                carried_from,
            });
        }
        // Re-sort and re-intern in the new answer order: `Query::evaluate`
        // returns answers in `SubDataTree` order, so this reproduces the
        // exact layout (answer order, interning order) of a fresh prepare.
        // Remapping is injective, so no two answers collapse.
        patched.sort_by(|a, b| a.subtree.cmp(&b.subtree));
        let mut intern: HashMap<Condition, usize> = HashMap::new();
        let mut conditions: Vec<Condition> = Vec::new();
        let mut probabilities: Vec<OnceLock<f64>> = Vec::new();
        let mut answers: Vec<AnswerState> = Vec::with_capacity(patched.len());
        // For each *new* condition slot, the old slot its cached semiring
        // values may be carried from (first-writer wins, mirroring the
        // `OnceLock::set` semantics of the f64 cache below).
        let mut carry: Vec<Option<usize>> = Vec::new();
        for p in patched {
            let condition = match intern.entry(p.condition) {
                Entry::Occupied(slot) => *slot.get(),
                Entry::Vacant(slot) => {
                    let index = conditions.len();
                    conditions.push(slot.key().clone());
                    probabilities.push(OnceLock::new());
                    carry.push(None);
                    slot.insert(index);
                    index
                }
            };
            if let Some(probability) = p.cached_probability {
                let _ = probabilities[condition].set(probability);
            }
            if carry[condition].is_none() {
                carry[condition] = p.carried_from;
            }
            answers.push(AnswerState {
                subtree: p.subtree,
                condition,
            });
        }
        // Remap the per-semiring caches along the carry map: clean slots
        // move their computed values to the new layout, dirty or fresh
        // slots start empty. `take` is sound because equal conditions
        // intern to one slot, so `carry` is injective on its `Some`s.
        //
        // Unlike the `f64` cache, a generic semiring value can depend on
        // the *size* of the event table even for an unchanged condition
        // (e.g. `Counting` doubles per unmentioned event, where
        // probability multiplies by 1) — so when the step introduced new
        // events, every carried value is stale and the caches are cleared
        // instead.
        {
            let events_grew = snapshot.events().len() != self.tree.get().events().len();
            let caches = self.semiring.get_mut().expect("semiring cache poisoned");
            for slots in caches.slots.values_mut() {
                if events_grew {
                    slots.clear();
                    slots.resize_with(carry.len(), || None);
                } else {
                    let mut old = std::mem::take(slots);
                    *slots = carry
                        .iter()
                        .map(|from| from.and_then(|i| old.get_mut(i).and_then(Option::take)))
                        .collect();
                }
            }
        }
        self.maint.steps_patched += steps;
        self.maint.answers_remapped += answers.len();
        self.tie_keys = std::iter::repeat_with(OnceLock::new)
            .take(answers.len())
            .collect();
        self.answers = answers;
        self.conditions = conditions;
        self.probabilities = probabilities;
        self.by_subtree = OnceLock::new();
        self.tree = TreeSlot::Shared(snapshot);
        self.doc = Some((id, doc.epoch()));
        MaintainOutcome::Patched { steps }
    }

    /// The maintenance fallback: rebuild everything against the
    /// document's current epoch, preserving the cumulative maintenance
    /// counters (and counting the fallback).
    fn reprepare(&mut self, doc: &Document, reason: FallbackReason) -> MaintainOutcome {
        let mut maint = self.maint;
        maint.fallbacks += 1;
        let semiring_stats = self
            .semiring
            .get_mut()
            .expect("semiring cache poisoned")
            .stats;
        let hints = self.hints.clone();
        *self = build_prepared(
            self.config.clone(),
            TreeSlot::Shared(doc.snapshot()),
            self.query.clone(),
            &hints,
            Some((doc.id(), doc.epoch())),
        );
        self.maint = maint;
        self.semiring
            .get_mut()
            .expect("semiring cache poisoned")
            .stats = semiring_stats;
        MaintainOutcome::Fallback { reason }
    }

    /// The prepared query.
    pub fn query(&self) -> &dyn Query {
        self.query.get()
    }

    /// Number of answers in the match set (including zero-probability
    /// answers, which ranked selection drops).
    pub fn len(&self) -> usize {
        self.answers.len()
    }

    /// `true` if the query has no answers on this tree.
    pub fn is_empty(&self) -> bool {
        self.answers.is_empty()
    }

    /// Number of **distinct** condition unions across the answers — the
    /// number of probability evaluations a full drain pays after
    /// interning.
    pub fn num_distinct_conditions(&self) -> usize {
        self.conditions.len()
    }

    /// Number of interned conditions whose probability has been computed
    /// so far (telemetry: shows what a partial drain paid).
    pub fn num_cached_probabilities(&self) -> usize {
        self.probabilities
            .iter()
            .filter(|p| p.get().is_some())
            .count()
    }

    /// Number of answers whose canonical tie-break key has been built so
    /// far (telemetry: keys are built at most once per answer).
    pub fn num_cached_tie_keys(&self) -> usize {
        self.tie_keys.iter().filter(|k| k.get().is_some()).count()
    }

    /// The condition union `⋃_{n ∈ u} γ(n)` of the `index`-th answer.
    ///
    /// # Panics
    /// Panics if `index ≥ len()`.
    pub fn condition(&self, index: usize) -> &Condition {
        &self.conditions[self.answers[index].condition]
    }

    /// The node set of the `index`-th answer.
    ///
    /// # Panics
    /// Panics if `index ≥ len()`.
    pub fn subtree(&self, index: usize) -> &SubDataTree {
        &self.answers[index].subtree
    }

    /// The probability of the `index`-th answer (Definition 8), computed
    /// on first use and cached per interned condition.
    ///
    /// # Panics
    /// Panics if `index ≥ len()`.
    pub fn probability(&self, index: usize) -> f64 {
        self.condition_probability(self.answers[index].condition)
    }

    fn condition_probability(&self, condition: usize) -> f64 {
        *self.probabilities[condition]
            .get_or_init(|| self.conditions[condition].probability(self.tree.get().events()))
    }

    /// Materializes the `index`-th answer (tree, node set, probability).
    ///
    /// # Panics
    /// Panics if `index ≥ len()`.
    pub fn materialize(&self, index: usize) -> ProbAnswer {
        let state = &self.answers[index];
        ProbAnswer {
            tree: state.subtree.to_tree(self.tree.get().tree()),
            probability: self.condition_probability(state.condition),
            subtree: state.subtree.clone(),
        }
    }

    /// Streams the answers lazily, in match order: each answer's tree and
    /// probability are only computed when the iterator reaches it, so
    /// consumers that stop early never pay for the tail.
    pub fn answers(&self) -> Answers<'_, 'a> {
        Answers {
            prepared: self,
            next: 0,
        }
    }

    /// The probability of the answer with exactly this node set, or
    /// `None` if the query did not return it. Point lookup via binary
    /// search over a sorted index built (and cached) on first use — no
    /// re-evaluation, and no sorting cost for consumers that never ask.
    pub fn probability_of(&self, subtree: &SubDataTree) -> Option<f64> {
        let by_subtree = self.subtree_index();
        by_subtree
            .binary_search_by(|&i| self.answers[i].subtree.cmp(subtree))
            .ok()
            .map(|pos| self.probability(by_subtree[pos]))
    }

    /// The sorted-by-subtree answer index backing point lookups, built
    /// (and cached) on first use and shared by every semiring.
    fn subtree_index(&self) -> &[usize] {
        self.by_subtree.get_or_init(|| {
            let mut index: Vec<usize> = (0..self.answers.len()).collect();
            index.sort_unstable_by(|&a, &b| self.answers[a].subtree.cmp(&self.answers[b].subtree));
            index
        })
    }

    /// The semiring value of the `index`-th answer's condition union —
    /// [`PreparedQuery::probability`] generalized over any [`Semiring`].
    /// The match set and the interned condition unions are shared across
    /// semirings (one prepare serves them all); only the `f64`
    /// probability path additionally keeps a persistent per-condition
    /// cache.
    ///
    /// # Panics
    /// Panics if `index ≥ len()`.
    pub fn value_in<S: Semiring>(&self, semiring: &S, index: usize) -> S::Value {
        self.conditions[self.answers[index].condition].eval_in(semiring, self.tree.get().events())
    }

    /// Evaluates every **distinct** interned condition union once under
    /// `semiring`, indexed by condition slot.
    fn condition_values_in<S: Semiring>(&self, semiring: &S) -> Vec<S::Value> {
        let events = self.tree.get().events();
        self.conditions
            .iter()
            .map(|c| c.eval_in(semiring, events))
            .collect()
    }

    /// All answers under an arbitrary [`Semiring`], in match order: each
    /// distinct condition union is evaluated exactly once per call and
    /// the per-answer values are cloned from those slots, so a drain
    /// costs `num_distinct_conditions()` semiring folds — the same
    /// sharing the probability path gets from its cache — with **no
    /// re-matching** of the query.
    pub fn answers_in<S: Semiring>(&self, semiring: &S) -> Vec<(&SubDataTree, S::Value)> {
        let values = self.condition_values_in(semiring);
        self.answers
            .iter()
            .map(|a| (&a.subtree, values[a.condition].clone()))
            .collect()
    }

    /// [`PreparedQuery::answers_in`] with a **persistent** per-condition
    /// value cache, keyed by the semiring's type and
    /// [token](Semiring::cache_token): repeated drains under the same
    /// semiring reuse the stored per-slot values instead of re-folding
    /// each condition, and [`PreparedQuery::maintain`] carries clean
    /// slots' values across epochs exactly as it carries the `f64`
    /// probability cache (dirty slots are invalidated by the same flags).
    pub fn answers_in_cached<S>(&self, semiring: &S) -> Vec<(&SubDataTree, S::Value)>
    where
        S: Semiring + 'static,
        S::Value: Send + 'static,
    {
        let values = self.condition_values_cached(semiring);
        self.answers
            .iter()
            .map(|a| (&a.subtree, values[a.condition].clone()))
            .collect()
    }

    /// Evaluates every distinct interned condition union under `semiring`,
    /// consulting and filling the persistent per-semiring cache.
    fn condition_values_cached<S>(&self, semiring: &S) -> Vec<S::Value>
    where
        S: Semiring + 'static,
        S::Value: Send + 'static,
    {
        let events = self.tree.get().events();
        let mut caches = self.semiring.lock().expect("semiring cache poisoned");
        let caches = &mut *caches;
        let slots = caches
            .slots
            .entry((TypeId::of::<S>(), semiring.cache_token()))
            .or_default();
        slots.resize_with(self.conditions.len(), || None);
        self.conditions
            .iter()
            .zip(slots.iter_mut())
            .map(|(condition, slot)| {
                let cached = slot
                    .as_deref()
                    .and_then(|boxed| (boxed as &dyn Any).downcast_ref::<S::Value>());
                if let Some(value) = cached {
                    caches.stats.hits += 1;
                    return value.clone();
                }
                caches.stats.computed += 1;
                let value = condition.eval_in(semiring, events);
                *slot = Some(Box::new(value.clone()));
                value
            })
            .collect()
    }

    /// Cumulative hit/miss telemetry of the per-semiring value caches
    /// (preserved across maintenance fallbacks, like
    /// [`PreparedQuery::maintenance_stats`]).
    pub fn semiring_cache_stats(&self) -> SemiringCacheStats {
        self.semiring.lock().expect("semiring cache poisoned").stats
    }

    /// Number of cached values currently held for `semiring` (telemetry:
    /// shows what maintenance carried across an epoch).
    pub fn num_cached_semiring_values<S>(&self, semiring: &S) -> usize
    where
        S: Semiring + 'static,
    {
        self.semiring
            .lock()
            .expect("semiring cache poisoned")
            .slots
            .get(&(TypeId::of::<S>(), semiring.cache_token()))
            .map_or(0, |slots| slots.iter().flatten().count())
    }

    /// The semiring value of the answer with exactly this node set, or
    /// `None` if the query did not return it —
    /// [`PreparedQuery::probability_of`] generalized over any
    /// [`Semiring`], via the same cached sorted-by-subtree point-lookup
    /// index.
    pub fn probability_of_in<S: Semiring>(
        &self,
        semiring: &S,
        subtree: &SubDataTree,
    ) -> Option<S::Value> {
        let by_subtree = self.subtree_index();
        by_subtree
            .binary_search_by(|&i| self.answers[i].subtree.cmp(subtree))
            .ok()
            .map(|pos| self.value_in(semiring, by_subtree[pos]))
    }

    /// The expected number of answers over the possible worlds — by
    /// linearity of expectation under the multiset semantics, the plain
    /// sum of the per-answer probabilities.
    pub fn expected_matches(&self) -> f64 {
        (0..self.answers.len()).map(|i| self.probability(i)).sum()
    }

    /// The `k` most probable answers, best first, selected with a bounded
    /// binary heap: `O(n log k)` rank comparisons instead of a full
    /// `O(n log n)` sort, and only the `k` winners are materialized.
    /// Zero-probability answers are dropped; ties follow the configured
    /// [`TieBreak`] policy, whose canonical keys are built at most once
    /// per answer and cached across calls.
    pub fn top_k(&self, k: usize) -> AnswerSet {
        let counters = SelectionCounters::default();
        let mut heap: BinaryHeap<HeapEntry<'_, 'a>> = BinaryHeap::with_capacity(k.min(self.len()));
        for index in 0..self.answers.len() {
            counters.enumerated.set(counters.enumerated.get() + 1);
            let probability = self.probability(index);
            if probability <= 0.0 {
                continue;
            }
            let entry = HeapEntry {
                prepared: self,
                counters: &counters,
                index,
                probability,
            };
            if heap.len() < k {
                heap.push(entry);
            } else if let Some(mut worst) = heap.peek_mut() {
                // The heap is a max-heap under rank order (its maximum is
                // the worst of the current best k); replacing the peeked
                // entry re-sifts on drop.
                if entry.cmp(&worst) == Ordering::Less {
                    *worst = entry;
                }
            }
        }
        let mut ranked: Vec<(usize, f64)> =
            heap.into_iter().map(|e| (e.index, e.probability)).collect();
        ranked.sort_unstable_by(|&a, &b| self.rank_cmp(a, b, &counters));
        self.select(ranked, counters)
    }

    /// All answers with probability at least `threshold`, best first. The
    /// threshold filter short-circuits: answers below it are skipped with
    /// one probability lookup each and never enter the ranking sort, so
    /// the comparison count scales with the number of **qualifying**
    /// answers — unlike the legacy `top_k(usize::MAX)`-then-filter path,
    /// which sorted the full answer set first.
    pub fn above(&self, threshold: f64) -> AnswerSet {
        let counters = SelectionCounters::default();
        let mut ranked: Vec<(usize, f64)> = Vec::new();
        for index in 0..self.answers.len() {
            counters.enumerated.set(counters.enumerated.get() + 1);
            let probability = self.probability(index);
            if probability > 0.0 && probability >= threshold {
                ranked.push((index, probability));
            }
        }
        ranked.sort_unstable_by(|&a, &b| self.rank_cmp(a, b, &counters));
        self.select(ranked, counters)
    }

    /// Every positive-probability answer, fully ranked — the full-sort
    /// reference that [`PreparedQuery::top_k`] is benchmarked (and
    /// property-tested) against.
    pub fn ranked(&self) -> AnswerSet {
        self.above(0.0)
    }

    /// Materializes a ranked selection into an [`AnswerSet`].
    fn select(&self, ranked: Vec<(usize, f64)>, counters: SelectionCounters) -> AnswerSet {
        let answers: Vec<ProbAnswer> = ranked
            .iter()
            .map(|&(index, _)| self.materialize(index))
            .collect();
        AnswerSet {
            stats: counters.into_stats(answers.len()),
            answers,
        }
    }

    /// Rank order: probability descending, then the tie-break policy,
    /// then match order (a total order — see [`TieBreak`]).
    fn rank_cmp(&self, a: (usize, f64), b: (usize, f64), counters: &SelectionCounters) -> Ordering {
        counters.comparisons.set(counters.comparisons.get() + 1);
        match b
            .1
            .partial_cmp(&a.1)
            .expect("answer probabilities are finite")
        {
            Ordering::Equal => {}
            order => return order,
        }
        if let Some(semantics) = self.config.tie_break.semantics() {
            match self
                .tie_key(a.0, semantics, counters)
                .cmp(self.tie_key(b.0, semantics, counters))
            {
                Ordering::Equal => {}
                order => return order,
            }
        }
        a.0.cmp(&b.0)
    }

    /// The canonical tie-break key of an answer, built on first use and
    /// cached — the legacy sort recomputed it inside **every** comparison.
    fn tie_key(&self, index: usize, semantics: Semantics, counters: &SelectionCounters) -> &str {
        self.tie_keys[index].get_or_init(|| {
            counters
                .tie_keys_built
                .set(counters.tie_keys_built.get() + 1);
            self.answers[index]
                .subtree
                .canonical_string(self.tree.get().tree(), semantics)
        })
    }

    /// The positive-probability answers repackaged as a weighted world
    /// set, comparable (`∼`) against [`query_pw_set`] — the statement of
    /// Theorem 1.
    pub fn as_pw_set(&self) -> PossibleWorldSet {
        PossibleWorldSet::from_worlds((0..self.answers.len()).filter_map(|index| {
            let probability = self.probability(index);
            (probability > 0.0).then(|| {
                (
                    self.answers[index].subtree.to_tree(self.tree.get().tree()),
                    probability,
                )
            })
        }))
    }

    /// Checks Theorem 1 (`Q(T) ∼ Q(JT K)`) on the prepared state by
    /// exhaustive expansion through the **factorized** world engine,
    /// under the engine's world budget (`max_events`) and executor
    /// configuration (parallelism, joint cap). Exponential in the worst
    /// case; returns an error instead of exceeding the budget.
    ///
    /// Theorem 1 only holds for locally monotone queries, so the static
    /// [`MonotonicityCertificate`] is consulted first: a
    /// [`Rejected`](MonotonicityCertificate::Rejected) query fails fast
    /// with [`Theorem1Error::NotCertifiedMonotone`] before any world is
    /// enumerated. `Certified` and `Unknown` queries proceed to the
    /// cross-check.
    pub fn theorem1_check(&self) -> Result<bool, Theorem1Error> {
        if let MonotonicityCertificate::Rejected { reason } = self.query.get().monotonicity() {
            return Err(Theorem1Error::NotCertifiedMonotone { reason });
        }
        let direct = self.as_pw_set();
        let worlds = possible_worlds_factorized(
            self.tree.get(),
            self.config.max_events,
            &self.config.worlds,
        )?;
        let via_worlds = query_pw_set(self.query.get(), &worlds);
        Ok(direct.normalized().isomorphic(&via_worlds.normalized()))
    }
}

/// Interior-mutability counters threaded through one ranked selection.
#[derive(Default)]
struct SelectionCounters {
    enumerated: Cell<u64>,
    comparisons: Cell<u64>,
    tie_keys_built: Cell<u64>,
}

impl SelectionCounters {
    fn into_stats(self, selected: usize) -> SelectionStats {
        SelectionStats {
            enumerated: self.enumerated.get(),
            comparisons: self.comparisons.get(),
            tie_keys_built: self.tie_keys_built.get(),
            selected,
        }
    }
}

/// Work counters of one ranked selection ([`PreparedQuery::top_k`] /
/// [`PreparedQuery::above`] / [`PreparedQuery::ranked`]) — the evidence
/// that the bounded-heap and short-circuit paths do less work than a full
/// sort (asserted by tests and the `query_scaling` bench).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SelectionStats {
    /// Prepared answers scanned (always the full match set — probabilities
    /// are one cached lookup each).
    pub enumerated: u64,
    /// Pairwise rank comparisons performed.
    pub comparisons: u64,
    /// Canonical tie-break keys built during this selection (keys already
    /// cached by earlier selections are not rebuilt).
    pub tie_keys_built: u64,
    /// Answers selected (= materialized into the result).
    pub selected: usize,
}

/// One candidate in the bounded top-k heap. Ordered by rank (better =
/// [`Ordering::Less`]), so the heap's maximum is the worst of the current
/// best `k` — the eviction candidate.
struct HeapEntry<'p, 'a> {
    prepared: &'p PreparedQuery<'a>,
    counters: &'p SelectionCounters,
    index: usize,
    probability: f64,
}

impl PartialEq for HeapEntry<'_, '_> {
    fn eq(&self, other: &Self) -> bool {
        self.index == other.index
    }
}

impl Eq for HeapEntry<'_, '_> {}

impl PartialOrd for HeapEntry<'_, '_> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry<'_, '_> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.prepared.rank_cmp(
            (self.index, self.probability),
            (other.index, other.probability),
            self.counters,
        )
    }
}

/// Lazy answer stream over a [`PreparedQuery`] (see
/// [`PreparedQuery::answers`]).
pub struct Answers<'p, 'a> {
    prepared: &'p PreparedQuery<'a>,
    next: usize,
}

impl Iterator for Answers<'_, '_> {
    type Item = ProbAnswer;

    fn next(&mut self) -> Option<ProbAnswer> {
        if self.next >= self.prepared.len() {
            return None;
        }
        let answer = self.prepared.materialize(self.next);
        self.next += 1;
        Some(answer)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.prepared.len() - self.next;
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for Answers<'_, '_> {}

/// A ranked selection of query answers, best first, with the work
/// counters of the selection that produced it. Replaces the ad-hoc
/// `Vec<ProbAnswer>` returns of the legacy ranked API; derefs to
/// `[ProbAnswer]` for slice-style access.
#[derive(Clone, Debug)]
pub struct AnswerSet {
    answers: Vec<ProbAnswer>,
    stats: SelectionStats,
}

impl AnswerSet {
    /// Work counters of the selection.
    pub fn stats(&self) -> SelectionStats {
        self.stats
    }

    /// The answers as a slice, best first.
    pub fn as_slice(&self) -> &[ProbAnswer] {
        &self.answers
    }

    /// Consumes the set, returning the answers.
    pub fn into_vec(self) -> Vec<ProbAnswer> {
        self.answers
    }

    /// Sum of the answer probabilities (the expected number of selected
    /// matches).
    pub fn total_probability(&self) -> f64 {
        self.answers.iter().map(|a| a.probability).sum()
    }

    /// The most probable answer, if any.
    pub fn best(&self) -> Option<&ProbAnswer> {
        self.answers.first()
    }
}

impl std::ops::Deref for AnswerSet {
    type Target = [ProbAnswer];

    fn deref(&self) -> &[ProbAnswer] {
        &self.answers
    }
}

impl IntoIterator for AnswerSet {
    type Item = ProbAnswer;
    type IntoIter = std::vec::IntoIter<ProbAnswer>;

    fn into_iter(self) -> Self::IntoIter {
        self.answers.into_iter()
    }
}

impl<'s> IntoIterator for &'s AnswerSet {
    type Item = &'s ProbAnswer;
    type IntoIter = std::slice::Iter<'s, ProbAnswer>;

    fn into_iter(self) -> Self::IntoIter {
        self.answers.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probtree::figure1_example;
    use crate::query::pattern::PatternQuery;
    use pxml_events::{prob_eq, Literal};
    use pxml_tree::DataTree;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// A query wrapper counting `evaluate` calls — proves the match set
    /// is computed exactly once per prepared state. Counts with an atomic
    /// (not `Cell`) because `Query` requires `Sync`.
    struct CountingQuery<'q> {
        inner: &'q PatternQuery,
        evaluations: AtomicUsize,
    }

    impl Query for CountingQuery<'_> {
        fn evaluate(&self, tree: &DataTree) -> Vec<SubDataTree> {
            self.evaluations.fetch_add(1, Ordering::Relaxed);
            self.inner.evaluate(tree)
        }

        fn describe(&self) -> String {
            self.inner.describe()
        }
    }

    /// Root with `n` items of pairwise-distinct probabilities in
    /// scrambled order (a pre-sorted match set would let the pattern-
    /// defeating reference sort finish in `O(n)` comparisons and void
    /// the heap-vs-sort measurements), each with a distinct leaf.
    fn ladder(n: usize) -> ProbTree {
        let mut t = ProbTree::new("catalog");
        let root = t.tree().root();
        for i in 0..n {
            let rank = (i * 7919) % n;
            let w = t
                .events_mut()
                .insert(format!("w{i}"), 0.9 - 0.8 * rank as f64 / n as f64);
            let item = t.add_child(root, "item", Condition::of(Literal::pos(w)));
            t.add_child(item, format!("sku{i}"), Condition::always());
        }
        t
    }

    #[test]
    fn prepare_evaluates_the_query_exactly_once() {
        let tree = ladder(6);
        let q = PatternQuery::new(Some("item"));
        let counting = CountingQuery {
            inner: &q,
            evaluations: AtomicUsize::new(0),
        };
        let prepared = QueryEngine::new().prepare(&tree, &counting);
        // Serve every prepared-state consumer from the one match set.
        let top = prepared.top_k(2);
        let slice = prepared.above(0.5);
        let expected = prepared.expected_matches();
        let streamed: Vec<ProbAnswer> = prepared.answers().collect();
        let point = prepared.probability_of(prepared.subtree(0));
        assert_eq!(top.len(), 2);
        assert!(!slice.is_empty());
        assert!(expected > 0.0);
        assert_eq!(streamed.len(), prepared.len());
        assert!(point.is_some());
        assert_eq!(
            counting.evaluations.load(Ordering::Relaxed),
            1,
            "match set computed once"
        );
        // The Theorem 1 cross-check necessarily re-runs the query on
        // every expanded world — but never re-evaluates the match set on
        // the prob-tree itself.
        assert!(prepared.theorem1_check().unwrap());
        assert!(counting.evaluations.load(Ordering::Relaxed) > 1);
    }

    #[test]
    fn probabilities_are_lazy_and_cached_per_interned_condition() {
        let tree = ladder(5);
        let q = PatternQuery::new(Some("item"));
        let prepared = QueryEngine::new().prepare(&tree, &q);
        assert_eq!(prepared.num_cached_probabilities(), 0, "prepare pays none");
        let first = prepared.answers().next().unwrap();
        assert!(first.probability > 0.0);
        assert_eq!(prepared.num_cached_probabilities(), 1, "one answer pulled");
        prepared.expected_matches();
        assert_eq!(
            prepared.num_cached_probabilities(),
            prepared.num_distinct_conditions()
        );
    }

    #[test]
    fn equal_condition_unions_are_interned() {
        // Two siblings under the same conditioned parent: both answers'
        // unions equal the parent condition.
        let mut tree = ProbTree::new("A");
        let w = tree.events_mut().insert("w", 0.6);
        let root = tree.tree().root();
        let b = tree.add_child(root, "B", Condition::of(Literal::pos(w)));
        tree.add_child(b, "C", Condition::always());
        tree.add_child(b, "C", Condition::always());
        let q = PatternQuery::new(Some("C"));
        let prepared = QueryEngine::new().prepare(&tree, &q);
        assert_eq!(prepared.len(), 2);
        assert_eq!(prepared.num_distinct_conditions(), 1);
        assert!(prob_eq(prepared.probability(0), 0.6));
        assert!(prob_eq(prepared.probability(1), 0.6));
    }

    #[test]
    fn top_k_agrees_with_the_full_sort_reference() {
        let tree = ladder(9);
        let q = PatternQuery::new(Some("item"));
        let prepared = QueryEngine::new().prepare(&tree, &q);
        let full = prepared.ranked();
        for k in [0usize, 1, 3, 9, 20] {
            let top = prepared.top_k(k);
            assert_eq!(top.len(), k.min(full.len()));
            for (a, b) in top.iter().zip(full.iter()) {
                assert_eq!(a.probability, b.probability);
                assert_eq!(a.subtree, b.subtree);
            }
        }
    }

    #[test]
    fn above_short_circuits_the_ranking_sort() {
        let tree = ladder(40);
        let q = PatternQuery::new(Some("item"));
        let prepared = QueryEngine::new().prepare(&tree, &q);
        let full = prepared.ranked();
        // A selective threshold: only the few most probable answers pass.
        let selective = prepared.above(0.8);
        assert!(selective.len() < full.len() / 4);
        assert_eq!(selective.stats().enumerated, full.stats().enumerated);
        assert!(
            selective.stats().comparisons < full.stats().comparisons / 4,
            "selective threshold must sort only the qualifying answers \
             ({} vs {} comparisons)",
            selective.stats().comparisons,
            full.stats().comparisons
        );
        // And the result agrees with filtering the full ranking.
        let reference: Vec<f64> = full
            .iter()
            .filter(|a| a.probability >= 0.8)
            .map(|a| a.probability)
            .collect();
        let probabilities: Vec<f64> = selective.iter().map(|a| a.probability).collect();
        assert_eq!(probabilities, reference);
    }

    #[test]
    fn top_k_bounded_heap_beats_full_sort_on_comparisons() {
        let tree = ladder(200);
        let q = PatternQuery::new(Some("item"));
        let prepared = QueryEngine::new().prepare(&tree, &q);
        let top = prepared.top_k(5);
        let full = prepared.ranked();
        assert_eq!(top.stats().selected, 5);
        assert!(
            top.stats().comparisons < full.stats().comparisons / 2,
            "O(n log k) heap must beat the O(n log n) sort ({} vs {})",
            top.stats().comparisons,
            full.stats().comparisons
        );
    }

    #[test]
    fn tie_keys_are_built_once_and_cached_across_selections() {
        // Four equal-probability answers with distinct shapes force tie
        // comparisons.
        let mut tree = ProbTree::new("r");
        let root = tree.tree().root();
        for i in 0..4 {
            let w = tree.events_mut().insert(format!("w{i}"), 0.5);
            let x = tree.add_child(root, "x", Condition::of(Literal::pos(w)));
            tree.add_child(x, format!("leaf{i}"), Condition::always());
        }
        let q = PatternQuery::new(Some("x"));
        let prepared = QueryEngine::new().prepare(&tree, &q);
        let first = prepared.ranked();
        assert!(first.stats().tie_keys_built > 0);
        assert_eq!(
            prepared.num_cached_tie_keys() as u64,
            first.stats().tie_keys_built
        );
        let second = prepared.ranked();
        assert_eq!(second.stats().tie_keys_built, 0, "keys cached");
        let keys: Vec<&str> = first.iter().map(|a| a.tree.label(a.tree.root())).collect();
        let keys2: Vec<&str> = second.iter().map(|a| a.tree.label(a.tree.root())).collect();
        assert_eq!(keys, keys2);
    }

    #[test]
    fn match_order_tie_break_skips_key_construction() {
        let mut tree = ProbTree::new("r");
        let root = tree.tree().root();
        for i in 0..4 {
            let w = tree.events_mut().insert(format!("w{i}"), 0.5);
            tree.add_child(root, format!("x{i}"), Condition::of(Literal::pos(w)));
        }
        let q = PatternQuery::new(None);
        let engine = QueryEngine::with_config(
            QueryEngineConfig::default().with_tie_break(TieBreak::MatchOrder),
        );
        let prepared = engine.prepare(&tree, &q);
        let ranked = prepared.ranked();
        assert_eq!(ranked.stats().tie_keys_built, 0);
        assert_eq!(prepared.num_cached_tie_keys(), 0);
        // Equal-probability answers stay in match order.
        let equal: Vec<usize> = ranked
            .iter()
            .filter(|a| prob_eq(a.probability, 0.5))
            .map(|a| a.tree.len())
            .collect();
        assert!(!equal.is_empty());
    }

    #[test]
    fn probability_of_looks_up_prepared_answers() {
        let tree = figure1_example();
        let mut q = PatternQuery::new(Some("C"));
        q.add_child(q.root(), "D");
        let prepared = QueryEngine::new().prepare(&tree, &q);
        assert_eq!(prepared.len(), 1);
        let hit = prepared.probability_of(prepared.subtree(0));
        assert!(prob_eq(hit.unwrap(), 0.7));
        let miss = SubDataTree::root_only(tree.tree());
        assert_eq!(prepared.probability_of(&miss), None);
    }

    #[test]
    fn theorem1_check_on_figure1() {
        let tree = figure1_example();
        let queries = [
            PatternQuery::new(Some("B")),
            PatternQuery::new(Some("D")),
            PatternQuery::new(Some("Z")),
        ];
        let engine = QueryEngine::new();
        for q in &queries {
            assert!(engine.prepare(&tree, q).theorem1_check().unwrap());
        }
    }

    #[test]
    fn theorem1_check_honors_the_world_budget() {
        let mut tree = ProbTree::new("A");
        let root = tree.tree().root();
        // One 6-event component: a budget of 4 must refuse.
        let events: Vec<_> = (0..6).map(|_| tree.events_mut().fresh(0.5)).collect();
        tree.add_child(
            root,
            "B",
            Condition::from_literals(events.iter().map(|&e| Literal::pos(e))),
        );
        let q = PatternQuery::new(Some("B"));
        let tight = QueryEngine::with_config(QueryEngineConfig::for_event_budget(4));
        assert!(tight.prepare(&tree, &q).theorem1_check().is_err());
        let roomy = QueryEngine::with_config(QueryEngineConfig::for_event_budget(8));
        assert!(roomy.prepare(&tree, &q).theorem1_check().unwrap());
    }

    #[test]
    fn empty_match_set_serves_empty_everything() {
        let tree = figure1_example();
        let q = PatternQuery::new(Some("nope"));
        let prepared = QueryEngine::new().prepare(&tree, &q);
        assert!(prepared.is_empty());
        assert_eq!(prepared.answers().count(), 0);
        assert!(prepared.top_k(3).is_empty());
        assert!(prepared.above(0.0).is_empty());
        assert_eq!(prepared.expected_matches(), 0.0);
        assert!(prepared.as_pw_set().is_empty());
        assert!(prepared.theorem1_check().unwrap());
    }

    #[test]
    fn statically_empty_hint_skips_the_matcher() {
        let tree = figure1_example();
        let q = PatternQuery::new(Some("nope"));
        let counting = CountingQuery {
            inner: &q,
            evaluations: AtomicUsize::new(0),
        };
        let hints = QueryHints {
            statically_empty: true,
        };
        let prepared = QueryEngine::new().prepare_with_hints(&tree, &counting, &hints);
        assert_eq!(
            counting.evaluations.load(Ordering::Relaxed),
            0,
            "matcher never ran"
        );
        assert!(prepared.is_empty());
        assert_eq!(prepared.ranked().stats().enumerated, 0);
        assert_eq!(prepared.expected_matches(), 0.0);
        // The Theorem 1 cross-check still runs the expansion, doubling as
        // a validation of the hint: an *honest* hint passes.
        assert!(prepared.theorem1_check().unwrap());
    }

    #[test]
    fn answer_set_accessors() {
        let tree = ladder(3);
        let q = PatternQuery::new(Some("item"));
        let prepared = QueryEngine::new().prepare(&tree, &q);
        let set = prepared.ranked();
        assert_eq!(set.as_slice().len(), set.len());
        assert!(prob_eq(
            set.total_probability(),
            prepared.expected_matches()
        ));
        assert_eq!(set.best().unwrap().probability, set[0].probability);
        let by_ref: Vec<f64> = (&set).into_iter().map(|a| a.probability).collect();
        let owned: Vec<f64> = set.clone().into_iter().map(|a| a.probability).collect();
        assert_eq!(by_ref, owned);
        assert_eq!(set.into_vec().len(), 3);
    }

    // ------------------------------------------------------------------
    // Incremental maintenance (`PreparedQuery::maintain`)
    // ------------------------------------------------------------------

    use crate::update::{ProbabilisticUpdate, UpdateEngine, UpdateOperation};

    fn doc_insert(label: &str, inserted: &str, confidence: f64) -> ProbabilisticUpdate {
        let q = PatternQuery::new(Some(label));
        let at = q.root();
        ProbabilisticUpdate::new(
            UpdateOperation::insert(q, at, DataTree::new(inserted)),
            confidence,
        )
    }

    fn doc_delete(label: &str, confidence: f64) -> ProbabilisticUpdate {
        let q = PatternQuery::new(Some(label));
        let at = q.root();
        ProbabilisticUpdate::new(UpdateOperation::delete(q, at), confidence)
    }

    /// The maintained state must be indistinguishable from a fresh
    /// prepare against the same document epoch: same answers, same
    /// ranking order, bit-identical probabilities.
    fn assert_agrees_with_fresh(maintained: &PreparedQuery<'_>, doc: &Document, q: &PatternQuery) {
        let fresh = QueryEngine::new().prepare_doc(doc, q);
        assert_eq!(maintained.len(), fresh.len());
        for i in 0..fresh.len() {
            assert_eq!(maintained.subtree(i), fresh.subtree(i), "answer #{i} nodes");
            assert_eq!(
                maintained.probability(i).to_bits(),
                fresh.probability(i).to_bits(),
                "answer #{i} probability is bit-identical"
            );
        }
        for (a, b) in maintained.ranked().iter().zip(fresh.ranked().iter()) {
            assert_eq!(a.probability.to_bits(), b.probability.to_bits());
            assert_eq!(a.subtree, b.subtree, "ranking order agrees");
        }
    }

    #[test]
    fn maintain_patches_off_footprint_insertions_in_place() {
        let q = PatternQuery::new(Some("item"));
        let mut doc = Document::new(ladder(6));
        let mut prepared = QueryEngine::new().prepare_doc(&doc, &q);
        assert_eq!(prepared.document_stamp(), Some((doc.id(), 0)));
        assert_eq!(
            prepared.footprint().map(std::collections::BTreeSet::len),
            Some(1),
            "the item pattern has a one-label footprint"
        );
        prepared.expected_matches(); // cache every probability
        assert_eq!(
            prepared.num_cached_probabilities(),
            prepared.num_distinct_conditions()
        );
        let engine = UpdateEngine::new();
        engine.apply_doc(&mut doc, &doc_insert("sku0", "note", 0.9));
        engine.apply_doc(&mut doc, &doc_insert("catalog", "annex", 0.4));
        let outcome = prepared.maintain(&doc).unwrap();
        assert_eq!(outcome, MaintainOutcome::Patched { steps: 2 });
        let stats = prepared.maintenance_stats();
        assert_eq!(stats.steps_patched, 2);
        assert_eq!(stats.fallbacks, 0, "no silent fallback");
        assert_eq!(stats.unions_rebuilt, 0, "no condition was rewritten");
        assert_eq!(stats.unions_carried, 6, "one carried union per answer");
        assert_eq!(
            prepared.num_cached_probabilities(),
            prepared.num_distinct_conditions(),
            "cached probabilities survive the patch"
        );
        assert_agrees_with_fresh(&prepared, &doc, &q);
        assert_eq!(prepared.maintain(&doc), Ok(MaintainOutcome::UpToDate));
    }

    #[test]
    fn certain_deletion_of_the_matched_label_falls_back_to_empty() {
        let q = PatternQuery::new(Some("item"));
        let mut doc = Document::new(ladder(3));
        let mut prepared = QueryEngine::new().prepare_doc(&doc, &q);
        assert_eq!(prepared.len(), 3);
        UpdateEngine::new().apply_doc(&mut doc, &doc_delete("item", 1.0));
        let outcome = prepared.maintain(&doc).unwrap();
        assert_eq!(
            outcome,
            MaintainOutcome::Fallback {
                reason: FallbackReason::SpineTouched
            }
        );
        assert!(prepared.is_empty(), "every item is gone");
        let stats = prepared.maintenance_stats();
        assert_eq!(stats.fallbacks, 1);
        assert_eq!(stats.steps_patched, 0);
        assert_agrees_with_fresh(&prepared, &doc, &q);
    }

    #[test]
    fn footprint_label_insertion_falls_back_and_surfaces_the_new_answer() {
        let q = PatternQuery::new(Some("item"));
        let mut doc = Document::new(ladder(3));
        let mut prepared = QueryEngine::new().prepare_doc(&doc, &q);
        assert_eq!(prepared.len(), 3);
        UpdateEngine::new().apply_doc(&mut doc, &doc_insert("catalog", "item", 0.85));
        let outcome = prepared.maintain(&doc).unwrap();
        assert_eq!(
            outcome,
            MaintainOutcome::Fallback {
                reason: FallbackReason::SpineTouched
            }
        );
        assert_eq!(prepared.len(), 4, "the inserted item is an answer now");
        assert!(
            (0..prepared.len()).any(|i| prob_eq(prepared.probability(i), 0.85)),
            "the new answer carries the insertion confidence"
        );
        assert_agrees_with_fresh(&prepared, &doc, &q);
    }

    #[test]
    fn off_footprint_condition_rewrites_patch_and_rebuild_only_dirty_unions() {
        // A certain helper event rides on the first item's condition; the
        // first update triggers the engine's prune-certain pass, which
        // strips the redundant literal from the *surviving* node — a pure
        // condition rewrite in the delta, with no removal or insertion of
        // footprint labels. The patched path must rebuild exactly that
        // answer's union and break the resulting probability tie exactly
        // as a fresh prepare does.
        let mut tree = ProbTree::new("catalog");
        let root = tree.tree().root();
        let c = tree.events_mut().insert("c", 1.0);
        let w1 = tree.events_mut().insert("w1", 0.5);
        let w2 = tree.events_mut().insert("w2", 0.5);
        tree.add_child(
            root,
            "item",
            Condition::from_literals([Literal::pos(w1), Literal::pos(c)]),
        );
        tree.add_child(root, "item", Condition::of(Literal::pos(w2)));
        let q = PatternQuery::new(Some("item"));
        let mut doc = Document::new(tree);
        let mut prepared = QueryEngine::new().prepare_doc(&doc, &q);
        prepared.expected_matches(); // cache every probability
        UpdateEngine::new().apply_doc(&mut doc, &doc_insert("catalog", "note", 0.9));
        let deltas = doc.deltas_since(0).unwrap();
        assert!(
            !deltas[0].rewritten.is_empty(),
            "prune-certain rewrote the surviving item in place"
        );
        let outcome = prepared.maintain(&doc).unwrap();
        assert_eq!(outcome, MaintainOutcome::Patched { steps: 1 });
        let stats = prepared.maintenance_stats();
        assert_eq!(stats.unions_rebuilt, 1, "only the rewritten answer");
        assert_eq!(stats.unions_carried, 1);
        assert_eq!(stats.fallbacks, 0);
        // Both items are tied at probability 0.5 after the rewrite.
        assert!(prob_eq(prepared.probability(0), 0.5));
        assert!(prob_eq(prepared.probability(1), 0.5));
        assert_agrees_with_fresh(&prepared, &doc, &q);
    }

    #[test]
    fn semiring_value_caches_hit_on_redrains_and_survive_maintenance() {
        use pxml_events::semiring::{Counting, TopKProofs};
        let q = PatternQuery::new(Some("item"));
        let mut doc = Document::new(ladder(6));
        let mut prepared = QueryEngine::new().prepare_doc(&doc, &q);
        let n = prepared.num_distinct_conditions() as u64;
        assert_eq!(
            prepared.semiring_cache_stats(),
            SemiringCacheStats::default()
        );
        let first = prepared.answers_in_cached(&Counting);
        assert_eq!(
            prepared.semiring_cache_stats(),
            SemiringCacheStats {
                computed: n,
                hits: 0
            },
            "first drain folds every distinct condition"
        );
        let second = prepared.answers_in_cached(&Counting);
        assert_eq!(
            prepared.semiring_cache_stats(),
            SemiringCacheStats {
                computed: n,
                hits: n
            },
            "second drain is all hits"
        );
        assert_eq!(first, second);
        assert_eq!(first, prepared.answers_in(&Counting));
        // Parameterized semirings cache per token: top-1 and top-2 proofs
        // are different values for the same conditions.
        let top1 = prepared.answers_in_cached(&TopKProofs::new(1));
        let top2 = prepared.answers_in_cached(&TopKProofs::new(2));
        assert_eq!(
            prepared.num_cached_semiring_values(&TopKProofs::new(1)),
            n as usize
        );
        assert_eq!(
            prepared.num_cached_semiring_values(&TopKProofs::new(2)),
            n as usize
        );
        assert_eq!(top1, prepared.answers_in(&TopKProofs::new(1)));
        assert_eq!(top2, prepared.answers_in(&TopKProofs::new(2)));
        // Off-footprint *certain* maintenance (no fresh event) carries
        // every clean slot's value, so the next drain recomputes nothing.
        UpdateEngine::new().apply_doc(&mut doc, &doc_insert("catalog", "annex", 1.0));
        assert_eq!(
            prepared.maintain(&doc),
            Ok(MaintainOutcome::Patched { steps: 1 })
        );
        assert_eq!(prepared.num_cached_semiring_values(&Counting), n as usize);
        let stats_before = prepared.semiring_cache_stats();
        let after = prepared.answers_in_cached(&Counting);
        assert_eq!(
            prepared.semiring_cache_stats().computed,
            stats_before.computed,
            "carried values are not recomputed"
        );
        assert_eq!(after, prepared.answers_in(&Counting));
        assert_eq!(
            after,
            QueryEngine::new()
                .prepare_doc(&doc, &q)
                .answers_in(&Counting),
            "cached drain agrees with a fresh prepare"
        );
        // A sub-1-confidence step introduces a fresh event, which changes
        // every Counting value (each unmentioned event doubles the world
        // count) even though no condition was rewritten — maintenance
        // must drop the carried values, not serve stale ones.
        UpdateEngine::new().apply_doc(&mut doc, &doc_insert("catalog", "memo", 0.4));
        assert_eq!(
            prepared.maintain(&doc),
            Ok(MaintainOutcome::Patched { steps: 1 })
        );
        assert_eq!(
            prepared.num_cached_semiring_values(&Counting),
            0,
            "event growth invalidates the whole cache"
        );
        assert_eq!(
            prepared.answers_in_cached(&Counting),
            QueryEngine::new()
                .prepare_doc(&doc, &q)
                .answers_in(&Counting),
            "re-folded values agree with a fresh prepare"
        );
    }

    #[test]
    fn dirty_condition_rewrites_invalidate_carried_semiring_values() {
        use pxml_events::semiring::Lineage;
        // The prune-certain scenario of
        // `off_footprint_condition_rewrites_patch_and_rebuild_only_dirty_unions`:
        // the first item's condition is rewritten in place, the second is
        // untouched.
        let mut tree = ProbTree::new("catalog");
        let root = tree.tree().root();
        let c = tree.events_mut().insert("c", 1.0);
        let w1 = tree.events_mut().insert("w1", 0.5);
        let w2 = tree.events_mut().insert("w2", 0.5);
        tree.add_child(
            root,
            "item",
            Condition::from_literals([Literal::pos(w1), Literal::pos(c)]),
        );
        tree.add_child(root, "item", Condition::of(Literal::pos(w2)));
        let q = PatternQuery::new(Some("item"));
        let mut doc = Document::new(tree);
        let mut prepared = QueryEngine::new().prepare_doc(&doc, &q);
        prepared.answers_in_cached(&Lineage);
        assert_eq!(prepared.num_cached_semiring_values(&Lineage), 2);
        // A *certain* insert: no fresh event, so carried values stay
        // valid and only the rewritten answer's slot is dropped.
        UpdateEngine::new().apply_doc(&mut doc, &doc_insert("catalog", "note", 1.0));
        let window = doc.window_since(0).unwrap();
        assert!(!window.rewritten.is_empty(), "prune-certain rewrote a node");
        assert_eq!(
            prepared.maintain_windowed(&doc, &window),
            Ok(MaintainOutcome::Patched { steps: 1 })
        );
        assert_eq!(prepared.maintenance_stats().unions_rebuilt, 1);
        assert_eq!(
            prepared.num_cached_semiring_values(&Lineage),
            1,
            "the rewritten answer's cached value was dropped"
        );
        let drained = prepared.answers_in_cached(&Lineage);
        assert_eq!(
            prepared.semiring_cache_stats(),
            SemiringCacheStats {
                computed: 3,
                hits: 1
            },
            "exactly the dirty slot was re-folded"
        );
        assert_eq!(
            drained,
            QueryEngine::new()
                .prepare_doc(&doc, &q)
                .answers_in(&Lineage)
        );
    }

    #[test]
    fn windowed_maintenance_matches_the_per_delta_path() {
        let q = PatternQuery::new(Some("item"));
        let mut doc = Document::new(ladder(6));
        let mut windowed = QueryEngine::new().prepare_doc(&doc, &q);
        let mut stepped = QueryEngine::new().prepare_doc(&doc, &q);
        windowed.expected_matches();
        stepped.expected_matches();
        let engine = UpdateEngine::new();
        engine.apply_doc(&mut doc, &doc_insert("sku0", "note", 0.9));
        engine.apply_doc(&mut doc, &doc_insert("catalog", "annex", 0.4));
        let window = doc.window_since(0).unwrap();
        assert_eq!(
            windowed.maintain_windowed(&doc, &window),
            Ok(MaintainOutcome::Patched { steps: 2 })
        );
        assert_eq!(
            stepped.maintain(&doc),
            Ok(MaintainOutcome::Patched { steps: 2 })
        );
        let wstats = windowed.maintenance_stats();
        assert_eq!(wstats.windows_applied, 1);
        assert_eq!(wstats.steps_patched, 2, "the window's span counts once");
        assert_eq!(stepped.maintenance_stats().windows_applied, 0);
        assert_eq!(
            windowed.num_cached_probabilities(),
            stepped.num_cached_probabilities(),
            "the window carries the same probability cache"
        );
        assert_agrees_with_fresh(&windowed, &doc, &q);
        assert_agrees_with_fresh(&stepped, &doc, &q);
        // A window that does not span this state's epoch range delegates
        // to the per-delta path instead of mis-applying.
        engine.apply_doc(&mut doc, &doc_insert("sku1", "memo", 0.6));
        assert_eq!(
            windowed.maintain_windowed(&doc, &window),
            Ok(MaintainOutcome::Patched { steps: 1 })
        );
        assert_eq!(
            windowed.maintenance_stats().windows_applied,
            1,
            "the stale window was not applied as a window"
        );
        assert_agrees_with_fresh(&windowed, &doc, &q);
        // Spine-touching windows fall back exactly like spine-touching
        // deltas.
        engine.apply_doc(&mut doc, &doc_insert("catalog", "item", 0.85));
        let touching = doc
            .window_since(windowed.document_stamp().unwrap().1)
            .unwrap();
        assert_eq!(
            windowed.maintain_windowed(&doc, &touching),
            Ok(MaintainOutcome::Fallback {
                reason: FallbackReason::SpineTouched
            })
        );
        assert_agrees_with_fresh(&windowed, &doc, &q);
    }

    #[test]
    fn maintain_rejects_foreign_and_borrowed_states() {
        let q = PatternQuery::new(Some("item"));
        let tree = ladder(2);
        let doc = Document::new(ladder(2));
        let mut borrowed = QueryEngine::new().prepare(&tree, &q);
        assert_eq!(borrowed.document_stamp(), None);
        assert_eq!(
            borrowed.maintain(&doc),
            Err(MaintainError::NotDocumentBacked)
        );
        let other = Document::new(ladder(2));
        let mut prepared = QueryEngine::new().prepare_doc(&doc, &q);
        assert_eq!(
            prepared.maintain(&other),
            Err(MaintainError::DocumentMismatch)
        );
        assert_eq!(prepared.maintain(&doc), Ok(MaintainOutcome::UpToDate));
    }

    #[test]
    fn trimmed_delta_logs_force_a_fallback_reprepare() {
        let q = PatternQuery::new(Some("item"));
        let mut doc = Document::with_log_capacity(ladder(3), 0);
        let mut prepared = QueryEngine::new().prepare_doc(&doc, &q);
        UpdateEngine::new().apply_doc(&mut doc, &doc_insert("catalog", "note", 0.9));
        let outcome = prepared.maintain(&doc).unwrap();
        assert_eq!(
            outcome,
            MaintainOutcome::Fallback {
                reason: FallbackReason::LogTrimmed
            }
        );
        assert_agrees_with_fresh(&prepared, &doc, &q);
    }

    #[test]
    fn wildcard_patterns_always_fall_back_with_unbounded_footprint() {
        let q = PatternQuery::new(None);
        let mut doc = Document::new(ladder(2));
        let mut prepared = QueryEngine::new().prepare_doc(&doc, &q);
        assert!(
            prepared.footprint().is_none(),
            "wildcards have no footprint"
        );
        UpdateEngine::new().apply_doc(&mut doc, &doc_insert("catalog", "note", 0.9));
        let outcome = prepared.maintain(&doc).unwrap();
        assert_eq!(
            outcome,
            MaintainOutcome::Fallback {
                reason: FallbackReason::UnboundedFootprint
            }
        );
        assert_agrees_with_fresh(&prepared, &doc, &q);
    }
}
