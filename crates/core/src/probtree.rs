//! Probabilistic trees (Definition 2 of the paper).
//!
//! A prob-tree `T = (t, W, π, γ)` is a data tree `t` together with a finite
//! set of event variables `W`, a probability distribution `π` over `W`, and
//! a function `γ` assigning a condition (conjunction of literals over `W`)
//! to every non-root node. The root carries no condition.
//!
//! # Representation: hash-consed DAG with copy-on-write duplication
//!
//! Logically a prob-tree is a tree, but its *representation* is a DAG:
//! alongside the arena ([`DataTree`]) every prob-tree owns a hash-consed
//! [`NodeStore`] of subtree shapes, and a node's logical children are its
//! arena children **followed by** its [`SharedChild`] handles — O(1)
//! occurrences of stored shapes. [`ProbTree::duplicate_subtree`] (the
//! workhorse of update deletions, which materialize `1 + 2^n` survivor
//! copies on the paper's Appendix-A family) interns the source subtree
//! once and pushes a handle per copy, so `k` copies of an `m`-node subtree
//! cost `O(m + k)` distinct stored nodes instead of `O(k·m)`.
//!
//! Invariants of the shared representation:
//!
//! * handle shapes are **bare** — the stored root carries no annotation
//!   (`ann = None`); the occurrence's root condition lives on the handle,
//!   which is what lets copies with different root conditions share one
//!   shape. Inner stored nodes carry `Some(γ)` (with `Some(always)` for
//!   the empty condition, keeping bare and empty distinguishable);
//! * mutation is copy-on-write: shapes are immutable, and any operation
//!   that needs arena access below a handle first *faults it in*
//!   ([`ProbTree::fault_in`]), expanding the shape back into arena nodes;
//! * adding an arena child under a node with handles faults the handles
//!   in first, so the logical child order (arena then shared) always
//!   equals the temporal insertion order — expansions render byte-
//!   identically to deep copies;
//! * the store's refcounts count one reference per handle plus one per
//!   stored parent occurrence; [`ProbTree::compact`] garbage-collects
//!   dead shapes by re-interning the reachable ones into a fresh store.

use std::borrow::Cow;
use std::collections::HashMap;

use pxml_events::{Condition, EventTable, Valuation};
use pxml_tree::render::to_ascii_annotated;
use pxml_tree::{DataTree, NodeId, NodeStore, ShapeId};

/// One shared occurrence of a stored subtree: a copy-on-write child
/// handle. The shape is *bare* (its stored root has no annotation); the
/// occurrence's root condition is carried here.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SharedChild {
    /// The stored shape this occurrence expands to.
    pub shape: ShapeId,
    /// Condition `γ` of the occurrence's root.
    pub condition: Condition,
}

/// Memory accounting of the DAG representation; see
/// [`ProbTree::memory_stats`].
#[derive(Clone, Debug, PartialEq)]
pub struct MemoryStats {
    /// Nodes of the logical tree (what [`ProbTree::num_nodes`] reports).
    pub logical_nodes: usize,
    /// Physically stored nodes: attached arena nodes plus distinct live
    /// shapes reachable from the handles.
    pub distinct_nodes: usize,
    /// Literals of the logical tree ([`ProbTree::num_literals`]).
    pub logical_literals: usize,
    /// Shared occurrences (total handle count under reachable nodes).
    pub shared_occurrences: usize,
    /// Live shapes in the node store (reachable handles' shapes plus any
    /// garbage awaiting [`ProbTree::compact`]).
    pub store_live_shapes: usize,
}

impl MemoryStats {
    /// Logical over distinct nodes — `1.0` when nothing is shared, large
    /// on blow-up families (e.g. ~`2^n / n` on the Appendix-A family).
    pub fn dedup_ratio(&self) -> f64 {
        self.logical_nodes as f64 / self.distinct_nodes.max(1) as f64
    }
}

/// A probabilistic tree (prob-tree).
#[derive(Clone, Debug)]
pub struct ProbTree {
    tree: DataTree,
    events: EventTable,
    /// Condition of every non-root node; nodes absent from the map carry
    /// the empty (always-true) condition.
    conditions: HashMap<NodeId, Condition>,
    /// Hash-consed shapes backing the shared (copy-on-write) children.
    store: NodeStore<Condition>,
    /// Shared children per arena node, in insertion order; a node's
    /// logical children are its arena children followed by these.
    handles: HashMap<NodeId, Vec<SharedChild>>,
}

impl ProbTree {
    /// Creates a prob-tree consisting of a single root node with `label`
    /// and no event variables.
    pub fn new(label: impl Into<String>) -> Self {
        ProbTree {
            tree: DataTree::new(label),
            events: EventTable::new(),
            conditions: HashMap::new(),
            store: NodeStore::new(),
            handles: HashMap::new(),
        }
    }

    /// Wraps an existing data tree as a prob-tree with no conditions (every
    /// node certain) and the given event table.
    pub fn from_data_tree(tree: DataTree, events: EventTable) -> Self {
        ProbTree {
            tree,
            events,
            conditions: HashMap::new(),
            store: NodeStore::new(),
            handles: HashMap::new(),
        }
    }

    /// The underlying data tree `t`.
    pub fn tree(&self) -> &DataTree {
        &self.tree
    }

    /// The event table `(W, π)`.
    pub fn events(&self) -> &EventTable {
        &self.events
    }

    /// Mutable access to the event table (used to declare event variables).
    pub fn events_mut(&mut self) -> &mut EventTable {
        &mut self.events
    }

    /// The condition `γ(node)`; the root and unannotated nodes carry the
    /// empty condition.
    pub fn condition(&self, node: NodeId) -> Condition {
        self.conditions.get(&node).cloned().unwrap_or_default()
    }

    /// Borrowing variant of [`ProbTree::condition`]: `None` for the root
    /// and unannotated nodes (which carry the empty condition). Lets bulk
    /// consumers — e.g. the per-answer condition unions of the query
    /// engine — walk `γ` without cloning a literal vector per node.
    pub fn condition_ref(&self, node: NodeId) -> Option<&Condition> {
        self.conditions.get(&node)
    }

    /// Sets the condition of a non-root node.
    ///
    /// # Panics
    /// Panics if `node` is the root (the root carries no condition,
    /// Definition 2).
    pub fn set_condition(&mut self, node: NodeId, condition: Condition) {
        assert!(
            node != self.tree.root(),
            "the root of a prob-tree carries no condition"
        );
        if condition.is_empty() {
            self.conditions.remove(&node);
        } else {
            self.conditions.insert(node, condition);
        }
    }

    /// Adds a child node with the given label and condition; returns its id.
    ///
    /// If `parent` has shared children they are faulted in first, so the
    /// logical child order stays the temporal insertion order.
    pub fn add_child(
        &mut self,
        parent: NodeId,
        label: impl Into<String>,
        condition: Condition,
    ) -> NodeId {
        self.fault_in(parent);
        let id = self.tree.add_child(parent, label);
        if !condition.is_empty() {
            self.conditions.insert(id, condition);
        }
        id
    }

    /// Grafts a copy of a plain data tree under `parent`, assigning
    /// `root_condition` to the copied root (inner nodes get the empty
    /// condition). Returns the id of the copied root.
    pub fn graft_data_tree(
        &mut self,
        parent: NodeId,
        subtree: &DataTree,
        root_condition: Condition,
    ) -> NodeId {
        self.fault_in(parent);
        let (new_root, _) = self.tree.graft(parent, subtree);
        if !root_condition.is_empty() {
            self.conditions.insert(new_root, root_condition);
        }
        new_root
    }

    /// Duplicates the subtree rooted at `node` (which must belong to this
    /// tree and be reachable) as a new logical child of `parent`, with the
    /// copy's root condition replaced by `root_condition`.
    ///
    /// This is **copy-on-write**: the subtree is interned into the node
    /// store once (hash-consing dedupes it against everything already
    /// stored) and the copy is an O(1) [`SharedChild`] handle. Update
    /// deletions replace a target with survivor copies taken from the
    /// **evolving** tree (so that splits already applied to nested targets
    /// are preserved); the handle snapshot has the same effect, since
    /// shapes are immutable.
    pub fn duplicate_subtree(&mut self, parent: NodeId, node: NodeId, root_condition: Condition) {
        self.duplicate_subtree_n(parent, node, std::slice::from_ref(&root_condition));
    }

    /// [`ProbTree::duplicate_subtree`] amortized over `k` copies: interns
    /// the source subtree once and pushes one handle per condition, so the
    /// `1 + 2^n` survivor copies of an Appendix-A deletion cost one shape
    /// chain plus `1 + 2^n` O(1) handles.
    pub fn duplicate_subtree_n(
        &mut self,
        parent: NodeId,
        node: NodeId,
        root_conditions: &[Condition],
    ) {
        let shape = self.intern_subtree_shape(node);
        let entries = self.handles.entry(parent).or_default();
        for condition in root_conditions {
            self.store.retain(shape);
            entries.push(SharedChild {
                shape,
                condition: condition.clone(),
            });
        }
    }

    /// The deep-copy variant of [`ProbTree::duplicate_subtree`], kept as
    /// the property-tested oracle for the shared representation: the copy
    /// is materialized as fresh arena nodes and its root id is returned.
    /// Shared children inside the source subtree are faulted in first.
    pub fn duplicate_subtree_deep(
        &mut self,
        parent: NodeId,
        node: NodeId,
        root_condition: Condition,
    ) -> NodeId {
        self.fault_in_subtree(node);
        self.fault_in(parent);
        // Snapshot the subtree before mutating: `descendants` is a DFS
        // pre-order, so every node appears after its parent.
        let nodes: Vec<NodeId> = self.tree.descendants(node);
        let snapshot: Vec<(NodeId, Option<NodeId>, String, Condition)> = nodes
            .iter()
            .map(|&n| {
                (
                    n,
                    self.tree.parent(n),
                    self.tree.label(n).to_string(),
                    self.condition(n),
                )
            })
            .collect();
        let mut mapping: HashMap<NodeId, NodeId> = HashMap::with_capacity(snapshot.len());
        let mut new_root = parent; // overwritten by the first iteration
        for (old, old_parent, label, condition) in snapshot {
            let (new_parent, condition) = if old == node {
                (parent, root_condition.clone())
            } else {
                let p = old_parent.expect("non-root subtree nodes have a parent");
                (mapping[&p], condition)
            };
            let new = self.tree.add_child(new_parent, label);
            if !condition.is_empty() {
                self.conditions.insert(new, condition);
            }
            mapping.insert(old, new);
            if old == node {
                new_root = new;
            }
        }
        new_root
    }

    /// Interns the (arena + shared) subtree rooted at `node` as a *bare*
    /// shape: inner nodes carry `Some(γ)` (`Some(always)` when empty), the
    /// root carries `None` so occurrences can attach their own condition.
    fn intern_subtree_shape(&mut self, node: NodeId) -> ShapeId {
        let mut stack = vec![(node, false)];
        let mut results: Vec<ShapeId> = Vec::new();
        while let Some((n, expanded)) = stack.pop() {
            if expanded {
                let arity = self.tree.children(n).len();
                let mut children: Vec<ShapeId> = results.split_off(results.len() - arity);
                // Shared children follow the arena children, converted to
                // full shapes by pushing the handle condition down onto
                // the stored root.
                if let Some(entries) = self.handles.get(&n) {
                    let converted: Vec<(ShapeId, Condition)> = entries
                        .iter()
                        .map(|h| (h.shape, h.condition.clone()))
                        .collect();
                    for (shape, condition) in converted {
                        let weight = condition.len();
                        children.push(self.store.with_ann(shape, Some(condition), weight));
                    }
                }
                let (ann, weight) = if n == node {
                    (None, 0)
                } else {
                    let c = self.condition(n);
                    let weight = c.len();
                    (Some(c), weight)
                };
                let label = self.tree.label(n).to_string();
                results.push(self.store.intern(&label, ann, weight, &children));
            } else {
                stack.push((n, true));
                for &child in self.tree.children(n).iter().rev() {
                    stack.push((child, false));
                }
            }
        }
        results
            .pop()
            .expect("subtree interning produces a root shape")
    }

    /// Detaches the subtree rooted at `node` (cannot be the root).
    pub fn detach(&mut self, node: NodeId) {
        self.tree.detach(node);
        // Conditions and handles of detached nodes become garbage; they
        // are dropped (and their shapes released) on the next `compact`.
    }

    /// Number of **logical** nodes: reachable arena nodes plus the full
    /// expansion of every shared child.
    pub fn num_nodes(&self) -> usize {
        self.tree
            .iter()
            .map(|n| {
                1 + self.handles.get(&n).map_or(0, |hs| {
                    hs.iter().map(|h| self.store.size(h.shape)).sum::<usize>()
                })
            })
            .sum()
    }

    /// Total number of literals over all logical nodes. Together with
    /// [`ProbTree::num_nodes`], this is the size measure `|T|` used by
    /// Proposition 2 and Theorems 3–5.
    pub fn num_literals(&self) -> usize {
        self.tree
            .iter()
            .map(|n| {
                self.conditions.get(&n).map_or(0, Condition::len)
                    + self.handles.get(&n).map_or(0, |hs| {
                        hs.iter()
                            .map(|h| h.condition.len() + self.store.weight(h.shape))
                            .sum::<usize>()
                    })
            })
            .sum()
    }

    /// The size `|T|` of the prob-tree: nodes + literals.
    pub fn size(&self) -> usize {
        self.num_nodes() + self.num_literals()
    }

    /// Union of the conditions on the strict ancestors of `node`
    /// (`cond_ancestors` in Appendix A).
    pub fn ancestor_condition(&self, node: NodeId) -> Condition {
        let mut acc = Condition::always();
        for anc in self.tree.ancestors(node) {
            acc = acc.and(&self.condition(anc));
        }
        acc
    }

    /// Union of the conditions on `node` and all its strict ancestors — the
    /// condition under which `node` is present in a possible world.
    pub fn path_condition(&self, node: NodeId) -> Condition {
        self.condition(node).and(&self.ancestor_condition(node))
    }

    /// The value `V(T)` of the prob-tree in the world described by
    /// `valuation` (Definition 4): the subtree of `t` where every node whose
    /// condition is violated has been removed together with its
    /// descendants. Works directly on the shared representation — shapes
    /// are filtered without being faulted in.
    pub fn value_in_world(&self, valuation: &Valuation) -> DataTree {
        let root = self.tree.root();
        let mut out = DataTree::new(self.tree.label(root));
        let mut stack: Vec<(NodeId, NodeId)> = vec![(root, out.root())];
        while let Some((src, dst)) = stack.pop() {
            for &child in self.tree.children(src) {
                if self
                    .conditions
                    .get(&child)
                    .is_none_or(|c| c.eval(valuation))
                {
                    let nd = out.add_child(dst, self.tree.label(child));
                    stack.push((child, nd));
                }
            }
            if let Some(entries) = self.handles.get(&src) {
                for h in entries {
                    if h.condition.eval(valuation) {
                        self.shape_value_into(&mut out, dst, h.shape, valuation);
                    }
                }
            }
        }
        out
    }

    /// Expands the world-restricted value of a stored shape under `parent`
    /// (the occurrence's root condition has already been checked).
    fn shape_value_into(
        &self,
        out: &mut DataTree,
        parent: NodeId,
        shape: ShapeId,
        valuation: &Valuation,
    ) {
        let root = out.add_child(parent, self.store.label(shape));
        let mut stack = vec![(shape, root)];
        while let Some((s, nd)) = stack.pop() {
            for &c in self.store.children(s) {
                let kept = self.store.ann(c).is_none_or(|cond| cond.eval(valuation));
                if kept {
                    let cn = out.add_child(nd, self.store.label(c));
                    stack.push((c, cn));
                }
            }
        }
    }

    /// Rebuilds the prob-tree with a compact arena (dropping detached
    /// nodes) and a garbage-collected node store (reachable shapes are
    /// re-interned; dead ones are dropped). Conditions and handles are
    /// carried over. Returns the new prob-tree and the old→new node
    /// mapping.
    pub fn compact(&self) -> (ProbTree, HashMap<NodeId, NodeId>) {
        let (tree, mapping) = self.tree.compact();
        let mut conditions = HashMap::new();
        for (old, new) in &mapping {
            if let Some(c) = self.conditions.get(old) {
                if !c.is_empty() {
                    conditions.insert(*new, c.clone());
                }
            }
        }
        let mut store = NodeStore::new();
        let mut memo: HashMap<ShapeId, ShapeId> = HashMap::new();
        let mut handles: HashMap<NodeId, Vec<SharedChild>> = HashMap::new();
        for (old, new) in &mapping {
            if let Some(entries) = self.handles.get(old) {
                if entries.is_empty() {
                    continue;
                }
                let moved: Vec<SharedChild> = entries
                    .iter()
                    .map(|h| {
                        let shape = reintern_shape(&self.store, &mut store, &mut memo, h.shape);
                        store.retain(shape);
                        SharedChild {
                            shape,
                            condition: h.condition.clone(),
                        }
                    })
                    .collect();
                handles.insert(*new, moved);
            }
        }
        (
            ProbTree {
                tree,
                events: self.events.clone(),
                conditions,
                store,
                handles,
            },
            mapping,
        )
    }

    /// Shared children of `node`, in insertion order (after its arena
    /// children in the logical child order). Empty for fully materialized
    /// nodes.
    pub fn shared_children(&self, node: NodeId) -> &[SharedChild] {
        self.handles.get(&node).map_or(&[], Vec::as_slice)
    }

    /// The hash-consed shape store backing the shared children.
    pub fn store(&self) -> &NodeStore<Condition> {
        &self.store
    }

    /// Whether any reachable node has shared children.
    pub fn has_shared(&self) -> bool {
        self.tree
            .iter()
            .any(|n| self.handles.get(&n).is_some_and(|hs| !hs.is_empty()))
    }

    /// Materializes the shared children of `node` as arena nodes (in
    /// handle order, after the existing arena children), releasing their
    /// shapes. No-op for nodes without handles.
    pub fn fault_in(&mut self, node: NodeId) {
        let Some(entries) = self.handles.remove(&node) else {
            return;
        };
        let conditions = &mut self.conditions;
        for h in entries {
            let new_root = self
                .tree
                .graft_shape(node, &self.store, h.shape, &mut |nd, ann| {
                    if let Some(c) = ann {
                        if !c.is_empty() {
                            conditions.insert(nd, c.clone());
                        }
                    }
                });
            if !h.condition.is_empty() {
                conditions.insert(new_root, h.condition);
            }
            self.store.release(h.shape);
        }
    }

    /// Faults in every handle in the subtree rooted at `node` (expanded
    /// nodes never carry handles, so one pass suffices).
    pub fn fault_in_subtree(&mut self, node: NodeId) {
        for n in self.tree.descendants(node) {
            self.fault_in(n);
        }
    }

    /// Fully materializes the tree: faults in every reachable handle.
    pub fn expand_all(&mut self) {
        let root = self.tree.root();
        self.fault_in_subtree(root);
    }

    /// A fully materialized view of this prob-tree: borrows `self` when
    /// nothing is shared, otherwise clones and expands. Consumers that
    /// traverse the arena directly go through this.
    pub fn expanded(&self) -> Cow<'_, ProbTree> {
        if self.has_shared() {
            let mut full = self.clone();
            full.expand_all();
            Cow::Owned(full)
        } else {
            Cow::Borrowed(self)
        }
    }

    /// Every condition of the logical tree (arena conditions, handle root
    /// conditions, and the annotations of each handle's reachable shapes),
    /// without materializing anything. Empty conditions are skipped. The
    /// world engines use this to collect relevant events.
    pub fn all_conditions(&self) -> Vec<&Condition> {
        let mut out = Vec::new();
        for n in self.tree.iter() {
            if let Some(c) = self.conditions.get(&n) {
                out.push(c);
            }
            if let Some(entries) = self.handles.get(&n) {
                for h in entries {
                    if !h.condition.is_empty() {
                        out.push(&h.condition);
                    }
                    for s in self.store.reachable_from([h.shape]) {
                        if let Some(c) = self.store.ann(s) {
                            if !c.is_empty() {
                                out.push(c);
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// Memory accounting of the shared representation: logical size
    /// versus physically stored nodes, and the resulting dedup ratio.
    pub fn memory_stats(&self) -> MemoryStats {
        let mut arena_nodes = 0usize;
        let mut shared_occurrences = 0usize;
        let mut roots: Vec<ShapeId> = Vec::new();
        for n in self.tree.iter() {
            arena_nodes += 1;
            if let Some(entries) = self.handles.get(&n) {
                shared_occurrences += entries.len();
                roots.extend(entries.iter().map(|h| h.shape));
            }
        }
        let distinct_shapes = self.store.reachable_from(roots).len();
        MemoryStats {
            logical_nodes: self.num_nodes(),
            distinct_nodes: arena_nodes + distinct_shapes,
            logical_literals: self.num_literals(),
            shared_occurrences,
            store_live_shapes: self.store.num_live(),
        }
    }

    /// Interns the **whole** logical tree into an external store as a full
    /// shape (the root is bare, matching its condition-free status), after
    /// translating this tree's own shapes into `store`. Hash-consing in a
    /// store shared by several documents dedupes equal subtrees across
    /// them; see [`corpus_memory_stats`].
    pub fn intern_into(&self, store: &mut NodeStore<Condition>) -> ShapeId {
        let mut memo: HashMap<ShapeId, ShapeId> = HashMap::new();
        let mut stack = vec![(self.tree.root(), false)];
        let mut results: Vec<ShapeId> = Vec::new();
        while let Some((n, expanded)) = stack.pop() {
            if expanded {
                let arity = self.tree.children(n).len();
                let mut children: Vec<ShapeId> = results.split_off(results.len() - arity);
                if let Some(entries) = self.handles.get(&n) {
                    for h in entries {
                        let bare = reintern_shape(&self.store, store, &mut memo, h.shape);
                        let weight = h.condition.len();
                        children.push(store.with_ann(bare, Some(h.condition.clone()), weight));
                    }
                }
                let (ann, weight) = if n == self.tree.root() {
                    (None, 0)
                } else {
                    let c = self.condition(n);
                    let weight = c.len();
                    (Some(c), weight)
                };
                results.push(store.intern(self.tree.label(n), ann, weight, &children));
            } else {
                stack.push((n, true));
                for &child in self.tree.children(n).iter().rev() {
                    stack.push((child, false));
                }
            }
        }
        results
            .pop()
            .expect("document interning produces a root shape")
    }

    /// Validates the representation invariants of the prob-tree,
    /// returning a description of the first violation found:
    ///
    /// * arena consistency over the **reachable** nodes — every child
    ///   points back to its parent and every non-root node appears in its
    ///   parent's child list (conditions of detached nodes legitimately
    ///   linger until [`ProbTree::compact`] and are not checked);
    /// * the root carries no condition and stored conditions are
    ///   non-empty (Definition 2 plus the "empty conditions are never
    ///   stored" convention);
    /// * condition support ⊆ declared events — every literal references
    ///   an event the table declares;
    /// * probability mass bounds — `π(w) ∈ (0, 1]` for every event;
    /// * DAG-store consistency — every handle references a live **bare**
    ///   shape whose conditions reference declared events, and the store
    ///   itself passes [`NodeStore::validate`] (acyclicity, refcounts
    ///   matching the handle census, cached sizes, and agreement of the
    ///   cached canonical codes with a from-scratch canonization).
    ///
    /// Intended for `debug_assert!`-style use in tests and property
    /// suites; it walks the whole tree, so hot paths should not call it.
    pub fn validate_invariants(&self) -> Result<(), String> {
        let root = self.tree.root();
        for node in self.tree.iter() {
            for &child in self.tree.children(node) {
                if self.tree.parent(child) != Some(node) {
                    return Err(format!(
                        "arena inconsistency: child {child:?} of {node:?} does not point back"
                    ));
                }
            }
            if node != root {
                let Some(parent) = self.tree.parent(node) else {
                    return Err(format!("reachable non-root node {node:?} has no parent"));
                };
                if !self.tree.children(parent).contains(&node) {
                    return Err(format!(
                        "arena inconsistency: {node:?} missing from the child list of {parent:?}"
                    ));
                }
            }
            if let Some(condition) = self.conditions.get(&node) {
                if node == root {
                    return Err("the root carries a condition".to_string());
                }
                if condition.is_empty() {
                    return Err(format!("empty condition stored for {node:?}"));
                }
                for event in condition.events() {
                    if event.index() >= self.events.len() {
                        return Err(format!(
                            "condition of {node:?} references undeclared event index {}",
                            event.index()
                        ));
                    }
                }
            }
        }
        for event in self.events.iter() {
            let p = self.events.prob(event);
            if !(p > 0.0 && p <= 1.0) {
                return Err(format!(
                    "event {} has probability {p} outside (0, 1]",
                    self.events.name(event)
                ));
            }
        }
        // DAG-store checks. Handles under detached nodes legitimately
        // linger until `compact`, but they still hold references, so the
        // external census covers *every* handle entry.
        let mut external: HashMap<ShapeId, usize> = HashMap::new();
        for entries in self.handles.values() {
            for h in entries {
                if !self.store.is_live(h.shape) {
                    return Err(format!("handle references dead shape {}", h.shape));
                }
                if self.store.ann(h.shape).is_some() {
                    return Err(format!(
                        "handle shape {} is not bare (stored root carries a condition)",
                        h.shape
                    ));
                }
                *external.entry(h.shape).or_insert(0) += 1;
            }
        }
        for entries in self.handles.values() {
            for h in entries {
                for shape in self.store.reachable_from([h.shape]) {
                    if let Some(c) = self.store.ann(shape) {
                        for event in c.events() {
                            if event.index() >= self.events.len() {
                                return Err(format!(
                                    "stored shape {shape} references undeclared event index {}",
                                    event.index()
                                ));
                            }
                        }
                    }
                }
            }
        }
        self.store
            .validate(&external)
            .map_err(|e| format!("node store: {e}"))?;
        Ok(())
    }

    /// ASCII rendering with conditions shown next to node labels, e.g.
    /// `B  [w1 ∧ ¬w2]`. Shared children render exactly as their expansion
    /// would (byte-identical to the deep-copy representation).
    pub fn to_ascii(&self) -> String {
        let full = self.expanded();
        let full = full.as_ref();
        to_ascii_annotated(&full.tree, &|node| {
            let cond = full.condition(node);
            if cond.is_empty() {
                String::new()
            } else {
                format!("  [{}]", cond.display(&full.events))
            }
        })
    }
}

/// Translates a shape from `src` into `dst`, memoized, preserving labels,
/// annotations and stored child order. Used by [`ProbTree::compact`] (GC
/// into a fresh store) and [`ProbTree::intern_into`] (cross-document
/// dedup into a shared store).
fn reintern_shape(
    src: &NodeStore<Condition>,
    dst: &mut NodeStore<Condition>,
    memo: &mut HashMap<ShapeId, ShapeId>,
    shape: ShapeId,
) -> ShapeId {
    if let Some(&done) = memo.get(&shape) {
        return done;
    }
    let mut stack = vec![(shape, false)];
    while let Some((s, expanded)) = stack.pop() {
        if memo.contains_key(&s) {
            continue;
        }
        if expanded {
            let children: Vec<ShapeId> = src.children(s).iter().map(|c| memo[c]).collect();
            let ann = src.ann(s).cloned();
            let weight = ann.as_ref().map_or(0, Condition::len);
            let new = dst.intern(src.label(s), ann, weight, &children);
            memo.insert(s, new);
        } else {
            stack.push((s, true));
            for &c in src.children(s).iter().rev() {
                stack.push((c, false));
            }
        }
    }
    memo[&shape]
}

/// Cross-document dedup accounting: interns every document into one fresh
/// shared [`NodeStore`] and reports the corpus' logical size against the
/// distinct nodes that store ends up holding. Equal subtrees *across*
/// documents (e.g. the unedited regions of warehouse snapshots) collapse
/// to shared shapes, so the ratio measures how much a corpus-wide store
/// would save.
pub fn corpus_memory_stats(docs: &[&ProbTree]) -> MemoryStats {
    let mut store: NodeStore<Condition> = NodeStore::new();
    let mut logical_nodes = 0;
    let mut logical_literals = 0;
    let mut shared_occurrences = 0;
    for doc in docs {
        doc.intern_into(&mut store);
        logical_nodes += doc.num_nodes();
        logical_literals += doc.num_literals();
        shared_occurrences += doc
            .tree()
            .iter()
            .map(|n| doc.shared_children(n).len())
            .sum::<usize>();
    }
    MemoryStats {
        logical_nodes,
        distinct_nodes: store.num_live(),
        logical_literals,
        shared_occurrences,
        store_live_shapes: store.num_live(),
    }
}

/// Builds the paper's Figure 1 example prob-tree (used pervasively by
/// tests, examples and the E1 experiment).
pub fn figure1_example() -> ProbTree {
    let mut t = ProbTree::new("A");
    let w1 = t.events_mut().insert("w1", 0.8);
    let w2 = t.events_mut().insert("w2", 0.7);
    let root = t.tree().root();
    t.add_child(
        root,
        "B",
        Condition::from_literals([pxml_events::Literal::pos(w1), pxml_events::Literal::neg(w2)]),
    );
    let c = t.add_child(root, "C", Condition::always());
    t.add_child(c, "D", Condition::of(pxml_events::Literal::pos(w2)));
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use pxml_events::Literal;
    use pxml_tree::canon::{canonical_string, Semantics};

    #[test]
    fn condition_ref_agrees_with_condition() {
        let t = figure1_example();
        for node in t.tree().iter() {
            match t.condition_ref(node) {
                Some(c) => assert_eq!(c, &t.condition(node)),
                None => assert!(t.condition(node).is_empty()),
            }
        }
        assert!(t.condition_ref(t.tree().root()).is_none());
    }

    #[test]
    fn figure1_structure() {
        let t = figure1_example();
        assert_eq!(t.num_nodes(), 4);
        assert_eq!(t.num_literals(), 3);
        assert_eq!(t.size(), 7);
        assert_eq!(t.events().len(), 2);
    }

    #[test]
    fn root_condition_is_rejected() {
        let mut t = ProbTree::new("A");
        let w = t.events_mut().insert("w", 0.5);
        let root = t.tree().root();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            t.set_condition(root, Condition::of(Literal::pos(w)));
        }));
        assert!(result.is_err());
    }

    #[test]
    fn value_in_world_matches_figure2() {
        let t = figure1_example();
        let w1 = t.events().by_name("w1").unwrap();
        let w2 = t.events().by_name("w2").unwrap();

        // V = {w1}: B kept (w1 ∧ ¬w2 holds), C kept, D removed.
        let v = Valuation::from_true_events(2, [w1]);
        let world = t.value_in_world(&v);
        assert_eq!(
            canonical_string(&world, Semantics::MultiSet),
            canonical_string(
                &pxml_tree::builder::TreeSpec::node(
                    "A",
                    vec![
                        pxml_tree::builder::TreeSpec::leaf("B"),
                        pxml_tree::builder::TreeSpec::leaf("C")
                    ]
                )
                .build(),
                Semantics::MultiSet
            )
        );

        // V = {w2}: B removed, C and D kept.
        let v = Valuation::from_true_events(2, [w2]);
        let world = t.value_in_world(&v);
        assert_eq!(world.len(), 3);

        // V = {}: only A and C remain.
        let v = Valuation::empty(2);
        let world = t.value_in_world(&v);
        assert_eq!(world.len(), 2);
    }

    #[test]
    fn descendants_of_removed_nodes_are_removed() {
        let mut t = ProbTree::new("A");
        let w = t.events_mut().insert("w", 0.5);
        let root = t.tree().root();
        let b = t.add_child(root, "B", Condition::of(Literal::pos(w)));
        // C has no condition of its own but hangs below B.
        t.add_child(b, "C", Condition::always());
        let world = t.value_in_world(&Valuation::empty(1));
        assert_eq!(world.len(), 1, "B false removes C as well");
    }

    #[test]
    fn path_and_ancestor_conditions() {
        let t = figure1_example();
        let d = t.tree().iter().find(|&n| t.tree().label(n) == "D").unwrap();
        let w2 = t.events().by_name("w2").unwrap();
        assert_eq!(t.ancestor_condition(d), Condition::always());
        assert_eq!(t.path_condition(d), Condition::of(Literal::pos(w2)));
    }

    #[test]
    fn duplicate_subtree_replaces_root_condition() {
        let mut t = figure1_example();
        let w1 = t.events().by_name("w1").unwrap();
        let c_node = t.tree().iter().find(|&n| t.tree().label(n) == "C").unwrap();
        let root = t.tree().root();
        t.duplicate_subtree(root, c_node, Condition::of(Literal::pos(w1)));
        let copy = &t.shared_children(root)[0];
        assert_eq!(copy.condition, Condition::of(Literal::pos(w1)));
        assert_eq!(t.num_nodes(), 6, "C and D copied (logically)");
        // A second copy with an empty condition shares the same shape.
        t.duplicate_subtree(root, c_node, Condition::always());
        let shared = t.shared_children(root);
        assert_eq!(shared.len(), 2);
        assert_eq!(shared[0].shape, shared[1].shape, "hash-consed");
        assert_eq!(shared[1].condition, Condition::always());
        assert_eq!(t.num_nodes(), 8, "two copies of the 2-node C subtree");
        t.validate_invariants().unwrap();
    }

    #[test]
    fn duplicate_subtree_copies_conditions_in_place() {
        let mut t = figure1_example();
        let w1 = t.events().by_name("w1").unwrap();
        let c = t.tree().iter().find(|&n| t.tree().label(n) == "C").unwrap();
        let root = t.tree().root();
        t.duplicate_subtree(root, c, Condition::of(Literal::pos(w1)));
        assert_eq!(t.num_nodes(), 6, "C and D copied");
        // Fault the copy in and check the conditions were carried over.
        t.fault_in(root);
        assert!(t.shared_children(root).is_empty());
        assert_eq!(t.num_nodes(), 6, "logical size unchanged by fault-in");
        let copy = *t.tree().children(root).last().unwrap();
        assert_eq!(t.tree().label(copy), "C");
        assert_eq!(t.condition(copy), Condition::of(Literal::pos(w1)));
        let copied_d = t.tree().children(copy)[0];
        assert_eq!(t.tree().label(copied_d), "D");
        assert_eq!(t.condition(copied_d).len(), 1, "D keeps its w2 condition");
        // The original subtree is untouched.
        assert_eq!(t.condition(c), Condition::always());
        t.validate_invariants().unwrap();
    }

    #[test]
    fn shared_and_deep_copies_render_identically() {
        let mut shared = figure1_example();
        let mut deep = figure1_example();
        let w1 = shared.events().by_name("w1").unwrap();
        let find_c = |t: &ProbTree| t.tree().iter().find(|&n| t.tree().label(n) == "C").unwrap();
        let (cs, cd) = (find_c(&shared), find_c(&deep));
        let root = shared.tree().root();
        shared.duplicate_subtree(root, cs, Condition::of(Literal::pos(w1)));
        shared.duplicate_subtree(root, cs, Condition::of(Literal::neg(w1)));
        deep.duplicate_subtree_deep(root, cd, Condition::of(Literal::pos(w1)));
        deep.duplicate_subtree_deep(root, cd, Condition::of(Literal::neg(w1)));
        assert_eq!(shared.to_ascii(), deep.to_ascii());
        assert_eq!(shared.num_nodes(), deep.num_nodes());
        assert_eq!(shared.num_literals(), deep.num_literals());
        shared.validate_invariants().unwrap();
        deep.validate_invariants().unwrap();
    }

    #[test]
    fn duplicating_a_subtree_containing_handles_stays_consistent() {
        let mut t = figure1_example();
        let w1 = t.events().by_name("w1").unwrap();
        let c = t.tree().iter().find(|&n| t.tree().label(n) == "C").unwrap();
        // Put a shared copy of D under C, then duplicate C itself: the
        // interned C shape must absorb the handle.
        let d = t.tree().children(c)[0];
        t.duplicate_subtree(c, d, Condition::of(Literal::neg(w1)));
        let root = t.tree().root();
        t.duplicate_subtree(root, c, Condition::of(Literal::pos(w1)));
        assert_eq!(t.num_nodes(), 4 + 1 + 3, "D copy + 3-node C copy");
        t.validate_invariants().unwrap();
        let mut expanded = t.clone();
        expanded.expand_all();
        assert_eq!(expanded.to_ascii(), t.to_ascii());
        expanded.validate_invariants().unwrap();
    }

    #[test]
    fn add_child_faults_in_existing_handles_first() {
        let mut t = figure1_example();
        let c = t.tree().iter().find(|&n| t.tree().label(n) == "C").unwrap();
        let root = t.tree().root();
        t.duplicate_subtree(root, c, Condition::always());
        assert!(t.has_shared());
        let e = t.add_child(root, "E", Condition::always());
        assert!(!t.has_shared(), "handles expanded before the new child");
        let kids = t.tree().children(root);
        assert_eq!(*kids.last().unwrap(), e, "E comes after the expansion");
        t.validate_invariants().unwrap();
    }

    #[test]
    fn memory_stats_count_logical_vs_distinct() {
        let mut t = figure1_example();
        let c = t.tree().iter().find(|&n| t.tree().label(n) == "C").unwrap();
        let root = t.tree().root();
        let conds: Vec<Condition> = vec![Condition::always(); 5];
        t.duplicate_subtree_n(root, c, &conds);
        let stats = t.memory_stats();
        assert_eq!(stats.logical_nodes, 4 + 5 * 2);
        // 4 arena nodes + 2 distinct shapes (bare C, full D).
        assert_eq!(stats.distinct_nodes, 4 + 2);
        assert_eq!(stats.shared_occurrences, 5);
        assert!(stats.dedup_ratio() > 2.0);
        t.validate_invariants().unwrap();
    }

    #[test]
    fn compact_garbage_collects_the_store() {
        let mut t = figure1_example();
        let c = t.tree().iter().find(|&n| t.tree().label(n) == "C").unwrap();
        let root = t.tree().root();
        t.duplicate_subtree(root, c, Condition::always());
        // Detach the original C; its nodes die, the shared copy lives.
        t.detach(c);
        let (compacted, _) = t.compact();
        compacted.validate_invariants().unwrap();
        assert_eq!(compacted.num_nodes(), 4, "A, B and the shared C copy");
        assert!(compacted.has_shared());
        let stats = compacted.memory_stats();
        assert_eq!(stats.store_live_shapes, 2, "bare C and full D only");
    }

    #[test]
    fn corpus_interning_dedupes_across_documents() {
        let a = figure1_example();
        let b = figure1_example();
        let stats = corpus_memory_stats(&[&a, &b]);
        assert_eq!(stats.logical_nodes, 8);
        // Both documents collapse onto one stored shape chain: bare root
        // A, full B, full C, full D.
        assert_eq!(stats.distinct_nodes, 4);
        assert!((stats.dedup_ratio() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn value_in_world_sees_through_handles() {
        let mut t = figure1_example();
        let w2 = t.events().by_name("w2").unwrap();
        let c = t.tree().iter().find(|&n| t.tree().label(n) == "C").unwrap();
        let root = t.tree().root();
        t.duplicate_subtree(root, c, Condition::of(Literal::pos(w2)));
        let deep = t.expanded().into_owned();
        for bits in 0u32..4 {
            let v = Valuation::from_true_events(
                2,
                [
                    t.events().by_name("w1").unwrap(),
                    t.events().by_name("w2").unwrap(),
                ]
                .into_iter()
                .enumerate()
                .filter(|(i, _)| bits & (1 << i) != 0)
                .map(|(_, e)| e),
            );
            assert_eq!(
                canonical_string(&t.value_in_world(&v), Semantics::MultiSet),
                canonical_string(&deep.value_in_world(&v), Semantics::MultiSet),
                "world {bits} must agree between shared and expanded"
            );
        }
    }

    #[test]
    fn compact_drops_detached_conditions() {
        let mut t = figure1_example();
        let b = t.tree().iter().find(|&n| t.tree().label(n) == "B").unwrap();
        t.detach(b);
        let (compacted, _) = t.compact();
        assert_eq!(compacted.num_nodes(), 3);
        assert_eq!(compacted.num_literals(), 1); // only D's w2 remains
    }

    #[test]
    fn ascii_rendering_shows_conditions() {
        let t = figure1_example();
        let text = t.to_ascii();
        assert!(text.contains("B  [w1 ∧ ¬w2]"));
        assert!(text.contains("D  [w2]"));
        assert!(text.lines().next().unwrap().trim() == "A");
    }

    #[test]
    fn setting_empty_condition_clears_annotation() {
        let mut t = figure1_example();
        let b = t.tree().iter().find(|&n| t.tree().label(n) == "B").unwrap();
        t.set_condition(b, Condition::always());
        assert_eq!(t.num_literals(), 1);
    }

    #[test]
    fn invariants_hold_on_figure1_and_after_edits() {
        let mut t = figure1_example();
        t.validate_invariants().unwrap();
        let b = t.tree().iter().find(|&n| t.tree().label(n) == "B").unwrap();
        t.detach(b);
        // Detached conditions linger until compact — still valid.
        t.validate_invariants().unwrap();
        let (compacted, _) = t.compact();
        compacted.validate_invariants().unwrap();
    }

    #[test]
    fn invariants_catch_dangling_event_references() {
        // A condition over an event id the table never declared.
        let mut t = ProbTree::new("A");
        let root = t.tree().root();
        t.add_child(
            root,
            "B",
            Condition::of(Literal::pos(pxml_events::EventId::from_index(3))),
        );
        let err = t.validate_invariants().unwrap_err();
        assert!(err.contains("undeclared event"), "{err}");
    }
}
