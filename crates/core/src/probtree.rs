//! Probabilistic trees (Definition 2 of the paper).
//!
//! A prob-tree `T = (t, W, π, γ)` is a data tree `t` together with a finite
//! set of event variables `W`, a probability distribution `π` over `W`, and
//! a function `γ` assigning a condition (conjunction of literals over `W`)
//! to every non-root node. The root carries no condition.

use std::collections::HashMap;

use pxml_events::{Condition, EventTable, Valuation};
use pxml_tree::render::to_ascii_annotated;
use pxml_tree::{DataTree, NodeId};

/// A probabilistic tree (prob-tree).
#[derive(Clone, Debug)]
pub struct ProbTree {
    tree: DataTree,
    events: EventTable,
    /// Condition of every non-root node; nodes absent from the map carry
    /// the empty (always-true) condition.
    conditions: HashMap<NodeId, Condition>,
}

impl ProbTree {
    /// Creates a prob-tree consisting of a single root node with `label`
    /// and no event variables.
    pub fn new(label: impl Into<String>) -> Self {
        ProbTree {
            tree: DataTree::new(label),
            events: EventTable::new(),
            conditions: HashMap::new(),
        }
    }

    /// Wraps an existing data tree as a prob-tree with no conditions (every
    /// node certain) and the given event table.
    pub fn from_data_tree(tree: DataTree, events: EventTable) -> Self {
        ProbTree {
            tree,
            events,
            conditions: HashMap::new(),
        }
    }

    /// The underlying data tree `t`.
    pub fn tree(&self) -> &DataTree {
        &self.tree
    }

    /// The event table `(W, π)`.
    pub fn events(&self) -> &EventTable {
        &self.events
    }

    /// Mutable access to the event table (used to declare event variables).
    pub fn events_mut(&mut self) -> &mut EventTable {
        &mut self.events
    }

    /// The condition `γ(node)`; the root and unannotated nodes carry the
    /// empty condition.
    pub fn condition(&self, node: NodeId) -> Condition {
        self.conditions.get(&node).cloned().unwrap_or_default()
    }

    /// Borrowing variant of [`ProbTree::condition`]: `None` for the root
    /// and unannotated nodes (which carry the empty condition). Lets bulk
    /// consumers — e.g. the per-answer condition unions of the query
    /// engine — walk `γ` without cloning a literal vector per node.
    pub fn condition_ref(&self, node: NodeId) -> Option<&Condition> {
        self.conditions.get(&node)
    }

    /// Sets the condition of a non-root node.
    ///
    /// # Panics
    /// Panics if `node` is the root (the root carries no condition,
    /// Definition 2).
    pub fn set_condition(&mut self, node: NodeId, condition: Condition) {
        assert!(
            node != self.tree.root(),
            "the root of a prob-tree carries no condition"
        );
        if condition.is_empty() {
            self.conditions.remove(&node);
        } else {
            self.conditions.insert(node, condition);
        }
    }

    /// Adds a child node with the given label and condition; returns its id.
    pub fn add_child(
        &mut self,
        parent: NodeId,
        label: impl Into<String>,
        condition: Condition,
    ) -> NodeId {
        let id = self.tree.add_child(parent, label);
        if !condition.is_empty() {
            self.conditions.insert(id, condition);
        }
        id
    }

    /// Grafts a copy of a plain data tree under `parent`, assigning
    /// `root_condition` to the copied root (inner nodes get the empty
    /// condition). Returns the id of the copied root.
    pub fn graft_data_tree(
        &mut self,
        parent: NodeId,
        subtree: &DataTree,
        root_condition: Condition,
    ) -> NodeId {
        let (new_root, _) = self.tree.graft(parent, subtree);
        if !root_condition.is_empty() {
            self.conditions.insert(new_root, root_condition);
        }
        new_root
    }

    /// Duplicates the subtree rooted at `node` (which must belong to this
    /// tree) as a new child of `parent`, carrying over the conditions of
    /// the copied nodes, with the copied root's condition replaced by
    /// `root_condition`. Returns the id of the copied root.
    ///
    /// Update deletions replace a target with survivor copies taken from
    /// the **evolving** tree (so that splits already applied to nested
    /// targets are preserved); copying in place avoids cloning the whole
    /// tree per copy.
    pub fn duplicate_subtree(
        &mut self,
        parent: NodeId,
        node: NodeId,
        root_condition: Condition,
    ) -> NodeId {
        // Snapshot the subtree before mutating: `descendants` is a DFS
        // pre-order, so every node appears after its parent.
        let nodes: Vec<NodeId> = self.tree.descendants(node);
        let snapshot: Vec<(NodeId, Option<NodeId>, String, Condition)> = nodes
            .iter()
            .map(|&n| {
                (
                    n,
                    self.tree.parent(n),
                    self.tree.label(n).to_string(),
                    self.condition(n),
                )
            })
            .collect();
        let mut mapping: HashMap<NodeId, NodeId> = HashMap::with_capacity(snapshot.len());
        let mut new_root = parent; // overwritten by the first iteration
        for (old, old_parent, label, condition) in snapshot {
            let (new_parent, condition) = if old == node {
                (parent, root_condition.clone())
            } else {
                let p = old_parent.expect("non-root subtree nodes have a parent");
                (mapping[&p], condition)
            };
            let new = self.tree.add_child(new_parent, label);
            if !condition.is_empty() {
                self.conditions.insert(new, condition);
            }
            mapping.insert(old, new);
            if old == node {
                new_root = new;
            }
        }
        new_root
    }

    /// Detaches the subtree rooted at `node` (cannot be the root).
    pub fn detach(&mut self, node: NodeId) {
        self.tree.detach(node);
        // Conditions of detached nodes become garbage; they are dropped on
        // the next `compact`.
    }

    /// Number of reachable nodes.
    pub fn num_nodes(&self) -> usize {
        self.tree.len()
    }

    /// Total number of literals over all reachable nodes. Together with
    /// [`ProbTree::num_nodes`], this is the size measure `|T|` used by
    /// Proposition 2 and Theorems 3–5.
    pub fn num_literals(&self) -> usize {
        self.tree
            .iter()
            .map(|n| self.conditions.get(&n).map_or(0, Condition::len))
            .sum()
    }

    /// The size `|T|` of the prob-tree: nodes + literals.
    pub fn size(&self) -> usize {
        self.num_nodes() + self.num_literals()
    }

    /// Union of the conditions on the strict ancestors of `node`
    /// (`cond_ancestors` in Appendix A).
    pub fn ancestor_condition(&self, node: NodeId) -> Condition {
        let mut acc = Condition::always();
        for anc in self.tree.ancestors(node) {
            acc = acc.and(&self.condition(anc));
        }
        acc
    }

    /// Union of the conditions on `node` and all its strict ancestors — the
    /// condition under which `node` is present in a possible world.
    pub fn path_condition(&self, node: NodeId) -> Condition {
        self.condition(node).and(&self.ancestor_condition(node))
    }

    /// The value `V(T)` of the prob-tree in the world described by
    /// `valuation` (Definition 4): the subtree of `t` where every node whose
    /// condition is violated has been removed together with its
    /// descendants.
    pub fn value_in_world(&self, valuation: &Valuation) -> DataTree {
        let mut keep: HashMap<NodeId, bool> = HashMap::new();
        // Pre-order guarantees parents are decided before children.
        for node in self.tree.iter() {
            let parent_kept = self.tree.parent(node).is_none_or(|p| keep[&p]);
            let own = self.condition(node).eval(valuation);
            keep.insert(node, parent_kept && own);
        }
        let (out, _) = self.tree.extract(&|n| keep[&n]);
        out
    }

    /// Rebuilds the prob-tree with a compact arena (dropping detached
    /// nodes). Conditions are carried over. Returns the new prob-tree and
    /// the old→new node mapping.
    pub fn compact(&self) -> (ProbTree, HashMap<NodeId, NodeId>) {
        let (tree, mapping) = self.tree.compact();
        let mut conditions = HashMap::new();
        for (old, new) in &mapping {
            if let Some(c) = self.conditions.get(old) {
                if !c.is_empty() {
                    conditions.insert(*new, c.clone());
                }
            }
        }
        (
            ProbTree {
                tree,
                events: self.events.clone(),
                conditions,
            },
            mapping,
        )
    }

    /// Validates the representation invariants of the prob-tree,
    /// returning a description of the first violation found:
    ///
    /// * arena consistency over the **reachable** nodes — every child
    ///   points back to its parent and every non-root node appears in its
    ///   parent's child list (conditions of detached nodes legitimately
    ///   linger until [`ProbTree::compact`] and are not checked);
    /// * the root carries no condition and stored conditions are
    ///   non-empty (Definition 2 plus the "empty conditions are never
    ///   stored" convention);
    /// * condition support ⊆ declared events — every literal references
    ///   an event the table declares;
    /// * probability mass bounds — `π(w) ∈ (0, 1]` for every event.
    ///
    /// Intended for `debug_assert!`-style use in tests and property
    /// suites; it walks the whole tree, so hot paths should not call it.
    pub fn validate_invariants(&self) -> Result<(), String> {
        let root = self.tree.root();
        for node in self.tree.iter() {
            for &child in self.tree.children(node) {
                if self.tree.parent(child) != Some(node) {
                    return Err(format!(
                        "arena inconsistency: child {child:?} of {node:?} does not point back"
                    ));
                }
            }
            if node != root {
                let Some(parent) = self.tree.parent(node) else {
                    return Err(format!("reachable non-root node {node:?} has no parent"));
                };
                if !self.tree.children(parent).contains(&node) {
                    return Err(format!(
                        "arena inconsistency: {node:?} missing from the child list of {parent:?}"
                    ));
                }
            }
            if let Some(condition) = self.conditions.get(&node) {
                if node == root {
                    return Err("the root carries a condition".to_string());
                }
                if condition.is_empty() {
                    return Err(format!("empty condition stored for {node:?}"));
                }
                for event in condition.events() {
                    if event.index() >= self.events.len() {
                        return Err(format!(
                            "condition of {node:?} references undeclared event index {}",
                            event.index()
                        ));
                    }
                }
            }
        }
        for event in self.events.iter() {
            let p = self.events.prob(event);
            if !(p > 0.0 && p <= 1.0) {
                return Err(format!(
                    "event {} has probability {p} outside (0, 1]",
                    self.events.name(event)
                ));
            }
        }
        Ok(())
    }

    /// ASCII rendering with conditions shown next to node labels, e.g.
    /// `B  [w1 ∧ ¬w2]`.
    pub fn to_ascii(&self) -> String {
        to_ascii_annotated(&self.tree, &|node| {
            let cond = self.condition(node);
            if cond.is_empty() {
                String::new()
            } else {
                format!("  [{}]", cond.display(&self.events))
            }
        })
    }
}

/// Builds the paper's Figure 1 example prob-tree (used pervasively by
/// tests, examples and the E1 experiment).
pub fn figure1_example() -> ProbTree {
    let mut t = ProbTree::new("A");
    let w1 = t.events_mut().insert("w1", 0.8);
    let w2 = t.events_mut().insert("w2", 0.7);
    let root = t.tree().root();
    t.add_child(
        root,
        "B",
        Condition::from_literals([pxml_events::Literal::pos(w1), pxml_events::Literal::neg(w2)]),
    );
    let c = t.add_child(root, "C", Condition::always());
    t.add_child(c, "D", Condition::of(pxml_events::Literal::pos(w2)));
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use pxml_events::Literal;
    use pxml_tree::canon::{canonical_string, Semantics};

    #[test]
    fn condition_ref_agrees_with_condition() {
        let t = figure1_example();
        for node in t.tree().iter() {
            match t.condition_ref(node) {
                Some(c) => assert_eq!(c, &t.condition(node)),
                None => assert!(t.condition(node).is_empty()),
            }
        }
        assert!(t.condition_ref(t.tree().root()).is_none());
    }

    #[test]
    fn figure1_structure() {
        let t = figure1_example();
        assert_eq!(t.num_nodes(), 4);
        assert_eq!(t.num_literals(), 3);
        assert_eq!(t.size(), 7);
        assert_eq!(t.events().len(), 2);
    }

    #[test]
    fn root_condition_is_rejected() {
        let mut t = ProbTree::new("A");
        let w = t.events_mut().insert("w", 0.5);
        let root = t.tree().root();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            t.set_condition(root, Condition::of(Literal::pos(w)));
        }));
        assert!(result.is_err());
    }

    #[test]
    fn value_in_world_matches_figure2() {
        let t = figure1_example();
        let w1 = t.events().by_name("w1").unwrap();
        let w2 = t.events().by_name("w2").unwrap();

        // V = {w1}: B kept (w1 ∧ ¬w2 holds), C kept, D removed.
        let v = Valuation::from_true_events(2, [w1]);
        let world = t.value_in_world(&v);
        assert_eq!(
            canonical_string(&world, Semantics::MultiSet),
            canonical_string(
                &pxml_tree::builder::TreeSpec::node(
                    "A",
                    vec![
                        pxml_tree::builder::TreeSpec::leaf("B"),
                        pxml_tree::builder::TreeSpec::leaf("C")
                    ]
                )
                .build(),
                Semantics::MultiSet
            )
        );

        // V = {w2}: B removed, C and D kept.
        let v = Valuation::from_true_events(2, [w2]);
        let world = t.value_in_world(&v);
        assert_eq!(world.len(), 3);

        // V = {}: only A and C remain.
        let v = Valuation::empty(2);
        let world = t.value_in_world(&v);
        assert_eq!(world.len(), 2);
    }

    #[test]
    fn descendants_of_removed_nodes_are_removed() {
        let mut t = ProbTree::new("A");
        let w = t.events_mut().insert("w", 0.5);
        let root = t.tree().root();
        let b = t.add_child(root, "B", Condition::of(Literal::pos(w)));
        // C has no condition of its own but hangs below B.
        t.add_child(b, "C", Condition::always());
        let world = t.value_in_world(&Valuation::empty(1));
        assert_eq!(world.len(), 1, "B false removes C as well");
    }

    #[test]
    fn path_and_ancestor_conditions() {
        let t = figure1_example();
        let d = t.tree().iter().find(|&n| t.tree().label(n) == "D").unwrap();
        let w2 = t.events().by_name("w2").unwrap();
        assert_eq!(t.ancestor_condition(d), Condition::always());
        assert_eq!(t.path_condition(d), Condition::of(Literal::pos(w2)));
    }

    #[test]
    fn duplicate_subtree_replaces_root_condition() {
        let mut t = figure1_example();
        let w1 = t.events().by_name("w1").unwrap();
        let c_node = t.tree().iter().find(|&n| t.tree().label(n) == "C").unwrap();
        let root = t.tree().root();
        let new_c = t.duplicate_subtree(root, c_node, Condition::of(Literal::pos(w1)));
        assert_eq!(t.condition(new_c), Condition::of(Literal::pos(w1)));
        // An empty replacement condition clears the annotation on the copy.
        let bare = t.duplicate_subtree(root, new_c, Condition::always());
        assert_eq!(t.condition(bare), Condition::always());
        assert_eq!(t.num_nodes(), 8, "two copies of the 2-node C subtree");
    }

    #[test]
    fn duplicate_subtree_copies_conditions_in_place() {
        let mut t = figure1_example();
        let w1 = t.events().by_name("w1").unwrap();
        let c = t.tree().iter().find(|&n| t.tree().label(n) == "C").unwrap();
        let root = t.tree().root();
        let copy = t.duplicate_subtree(root, c, Condition::of(Literal::pos(w1)));
        assert_eq!(t.num_nodes(), 6, "C and D copied");
        assert_eq!(t.condition(copy), Condition::of(Literal::pos(w1)));
        let copied_d = t.tree().children(copy)[0];
        assert_eq!(t.tree().label(copied_d), "D");
        assert_eq!(t.condition(copied_d).len(), 1, "D keeps its w2 condition");
        // The original subtree is untouched.
        assert_eq!(t.condition(c), Condition::always());
    }

    #[test]
    fn compact_drops_detached_conditions() {
        let mut t = figure1_example();
        let b = t.tree().iter().find(|&n| t.tree().label(n) == "B").unwrap();
        t.detach(b);
        let (compacted, _) = t.compact();
        assert_eq!(compacted.num_nodes(), 3);
        assert_eq!(compacted.num_literals(), 1); // only D's w2 remains
    }

    #[test]
    fn ascii_rendering_shows_conditions() {
        let t = figure1_example();
        let text = t.to_ascii();
        assert!(text.contains("B  [w1 ∧ ¬w2]"));
        assert!(text.contains("D  [w2]"));
        assert!(text.lines().next().unwrap().trim() == "A");
    }

    #[test]
    fn setting_empty_condition_clears_annotation() {
        let mut t = figure1_example();
        let b = t.tree().iter().find(|&n| t.tree().label(n) == "B").unwrap();
        t.set_condition(b, Condition::always());
        assert_eq!(t.num_literals(), 1);
    }

    #[test]
    fn invariants_hold_on_figure1_and_after_edits() {
        let mut t = figure1_example();
        t.validate_invariants().unwrap();
        let b = t.tree().iter().find(|&n| t.tree().label(n) == "B").unwrap();
        t.detach(b);
        // Detached conditions linger until compact — still valid.
        t.validate_invariants().unwrap();
        let (compacted, _) = t.compact();
        compacted.validate_invariants().unwrap();
    }

    #[test]
    fn invariants_catch_dangling_event_references() {
        // A condition over an event id the table never declared.
        let mut t = ProbTree::new("A");
        let root = t.tree().root();
        t.add_child(
            root,
            "B",
            Condition::of(Literal::pos(pxml_events::EventId::from_index(3))),
        );
        let err = t.validate_invariants().unwrap_err();
        assert!(err.contains("undeclared event"), "{err}");
    }
}
