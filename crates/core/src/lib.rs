//! # pxml-core — the probabilistic tree (prob-tree) model
//!
//! This crate implements the central contribution of Senellart & Abiteboul,
//! *"On the Complexity of Managing Probabilistic XML Data"* (PODS 2007):
//! **probabilistic trees** — unordered labeled trees whose nodes carry
//! conjunctions of possibly-negated, independently-distributed event
//! variables — together with the machinery the paper builds around them.
//!
//! | Paper section | Module |
//! |---|---|
//! | §2 syntax of prob-trees (Def. 2) | [`probtree`] |
//! | §2 possible-world semantics (Def. 3–4), expressiveness | [`pwset`], [`semantics`], [`worlds`] |
//! | §2 locally monotone queries, tree-pattern queries with joins (Def. 5–8, Thm. 1, Prop. 2) | [`query`] |
//! | §2 / Appendix A probabilistic updates (Def. 14–16, Thm. 3) | [`update`] |
//! | §3 cleaning, structural equivalence, the co-RP algorithm (Fig. 3, Thm. 2) | [`clean`], [`equivalence`] |
//! | §4 threshold restriction (Thm. 4) | [`threshold`] |
//! | §5 variants: simple model, set semantics, arbitrary formulas, semantic equivalence | [`variants`], [`equivalence::semantic_equivalent`] |
//! | ProXML on-disk format | [`proxml`] |
//!
//! ## Quick example (Figure 1 / Figure 2 of the paper)
//!
//! ```
//! use pxml_core::probtree::ProbTree;
//! use pxml_core::semantics::possible_worlds;
//! use pxml_events::{Condition, Literal};
//!
//! // Build the Figure 1 prob-tree:  A with children B [w1 ∧ ¬w2] and
//! // C [⊤] which has child D [w2];  π(w1)=0.8, π(w2)=0.7.
//! let mut t = ProbTree::new("A");
//! let w1 = t.events_mut().insert("w1", 0.8);
//! let w2 = t.events_mut().insert("w2", 0.7);
//! let root = t.tree().root();
//! t.add_child(root, "B", Condition::from_literals([Literal::pos(w1), Literal::neg(w2)]));
//! let c = t.add_child(root, "C", Condition::always());
//! t.add_child(c, "D", Condition::of(Literal::pos(w2)));
//!
//! // Its possible-world semantics is the Figure 2 PW set.
//! let pw = possible_worlds(&t, 20).unwrap().normalized();
//! assert_eq!(pw.len(), 3);
//! let probs: Vec<f64> = pw.iter().map(|(_, p)| (p * 100.0).round() / 100.0).collect();
//! assert!(probs.contains(&0.06) && probs.contains(&0.70) && probs.contains(&0.24));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod clean;
pub mod config;
pub mod document;
pub mod equivalence;
pub mod prelude;
pub mod probtree;
pub mod proxml;
pub mod pwset;
pub mod query;
pub mod semantics;
pub mod threshold;
pub mod update;
pub mod variants;
pub mod worlds;

pub use document::{
    DeltaWindow, Document, DocumentId, Epoch, StageConflict, StagedStep, UpdateDelta,
    DEFAULT_DELTA_LOG_CAPACITY,
};
pub use probtree::ProbTree;
pub use pwset::PossibleWorldSet;
pub use query::pattern::PatternQuery;
pub use query::{
    AnswerSet, FallbackReason, MaintainError, MaintainOutcome, MaintainStats,
    MonotonicityCertificate, PreparedQuery, QueryEngine, QueryEngineConfig, QueryHints,
    SemiringCacheStats, Theorem1Error, TieBreak,
};
pub use update::{
    DeletionForecast, ProbabilisticUpdate, SurvivorBudgetExceeded, UpdateAction, UpdateEngine,
    UpdateEngineConfig, UpdateOperation, UpdateScript,
};
pub use worlds::{FactorizedWorlds, ShardExecutor, ShardPlan, WorldEngine, WorldEngineConfig};

/// Default bound on the number of event variables accepted by APIs that
/// enumerate all `2^{|W|}` possible worlds. Re-exported from `pxml-events`.
pub use pxml_events::valuation::DEFAULT_MAX_EXHAUSTIVE_EVENTS;
