//! Cleaning of prob-trees (Section 3 of the paper).
//!
//! A prob-tree can be *cleaned* in linear time by
//!
//! 1. removing **superfluous** atomic conditions — literals already implied
//!    by a condition on an ancestor (a node is only present when all its
//!    ancestors are, so repeating an ancestor's literal is redundant); and
//! 2. pruning nodes with **inconsistent** conditions — conditions that are
//!    intrinsically contradictory (`w ∧ ¬w`) or that contradict a literal
//!    imposed by an ancestor.
//!
//! Cleaning preserves structural equivalence and is the first step of the
//! Figure 3 randomized equivalence algorithm.

use std::collections::HashMap;

use pxml_events::{Condition, Literal, Probability, Semiring};
use pxml_tree::NodeId;

use crate::probtree::ProbTree;

/// Returns a cleaned, compacted copy of `tree`. Shared children are
/// materialized first: cleaning rewrites conditions in place, which the
/// immutable stored shapes do not support.
pub fn clean(tree: &ProbTree) -> ProbTree {
    clean_traced(tree).0
}

/// [`clean`] plus the node mapping from ids in `tree` (after expansion —
/// expansion appends, so pre-existing arena ids are stable) to ids in the
/// returned tree. `None` means the identity mapping; nodes absent from the
/// map were pruned. The update engine threads these maps through its
/// simplification chain to build the ground-truth [`crate::UpdateDelta`].
pub fn clean_traced(tree: &ProbTree) -> (ProbTree, Option<HashMap<NodeId, NodeId>>) {
    let mut work = tree.expanded().into_owned();
    let mut to_detach: Vec<NodeId> = Vec::new();

    // Pre-order walk guarantees ancestors are processed before descendants,
    // so ancestor conditions read below are already cleaned.
    let nodes: Vec<NodeId> = work.tree().iter().collect();
    for node in nodes {
        if node == work.tree().root() {
            continue;
        }
        let ancestor = work.ancestor_condition(node);
        if !ancestor.is_consistent() {
            // An ancestor is already impossible; this node can never exist.
            to_detach.push(node);
            continue;
        }
        let own = work.condition(node);
        let mut kept: Vec<Literal> = Vec::new();
        let mut inconsistent = !own.is_consistent();
        for &literal in own.literals() {
            if ancestor.literals().contains(&literal.negated()) {
                // Contradicts an ancestor: the node can never be present.
                inconsistent = true;
                break;
            }
            if ancestor.literals().contains(&literal) {
                // Superfluous: already guaranteed by the ancestor.
                continue;
            }
            kept.push(literal);
        }
        if inconsistent {
            to_detach.push(node);
        } else {
            work.set_condition(node, Condition::from_literals(kept));
        }
    }
    for node in to_detach {
        // A node may already hang below a previously detached ancestor; the
        // arena detach is idempotent enough for our purposes (detaching a
        // node whose parent was detached is harmless).
        if work.tree().parent(node).is_some() {
            work.detach(node);
        }
    }
    let (compacted, mapping) = work.compact();
    (compacted, Some(mapping))
}

/// Prunes the branches a **certain** event makes impossible and drops the
/// literals it makes redundant: a positive literal on a `π(w) = 1` event
/// holds in every positive-probability world (removed from its condition),
/// while a negative literal on such an event can never hold there (the
/// node and its descendants are detached). `π(w) = 0` cannot occur — the
/// event table enforces `π ∈ (0, 1]`.
///
/// Unlike [`clean`], which preserves structural equivalence (Definition 9
/// quantifies over *all* valuations, including zero-probability ones),
/// this pass only preserves the **normalized possible-world semantics**:
/// it is part of the update engine's simplification chain, whose contract
/// is agreement with `apply_to_pw_set` up to normalization.
pub fn prune_certain(tree: &ProbTree) -> ProbTree {
    prune_certain_traced(tree).0
}

/// [`prune_certain`] plus the node mapping, with the same contract as
/// [`clean_traced`]. The no-certain-event early return yields `None`
/// (identity) without scanning. Equivalent to [`prune_certain_traced_in`]
/// under the [`Probability`] semiring.
pub fn prune_certain_traced(tree: &ProbTree) -> (ProbTree, Option<HashMap<NodeId, NodeId>>) {
    prune_certain_traced_in(tree, &Probability)
}

/// [`prune_certain`] generalized over a [`Semiring`]: a literal is dropped
/// when it is *certain* in the semiring's sense
/// ([`Semiring::literal_certain`]: its negation annihilates), and a branch
/// is detached when its literal's interpretation is the semiring's zero.
/// Under [`Probability`] this is exactly the π ≥ 1 pass ([`prune_certain`]
/// keeps its historical behavior); under `Counting` or `Lineage` no
/// literal is ever certain and the pass is the identity.
pub fn prune_certain_in<S: Semiring>(tree: &ProbTree, semiring: &S) -> ProbTree {
    prune_certain_traced_in(tree, semiring).0
}

/// [`prune_certain_in`] plus the node mapping, with the same contract as
/// [`clean_traced`].
pub fn prune_certain_traced_in<S: Semiring>(
    tree: &ProbTree,
    semiring: &S,
) -> (ProbTree, Option<HashMap<NodeId, NodeId>>) {
    // Fresh confidence events are always < 1, so most trees have no
    // certain event at all — skip the scan-and-compact entirely. (Under
    // `Probability` only positive literals on π = 1 events are certain and
    // only their negations are impossible, so checking both polarities per
    // event reduces to the historical `π < 1 for all events` early
    // return.)
    let events = tree.events();
    if events.iter().all(|e| {
        !semiring.literal_certain(Literal::pos(e), events)
            && !semiring.literal_certain(Literal::neg(e), events)
    }) {
        return (tree.clone(), None);
    }
    let mut work = tree.expanded().into_owned();
    let mut to_detach: Vec<NodeId> = Vec::new();
    let nodes: Vec<NodeId> = work.tree().iter().collect();
    for node in nodes {
        if node == work.tree().root() {
            continue;
        }
        let own = work.condition(node);
        let mut kept: Vec<Literal> = Vec::new();
        let mut impossible = false;
        for &literal in own.literals() {
            if semiring.literal_certain(literal, work.events()) {
                continue; // certainly true: superfluous
            }
            if semiring.is_zero(&semiring.literal(literal, work.events())) {
                impossible = true; // certainly false: dead branch
                break;
            }
            kept.push(literal);
        }
        if impossible {
            to_detach.push(node);
        } else if kept.len() != own.len() {
            work.set_condition(node, Condition::from_literals(kept));
        }
    }
    for node in to_detach {
        // Guard as in `clean`: an ancestor may already be detached.
        if work.tree().parent(node).is_some() {
            work.detach(node);
        }
    }
    let (compacted, mapping) = work.compact();
    (compacted, Some(mapping))
}

/// `true` if `tree` is already clean: no node condition repeats or
/// contradicts an ancestor literal, and every condition is consistent.
pub fn is_clean(tree: &ProbTree) -> bool {
    let tree = tree.expanded();
    let tree = tree.as_ref();
    for node in tree.tree().iter() {
        if node == tree.tree().root() {
            continue;
        }
        let own = tree.condition(node);
        if !own.is_consistent() {
            return false;
        }
        let ancestor = tree.ancestor_condition(node);
        for &literal in own.literals() {
            if ancestor.literals().contains(&literal)
                || ancestor.literals().contains(&literal.negated())
            {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probtree::figure1_example;
    use crate::semantics::possible_worlds;
    use pxml_events::{Condition, Literal};

    #[test]
    fn figure1_is_already_clean() {
        let t = figure1_example();
        assert!(is_clean(&t));
        let cleaned = clean(&t);
        assert_eq!(cleaned.num_nodes(), t.num_nodes());
        assert_eq!(cleaned.num_literals(), t.num_literals());
    }

    #[test]
    fn superfluous_ancestor_literals_are_removed() {
        let mut t = ProbTree::new("A");
        let w = t.events_mut().insert("w", 0.5);
        let root = t.tree().root();
        let b = t.add_child(root, "B", Condition::of(Literal::pos(w)));
        // C repeats the ancestor's literal.
        t.add_child(b, "C", Condition::of(Literal::pos(w)));
        assert!(!is_clean(&t));
        let cleaned = clean(&t);
        assert!(is_clean(&cleaned));
        assert_eq!(cleaned.num_nodes(), 3);
        assert_eq!(cleaned.num_literals(), 1, "only B keeps its literal");
    }

    #[test]
    fn intrinsically_inconsistent_nodes_are_pruned() {
        let mut t = ProbTree::new("A");
        let w = t.events_mut().insert("w", 0.5);
        let root = t.tree().root();
        let b = t.add_child(
            root,
            "B",
            Condition::from_literals([Literal::pos(w), Literal::neg(w)]),
        );
        t.add_child(b, "C", Condition::always());
        let cleaned = clean(&t);
        assert_eq!(cleaned.num_nodes(), 1, "B and its descendant C are gone");
    }

    #[test]
    fn nodes_contradicting_ancestors_are_pruned() {
        let mut t = ProbTree::new("A");
        let w = t.events_mut().insert("w", 0.5);
        let root = t.tree().root();
        let b = t.add_child(root, "B", Condition::of(Literal::pos(w)));
        t.add_child(b, "C", Condition::of(Literal::neg(w)));
        let cleaned = clean(&t);
        assert_eq!(cleaned.num_nodes(), 2);
        assert!(is_clean(&cleaned));
    }

    #[test]
    fn cleaning_preserves_possible_world_semantics() {
        let mut t = ProbTree::new("A");
        let w1 = t.events_mut().insert("w1", 0.6);
        let w2 = t.events_mut().insert("w2", 0.3);
        let root = t.tree().root();
        let b = t.add_child(root, "B", Condition::of(Literal::pos(w1)));
        // Superfluous w1 plus a real w2 condition.
        t.add_child(
            b,
            "C",
            Condition::from_literals([Literal::pos(w1), Literal::pos(w2)]),
        );
        // An impossible node.
        t.add_child(
            root,
            "D",
            Condition::from_literals([Literal::pos(w2), Literal::neg(w2)]),
        );
        let before = possible_worlds(&t, 20).unwrap().normalized();
        let cleaned = clean(&t);
        let after = possible_worlds(&cleaned, 20).unwrap().normalized();
        assert!(before.isomorphic(&after));
        assert!(is_clean(&cleaned));
        assert!(cleaned.num_literals() < t.num_literals());
    }

    #[test]
    fn prune_certain_drops_certain_literals_and_dead_branches() {
        let mut t = ProbTree::new("A");
        let sure = t.events_mut().insert("sure", 1.0);
        let w = t.events_mut().insert("w", 0.5);
        let root = t.tree().root();
        // `sure ∧ w` simplifies to `w`.
        let b = t.add_child(
            root,
            "B",
            Condition::from_literals([Literal::pos(sure), Literal::pos(w)]),
        );
        t.add_child(b, "C", Condition::always());
        // `¬sure` can never hold in a positive-probability world.
        let d = t.add_child(root, "D", Condition::of(Literal::neg(sure)));
        t.add_child(d, "E", Condition::always());
        let before = crate::semantics::possible_worlds(&t, 20)
            .unwrap()
            .normalized();
        let pruned = prune_certain(&t);
        assert_eq!(pruned.num_nodes(), 3, "D and E are dead branches");
        assert_eq!(pruned.num_literals(), 1, "only B's w literal remains");
        let after = crate::semantics::possible_worlds(&pruned, 20)
            .unwrap()
            .normalized();
        assert!(before.isomorphic(&after));
    }

    #[test]
    fn prune_certain_is_identity_without_certain_events() {
        let t = figure1_example();
        let pruned = prune_certain(&t);
        assert_eq!(pruned.num_nodes(), t.num_nodes());
        assert_eq!(pruned.num_literals(), t.num_literals());
    }

    #[test]
    fn cleaning_is_idempotent() {
        let mut t = ProbTree::new("A");
        let w = t.events_mut().insert("w", 0.5);
        let root = t.tree().root();
        let b = t.add_child(root, "B", Condition::of(Literal::pos(w)));
        t.add_child(b, "C", Condition::of(Literal::pos(w)));
        let once = clean(&t);
        let twice = clean(&once);
        assert_eq!(once.num_nodes(), twice.num_nodes());
        assert_eq!(once.num_literals(), twice.num_literals());
    }
}
