//! Cleaning of prob-trees (Section 3 of the paper).
//!
//! A prob-tree can be *cleaned* in linear time by
//!
//! 1. removing **superfluous** atomic conditions — literals already implied
//!    by a condition on an ancestor (a node is only present when all its
//!    ancestors are, so repeating an ancestor's literal is redundant); and
//! 2. pruning nodes with **inconsistent** conditions — conditions that are
//!    intrinsically contradictory (`w ∧ ¬w`) or that contradict a literal
//!    imposed by an ancestor.
//!
//! Cleaning preserves structural equivalence and is the first step of the
//! Figure 3 randomized equivalence algorithm.

use pxml_events::{Condition, Literal};
use pxml_tree::NodeId;

use crate::probtree::ProbTree;

/// Returns a cleaned, compacted copy of `tree`.
pub fn clean(tree: &ProbTree) -> ProbTree {
    let mut work = tree.clone();
    let mut to_detach: Vec<NodeId> = Vec::new();

    // Pre-order walk guarantees ancestors are processed before descendants,
    // so ancestor conditions read below are already cleaned.
    let nodes: Vec<NodeId> = work.tree().iter().collect();
    for node in nodes {
        if node == work.tree().root() {
            continue;
        }
        let ancestor = work.ancestor_condition(node);
        if !ancestor.is_consistent() {
            // An ancestor is already impossible; this node can never exist.
            to_detach.push(node);
            continue;
        }
        let own = work.condition(node);
        let mut kept: Vec<Literal> = Vec::new();
        let mut inconsistent = !own.is_consistent();
        for &literal in own.literals() {
            if ancestor.literals().contains(&literal.negated()) {
                // Contradicts an ancestor: the node can never be present.
                inconsistent = true;
                break;
            }
            if ancestor.literals().contains(&literal) {
                // Superfluous: already guaranteed by the ancestor.
                continue;
            }
            kept.push(literal);
        }
        if inconsistent {
            to_detach.push(node);
        } else {
            work.set_condition(node, Condition::from_literals(kept));
        }
    }
    for node in to_detach {
        // A node may already hang below a previously detached ancestor; the
        // arena detach is idempotent enough for our purposes (detaching a
        // node whose parent was detached is harmless).
        if work.tree().parent(node).is_some() {
            work.detach(node);
        }
    }
    let (compacted, _) = work.compact();
    compacted
}

/// `true` if `tree` is already clean: no node condition repeats or
/// contradicts an ancestor literal, and every condition is consistent.
pub fn is_clean(tree: &ProbTree) -> bool {
    for node in tree.tree().iter() {
        if node == tree.tree().root() {
            continue;
        }
        let own = tree.condition(node);
        if !own.is_consistent() {
            return false;
        }
        let ancestor = tree.ancestor_condition(node);
        for &literal in own.literals() {
            if ancestor.literals().contains(&literal)
                || ancestor.literals().contains(&literal.negated())
            {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probtree::figure1_example;
    use crate::semantics::possible_worlds;
    use pxml_events::{Condition, Literal};

    #[test]
    fn figure1_is_already_clean() {
        let t = figure1_example();
        assert!(is_clean(&t));
        let cleaned = clean(&t);
        assert_eq!(cleaned.num_nodes(), t.num_nodes());
        assert_eq!(cleaned.num_literals(), t.num_literals());
    }

    #[test]
    fn superfluous_ancestor_literals_are_removed() {
        let mut t = ProbTree::new("A");
        let w = t.events_mut().insert("w", 0.5);
        let root = t.tree().root();
        let b = t.add_child(root, "B", Condition::of(Literal::pos(w)));
        // C repeats the ancestor's literal.
        t.add_child(b, "C", Condition::of(Literal::pos(w)));
        assert!(!is_clean(&t));
        let cleaned = clean(&t);
        assert!(is_clean(&cleaned));
        assert_eq!(cleaned.num_nodes(), 3);
        assert_eq!(cleaned.num_literals(), 1, "only B keeps its literal");
    }

    #[test]
    fn intrinsically_inconsistent_nodes_are_pruned() {
        let mut t = ProbTree::new("A");
        let w = t.events_mut().insert("w", 0.5);
        let root = t.tree().root();
        let b = t.add_child(
            root,
            "B",
            Condition::from_literals([Literal::pos(w), Literal::neg(w)]),
        );
        t.add_child(b, "C", Condition::always());
        let cleaned = clean(&t);
        assert_eq!(cleaned.num_nodes(), 1, "B and its descendant C are gone");
    }

    #[test]
    fn nodes_contradicting_ancestors_are_pruned() {
        let mut t = ProbTree::new("A");
        let w = t.events_mut().insert("w", 0.5);
        let root = t.tree().root();
        let b = t.add_child(root, "B", Condition::of(Literal::pos(w)));
        t.add_child(b, "C", Condition::of(Literal::neg(w)));
        let cleaned = clean(&t);
        assert_eq!(cleaned.num_nodes(), 2);
        assert!(is_clean(&cleaned));
    }

    #[test]
    fn cleaning_preserves_possible_world_semantics() {
        let mut t = ProbTree::new("A");
        let w1 = t.events_mut().insert("w1", 0.6);
        let w2 = t.events_mut().insert("w2", 0.3);
        let root = t.tree().root();
        let b = t.add_child(root, "B", Condition::of(Literal::pos(w1)));
        // Superfluous w1 plus a real w2 condition.
        t.add_child(
            b,
            "C",
            Condition::from_literals([Literal::pos(w1), Literal::pos(w2)]),
        );
        // An impossible node.
        t.add_child(
            root,
            "D",
            Condition::from_literals([Literal::pos(w2), Literal::neg(w2)]),
        );
        let before = possible_worlds(&t, 20).unwrap().normalized();
        let cleaned = clean(&t);
        let after = possible_worlds(&cleaned, 20).unwrap().normalized();
        assert!(before.isomorphic(&after));
        assert!(is_clean(&cleaned));
        assert!(cleaned.num_literals() < t.num_literals());
    }

    #[test]
    fn cleaning_is_idempotent() {
        let mut t = ProbTree::new("A");
        let w = t.events_mut().insert("w", 0.5);
        let root = t.tree().root();
        let b = t.add_child(root, "B", Condition::of(Literal::pos(w)));
        t.add_child(b, "C", Condition::of(Literal::pos(w)));
        let once = clean(&t);
        let twice = clean(&once);
        assert_eq!(once.num_nodes(), twice.num_nodes());
        assert_eq!(once.num_literals(), twice.num_literals());
    }
}
