//! Possible-world sets (Section 2 of the paper).
//!
//! A possible-world (PW) set is a finite set of pairs `(t_i, p_i)` of data
//! trees with a common root label and positive probabilities summing to 1.
//! Two PW sets are isomorphic (`∼`) when, for every data tree, the summed
//! probability of its isomorphism class is the same in both. A *strict
//! subset* of a PW set (arising e.g. from threshold restriction or DTD
//! restriction) is compared with `∼sub` (Definition 3), which tops the
//! missing mass up on the root-only tree.

use std::collections::HashMap;

use pxml_events::{prob_eq, PROB_EPS};
use pxml_tree::canon::{canonical_string, Semantics};
use pxml_tree::DataTree;

/// A weighted set of data trees. Probabilities are expected to be positive;
/// whether they must sum to 1 depends on the context (full PW set vs query
/// answer or restriction).
#[derive(Clone, Debug, Default)]
pub struct PossibleWorldSet {
    worlds: Vec<(DataTree, f64)>,
}

impl PossibleWorldSet {
    /// The empty set of worlds.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a PW set from `(tree, probability)` pairs.
    pub fn from_worlds<I: IntoIterator<Item = (DataTree, f64)>>(worlds: I) -> Self {
        PossibleWorldSet {
            worlds: worlds.into_iter().collect(),
        }
    }

    /// Adds one world.
    pub fn push(&mut self, tree: DataTree, probability: f64) {
        self.worlds.push((tree, probability));
    }

    /// Number of worlds (with multiplicity — normalize first for the number
    /// of distinct worlds).
    pub fn len(&self) -> usize {
        self.worlds.len()
    }

    /// `true` if there are no worlds.
    pub fn is_empty(&self) -> bool {
        self.worlds.is_empty()
    }

    /// Iterates over the worlds.
    pub fn iter(&self) -> impl Iterator<Item = &(DataTree, f64)> {
        self.worlds.iter()
    }

    /// Consumes the set and returns its worlds.
    pub fn into_worlds(self) -> Vec<(DataTree, f64)> {
        self.worlds
    }

    /// Sum of the probabilities (1 for a full PW set, less for subsets).
    pub fn total_probability(&self) -> f64 {
        self.worlds.iter().map(|(_, p)| p).sum()
    }

    /// Number of nodes summed over all worlds (a size measure for the
    /// conciseness experiments).
    pub fn total_nodes(&self) -> usize {
        self.worlds.iter().map(|(t, _)| t.len()).sum()
    }

    /// Groups isomorphic worlds together, summing their probabilities
    /// (normalization, Section 2), under the given semantics.
    pub fn normalized_with(&self, semantics: Semantics) -> PossibleWorldSet {
        let mut by_canon: HashMap<String, (DataTree, f64)> = HashMap::new();
        let mut order: Vec<String> = Vec::new();
        for (tree, p) in &self.worlds {
            let key = canonical_string(tree, semantics);
            match by_canon.get_mut(&key) {
                Some(entry) => entry.1 += p,
                None => {
                    by_canon.insert(key.clone(), (tree.clone(), *p));
                    order.push(key);
                }
            }
        }
        PossibleWorldSet {
            worlds: order
                .into_iter()
                .map(|k| by_canon.remove(&k).expect("key recorded"))
                .collect(),
        }
    }

    /// Normalization under the paper's default multiset semantics.
    pub fn normalized(&self) -> PossibleWorldSet {
        self.normalized_with(Semantics::MultiSet)
    }

    /// PW-set isomorphism `∼` under the given semantics: for every
    /// isomorphism class of data trees, both sets assign the same total
    /// probability (up to [`PROB_EPS`]).
    pub fn isomorphic_with(&self, other: &PossibleWorldSet, semantics: Semantics) -> bool {
        let a = self.class_masses(semantics);
        let b = other.class_masses(semantics);
        if a.len() != b.len() {
            return false;
        }
        a.iter().all(|(k, &p)| match b.get(k) {
            Some(&q) => prob_eq(p, q),
            None => p.abs() <= PROB_EPS,
        })
    }

    /// PW-set isomorphism under multiset semantics.
    pub fn isomorphic(&self, other: &PossibleWorldSet) -> bool {
        self.isomorphic_with(other, Semantics::MultiSet)
    }

    /// The `∼sub` comparison of Definition 3: `self` (a strict subset whose
    /// probabilities sum to `p < 1`) is compared against `other` after
    /// topping up `1 − p` on the root-only tree with label `root_label`.
    pub fn isomorphic_sub(&self, other: &PossibleWorldSet, root_label: &str) -> bool {
        let missing = 1.0 - self.total_probability();
        let mut completed = self.clone();
        if missing > PROB_EPS {
            completed.push(DataTree::new(root_label), missing);
        }
        completed.normalized().isomorphic(&other.normalized())
    }

    fn class_masses(&self, semantics: Semantics) -> HashMap<String, f64> {
        let mut masses: HashMap<String, f64> = HashMap::new();
        for (tree, p) in &self.worlds {
            *masses
                .entry(canonical_string(tree, semantics))
                .or_insert(0.0) += p;
        }
        // Drop classes with negligible mass so that comparing a set
        // containing explicit zero-probability entries works.
        masses.retain(|_, p| p.abs() > PROB_EPS);
        masses
    }

    /// Restricts to the worlds whose probability is at least `threshold`
    /// (the `JT K≥p` operation studied in Theorem 4). Call on a normalized
    /// set, otherwise per-entry probabilities are not world probabilities.
    ///
    /// The comparison is an **exact** `p ≥ threshold` — deliberately no
    /// [`PROB_EPS`] slack. An epsilon here would let worlds strictly below
    /// the threshold survive (the old `p ≥ threshold − PROB_EPS` did
    /// exactly that, and the Theorem-4 witness tests had to compensate with
    /// hand-tuned offsets). `PROB_EPS` remains the right tool where two
    /// *independently computed* probabilities are compared for equality
    /// (`∼`, [`prob_eq`]); a threshold is a caller-chosen constant, so any
    /// float slack belongs in the caller's choice of `threshold`, not
    /// here.
    pub fn restrict_to_threshold(&self, threshold: f64) -> PossibleWorldSet {
        PossibleWorldSet {
            worlds: self
                .worlds
                .iter()
                .filter(|(_, p)| *p >= threshold)
                .cloned()
                .collect(),
        }
    }

    /// Restricts to the worlds satisfying `predicate` (used for DTD
    /// restriction).
    pub fn restrict(&self, predicate: &dyn Fn(&DataTree) -> bool) -> PossibleWorldSet {
        PossibleWorldSet {
            worlds: self
                .worlds
                .iter()
                .filter(|(t, _)| predicate(t))
                .cloned()
                .collect(),
        }
    }

    /// The label shared by the roots of all worlds, if consistent.
    pub fn root_label(&self) -> Option<&str> {
        let first = self.worlds.first().map(|(t, _)| t.label(t.root()))?;
        if self.worlds.iter().all(|(t, _)| t.label(t.root()) == first) {
            Some(first)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pxml_tree::builder::{star, TreeSpec};

    fn figure2() -> PossibleWorldSet {
        // Figure 2: {A→C: 0.06, A→C→D: 0.70, A→(B,C): 0.24}
        let t1 = TreeSpec::node("A", vec![TreeSpec::leaf("C")]).build();
        let t2 = TreeSpec::node("A", vec![TreeSpec::node("C", vec![TreeSpec::leaf("D")])]).build();
        let t3 = TreeSpec::node("A", vec![TreeSpec::leaf("B"), TreeSpec::leaf("C")]).build();
        PossibleWorldSet::from_worlds([(t1, 0.06), (t2, 0.70), (t3, 0.24)])
    }

    #[test]
    fn figure2_sums_to_one() {
        let pw = figure2();
        assert!(prob_eq(pw.total_probability(), 1.0));
        assert_eq!(pw.len(), 3);
        assert_eq!(pw.root_label(), Some("A"));
    }

    #[test]
    fn normalization_merges_isomorphic_worlds() {
        let mut pw = figure2();
        // Add a duplicate of the first world with extra mass; not a valid PW
        // set any more but normalization only merges.
        pw.push(TreeSpec::node("A", vec![TreeSpec::leaf("C")]).build(), 0.1);
        let normalized = pw.normalized();
        assert_eq!(normalized.len(), 3);
        let mass: f64 = normalized
            .iter()
            .filter(|(t, _)| t.len() == 2)
            .map(|(_, p)| p)
            .sum();
        assert!(prob_eq(mass, 0.16));
    }

    #[test]
    fn isomorphism_ignores_world_order_and_splitting() {
        let a = figure2();
        // The same set with the 0.70 world split in two halves and listed in
        // a different order.
        let t1 = TreeSpec::node("A", vec![TreeSpec::leaf("C")]).build();
        let t2 = TreeSpec::node("A", vec![TreeSpec::node("C", vec![TreeSpec::leaf("D")])]).build();
        let t3 = TreeSpec::node("A", vec![TreeSpec::leaf("C"), TreeSpec::leaf("B")]).build();
        let b =
            PossibleWorldSet::from_worlds([(t3, 0.24), (t2.clone(), 0.35), (t1, 0.06), (t2, 0.35)]);
        assert!(a.isomorphic(&b));
        assert!(b.isomorphic(&a));
    }

    #[test]
    fn isomorphism_detects_probability_differences() {
        let a = figure2();
        let t1 = TreeSpec::node("A", vec![TreeSpec::leaf("C")]).build();
        let t2 = TreeSpec::node("A", vec![TreeSpec::node("C", vec![TreeSpec::leaf("D")])]).build();
        let t3 = TreeSpec::node("A", vec![TreeSpec::leaf("B"), TreeSpec::leaf("C")]).build();
        let b = PossibleWorldSet::from_worlds([(t1, 0.16), (t2, 0.60), (t3, 0.24)]);
        assert!(!a.isomorphic(&b));
    }

    #[test]
    fn isomorphism_respects_multiset_vs_set_semantics() {
        let two = star("A", "B", 2);
        let one = star("A", "B", 1);
        let a = PossibleWorldSet::from_worlds([(two, 1.0)]);
        let b = PossibleWorldSet::from_worlds([(one, 1.0)]);
        assert!(!a.isomorphic_with(&b, Semantics::MultiSet));
        assert!(a.isomorphic_with(&b, Semantics::Set));
    }

    #[test]
    fn sub_isomorphism_tops_up_on_root_only_tree() {
        // Keep only the 0.24 world; ∼sub should compare it against the set
        // {that world: 0.24, root-only: 0.76}.
        let pw = figure2();
        let restricted = PossibleWorldSet::from_worlds(
            pw.iter()
                .filter(|(t, _)| t.iter().any(|n| t.label(n) == "B"))
                .cloned()
                .collect::<Vec<_>>(),
        );
        let t3 = TreeSpec::node("A", vec![TreeSpec::leaf("B"), TreeSpec::leaf("C")]).build();
        let expected = PossibleWorldSet::from_worlds([(t3, 0.24), (DataTree::new("A"), 0.76)]);
        assert!(restricted.isomorphic_sub(&expected, "A"));
        // But not to the unrestricted original.
        assert!(!restricted.isomorphic_sub(&pw, "A"));
    }

    #[test]
    fn threshold_restriction_filters_low_probability_worlds() {
        let pw = figure2();
        let restricted = pw.restrict_to_threshold(0.2);
        assert_eq!(restricted.len(), 2);
        assert!(restricted.total_probability() < 1.0);
        let all = pw.restrict_to_threshold(0.0);
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn threshold_comparison_is_exact_at_the_boundary() {
        let pw = figure2();
        // Exactly at a world's probability: the world survives.
        assert_eq!(pw.restrict_to_threshold(0.24).len(), 2);
        // A hair below (threshold − PROB_EPS/2): still survives.
        assert_eq!(pw.restrict_to_threshold(0.24 - PROB_EPS / 2.0).len(), 2);
        // A hair above (threshold + PROB_EPS/2): dropped — the old
        // `≥ threshold − PROB_EPS` slack wrongly kept it.
        assert_eq!(pw.restrict_to_threshold(0.24 + PROB_EPS / 2.0).len(), 1);
    }

    #[test]
    fn predicate_restriction() {
        let pw = figure2();
        let no_b = pw.restrict(&|t: &DataTree| !t.iter().any(|n| t.label(n) == "B"));
        assert_eq!(no_b.len(), 2);
    }

    #[test]
    fn root_label_none_when_inconsistent() {
        let pw =
            PossibleWorldSet::from_worlds([(DataTree::new("A"), 0.5), (DataTree::new("B"), 0.5)]);
        assert_eq!(pw.root_label(), None);
    }
}
