//! Equivalence of prob-trees (Section 3 and the "Semantic Equivalence"
//! variant of Section 5).
//!
//! * **Structural equivalence** (`≡struct`, Definition 9): two prob-trees
//!   over the same event variables and distribution are structurally
//!   equivalent when every valuation yields isomorphic worlds. Deciding it
//!   is co-NP (Proposition 3) and in co-RP (Theorem 2); this module
//!   provides the exhaustive `2^{|W|}` baseline and the Figure 3 randomized
//!   polynomial-time algorithm.
//! * **Semantic equivalence** (`≡sem`, Section 5): `JT K ∼ JT'K`, defined
//!   for prob-trees over possibly different event sets; decided here by
//!   (exponential) expansion of both possible-world sets.

pub mod randomized;

use pxml_events::valuation::TooManyValuations;
use pxml_tree::canon::{canonical_string, Semantics};

use crate::probtree::ProbTree;
use crate::semantics::possible_worlds_normalized;
use crate::worlds::WorldEngine;

pub use randomized::{structural_equivalent_randomized, EquivalenceConfig};

/// Exhaustive decision of structural equivalence (Definition 9):
/// enumerates every valuation `V ⊆ W` — via the relevant-event
/// [`WorldEngine`], which only materializes assignments to the events some
/// condition of either tree mentions (flipping any other event changes
/// neither value) — and compares `V(T)` and `V(T')` up to isomorphism.
/// Exponential in the size of the joint relevant set; guarded by
/// `max_events`.
///
/// Returns `false` immediately if the two prob-trees do not declare the
/// same event variables and distribution (structural equivalence is only
/// defined in that case).
pub fn structural_equivalent_exhaustive(
    a: &ProbTree,
    b: &ProbTree,
    max_events: usize,
) -> Result<bool, TooManyValuations> {
    structural_equivalent_exhaustive_with(a, b, max_events, Semantics::MultiSet)
}

/// Exhaustive structural equivalence under an explicit data-tree semantics
/// (the Section 5 set-semantics variant uses [`Semantics::Set`]).
pub fn structural_equivalent_exhaustive_with(
    a: &ProbTree,
    b: &ProbTree,
    max_events: usize,
    semantics: Semantics,
) -> Result<bool, TooManyValuations> {
    if !a.events().same_distribution(b.events()) {
        return Ok(false);
    }
    // Definition 9 quantifies over *all* valuations, so use the unpruned
    // enumeration (zero-probability branches still count).
    let engine = WorldEngine::for_pair(a, b);
    for valuation in engine.all_valuations(max_events)? {
        let wa = a.value_in_world(&valuation);
        let wb = b.value_in_world(&valuation);
        if canonical_string(&wa, semantics) != canonical_string(&wb, semantics) {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Semantic equivalence (`≡sem`): the possible-world semantics of the two
/// prob-trees are isomorphic PW sets. Exponential in the worst case; both
/// expansions run on the factorized shard executor
/// ([`possible_worlds_normalized`]), so each side costs `Σ_c 2^{|C_i|}`
/// shard states plus the joint combine of its condition-distinct classes.
///
/// Unlike structural equivalence, the two prob-trees may use different
/// event variables and probabilities (Proposition 4 discusses the
/// relationship between the two notions). And unlike the structural check
/// below, the PW semantics only observes valuations through each tree's
/// *own* conditions, which is exactly the granularity the factorized
/// shard classes preserve — whereas [`structural_equivalent_exhaustive`]
/// compares worlds valuation-by-valuation *across* two trees, so it must
/// keep the exact, un-deduplicated [`WorldEngine::all_valuations`]
/// enumeration (a shard class of one tree may split under the other
/// tree's conditions).
pub fn semantic_equivalent(
    a: &ProbTree,
    b: &ProbTree,
    max_events: usize,
) -> Result<bool, TooManyValuations> {
    let pa = possible_worlds_normalized(a, max_events)?;
    let pb = possible_worlds_normalized(b, max_events)?;
    Ok(pa.isomorphic(&pb))
}

/// Decides whether the prob-tree is independent of `event`, i.e. whether
/// flipping the value of `event` never changes the produced world. The
/// paper observes this is computationally equivalent to structural
/// equivalence (it can be used to encode an equivalence check and vice
/// versa). Exhaustive over the relevant events (plus `event` itself, so
/// both of its polarities are always probed).
pub fn independent_of_event_exhaustive(
    tree: &ProbTree,
    event: pxml_events::EventId,
    max_events: usize,
) -> Result<bool, TooManyValuations> {
    let engine = WorldEngine::with_extra_events(tree, [event]);
    for valuation in engine.all_valuations(max_events)? {
        if valuation.get(event) {
            continue; // only consider each pair once, from the `false` side
        }
        let mut flipped = valuation.clone();
        flipped.set(event, true);
        let w0 = tree.value_in_world(&valuation);
        let w1 = tree.value_in_world(&flipped);
        if canonical_string(&w0, Semantics::MultiSet) != canonical_string(&w1, Semantics::MultiSet)
        {
            return Ok(false);
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probtree::figure1_example;
    use pxml_events::{Condition, Literal};

    #[test]
    fn a_probtree_is_structurally_equivalent_to_itself() {
        let t = figure1_example();
        assert!(structural_equivalent_exhaustive(&t, &t, 20).unwrap());
    }

    #[test]
    fn reordering_children_preserves_structural_equivalence() {
        let t = figure1_example();
        // Rebuild with children declared in the opposite order.
        let mut u = ProbTree::new("A");
        let w1 = u.events_mut().insert("w1", 0.8);
        let w2 = u.events_mut().insert("w2", 0.7);
        let root = u.tree().root();
        let c = u.add_child(root, "C", Condition::always());
        u.add_child(c, "D", Condition::of(Literal::pos(w2)));
        u.add_child(
            root,
            "B",
            Condition::from_literals([Literal::pos(w1), Literal::neg(w2)]),
        );
        assert!(structural_equivalent_exhaustive(&t, &u, 20).unwrap());
    }

    #[test]
    fn changing_a_condition_breaks_structural_equivalence() {
        let t = figure1_example();
        let mut u = figure1_example();
        let b = u.tree().iter().find(|&n| u.tree().label(n) == "B").unwrap();
        let w1 = u.events().by_name("w1").unwrap();
        u.set_condition(b, Condition::of(Literal::pos(w1)));
        assert!(!structural_equivalent_exhaustive(&t, &u, 20).unwrap());
    }

    #[test]
    fn different_distributions_are_never_structurally_equivalent() {
        let t = figure1_example();
        let mut u = figure1_example();
        let w1 = u.events().by_name("w1").unwrap();
        u.events_mut().set_prob(w1, 0.5);
        assert!(!structural_equivalent_exhaustive(&t, &u, 20).unwrap());
        // ... but they can still be compared semantically (and differ).
        assert!(!semantic_equivalent(&t, &u, 20).unwrap());
    }

    #[test]
    fn section5_example_semantically_but_not_structurally_equivalent() {
        // A→B[w1 ∧ w2]  vs  A→B[w3] with π(w3) = π(w1)·π(w2): the paper's
        // example of ≡sem without ≡struct. (Note: these trees do not even
        // share W, so ≡struct is false by definition; the point is that the
        // PW semantics agree.)
        let mut a = ProbTree::new("A");
        let w1 = a.events_mut().insert("w1", 0.8);
        let w2 = a.events_mut().insert("w2", 0.5);
        let root = a.tree().root();
        a.add_child(
            root,
            "B",
            Condition::from_literals([Literal::pos(w1), Literal::pos(w2)]),
        );

        let mut b = ProbTree::new("A");
        let w3 = b.events_mut().insert("w3", 0.4);
        let root_b = b.tree().root();
        b.add_child(root_b, "B", Condition::of(Literal::pos(w3)));

        assert!(semantic_equivalent(&a, &b, 20).unwrap());
        assert!(!structural_equivalent_exhaustive(&a, &b, 20).unwrap());
    }

    #[test]
    fn structural_equivalence_implies_semantic_equivalence() {
        // Proposition 4 (i) on a concrete instance.
        let t = figure1_example();
        let mut u = figure1_example();
        // Add a node that can never exist; cleaning-insensitive structural
        // equivalence still holds because the node never appears in any
        // world.
        let root = u.tree().root();
        let w1 = u.events().by_name("w1").unwrap();
        u.add_child(
            root,
            "Ghost",
            Condition::from_literals([Literal::pos(w1), Literal::neg(w1)]),
        );
        assert!(structural_equivalent_exhaustive(&t, &u, 20).unwrap());
        assert!(semantic_equivalent(&t, &u, 20).unwrap());
    }

    /// Semantic equivalence through the factorized expansion, on trees
    /// whose 18 relevant events exceed the streamed guard at this budget
    /// (6 components of 3 events): adding a node guarded by a
    /// contradictory condition changes the syntax but not the semantics,
    /// and a genuinely different tree is still distinguished.
    #[test]
    fn semantic_equivalence_beyond_the_streamed_guard() {
        let build = || {
            let mut t = ProbTree::new("A");
            let root = t.tree().root();
            let mut first = None;
            for i in 0..6 {
                let w: Vec<_> = (0..3).map(|_| t.events_mut().fresh(0.5)).collect();
                first.get_or_insert(w[0]);
                t.add_child(
                    root,
                    format!("B{i}"),
                    Condition::from_literals(w.iter().map(|&e| Literal::pos(e))),
                );
            }
            (t, first.unwrap())
        };
        let (a, _) = build();
        let (mut b, e) = build();
        let root = b.tree().root();
        // Never-present ghost: syntax differs, semantics doesn't.
        b.add_child(
            root,
            "Ghost",
            Condition::from_literals([Literal::pos(e), Literal::neg(e)]),
        );
        assert_eq!(a.events().len(), 18);
        assert!(WorldEngine::new(&a).normalized_worlds(16).is_err());
        assert!(semantic_equivalent(&a, &b, 16).unwrap());
        let (mut c, _) = build();
        let root = c.tree().root();
        c.add_child(root, "Extra", Condition::always());
        assert!(!semantic_equivalent(&a, &c, 16).unwrap());
    }

    #[test]
    fn independence_check_detects_dependence() {
        let t = figure1_example();
        let w1 = t.events().by_name("w1").unwrap();
        let w2 = t.events().by_name("w2").unwrap();
        assert!(!independent_of_event_exhaustive(&t, w1, 20).unwrap());
        assert!(!independent_of_event_exhaustive(&t, w2, 20).unwrap());
        // A tree that never mentions w is independent of it.
        let mut u = ProbTree::new("A");
        let w = u.events_mut().insert("w", 0.5);
        let root = u.tree().root();
        u.add_child(root, "B", Condition::always());
        assert!(independent_of_event_exhaustive(&u, w, 20).unwrap());
    }

    #[test]
    fn set_semantics_changes_the_verdict() {
        // Two B children with complementary conditions vs a single
        // unconditioned B child: under multiset semantics the worlds differ
        // (two B's vs one when both conditions hold — impossible here since
        // conditions are complementary, so actually every world has exactly
        // one B on the left)... make them differ: left tree duplicates B
        // unconditionally.
        let mut a = ProbTree::new("A");
        let wa = a.events_mut().insert("w", 0.5);
        let root_a = a.tree().root();
        a.add_child(root_a, "B", Condition::of(Literal::pos(wa)));
        a.add_child(root_a, "B", Condition::of(Literal::pos(wa)));

        let mut b = ProbTree::new("A");
        let wb = b.events_mut().insert("w", 0.5);
        let root_b = b.tree().root();
        b.add_child(root_b, "B", Condition::of(Literal::pos(wb)));

        assert!(!structural_equivalent_exhaustive_with(&a, &b, 20, Semantics::MultiSet).unwrap());
        assert!(structural_equivalent_exhaustive_with(&a, &b, 20, Semantics::Set).unwrap());
    }
}
