//! The Figure 3 randomized algorithm for structural equivalence
//! (Theorem 2: the problem is in co-RP).
//!
//! The algorithm combines the Aho–Hopcroft–Ullman bottom-up canonization of
//! unordered trees with randomized *count-equivalence* testing of the DNF
//! formulas formed by the conditions of same-class children (Lemmas 1–2):
//!
//! 1. clean both prob-trees;
//! 2. assign integers ("classes") to nodes bottom-up, two nodes receiving
//!    the same class iff they carry the same label, their children fall in
//!    the same set of classes, and for every child class the disjunctions
//!    of the children's conditions are count-equivalent — tested via
//!    Schwartz–Zippel evaluation of characteristic polynomials;
//! 3. answer `true` iff the two roots receive the same class.
//!
//! The answer is always `true` for structurally equivalent inputs; for
//! inequivalent inputs it is `false` with probability at least
//! `(1 − (N_l/|S|)^m)^{N_n³}` (≥ ½ for the parameter choice of
//! [`EquivalenceConfig::for_error_half`]).

use std::collections::BTreeMap;

use rand::Rng;

use pxml_events::Dnf;
use pxml_poly::zippel::{count_equivalent_randomized, ZippelConfig};
use pxml_tree::NodeId;

use crate::clean::clean;
use crate::probtree::ProbTree;

/// Parameters of the randomized structural-equivalence test.
#[derive(Clone, Copy, Debug, Default)]
pub struct EquivalenceConfig {
    /// Parameters of the underlying count-equivalence tests.
    pub zippel: ZippelConfig,
}

impl EquivalenceConfig {
    /// Parameters guaranteeing overall one-sided error at most ½, following
    /// the bound in the proof of Theorem 2: with `m = 1` trial per test, a
    /// sample set of size `|S| ≥ N_l / (1 − (1/2)^{1/N_n³})` suffices; we
    /// compute that bound from the sizes of the two inputs.
    pub fn for_error_half(a: &ProbTree, b: &ProbTree) -> Self {
        let literals = (a.num_literals() + b.num_literals()).max(1) as f64;
        let nodes = (a.num_nodes() + b.num_nodes()).max(2) as f64;
        let denom = 1.0 - 0.5f64.powf(1.0 / nodes.powi(3));
        let sample = (literals / denom).ceil().max(4.0) as u64;
        EquivalenceConfig {
            zippel: ZippelConfig {
                trials: 1,
                sample_set_size: sample,
            },
        }
    }
}

/// One node's "signature" during the bottom-up classification: its label
/// and, for every class occurring among its children, the disjunction of
/// the conditions of the children in that class.
struct Signature {
    label: String,
    per_class: BTreeMap<u32, Dnf>,
}

/// The Figure 3 algorithm. Returns `true` if the prob-trees are (believed
/// to be) structurally equivalent.
///
/// * Always returns `true` when `a ≡struct b`.
/// * Returns `false` with probability at least ½ (for
///   [`EquivalenceConfig::for_error_half`]; overwhelmingly more for the
///   default config) when they are not.
pub fn structural_equivalent_randomized<R: Rng + ?Sized>(
    a: &ProbTree,
    b: &ProbTree,
    config: &EquivalenceConfig,
    rng: &mut R,
) -> bool {
    if !a.events().same_distribution(b.events()) {
        return false;
    }
    // Step (a): clean.
    let ca = clean(a);
    let cb = clean(b);

    // Group the nodes of both trees by height (distance from the farthest
    // leaf below), so that children are always classified before their
    // parents.
    let mut classes_a: BTreeMap<NodeId, u32> = BTreeMap::new();
    let mut classes_b: BTreeMap<NodeId, u32> = BTreeMap::new();
    // Registry of class representatives; index = class id.
    let mut registry: Vec<Signature> = Vec::new();

    let heights_a = node_heights(&ca);
    let heights_b = node_heights(&cb);
    let max_height = heights_a
        .values()
        .chain(heights_b.values())
        .copied()
        .max()
        .unwrap_or(0);

    for height in 0..=max_height {
        // Collect nodes of this height from both trees.
        let level_a: Vec<NodeId> = heights_a
            .iter()
            .filter(|(_, &h)| h == height)
            .map(|(&n, _)| n)
            .collect();
        let level_b: Vec<NodeId> = heights_b
            .iter()
            .filter(|(_, &h)| h == height)
            .map(|(&n, _)| n)
            .collect();
        for &node in &level_a {
            let sig = signature(&ca, node, &classes_a);
            let class = classify(sig, &mut registry, &config.zippel, rng);
            classes_a.insert(node, class);
        }
        for &node in &level_b {
            let sig = signature(&cb, node, &classes_b);
            let class = classify(sig, &mut registry, &config.zippel, rng);
            classes_b.insert(node, class);
        }
    }

    classes_a[&ca.tree().root()] == classes_b[&cb.tree().root()]
}

/// Height of every node: leaves have height 0, internal nodes one more than
/// their highest child.
fn node_heights(tree: &ProbTree) -> BTreeMap<NodeId, usize> {
    let mut heights = BTreeMap::new();
    let order: Vec<NodeId> = tree.tree().iter().collect();
    for &node in order.iter().rev() {
        let h = tree
            .tree()
            .children(node)
            .iter()
            .map(|c| heights[c] + 1)
            .max()
            .unwrap_or(0);
        heights.insert(node, h);
    }
    heights
}

fn signature(tree: &ProbTree, node: NodeId, classes: &BTreeMap<NodeId, u32>) -> Signature {
    let mut per_class: BTreeMap<u32, Dnf> = BTreeMap::new();
    for &child in tree.tree().children(node) {
        let class = classes[&child];
        per_class
            .entry(class)
            .or_insert_with(Dnf::none)
            .push(tree.condition(child));
    }
    Signature {
        label: tree.tree().label(node).to_string(),
        per_class,
    }
}

/// Finds an existing class count-equivalent to `sig`, or registers a new
/// one.
fn classify<R: Rng + ?Sized>(
    sig: Signature,
    registry: &mut Vec<Signature>,
    zippel: &ZippelConfig,
    rng: &mut R,
) -> u32 {
    'candidates: for (idx, existing) in registry.iter().enumerate() {
        if existing.label != sig.label {
            continue;
        }
        // Step (c)(i): the sets of child classes must coincide.
        if existing.per_class.len() != sig.per_class.len()
            || !existing.per_class.keys().eq(sig.per_class.keys())
        {
            continue;
        }
        // Step (c)(ii): for each class, the disjunctions of conditions must
        // be count-equivalent (checked probabilistically).
        for (class, dnf) in &sig.per_class {
            let other = &existing.per_class[class];
            if !count_equivalent_randomized(dnf, other, zippel, rng) {
                continue 'candidates;
            }
        }
        return idx as u32;
    }
    registry.push(sig);
    (registry.len() - 1) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equivalence::structural_equivalent_exhaustive;
    use crate::probtree::figure1_example;
    use pxml_events::{Condition, Literal};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xE0)
    }

    #[test]
    fn identical_trees_are_equivalent() {
        let t = figure1_example();
        assert!(structural_equivalent_randomized(
            &t,
            &t,
            &EquivalenceConfig::default(),
            &mut rng()
        ));
    }

    #[test]
    fn reordered_and_split_conditions_are_equivalent() {
        // Same semantics expressed with different but count-equivalent
        // children condition sets: two B children under conditions w and ¬w
        // in both trees, but declared in opposite orders.
        let mut a = ProbTree::new("A");
        let wa = a.events_mut().insert("w", 0.5);
        let ra = a.tree().root();
        a.add_child(ra, "B", Condition::of(Literal::pos(wa)));
        a.add_child(ra, "B", Condition::of(Literal::neg(wa)));

        let mut b = ProbTree::new("A");
        let wb = b.events_mut().insert("w", 0.5);
        let rb = b.tree().root();
        b.add_child(rb, "B", Condition::of(Literal::neg(wb)));
        b.add_child(rb, "B", Condition::of(Literal::pos(wb)));

        assert!(structural_equivalent_randomized(
            &a,
            &b,
            &EquivalenceConfig::default(),
            &mut rng()
        ));
        assert!(structural_equivalent_exhaustive(&a, &b, 20).unwrap());
    }

    #[test]
    fn cleaning_differences_do_not_matter() {
        // b carries a redundant ancestor literal and an impossible node;
        // after cleaning both trees coincide.
        let a = figure1_example();
        let mut b = figure1_example();
        let w1 = b.events().by_name("w1").unwrap();
        let d = b.tree().iter().find(|&n| b.tree().label(n) == "D").unwrap();
        let w2 = b.events().by_name("w2").unwrap();
        b.set_condition(d, Condition::from_literals([Literal::pos(w2)]));
        let root = b.tree().root();
        b.add_child(
            root,
            "Ghost",
            Condition::from_literals([Literal::pos(w1), Literal::neg(w1)]),
        );
        assert!(structural_equivalent_randomized(
            &a,
            &b,
            &EquivalenceConfig::default(),
            &mut rng()
        ));
        assert!(structural_equivalent_exhaustive(&a, &b, 20).unwrap());
    }

    #[test]
    fn different_conditions_are_detected() {
        let a = figure1_example();
        let mut b = figure1_example();
        let w1 = b.events().by_name("w1").unwrap();
        let bn = b.tree().iter().find(|&n| b.tree().label(n) == "B").unwrap();
        b.set_condition(bn, Condition::of(Literal::pos(w1)));
        assert!(!structural_equivalent_randomized(
            &a,
            &b,
            &EquivalenceConfig::default(),
            &mut rng()
        ));
    }

    #[test]
    fn different_structure_is_detected() {
        let a = figure1_example();
        let mut b = figure1_example();
        let root = b.tree().root();
        b.add_child(root, "Extra", Condition::always());
        assert!(!structural_equivalent_randomized(
            &a,
            &b,
            &EquivalenceConfig::default(),
            &mut rng()
        ));
    }

    #[test]
    fn different_event_tables_are_rejected_up_front() {
        let a = figure1_example();
        let mut b = figure1_example();
        let w1 = b.events().by_name("w1").unwrap();
        b.events_mut().set_prob(w1, 0.1);
        assert!(!structural_equivalent_randomized(
            &a,
            &b,
            &EquivalenceConfig::default(),
            &mut rng()
        ));
    }

    #[test]
    fn agrees_with_exhaustive_on_random_pairs() {
        use rand::Rng as _;
        let mut r = rng();
        let mut agreements = 0;
        for round in 0..60 {
            // Random prob-tree over 4 events, ~6 nodes.
            let build = |r: &mut StdRng| {
                let mut t = ProbTree::new("R");
                let events: Vec<_> = (0..4).map(|_| t.events_mut().fresh(0.5)).collect();
                let root = t.tree().root();
                let mut nodes = vec![root];
                for i in 0..5 {
                    let parent = nodes[r.gen_range(0..nodes.len())];
                    let label = ["X", "Y"][r.gen_range(0..2usize)];
                    let lits = (0..r.gen_range(0..3usize)).map(|_| pxml_events::Literal {
                        event: events[r.gen_range(0..events.len())],
                        positive: r.gen_bool(0.5),
                    });
                    let node = t.add_child(parent, label, Condition::from_literals(lits));
                    if i < 3 {
                        nodes.push(node);
                    }
                }
                t
            };
            let a = build(&mut r);
            // Half the time compare against an identical clone (should be
            // equivalent), half the time against an independent random tree.
            let b = if round % 2 == 0 {
                a.clone()
            } else {
                build(&mut r)
            };
            let exhaustive = structural_equivalent_exhaustive(&a, &b, 20).unwrap();
            let randomized =
                structural_equivalent_randomized(&a, &b, &EquivalenceConfig::default(), &mut r);
            // One-sided error: randomized must be true whenever exhaustive
            // is; with the default huge sample set the converse failures are
            // negligible, so require exact agreement.
            assert_eq!(exhaustive, randomized, "round {round}");
            agreements += 1;
        }
        assert_eq!(agreements, 60);
    }

    #[test]
    fn verdicts_are_reproducible_under_a_fixed_seed() {
        // Determinism contract: every test in this module relies on seeded
        // RNGs, so a same-seed rerun must retrace the identical decision
        // path and verdict. This guards against reintroducing ambient
        // (entropy-seeded) randomness into the co-RP check's tests.
        let a = figure1_example();
        let mut b = figure1_example();
        let w1 = b.events().by_name("w1").unwrap();
        let bn = b.tree().iter().find(|&n| b.tree().label(n) == "B").unwrap();
        b.set_condition(bn, Condition::of(Literal::pos(w1)));
        for seed in 0..32u64 {
            let verdict = |s| {
                structural_equivalent_randomized(
                    &a,
                    &b,
                    &EquivalenceConfig::default(),
                    &mut StdRng::seed_from_u64(s),
                )
            };
            assert_eq!(verdict(seed), verdict(seed), "seed {seed}");
        }
    }

    #[test]
    fn equivalent_pairs_are_accepted_for_every_seed() {
        // co-RP one-sidedness (Theorem 2): on *equivalent* inputs the
        // Figure 3 algorithm never errs, whatever the random choices. Only
        // inequivalent pairs may (rarely) be misjudged.
        let a = figure1_example();
        let b = figure1_example();
        for seed in 0..64u64 {
            assert!(
                structural_equivalent_randomized(
                    &a,
                    &b,
                    &EquivalenceConfig::default(),
                    &mut StdRng::seed_from_u64(seed),
                ),
                "false rejection at seed {seed}"
            );
        }
    }

    #[test]
    fn error_half_config_is_usable() {
        let a = figure1_example();
        let b = figure1_example();
        let config = EquivalenceConfig::for_error_half(&a, &b);
        assert!(config.zippel.sample_set_size >= 4);
        assert!(structural_equivalent_randomized(
            &a,
            &b,
            &config,
            &mut rng()
        ));
    }
}
