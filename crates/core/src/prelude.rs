//! Convenience facade: one `use pxml_core::prelude::*;` pulls in the
//! engine-based API and, for code still mid-migration, the deprecated
//! one-shot wrappers.
//!
//! The recommended shape of new code is engine-first:
//!
//! * wrap the prob-tree in a [`Document`] when it will be updated;
//! * [`QueryEngine::prepare`] / [`QueryEngine::prepare_doc`] once, then
//!   serve answers, top-k, thresholds, aggregates and the Theorem 1 check
//!   from the [`PreparedQuery`] — and keep it live across update steps
//!   with [`PreparedQuery::maintain`];
//! * apply updates through [`UpdateEngine::apply_doc`] /
//!   [`UpdateEngine::apply_script_doc`] so every step commits a
//!   structured [`UpdateDelta`].
//!
//! The free functions re-exported at the bottom (`query_probtree`,
//! `top_k`, `above`, `expected_matches`, `check_theorem1`) predate the
//! engines. Each one builds a fresh default engine, prepares, serves one
//! request and throws the prepared state away; they remain for existing
//! call sites but are `#[deprecated]` — every use has a direct
//! [`QueryEngine`] / [`PreparedQuery`] replacement with the same
//! semantics and strictly better reuse.

pub use crate::document::{Document, DocumentId, Epoch, UpdateDelta};
pub use crate::probtree::ProbTree;
pub use crate::pwset::PossibleWorldSet;
pub use crate::query::engine::{
    AnswerSet, FallbackReason, MaintainError, MaintainOutcome, MaintainStats, PreparedQuery,
    QueryEngine, QueryEngineConfig, QueryHints, SelectionStats, TieBreak,
};
pub use crate::query::pattern::PatternQuery;
pub use crate::query::prob::{query_pw_set, ProbAnswer};
pub use crate::query::{MonotonicityCertificate, Query, Theorem1Error};
pub use crate::update::{
    ProbabilisticUpdate, UpdateAction, UpdateEngine, UpdateEngineConfig, UpdateOperation,
    UpdateScript,
};

#[allow(deprecated)]
pub use crate::query::prob::{check_theorem1, query_probtree};
#[allow(deprecated)]
pub use crate::query::ranked::{above, expected_matches, top_k};
