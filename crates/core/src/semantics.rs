//! Possible-world semantics of prob-trees and the expressiveness
//! translation back from PW sets (Section 2 of the paper).
//!
//! * [`possible_worlds`] computes `JT K` (Definition 4) by enumerating all
//!   `2^{|W|}` valuations — exponential, guarded by a caller-supplied bound
//!   on `|W|`. It is the *baseline*: production call sites go through
//!   [`possible_worlds_normalized`], which drives the relevant-event
//!   [`WorldEngine`] and only pays for the
//!   events the tree's conditions actually mention.
//! * [`pw_set_to_probtree`] is the converse construction showing that the
//!   prob-tree model is at least as expressive as the PW model: any PW set
//!   `S` has a prob-tree `T` with `S ∼ JT K` (the construction uses one
//!   event variable per world minus one, so its size is essentially the
//!   size of `S` — which Proposition 1 shows cannot be improved in
//!   general).

use pxml_events::valuation::{all_valuations, TooManyValuations};
use pxml_events::{Condition, Literal};
use pxml_tree::DataTree;

use crate::probtree::ProbTree;
use crate::pwset::PossibleWorldSet;
use crate::worlds::{WorldEngine, WorldEngineConfig};

/// Computes the possible-world semantics `JT K` of a prob-tree
/// (Definition 4) by full enumeration of the **declared** event table. The
/// result is **not** normalized: it contains one entry per valuation of
/// the event variables.
///
/// Fails if the prob-tree has more than `max_events` event variables
/// (exponential-work guard). This is the Definition 4 baseline kept for
/// cross-checks; prefer [`possible_worlds_normalized`], which enumerates
/// only the events the tree actually mentions.
pub fn possible_worlds(
    tree: &ProbTree,
    max_events: usize,
) -> Result<PossibleWorldSet, TooManyValuations> {
    let mut out = PossibleWorldSet::new();
    for valuation in all_valuations(tree.events().len(), max_events)? {
        let world = tree.value_in_world(&valuation);
        let p = valuation.probability(tree.events());
        out.push(world, p);
    }
    Ok(out)
}

/// The **normalized** possible-world semantics `JT K` of a prob-tree,
/// computed by the *factorized* relevant-event [`WorldEngine`]: every
/// co-occurrence component is enumerated independently into a shard
/// (`Σ_c 2^{|C_i|}` states instead of `2^{|relevant|}`, with `π(w) = 1`
/// branches pruned and condition-equivalent assignments merged), and only
/// the deduplicated shard classes are combined into joint worlds, streamed
/// into the canonical-form accumulator.
///
/// `max_events` bounds both the largest single component and (as
/// `2^{max_events}`) the total shard work and the joint combine, so
/// everything the legacy relevant-event guard accepted is still accepted —
/// and trees whose relevant events split into many small components are
/// now tractable far beyond it. The executor honors the
/// `PXML_WORLDS_PARALLELISM` / `PXML_WORLDS_MAX_JOINT` environment
/// switches via [`WorldEngineConfig::for_event_budget`], whose joint cap
/// defaults to exactly the `2^{max_events}` budget granted here.
pub fn possible_worlds_normalized(
    tree: &ProbTree,
    max_events: usize,
) -> Result<PossibleWorldSet, TooManyValuations> {
    possible_worlds_factorized(
        tree,
        max_events,
        &WorldEngineConfig::for_event_budget(max_events),
    )
}

/// [`possible_worlds_normalized`] under an explicit executor
/// configuration (thread budget and joint cross-product cap).
pub fn possible_worlds_factorized(
    tree: &ProbTree,
    max_events: usize,
    config: &WorldEngineConfig,
) -> Result<PossibleWorldSet, TooManyValuations> {
    let engine = WorldEngine::new(tree);
    let config = config.clone().with_joint_cap_bits(max_events);
    let factorized = engine.sharded(&config, max_events)?;
    factorized
        .normalized_worlds()
        .map_err(|_joint| TooManyValuations {
            num_events: factorized.num_free_events(),
            max_events,
        })
}

/// Error raised by [`pw_set_to_probtree`] when the input is not a valid PW
/// set.
#[derive(Clone, Debug, PartialEq)]
pub enum PwSetError {
    /// The set contains no world.
    Empty,
    /// Worlds do not share a common root label.
    MixedRootLabels,
    /// A world has a non-positive probability.
    NonPositiveProbability(f64),
    /// Probabilities do not sum to 1.
    DoesNotSumToOne(f64),
    /// A selector event's probability `p_i / Σ_{j ≥ i} p_j` degenerated to
    /// 0 or 1 in floating point (e.g. a world so light that the suffix mass
    /// absorbs it), so the construction cannot represent every world with
    /// positive probability. The payload is `(world index, degenerate
    /// probability)`.
    DegenerateSelectorMass(usize, f64),
}

impl std::fmt::Display for PwSetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PwSetError::Empty => write!(f, "possible-world set is empty"),
            PwSetError::MixedRootLabels => {
                write!(f, "worlds do not share a common root label")
            }
            PwSetError::NonPositiveProbability(p) => {
                write!(f, "world probability {p} is not positive")
            }
            PwSetError::DoesNotSumToOne(total) => {
                write!(f, "world probabilities sum to {total}, expected 1")
            }
            PwSetError::DegenerateSelectorMass(index, p) => {
                write!(
                    f,
                    "selector probability for world {index} degenerates to {p} \
                     (must lie strictly between 0 and 1)"
                )
            }
        }
    }
}

impl std::error::Error for PwSetError {}

/// Builds a prob-tree whose semantics is (isomorphic to) the given PW set.
///
/// The construction follows the paper's expressiveness argument: worlds
/// `t_1 … t_n` with probabilities `p_1 … p_n` are encoded with `n − 1`
/// event variables `w_1 … w_{n−1}` where
/// `π(w_i) = p_i / (1 − p_1 − … − p_{i−1})`, and world `i` is selected by
/// the mutually exclusive condition `¬w_1 ∧ … ∧ ¬w_{i−1} ∧ w_i`
/// (`¬w_1 ∧ … ∧ ¬w_{n−1}` for the last world). The children of each
/// world's root are grafted under the shared root with that condition.
pub fn pw_set_to_probtree(pw: &PossibleWorldSet) -> Result<ProbTree, PwSetError> {
    let worlds: Vec<(DataTree, f64)> = pw.iter().cloned().collect();
    if worlds.is_empty() {
        return Err(PwSetError::Empty);
    }
    let root_label = pw
        .root_label()
        .ok_or(PwSetError::MixedRootLabels)?
        .to_string();
    for (_, p) in &worlds {
        if *p <= 0.0 {
            return Err(PwSetError::NonPositiveProbability(*p));
        }
    }
    let total = pw.total_probability();
    if (total - 1.0).abs() > 1e-6 {
        return Err(PwSetError::DoesNotSumToOne(total));
    }

    let mut out = ProbTree::new(root_label);
    let n = worlds.len();

    // Event variables w_1 .. w_{n-1} with π(w_i) = p_i / Σ_{j ≥ i} p_j.
    //
    // The denominator is an exact suffix sum rather than a running
    // `remaining -= p_i` difference: the sequential subtraction accumulates
    // cancellation error, and near the tail (where `remaining` approaches
    // 0) a drifted or mid-list `p == remaining` silently fabricated
    // selector probabilities — zero-probability tails, or `inf` clamped to
    // 1. With suffix sums each quotient lies strictly in (0, 1) whenever
    // the input masses are representable; a degenerate quotient is a real
    // input pathology and is reported instead of clamped.
    let mut suffix = vec![0.0f64; n + 1];
    for (i, (_, p)) in worlds.iter().enumerate().rev() {
        suffix[i] = suffix[i + 1] + p;
    }
    let mut events = Vec::with_capacity(n.saturating_sub(1));
    for (i, (_, p)) in worlds.iter().enumerate().take(n.saturating_sub(1)) {
        let prob = p / suffix[i];
        if !(prob > 0.0 && prob < 1.0) {
            return Err(PwSetError::DegenerateSelectorMass(i, prob));
        }
        events.push(out.events_mut().insert(format!("sel{}", i + 1), prob));
    }

    let root = out.tree().root();
    for (i, (world, _)) in worlds.iter().enumerate() {
        // Condition selecting world i.
        let mut literals: Vec<Literal> = events[..i.min(events.len())]
            .iter()
            .map(|&e| Literal::neg(e))
            .collect();
        if i < events.len() {
            literals.push(Literal::pos(events[i]));
        }
        let condition = Condition::from_literals(literals);
        // Graft every child subtree of the world's root under the shared
        // root, with the selecting condition on its top node.
        for &child in world.children(world.root()) {
            let subtree = world.subtree_to_tree(child);
            out.graft_data_tree(root, &subtree, condition.clone());
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probtree::figure1_example;
    use pxml_events::prob_eq;
    use pxml_tree::builder::TreeSpec;

    #[test]
    fn figure1_semantics_is_figure2() {
        let t = figure1_example();
        let pw = possible_worlds(&t, 20).unwrap();
        // 2 events -> 4 valuations before normalization.
        assert_eq!(pw.len(), 4);
        let normalized = pw.normalized();
        assert_eq!(normalized.len(), 3);

        let expected = PossibleWorldSet::from_worlds([
            (TreeSpec::node("A", vec![TreeSpec::leaf("C")]).build(), 0.06),
            (
                TreeSpec::node("A", vec![TreeSpec::node("C", vec![TreeSpec::leaf("D")])]).build(),
                0.70,
            ),
            (
                TreeSpec::node("A", vec![TreeSpec::leaf("B"), TreeSpec::leaf("C")]).build(),
                0.24,
            ),
        ]);
        assert!(normalized.isomorphic(&expected));
    }

    #[test]
    fn semantics_total_probability_is_one() {
        let t = figure1_example();
        let pw = possible_worlds(&t, 20).unwrap();
        assert!(prob_eq(pw.total_probability(), 1.0));
    }

    #[test]
    fn guard_rejects_large_event_sets() {
        let mut t = ProbTree::new("A");
        for _ in 0..30 {
            t.events_mut().fresh(0.5);
        }
        assert!(possible_worlds(&t, 24).is_err());
    }

    #[test]
    fn pw_to_probtree_roundtrip_on_figure2() {
        let expected = PossibleWorldSet::from_worlds([
            (TreeSpec::node("A", vec![TreeSpec::leaf("C")]).build(), 0.06),
            (
                TreeSpec::node("A", vec![TreeSpec::node("C", vec![TreeSpec::leaf("D")])]).build(),
                0.70,
            ),
            (
                TreeSpec::node("A", vec![TreeSpec::leaf("B"), TreeSpec::leaf("C")]).build(),
                0.24,
            ),
        ]);
        let probtree = pw_set_to_probtree(&expected).unwrap();
        let back = possible_worlds(&probtree, 20).unwrap().normalized();
        assert!(back.isomorphic(&expected), "\n{}", probtree.to_ascii());
    }

    #[test]
    fn pw_to_probtree_single_world() {
        let world = TreeSpec::node("A", vec![TreeSpec::leaf("B")]).build();
        let pw = PossibleWorldSet::from_worlds([(world.clone(), 1.0)]);
        let probtree = pw_set_to_probtree(&pw).unwrap();
        assert_eq!(probtree.events().len(), 0, "single world needs no events");
        let back = possible_worlds(&probtree, 20).unwrap().normalized();
        assert!(back.isomorphic(&pw));
    }

    #[test]
    fn pw_to_probtree_roundtrip_random_sets() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..20 {
            let n = rng.gen_range(1..6usize);
            // Random small worlds with root label R.
            let mut worlds = Vec::new();
            let mut remaining = 1.0;
            for i in 0..n {
                let mut tree = DataTree::new("R");
                let root = tree.root();
                let children = rng.gen_range(0..4usize);
                for c in 0..children {
                    let child = tree.add_child(root, format!("L{}", (c + i) % 3));
                    if rng.gen_bool(0.3) {
                        tree.add_child(child, "X");
                    }
                }
                let p = if i + 1 == n {
                    remaining
                } else {
                    let p = remaining * rng.gen_range(0.1..0.8);
                    remaining -= p;
                    p
                };
                worlds.push((tree, p));
            }
            let pw = PossibleWorldSet::from_worlds(worlds).normalized();
            let probtree = pw_set_to_probtree(&pw).unwrap();
            let back = possible_worlds(&probtree, 20).unwrap().normalized();
            assert!(back.isomorphic(&pw));
        }
    }

    #[test]
    fn pw_to_probtree_rejects_invalid_inputs() {
        assert_eq!(
            pw_set_to_probtree(&PossibleWorldSet::new()).unwrap_err(),
            PwSetError::Empty
        );
        let mixed =
            PossibleWorldSet::from_worlds([(DataTree::new("A"), 0.5), (DataTree::new("B"), 0.5)]);
        assert_eq!(
            pw_set_to_probtree(&mixed).unwrap_err(),
            PwSetError::MixedRootLabels
        );
        let not_one = PossibleWorldSet::from_worlds([(DataTree::new("A"), 0.4)]);
        assert!(matches!(
            pw_set_to_probtree(&not_one).unwrap_err(),
            PwSetError::DoesNotSumToOne(_)
        ));
    }

    #[test]
    fn figure1_normalized_semantics_via_engine() {
        let t = figure1_example();
        let fast = possible_worlds_normalized(&t, 20).unwrap();
        let legacy = possible_worlds(&t, 20).unwrap().normalized();
        assert_eq!(fast.len(), 3);
        assert!(fast.isomorphic(&legacy));
    }

    /// A tree the streamed relevant-event guard refuses (18 relevant
    /// events > `max_events` = 16) but the factorized path handles: 6
    /// components of 3 events, each carrying a single 3-literal condition,
    /// so every shard collapses to 2 signature classes and the joint walk
    /// visits 2^6 = 64 states.
    #[test]
    fn factorization_extends_the_tractable_frontier() {
        let mut t = ProbTree::new("A");
        let root = t.tree().root();
        for i in 0..6 {
            let w: Vec<_> = (0..3).map(|_| t.events_mut().fresh(0.5)).collect();
            t.add_child(
                root,
                format!("C{i}"),
                Condition::from_literals(w.iter().map(|&e| Literal::pos(e))),
            );
        }
        let engine = WorldEngine::new(&t);
        assert_eq!(engine.num_relevant(), 18);
        // The streamed engine refuses: 18 > 16.
        assert!(engine.normalized_worlds(16).is_err());
        // The factorized path answers: Σ 2^3 = 48 shard states, 64 joint
        // classes — and matches the unguarded streamed enumeration.
        let fast = possible_worlds_normalized(&t, 16).unwrap();
        let reference = engine.normalized_worlds(18).unwrap();
        assert!(fast.isomorphic(&reference));
        assert!(prob_eq(fast.total_probability(), 1.0));
        // 2^6 distinct worlds: each component's C_i child present or not.
        assert_eq!(fast.len(), 1 << 6);
    }

    /// Regression test for the selector-probability fabrication bug: 50
    /// near-equal-probability worlds round-trip exactly. The reconstructed
    /// selector conditions `¬sel_1 ∧ … ∧ ¬sel_{i−1} ∧ sel_i` are mutually
    /// exclusive and exhaustive, so their `eval` probabilities *are* the
    /// per-world masses `possible_worlds` would aggregate — checking them
    /// analytically sidesteps the 2^49 valuation blow-up of a literal
    /// enumeration at this size (a full-enumeration round-trip at a
    /// feasible size follows below).
    #[test]
    fn fifty_near_equal_worlds_roundtrip_exactly() {
        let n = 50usize;
        // Near-equal masses with a deterministic jitter, normalized to 1.
        let raw: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64) * 1e-10).collect();
        let total: f64 = raw.iter().sum();
        let mut worlds = Vec::new();
        for (i, r) in raw.iter().enumerate() {
            let mut tree = DataTree::new("A");
            let root = tree.root();
            for _ in 0..i {
                tree.add_child(root, "C");
            }
            worlds.push((tree, r / total));
        }
        let expected: Vec<f64> = worlds.iter().map(|(_, p)| *p).collect();
        let pw = PossibleWorldSet::from_worlds(worlds);
        let probtree = pw_set_to_probtree(&pw).unwrap();
        assert_eq!(probtree.events().len(), n - 1);

        // Reconstruct each world's selection probability analytically.
        let events = probtree.events();
        let ids: Vec<_> = (0..n - 1)
            .map(|i| events.by_name(&format!("sel{}", i + 1)).unwrap())
            .collect();
        let mut mass_total = 0.0;
        for (i, &p_expected) in expected.iter().enumerate() {
            let mut literals: Vec<Literal> = ids[..i.min(ids.len())]
                .iter()
                .map(|&e| Literal::neg(e))
                .collect();
            if i < ids.len() {
                literals.push(Literal::pos(ids[i]));
            }
            let p = Condition::from_literals(literals).probability(events);
            assert!(
                (p - p_expected).abs() < 1e-12,
                "world {i}: reconstructed {p}, expected {p_expected}"
            );
            mass_total += p;
        }
        assert!((mass_total - 1.0).abs() < 1e-9);
    }

    /// Full-enumeration variant of the round-trip at a feasible size: 14
    /// near-equal worlds → 13 selector events → 8192 valuations.
    #[test]
    fn near_equal_worlds_roundtrip_through_possible_worlds() {
        let n = 14usize;
        let raw: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64) * 1e-10).collect();
        let total: f64 = raw.iter().sum();
        let mut worlds = Vec::new();
        for (i, r) in raw.iter().enumerate() {
            let mut tree = DataTree::new("A");
            let root = tree.root();
            for _ in 0..i {
                tree.add_child(root, "C");
            }
            worlds.push((tree, r / total));
        }
        let pw = PossibleWorldSet::from_worlds(worlds);
        let probtree = pw_set_to_probtree(&pw).unwrap();
        let back = possible_worlds(&probtree, 14).unwrap().normalized();
        assert!(back.isomorphic(&pw));
    }

    /// A world so light that the head world swallows the whole suffix mass
    /// used to be silently encoded with selector probability 1 (erasing the
    /// tail world); it must now fail loudly.
    #[test]
    fn degenerate_selector_mass_is_reported_not_fabricated() {
        let heavy = TreeSpec::node("A", vec![TreeSpec::leaf("B")]).build();
        let light = TreeSpec::node("A", vec![TreeSpec::leaf("C")]).build();
        // 1.0 + 5e-324 rounds to 1.0, so the total-probability check
        // passes, but sel1 = 1.0 / 1.0 = 1 would make the second world
        // unreachable.
        let pw = PossibleWorldSet::from_worlds([(heavy, 1.0), (light, 5e-324)]);
        assert!(matches!(
            pw_set_to_probtree(&pw).unwrap_err(),
            PwSetError::DegenerateSelectorMass(0, p) if p >= 1.0
        ));
    }

    #[test]
    fn construction_size_grows_with_number_of_worlds() {
        // Proposition 1 context: the construction uses ~1 event per world
        // and copies every world's children, so its size is linear in the
        // size of the PW set, not in the size of a single world.
        let mut worlds = Vec::new();
        let n = 8usize;
        for i in 0..n {
            let mut tree = DataTree::new("A");
            let root = tree.root();
            for j in 0..=i {
                tree.add_child(root, format!("C{j}"));
            }
            worlds.push((tree, 1.0 / n as f64));
        }
        let pw = PossibleWorldSet::from_worlds(worlds);
        let probtree = pw_set_to_probtree(&pw).unwrap();
        assert_eq!(probtree.events().len(), n - 1);
        assert!(probtree.num_nodes() > n);
    }
}
