//! Versioned documents: an epoch-stamped prob-tree plus a structured
//! delta log, the handle both engines speak.
//!
//! A [`Document`] owns the current prob-tree behind an [`Arc`] snapshot
//! and stamps every state with a monotone [`Epoch`]. Each
//! [`UpdateEngine::apply_doc`](crate::UpdateEngine::apply_doc) step
//! commits a new epoch together with an [`UpdateDelta`] — the ground
//! truth of what the step did to the tree, reconstructed from the node
//! mapping the engine threads through its compaction and simplification
//! chain:
//!
//! * **removed** — nodes of the old frame with no image in the new frame
//!   (deletion targets, pruned branches, merged sibling copies), reported
//!   as a label set;
//! * **inserted** — nodes of the new frame that are nobody's image
//!   (grafted insertion subtrees, survivor copies, merge covers), again
//!   as labels;
//! * **rewritten** — surviving nodes whose root condition `γ` changed
//!   (deletion splits, cleaning, certain-event pruning).
//!
//! Because the delta is *diffed from the result* rather than predicted
//! from the step, it is exact no matter which simplification passes
//! fired. [`PreparedQuery::maintain`](crate::PreparedQuery::maintain)
//! consumes the log to patch prepared state in place, falling back to a
//! full re-prepare only when a delta's label footprint intersects the
//! query's spine labels.
//!
//! Snapshots are cheap ([`Document::snapshot`] clones an `Arc`), so
//! readers hold on to the exact epoch they prepared against while the
//! document moves on.

use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use pxml_tree::NodeId;

use crate::probtree::ProbTree;
use crate::update::engine::StepReport;
use crate::update::simplify::NodeMapping;

/// Monotone version stamp of a [`Document`] state. Epoch 0 is the state
/// the document was created with; every committed update step adds 1.
pub type Epoch = u64;

static NEXT_DOCUMENT_ID: AtomicU64 = AtomicU64::new(0);

/// Process-unique identity of a [`Document`], used to reject maintaining
/// prepared state against the wrong document. Ids are never reused.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DocumentId(u64);

impl DocumentId {
    fn fresh() -> Self {
        DocumentId(NEXT_DOCUMENT_ID.fetch_add(1, Ordering::Relaxed))
    }
}

/// The structured difference between two consecutive [`Document`] epochs.
#[derive(Clone, Debug)]
pub struct UpdateDelta {
    /// The epoch this delta produced (its step moved `epoch - 1` to
    /// `epoch`).
    pub epoch: Epoch,
    /// Mapping from surviving old-frame node ids to their new-frame ids.
    /// `None` means the step left the tree untouched (no matches); ids
    /// absent from a `Some` map were removed.
    pub node_map: Option<HashMap<NodeId, NodeId>>,
    /// Labels of the removed old-frame nodes.
    pub removed_labels: BTreeSet<String>,
    /// Labels of the inserted new-frame nodes.
    pub inserted_labels: BTreeSet<String>,
    /// New-frame ids of surviving nodes whose root condition changed.
    pub rewritten: BTreeSet<NodeId>,
    /// Number of removed old-frame nodes.
    pub nodes_removed: usize,
    /// Number of inserted new-frame nodes.
    pub nodes_inserted: usize,
    /// The engine telemetry of the committing step (matches, survivor
    /// copies, simplification savings, entry-expansion skip).
    pub report: StepReport,
}

impl UpdateDelta {
    /// `true` if the step changed nothing: no node removed, inserted, or
    /// condition-rewritten.
    pub fn is_identity(&self) -> bool {
        self.nodes_removed == 0 && self.nodes_inserted == 0 && self.rewritten.is_empty()
    }

    /// `true` if any removed or inserted label lies in `footprint` — the
    /// spine-intersection test deciding whether prepared state for a
    /// query with that label footprint can be patched in place.
    pub fn touches(&self, footprint: &BTreeSet<String>) -> bool {
        self.removed_labels
            .iter()
            .chain(self.inserted_labels.iter())
            .any(|label| footprint.contains(label))
    }

    /// Sends an old-frame node id through the delta, `None` if the node
    /// was removed.
    pub fn map_node(&self, node: NodeId) -> Option<NodeId> {
        match &self.node_map {
            None => Some(node),
            Some(map) => map.get(&node).copied(),
        }
    }

    /// Diffs two consecutive frames given the engine's composed node
    /// mapping. Both frames must be fully expanded (the [`Document`]
    /// invariant), so arena iteration covers every logical node.
    fn diff(
        old: &ProbTree,
        new: &ProbTree,
        mapping: &NodeMapping,
        epoch: Epoch,
        report: StepReport,
    ) -> Self {
        let mut delta = UpdateDelta {
            epoch,
            node_map: mapping.clone(),
            removed_labels: BTreeSet::new(),
            inserted_labels: BTreeSet::new(),
            rewritten: BTreeSet::new(),
            nodes_removed: 0,
            nodes_inserted: 0,
            report,
        };
        let Some(map) = mapping else {
            return delta; // identity: the step had no matches
        };
        let mut image: HashSet<NodeId> = HashSet::with_capacity(map.len());
        for old_node in old.tree().iter() {
            let Some(&new_node) = map.get(&old_node) else {
                delta
                    .removed_labels
                    .insert(old.tree().label(old_node).to_owned());
                delta.nodes_removed += 1;
                continue;
            };
            image.insert(new_node);
            let changed = match (old.condition_ref(old_node), new.condition_ref(new_node)) {
                (Some(before), Some(after)) => before != after,
                (None, None) => false,
                (Some(one), None) | (None, Some(one)) => !one.is_empty(),
            };
            if changed {
                delta.rewritten.insert(new_node);
            }
        }
        for new_node in new.tree().iter() {
            if !image.contains(&new_node) {
                delta
                    .inserted_labels
                    .insert(new.tree().label(new_node).to_owned());
                delta.nodes_inserted += 1;
            }
        }
        delta
    }
}

/// Default number of deltas a [`Document`] retains; older entries are
/// trimmed and maintenance against a pre-trim epoch falls back to a full
/// re-prepare.
pub const DEFAULT_DELTA_LOG_CAPACITY: usize = 256;

/// A versioned prob-tree handle: the current tree behind an [`Arc`]
/// snapshot, an [`Epoch`] stamp, and the log of [`UpdateDelta`]s that
/// produced it. Both engines speak it —
/// [`QueryEngine::prepare_doc`](crate::QueryEngine::prepare_doc) stamps
/// prepared state with the document's identity and epoch, and
/// [`UpdateEngine::apply_doc`](crate::UpdateEngine::apply_doc) commits
/// new epochs.
///
/// The held tree is always fully expanded: pattern matching, delta
/// diffing, and prepared-query patching all address arena nodes, and the
/// expansion is done once per commit instead of once per reader.
/// (Keeping update-created sharing alive across steps *inside* a
/// document is a known follow-on — see ROADMAP.)
#[derive(Debug)]
pub struct Document {
    id: DocumentId,
    epoch: Epoch,
    tree: Arc<ProbTree>,
    /// `log[i]` moved epoch `base_epoch + i` to `base_epoch + i + 1`.
    log: VecDeque<Arc<UpdateDelta>>,
    base_epoch: Epoch,
    log_capacity: usize,
}

impl Document {
    /// Wraps a prob-tree as epoch 0 of a fresh document. Shared children
    /// are materialized once, up front (see the type docs).
    pub fn new(tree: ProbTree) -> Self {
        Document::with_log_capacity(tree, DEFAULT_DELTA_LOG_CAPACITY)
    }

    /// [`Document::new`] with an explicit delta-log capacity (0 keeps no
    /// history: every maintenance call behind by more than zero epochs
    /// falls back).
    pub fn with_log_capacity(tree: ProbTree, log_capacity: usize) -> Self {
        let mut tree = tree;
        tree.expand_all();
        Document {
            id: DocumentId::fresh(),
            epoch: 0,
            tree: Arc::new(tree),
            log: VecDeque::new(),
            base_epoch: 0,
            log_capacity,
        }
    }

    /// The document's process-unique identity.
    pub fn id(&self) -> DocumentId {
        self.id
    }

    /// The current epoch (0 until the first committed step).
    pub fn epoch(&self) -> Epoch {
        self.epoch
    }

    /// The current tree.
    pub fn tree(&self) -> &ProbTree {
        &self.tree
    }

    /// A cheap owning snapshot of the current tree (an `Arc` clone).
    pub fn snapshot(&self) -> Arc<ProbTree> {
        Arc::clone(&self.tree)
    }

    /// Number of deltas currently retained.
    pub fn log_len(&self) -> usize {
        self.log.len()
    }

    /// The deltas moving `epoch` to the current epoch, oldest first —
    /// `Some(&[])` when already current, `None` when the log has been
    /// trimmed past `epoch` (or `epoch` is from the future).
    pub fn deltas_since(&self, epoch: Epoch) -> Option<Vec<Arc<UpdateDelta>>> {
        if epoch > self.epoch || epoch < self.base_epoch {
            return None;
        }
        let skip = (epoch - self.base_epoch) as usize;
        Some(self.log.iter().skip(skip).cloned().collect())
    }

    /// Commits the result of one engine step as the next epoch, diffing
    /// the structured delta out of the traced node mapping.
    pub(crate) fn commit(
        &mut self,
        new_tree: ProbTree,
        report: StepReport,
        mapping: NodeMapping,
    ) -> Arc<UpdateDelta> {
        let mut new_tree = new_tree;
        // Survivor grafting may have introduced handles; restore the
        // fully-expanded invariant. Expansion appends arena nodes without
        // renaming, so the traced mapping stays valid and the faulted-in
        // copies are picked up as insertions by the diff.
        new_tree.expand_all();
        self.epoch += 1;
        let delta = Arc::new(UpdateDelta::diff(
            &self.tree, &new_tree, &mapping, self.epoch, report,
        ));
        self.tree = Arc::new(new_tree);
        self.log.push_back(Arc::clone(&delta));
        while self.log.len() > self.log_capacity {
            self.log.pop_front();
            self.base_epoch += 1;
        }
        delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probtree::figure1_example;
    use crate::update::{ProbabilisticUpdate, UpdateEngine, UpdateOperation};
    use crate::PatternQuery;
    use pxml_tree::DataTree;

    fn insert_under(label: &str, inserted: &str, confidence: f64) -> ProbabilisticUpdate {
        let q = PatternQuery::new(Some(label));
        let at = q.root();
        ProbabilisticUpdate::new(
            UpdateOperation::insert(q, at, DataTree::new(inserted)),
            confidence,
        )
    }

    fn delete_at(label: &str, confidence: f64) -> ProbabilisticUpdate {
        let q = PatternQuery::new(Some(label));
        let at = q.root();
        ProbabilisticUpdate::new(UpdateOperation::delete(q, at), confidence)
    }

    #[test]
    fn fresh_documents_have_distinct_ids_and_epoch_zero() {
        let a = Document::new(figure1_example());
        let b = Document::new(figure1_example());
        assert_ne!(a.id(), b.id());
        assert_eq!(a.epoch(), 0);
        assert_eq!(a.log_len(), 0);
        assert_eq!(a.deltas_since(0).map(|d| d.len()), Some(0));
        assert!(a.deltas_since(1).is_none(), "future epochs are rejected");
    }

    #[test]
    fn insertion_delta_reports_inserted_labels_only() {
        let mut doc = Document::new(figure1_example());
        let before = doc.snapshot();
        let delta = UpdateEngine::new().apply_doc(&mut doc, &insert_under("C", "E", 0.9));
        assert_eq!(doc.epoch(), 1);
        assert_eq!(delta.epoch, 1);
        assert!(!delta.is_identity());
        assert_eq!(delta.nodes_inserted, 1);
        assert_eq!(delta.nodes_removed, 0);
        assert_eq!(delta.inserted_labels, BTreeSet::from(["E".to_owned()]));
        assert!(delta.removed_labels.is_empty());
        // No survivor node changed its condition.
        assert!(delta.rewritten.is_empty());
        // Every old node survives and maps into the new frame with its
        // label preserved.
        for node in before.tree().iter() {
            let mapped = delta.map_node(node).expect("insertions remove nothing");
            assert_eq!(before.tree().label(node), doc.tree().tree().label(mapped));
        }
        // The spine-intersection test sees exactly the inserted label.
        assert!(delta.touches(&BTreeSet::from(["E".to_owned()])));
        assert!(!delta.touches(&BTreeSet::from(["B".to_owned(), "D".to_owned()])));
    }

    #[test]
    fn probabilistic_deletion_replaces_the_target_with_a_survivor_copy() {
        // Deleting B with confidence 0.5 keeps a B in the tree — it
        // survives in the worlds where the deletion event is false — but
        // the engine realizes that survivor as a *fresh copy* carrying the
        // `γ ∧ ¬e` condition, not as an in-place rewrite. The delta must
        // say exactly that: one removal and one insertion, both labeled B,
        // so a query whose footprint contains B correctly falls back.
        let mut doc = Document::new(figure1_example());
        let delta = UpdateEngine::new().apply_doc(&mut doc, &delete_at("B", 0.5));
        assert_eq!(delta.nodes_removed, 1);
        assert_eq!(delta.nodes_inserted, 1);
        assert_eq!(delta.removed_labels, BTreeSet::from(["B".to_owned()]));
        assert_eq!(delta.inserted_labels, BTreeSet::from(["B".to_owned()]));
        assert!(delta.rewritten.is_empty());
        assert!(!delta.is_identity());
        assert!(delta.touches(&BTreeSet::from(["B".to_owned()])));
        // The survivor copy is really there, gated on the deletion event.
        let tree = doc.snapshot();
        let survivor = tree
            .tree()
            .iter()
            .find(|&n| tree.tree().label(n) == "B")
            .expect("B survives probabilistic deletion");
        assert!(
            !tree.condition(survivor).is_empty(),
            "the survivor is conditional on the deletion event"
        );
    }

    #[test]
    fn certain_deletion_removes_the_subtree() {
        // Deleting C with confidence 1 removes C and its child D.
        let mut doc = Document::new(figure1_example());
        let delta = UpdateEngine::new().apply_doc(&mut doc, &delete_at("C", 1.0));
        assert_eq!(delta.nodes_removed, 2);
        assert_eq!(
            delta.removed_labels,
            BTreeSet::from(["C".to_owned(), "D".to_owned()])
        );
        assert!(delta.touches(&BTreeSet::from(["D".to_owned()])));
        assert_eq!(doc.tree().num_nodes(), 2, "A and B remain");
    }

    #[test]
    fn no_match_steps_commit_identity_deltas() {
        let mut doc = Document::new(figure1_example());
        let delta = UpdateEngine::new().apply_doc(&mut doc, &insert_under("Z", "E", 0.9));
        assert_eq!(doc.epoch(), 1, "identity steps still advance the epoch");
        assert!(delta.is_identity());
        assert!(delta.node_map.is_none());
        let root = doc.tree().tree().root();
        assert_eq!(delta.map_node(root), Some(root));
    }

    #[test]
    fn delta_log_trims_at_capacity() {
        let mut doc = Document::with_log_capacity(figure1_example(), 2);
        let engine = UpdateEngine::new();
        for _ in 0..3 {
            engine.apply_doc(&mut doc, &insert_under("C", "E", 0.9));
        }
        assert_eq!(doc.epoch(), 3);
        assert_eq!(doc.log_len(), 2);
        assert!(doc.deltas_since(0).is_none(), "epoch 0 was trimmed away");
        let pending = doc.deltas_since(1).expect("epoch 1 still covered");
        assert_eq!(pending.len(), 2);
        assert_eq!(pending[0].epoch, 2);
        assert_eq!(pending[1].epoch, 3);
        assert_eq!(doc.deltas_since(3).map(|d| d.len()), Some(0));
    }

    #[test]
    fn snapshots_pin_their_epoch() {
        let mut doc = Document::new(figure1_example());
        let before = doc.snapshot();
        UpdateEngine::new().apply_doc(&mut doc, &insert_under("C", "E", 1.0));
        assert_eq!(before.num_nodes() + 1, doc.tree().num_nodes());
    }

    #[test]
    fn script_application_collects_per_step_reports() {
        use crate::update::UpdateScript;
        let mut doc = Document::new(figure1_example());
        let script = UpdateScript::from_steps([
            insert_under("C", "E", 0.9),
            delete_at("B", 0.5),
            insert_under("E", "F", 1.0),
        ]);
        let report = UpdateEngine::new().apply_script_doc(&mut doc, &script);
        assert_eq!(report.steps.len(), 3);
        assert_eq!(doc.epoch(), 3);
        assert_eq!(doc.log_len(), 3);
        // The document path computes the same final tree as the borrowed
        // path.
        let (batch, batch_report) = UpdateEngine::new().apply_script(&figure1_example(), &script);
        assert_eq!(doc.tree().num_nodes(), batch.expanded().num_nodes());
        assert_eq!(report.steps.len(), batch_report.steps.len());
        for (a, b) in report.steps.iter().zip(&batch_report.steps) {
            assert_eq!(a.matches, b.matches);
        }
    }
}
