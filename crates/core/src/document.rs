//! Versioned documents: an epoch-stamped prob-tree plus a structured
//! delta log, the handle both engines speak.
//!
//! A [`Document`] owns the current prob-tree behind an [`Arc`] snapshot
//! and stamps every state with a monotone [`Epoch`]. Each
//! [`UpdateEngine::apply_doc`](crate::UpdateEngine::apply_doc) step
//! commits a new epoch together with an [`UpdateDelta`] — the ground
//! truth of what the step did to the tree, reconstructed from the node
//! mapping the engine threads through its compaction and simplification
//! chain:
//!
//! * **removed** — nodes of the old frame with no image in the new frame
//!   (deletion targets, pruned branches, merged sibling copies), reported
//!   as a label set;
//! * **inserted** — nodes of the new frame that are nobody's image
//!   (grafted insertion subtrees, survivor copies, merge covers), again
//!   as labels;
//! * **rewritten** — surviving nodes whose root condition `γ` changed
//!   (deletion splits, cleaning, certain-event pruning).
//!
//! Because the delta is *diffed from the result* rather than predicted
//! from the step, it is exact no matter which simplification passes
//! fired. [`PreparedQuery::maintain`](crate::PreparedQuery::maintain)
//! consumes the log to patch prepared state in place, falling back to a
//! full re-prepare only when a delta's label footprint intersects the
//! query's spine labels.
//!
//! Snapshots are cheap ([`Document::snapshot`] clones an `Arc`), so
//! readers hold on to the exact epoch they prepared against while the
//! document moves on.

use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use pxml_tree::NodeId;

use crate::probtree::ProbTree;
use crate::update::engine::StepReport;
use crate::update::simplify::NodeMapping;

/// Monotone version stamp of a [`Document`] state. Epoch 0 is the state
/// the document was created with; every committed update step adds 1.
pub type Epoch = u64;

static NEXT_DOCUMENT_ID: AtomicU64 = AtomicU64::new(0);

/// Process-unique identity of a [`Document`], used to reject maintaining
/// prepared state against the wrong document. Ids are never reused.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DocumentId(u64);

impl DocumentId {
    fn fresh() -> Self {
        DocumentId(NEXT_DOCUMENT_ID.fetch_add(1, Ordering::Relaxed))
    }
}

/// The structured difference between two consecutive [`Document`] epochs.
#[derive(Clone, Debug)]
pub struct UpdateDelta {
    /// The epoch this delta produced (its step moved `epoch - 1` to
    /// `epoch`).
    pub epoch: Epoch,
    /// Mapping from surviving old-frame node ids to their new-frame ids.
    /// `None` means the step left the tree untouched (no matches); ids
    /// absent from a `Some` map were removed.
    pub node_map: Option<HashMap<NodeId, NodeId>>,
    /// Labels of the removed old-frame nodes.
    pub removed_labels: BTreeSet<String>,
    /// Labels of the inserted new-frame nodes.
    pub inserted_labels: BTreeSet<String>,
    /// New-frame ids of surviving nodes whose root condition changed.
    pub rewritten: BTreeSet<NodeId>,
    /// Number of removed old-frame nodes.
    pub nodes_removed: usize,
    /// Number of inserted new-frame nodes.
    pub nodes_inserted: usize,
    /// The engine telemetry of the committing step (matches, survivor
    /// copies, simplification savings, entry-expansion skip).
    pub report: StepReport,
}

impl UpdateDelta {
    /// `true` if the step changed nothing: no node removed, inserted, or
    /// condition-rewritten.
    pub fn is_identity(&self) -> bool {
        self.nodes_removed == 0 && self.nodes_inserted == 0 && self.rewritten.is_empty()
    }

    /// `true` if any removed or inserted label lies in `footprint` — the
    /// spine-intersection test deciding whether prepared state for a
    /// query with that label footprint can be patched in place.
    pub fn touches(&self, footprint: &BTreeSet<String>) -> bool {
        self.removed_labels
            .iter()
            .chain(self.inserted_labels.iter())
            .any(|label| footprint.contains(label))
    }

    /// Sends an old-frame node id through the delta, `None` if the node
    /// was removed.
    pub fn map_node(&self, node: NodeId) -> Option<NodeId> {
        match &self.node_map {
            None => Some(node),
            Some(map) => map.get(&node).copied(),
        }
    }

    /// Diffs two consecutive frames given the engine's composed node
    /// mapping. Both frames must be fully expanded (the [`Document`]
    /// invariant), so arena iteration covers every logical node.
    fn diff(
        old: &ProbTree,
        new: &ProbTree,
        mapping: &NodeMapping,
        epoch: Epoch,
        report: StepReport,
    ) -> Self {
        let mut delta = UpdateDelta {
            epoch,
            node_map: mapping.clone(),
            removed_labels: BTreeSet::new(),
            inserted_labels: BTreeSet::new(),
            rewritten: BTreeSet::new(),
            nodes_removed: 0,
            nodes_inserted: 0,
            report,
        };
        let Some(map) = mapping else {
            return delta; // identity: the step had no matches
        };
        let mut image: HashSet<NodeId> = HashSet::with_capacity(map.len());
        for old_node in old.tree().iter() {
            let Some(&new_node) = map.get(&old_node) else {
                delta
                    .removed_labels
                    .insert(old.tree().label(old_node).to_owned());
                delta.nodes_removed += 1;
                continue;
            };
            image.insert(new_node);
            let changed = match (old.condition_ref(old_node), new.condition_ref(new_node)) {
                (Some(before), Some(after)) => before != after,
                (None, None) => false,
                (Some(one), None) | (None, Some(one)) => !one.is_empty(),
            };
            if changed {
                delta.rewritten.insert(new_node);
            }
        }
        for new_node in new.tree().iter() {
            if !image.contains(&new_node) {
                delta
                    .inserted_labels
                    .insert(new.tree().label(new_node).to_owned());
                delta.nodes_inserted += 1;
            }
        }
        delta
    }
}

/// A composed view of consecutive [`UpdateDelta`]s: one node mapping, one
/// label footprint and one rewritten set covering the whole
/// `from_epoch → to_epoch` span, so prepared state can be threaded to the
/// current epoch in a **single** pass instead of once per delta.
///
/// The warehouse server's maintenance hub composes each span once and
/// shares it across every registered view
/// ([`PreparedQuery::maintain_windowed`](crate::PreparedQuery::maintain_windowed)):
/// `N` views behind the same epoch no longer re-thread the same deltas
/// `N` times.
#[derive(Clone, Debug)]
pub struct DeltaWindow {
    /// The epoch a consumer must currently be at to apply this window.
    pub from_epoch: Epoch,
    /// The epoch the window advances to.
    pub to_epoch: Epoch,
    /// Composed mapping from surviving `from_epoch`-frame node ids to
    /// their `to_epoch`-frame ids; `None` when every composed step was an
    /// identity. Ids absent from a `Some` map were removed somewhere in
    /// the span.
    pub node_map: Option<HashMap<NodeId, NodeId>>,
    /// Union of the removed labels across the span.
    pub removed_labels: BTreeSet<String>,
    /// Union of the inserted labels across the span.
    pub inserted_labels: BTreeSet<String>,
    /// `to_epoch`-frame ids of surviving nodes whose condition changed at
    /// any step of the span (per-step rewritten sets threaded forward
    /// through the later mappings).
    pub rewritten: BTreeSet<NodeId>,
    /// Number of deltas composed into the window.
    pub steps: usize,
}

impl DeltaWindow {
    /// Composes consecutive deltas (oldest first, starting right after
    /// `from_epoch`) into one window.
    ///
    /// # Panics
    /// Panics if the deltas are not consecutive from `from_epoch`.
    pub fn compose(from_epoch: Epoch, deltas: &[Arc<UpdateDelta>]) -> DeltaWindow {
        let mut window = DeltaWindow {
            from_epoch,
            to_epoch: from_epoch,
            node_map: None,
            removed_labels: BTreeSet::new(),
            inserted_labels: BTreeSet::new(),
            rewritten: BTreeSet::new(),
            steps: 0,
        };
        for delta in deltas {
            assert_eq!(
                delta.epoch,
                window.to_epoch + 1,
                "windows compose consecutive deltas"
            );
            window.to_epoch = delta.epoch;
            window.steps += 1;
            window
                .removed_labels
                .extend(delta.removed_labels.iter().cloned());
            window
                .inserted_labels
                .extend(delta.inserted_labels.iter().cloned());
            // Rewritten nodes collected so far live in the previous frame:
            // thread the survivors forward, then add this step's own.
            window.rewritten = window
                .rewritten
                .iter()
                .filter_map(|&n| delta.map_node(n))
                .chain(delta.rewritten.iter().copied())
                .collect();
            match (&mut window.node_map, &delta.node_map) {
                (_, None) => {} // identity step: the composition is unchanged
                (acc @ None, Some(map)) => *acc = Some(map.clone()),
                (Some(acc), Some(map)) => {
                    *acc = acc
                        .iter()
                        .filter_map(|(&old, mid)| map.get(mid).map(|&new| (old, new)))
                        .collect();
                }
            }
        }
        window
    }

    /// The spine-intersection test of [`UpdateDelta::touches`], over the
    /// whole span at once.
    pub fn touches(&self, footprint: &BTreeSet<String>) -> bool {
        self.removed_labels
            .iter()
            .chain(self.inserted_labels.iter())
            .any(|label| footprint.contains(label))
    }

    /// Sends a `from_epoch`-frame node id through the whole span, `None`
    /// if it was removed anywhere along the way.
    pub fn map_node(&self, node: NodeId) -> Option<NodeId> {
        match &self.node_map {
            None => Some(node),
            Some(map) => map.get(&node).copied(),
        }
    }
}

/// Default number of deltas a [`Document`] retains; older entries are
/// trimmed and maintenance against a pre-trim epoch falls back to a full
/// re-prepare.
pub const DEFAULT_DELTA_LOG_CAPACITY: usize = 256;

/// A fully-applied but not-yet-committed update step: the new tree, the
/// engine telemetry and the traced node mapping, stamped with the
/// document identity and epoch it was staged against.
///
/// Produced by [`UpdateEngine::stage_doc`](crate::UpdateEngine::stage_doc)
/// — which does the expensive work (matching, grafting, simplification)
/// against the current snapshot — and committed by
/// [`Document::commit_staged`], which only diffs and swaps the `Arc`.
/// The split is what lets the warehouse server stage steps under a
/// *read* lock and keep its writer lock to the cheap commit.
#[derive(Debug)]
pub struct StagedStep {
    pub(crate) doc: DocumentId,
    pub(crate) base_epoch: Epoch,
    pub(crate) tree: ProbTree,
    pub(crate) report: StepReport,
    pub(crate) mapping: NodeMapping,
}

impl StagedStep {
    /// The document the step was staged against.
    pub fn document(&self) -> DocumentId {
        self.doc
    }

    /// The epoch the step was staged against — the epoch the document
    /// must still be at for [`Document::commit_staged`] to accept it.
    pub fn base_epoch(&self) -> Epoch {
        self.base_epoch
    }
}

/// Why [`Document::commit_staged`] refused a staged step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StageConflict {
    /// The step was staged against a different document.
    DocumentMismatch,
    /// Another step committed in between: the staged base epoch no longer
    /// matches the document. Re-stage against the current snapshot.
    EpochConflict {
        /// The epoch the step was staged against.
        staged: Epoch,
        /// The document's current epoch.
        current: Epoch,
    },
}

impl std::fmt::Display for StageConflict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StageConflict::DocumentMismatch => {
                write!(f, "step was staged against a different document")
            }
            StageConflict::EpochConflict { staged, current } => write!(
                f,
                "step staged against epoch {staged} but the document is at {current}"
            ),
        }
    }
}

impl std::error::Error for StageConflict {}

/// A versioned prob-tree handle: the current tree behind an [`Arc`]
/// snapshot, an [`Epoch`] stamp, and the log of [`UpdateDelta`]s that
/// produced it. Both engines speak it —
/// [`QueryEngine::prepare_doc`](crate::QueryEngine::prepare_doc) stamps
/// prepared state with the document's identity and epoch, and
/// [`UpdateEngine::apply_doc`](crate::UpdateEngine::apply_doc) commits
/// new epochs.
///
/// The held tree is always fully expanded: pattern matching, delta
/// diffing, and prepared-query patching all address arena nodes, and the
/// expansion is done once per commit instead of once per reader.
/// (Keeping update-created sharing alive across steps *inside* a
/// document is a known follow-on — see ROADMAP.)
#[derive(Debug)]
pub struct Document {
    id: DocumentId,
    epoch: Epoch,
    tree: Arc<ProbTree>,
    /// `log[i]` moved epoch `base_epoch + i` to `base_epoch + i + 1`.
    log: VecDeque<Arc<UpdateDelta>>,
    base_epoch: Epoch,
    log_capacity: usize,
}

impl Document {
    /// Wraps a prob-tree as epoch 0 of a fresh document. Shared children
    /// are materialized once, up front (see the type docs).
    pub fn new(tree: ProbTree) -> Self {
        Document::with_log_capacity(tree, DEFAULT_DELTA_LOG_CAPACITY)
    }

    /// [`Document::new`] with an explicit delta-log capacity (0 keeps no
    /// history: every maintenance call behind by more than zero epochs
    /// falls back).
    pub fn with_log_capacity(tree: ProbTree, log_capacity: usize) -> Self {
        let mut tree = tree;
        tree.expand_all();
        Document {
            id: DocumentId::fresh(),
            epoch: 0,
            tree: Arc::new(tree),
            log: VecDeque::new(),
            base_epoch: 0,
            log_capacity,
        }
    }

    /// The document's process-unique identity.
    pub fn id(&self) -> DocumentId {
        self.id
    }

    /// The current epoch (0 until the first committed step).
    pub fn epoch(&self) -> Epoch {
        self.epoch
    }

    /// The current tree.
    pub fn tree(&self) -> &ProbTree {
        &self.tree
    }

    /// A cheap owning snapshot of the current tree (an `Arc` clone).
    pub fn snapshot(&self) -> Arc<ProbTree> {
        Arc::clone(&self.tree)
    }

    /// Number of deltas currently retained.
    pub fn log_len(&self) -> usize {
        self.log.len()
    }

    /// The deltas moving `epoch` to the current epoch, oldest first —
    /// `Some(&[])` when already current, `None` when the log has been
    /// trimmed past `epoch` (or `epoch` is from the future).
    pub fn deltas_since(&self, epoch: Epoch) -> Option<Vec<Arc<UpdateDelta>>> {
        if epoch > self.epoch || epoch < self.base_epoch {
            return None;
        }
        let skip = (epoch - self.base_epoch) as usize;
        Some(self.log.iter().skip(skip).cloned().collect())
    }

    /// [`Document::deltas_since`] composed into one [`DeltaWindow`]
    /// covering `epoch → current`, or `None` when the log no longer
    /// covers `epoch`.
    pub fn window_since(&self, epoch: Epoch) -> Option<DeltaWindow> {
        let deltas = self.deltas_since(epoch)?;
        Some(DeltaWindow::compose(epoch, &deltas))
    }

    /// Forks the current state into a fresh document: new identity, epoch
    /// 0, empty delta log, **sharing** the current snapshot `Arc` — the
    /// tree is never mutated in place (commits swap in a new `Arc`), so a
    /// fork is O(1) and copy-on-write falls out: the branches' trees only
    /// diverge when one of them commits.
    pub fn fork(&self) -> Document {
        Document {
            id: DocumentId::fresh(),
            epoch: 0,
            tree: Arc::clone(&self.tree),
            log: VecDeque::new(),
            base_epoch: 0,
            log_capacity: self.log_capacity,
        }
    }

    /// Commits a [`StagedStep`] as the next epoch, after checking it was
    /// staged against this document's current state (identity *and*
    /// epoch): the optimistic half of the stage/commit split — a
    /// concurrent commit in between surfaces as
    /// [`StageConflict::EpochConflict`] instead of silently applying a
    /// step computed from a stale snapshot.
    pub fn commit_staged(&mut self, staged: StagedStep) -> Result<Arc<UpdateDelta>, StageConflict> {
        if staged.doc != self.id {
            return Err(StageConflict::DocumentMismatch);
        }
        if staged.base_epoch != self.epoch {
            return Err(StageConflict::EpochConflict {
                staged: staged.base_epoch,
                current: self.epoch,
            });
        }
        Ok(self.commit(staged.tree, staged.report, staged.mapping))
    }

    /// Commits the result of one engine step as the next epoch, diffing
    /// the structured delta out of the traced node mapping.
    pub(crate) fn commit(
        &mut self,
        new_tree: ProbTree,
        report: StepReport,
        mapping: NodeMapping,
    ) -> Arc<UpdateDelta> {
        let mut new_tree = new_tree;
        // Survivor grafting may have introduced handles; restore the
        // fully-expanded invariant. Expansion appends arena nodes without
        // renaming, so the traced mapping stays valid and the faulted-in
        // copies are picked up as insertions by the diff.
        new_tree.expand_all();
        self.epoch += 1;
        let delta = Arc::new(UpdateDelta::diff(
            &self.tree, &new_tree, &mapping, self.epoch, report,
        ));
        self.tree = Arc::new(new_tree);
        self.log.push_back(Arc::clone(&delta));
        while self.log.len() > self.log_capacity {
            self.log.pop_front();
            self.base_epoch += 1;
        }
        delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probtree::figure1_example;
    use crate::update::{ProbabilisticUpdate, UpdateEngine, UpdateOperation};
    use crate::PatternQuery;
    use pxml_tree::DataTree;

    fn insert_under(label: &str, inserted: &str, confidence: f64) -> ProbabilisticUpdate {
        let q = PatternQuery::new(Some(label));
        let at = q.root();
        ProbabilisticUpdate::new(
            UpdateOperation::insert(q, at, DataTree::new(inserted)),
            confidence,
        )
    }

    fn delete_at(label: &str, confidence: f64) -> ProbabilisticUpdate {
        let q = PatternQuery::new(Some(label));
        let at = q.root();
        ProbabilisticUpdate::new(UpdateOperation::delete(q, at), confidence)
    }

    #[test]
    fn fresh_documents_have_distinct_ids_and_epoch_zero() {
        let a = Document::new(figure1_example());
        let b = Document::new(figure1_example());
        assert_ne!(a.id(), b.id());
        assert_eq!(a.epoch(), 0);
        assert_eq!(a.log_len(), 0);
        assert_eq!(a.deltas_since(0).map(|d| d.len()), Some(0));
        assert!(a.deltas_since(1).is_none(), "future epochs are rejected");
    }

    #[test]
    fn insertion_delta_reports_inserted_labels_only() {
        let mut doc = Document::new(figure1_example());
        let before = doc.snapshot();
        let delta = UpdateEngine::new().apply_doc(&mut doc, &insert_under("C", "E", 0.9));
        assert_eq!(doc.epoch(), 1);
        assert_eq!(delta.epoch, 1);
        assert!(!delta.is_identity());
        assert_eq!(delta.nodes_inserted, 1);
        assert_eq!(delta.nodes_removed, 0);
        assert_eq!(delta.inserted_labels, BTreeSet::from(["E".to_owned()]));
        assert!(delta.removed_labels.is_empty());
        // No survivor node changed its condition.
        assert!(delta.rewritten.is_empty());
        // Every old node survives and maps into the new frame with its
        // label preserved.
        for node in before.tree().iter() {
            let mapped = delta.map_node(node).expect("insertions remove nothing");
            assert_eq!(before.tree().label(node), doc.tree().tree().label(mapped));
        }
        // The spine-intersection test sees exactly the inserted label.
        assert!(delta.touches(&BTreeSet::from(["E".to_owned()])));
        assert!(!delta.touches(&BTreeSet::from(["B".to_owned(), "D".to_owned()])));
    }

    #[test]
    fn probabilistic_deletion_replaces_the_target_with_a_survivor_copy() {
        // Deleting B with confidence 0.5 keeps a B in the tree — it
        // survives in the worlds where the deletion event is false — but
        // the engine realizes that survivor as a *fresh copy* carrying the
        // `γ ∧ ¬e` condition, not as an in-place rewrite. The delta must
        // say exactly that: one removal and one insertion, both labeled B,
        // so a query whose footprint contains B correctly falls back.
        let mut doc = Document::new(figure1_example());
        let delta = UpdateEngine::new().apply_doc(&mut doc, &delete_at("B", 0.5));
        assert_eq!(delta.nodes_removed, 1);
        assert_eq!(delta.nodes_inserted, 1);
        assert_eq!(delta.removed_labels, BTreeSet::from(["B".to_owned()]));
        assert_eq!(delta.inserted_labels, BTreeSet::from(["B".to_owned()]));
        assert!(delta.rewritten.is_empty());
        assert!(!delta.is_identity());
        assert!(delta.touches(&BTreeSet::from(["B".to_owned()])));
        // The survivor copy is really there, gated on the deletion event.
        let tree = doc.snapshot();
        let survivor = tree
            .tree()
            .iter()
            .find(|&n| tree.tree().label(n) == "B")
            .expect("B survives probabilistic deletion");
        assert!(
            !tree.condition(survivor).is_empty(),
            "the survivor is conditional on the deletion event"
        );
    }

    #[test]
    fn certain_deletion_removes_the_subtree() {
        // Deleting C with confidence 1 removes C and its child D.
        let mut doc = Document::new(figure1_example());
        let delta = UpdateEngine::new().apply_doc(&mut doc, &delete_at("C", 1.0));
        assert_eq!(delta.nodes_removed, 2);
        assert_eq!(
            delta.removed_labels,
            BTreeSet::from(["C".to_owned(), "D".to_owned()])
        );
        assert!(delta.touches(&BTreeSet::from(["D".to_owned()])));
        assert_eq!(doc.tree().num_nodes(), 2, "A and B remain");
    }

    #[test]
    fn no_match_steps_commit_identity_deltas() {
        let mut doc = Document::new(figure1_example());
        let delta = UpdateEngine::new().apply_doc(&mut doc, &insert_under("Z", "E", 0.9));
        assert_eq!(doc.epoch(), 1, "identity steps still advance the epoch");
        assert!(delta.is_identity());
        assert!(delta.node_map.is_none());
        let root = doc.tree().tree().root();
        assert_eq!(delta.map_node(root), Some(root));
    }

    #[test]
    fn delta_log_trims_at_capacity() {
        let mut doc = Document::with_log_capacity(figure1_example(), 2);
        let engine = UpdateEngine::new();
        for _ in 0..3 {
            engine.apply_doc(&mut doc, &insert_under("C", "E", 0.9));
        }
        assert_eq!(doc.epoch(), 3);
        assert_eq!(doc.log_len(), 2);
        assert!(doc.deltas_since(0).is_none(), "epoch 0 was trimmed away");
        let pending = doc.deltas_since(1).expect("epoch 1 still covered");
        assert_eq!(pending.len(), 2);
        assert_eq!(pending[0].epoch, 2);
        assert_eq!(pending[1].epoch, 3);
        assert_eq!(doc.deltas_since(3).map(|d| d.len()), Some(0));
    }

    #[test]
    fn snapshots_pin_their_epoch() {
        let mut doc = Document::new(figure1_example());
        let before = doc.snapshot();
        UpdateEngine::new().apply_doc(&mut doc, &insert_under("C", "E", 1.0));
        assert_eq!(before.num_nodes() + 1, doc.tree().num_nodes());
    }

    #[test]
    fn forks_share_the_snapshot_and_diverge_independently() {
        let mut doc = Document::new(figure1_example());
        UpdateEngine::new().apply_doc(&mut doc, &insert_under("C", "E", 0.9));
        let mut branch = doc.fork();
        assert_ne!(branch.id(), doc.id(), "a fork is its own document");
        assert_eq!(branch.epoch(), 0, "forks restart their epoch line");
        assert_eq!(branch.log_len(), 0);
        assert!(
            Arc::ptr_eq(&doc.snapshot(), &branch.snapshot()),
            "forking is O(1): the tree Arc is shared, not cloned"
        );
        // Divergence on the branch never leaks back: commits swap in a
        // fresh Arc, they do not mutate the shared snapshot.
        UpdateEngine::new().apply_doc(&mut branch, &insert_under("E", "F", 1.0));
        assert_eq!(branch.tree().num_nodes(), doc.tree().num_nodes() + 1);
        assert_eq!(doc.epoch(), 1, "the origin document is untouched");
    }

    #[test]
    fn windows_compose_consecutive_deltas() {
        let mut doc = Document::new(figure1_example());
        let before = doc.snapshot();
        let engine = UpdateEngine::new();
        engine.apply_doc(&mut doc, &insert_under("C", "E", 0.9));
        engine.apply_doc(&mut doc, &delete_at("B", 0.5));
        let deltas = doc.deltas_since(0).unwrap();
        let window = doc.window_since(0).expect("epoch 0 still covered");
        assert_eq!((window.from_epoch, window.to_epoch), (0, 2));
        assert_eq!(window.steps, 2);
        assert_eq!(
            window.inserted_labels,
            BTreeSet::from(["B".to_owned(), "E".to_owned()])
        );
        assert_eq!(window.removed_labels, BTreeSet::from(["B".to_owned()]));
        assert!(window.touches(&BTreeSet::from(["E".to_owned()])));
        assert!(!window.touches(&BTreeSet::from(["D".to_owned()])));
        // The composed node map agrees with threading through each delta.
        for node in before.tree().iter() {
            let threaded = deltas[0].map_node(node).and_then(|n| deltas[1].map_node(n));
            assert_eq!(window.map_node(node), threaded);
        }
        // Rewrites surfaced by any delta survive composition (mapped into
        // the final frame).
        let per_delta: usize = deltas.iter().map(|d| d.rewritten.len()).sum();
        assert!(window.rewritten.len() <= per_delta + deltas.len());
        // A window over an empty span is the identity.
        let idle = doc.window_since(2).unwrap();
        assert_eq!(idle.steps, 0);
        assert!(idle.node_map.is_none());
        assert!(doc.window_since(3).is_none(), "future epochs are rejected");
    }

    #[test]
    fn staged_steps_commit_once_and_conflict_after_racing_commits() {
        let mut doc = Document::new(figure1_example());
        let engine = UpdateEngine::new();
        // Two steps staged against the same epoch: the first commits, the
        // second must surface the lost race instead of silently applying
        // a step built against a stale tree.
        let first = engine.stage_doc(&doc, &insert_under("C", "E", 0.9));
        let second = engine.stage_doc(&doc, &insert_under("C", "F", 0.8));
        assert_eq!(first.base_epoch(), 0);
        let delta = doc.commit_staged(first).expect("first commit wins");
        assert_eq!(delta.epoch, 1);
        assert_eq!(
            doc.commit_staged(second).unwrap_err(),
            StageConflict::EpochConflict {
                staged: 0,
                current: 1
            }
        );
        // Steps staged against one document never land on another.
        let mut other = Document::new(figure1_example());
        let foreign = engine.stage_doc(&doc, &insert_under("C", "G", 0.7));
        assert_eq!(
            other.commit_staged(foreign).unwrap_err(),
            StageConflict::DocumentMismatch
        );
        // The stage/commit split computes the same result as apply_doc.
        let mut reference = Document::new(figure1_example());
        engine.apply_doc(&mut reference, &insert_under("C", "E", 0.9));
        assert_eq!(doc.tree().num_nodes(), reference.tree().num_nodes());
    }

    #[test]
    fn script_application_collects_per_step_reports() {
        use crate::update::UpdateScript;
        let mut doc = Document::new(figure1_example());
        let script = UpdateScript::from_steps([
            insert_under("C", "E", 0.9),
            delete_at("B", 0.5),
            insert_under("E", "F", 1.0),
        ]);
        let report = UpdateEngine::new().apply_script_doc(&mut doc, &script);
        assert_eq!(report.steps.len(), 3);
        assert_eq!(doc.epoch(), 3);
        assert_eq!(doc.log_len(), 3);
        // The document path computes the same final tree as the borrowed
        // path.
        let (batch, batch_report) = UpdateEngine::new().apply_script(&figure1_example(), &script);
        assert_eq!(doc.tree().num_nodes(), batch.expanded().num_nodes());
        assert_eq!(report.steps.len(), batch_report.steps.len());
        for (a, b) in report.steps.iter().zip(&batch_report.steps) {
            assert_eq!(a.matches, b.matches);
        }
    }
}
