//! The update engine: deterministic, nested-target-correct application of
//! probabilistic updates to prob-trees (Appendix A, generalized).
//!
//! Three properties distinguish the engine from a naive transcription of
//! the Appendix A algorithms:
//!
//! 1. **Nested-target correctness.** When the deletion query matches two
//!    targets on one root-to-leaf path, the descendant's survival split
//!    must be visible *inside* the ancestor's survivor copies. The engine
//!    therefore orders deletion targets deepest-first over the total
//!    `(depth, NodeId)` order and grafts every survivor copy from the
//!    **evolving** tree, so splits already applied below a target are
//!    carried into its copies. (The per-match deletion conditions are
//!    still computed on the original tree — matches are defined by the
//!    original world contents.)
//! 2. **Determinism.** Target grouping uses a `BTreeMap`, per-target
//!    deletion conditions are sorted and deduplicated, and every
//!    remaining iteration order is structural — two applications of the
//!    same update to the same tree produce byte-identical renderings.
//! 3. **Blow-up control.** The mutually exclusive negation chain of
//!    Appendix A is built over a configurable literal order; the default
//!    places literals shared by many deletion conditions first, so chain
//!    products prune inconsistent combinations early. For a confidence-`c`
//!    deletion with `k` matches on one target this yields `1 + Π_j p_j`
//!    survivor copies instead of `Π_j (p_j + 1)` (the fresh event `w` is
//!    split off once), and the post-step [`simplify`](mod@super::simplify)
//!    pass re-covers what the ordering alone cannot.

use std::cmp::Reverse;
use std::collections::BTreeMap;

use pxml_events::{Condition, EventId, Literal};
use pxml_tree::{DataTree, NodeId};

use crate::probtree::ProbTree;
use crate::query::pattern::{PatternMatch, PatternNodeId, PatternQuery};

use super::script::{ScriptReport, UpdateScript};
use super::simplify::{compose_mappings, simplify_traced, NodeMapping, SimplifyConfig};
use super::{ProbabilisticUpdate, UpdateAction};

/// Configuration of an [`UpdateEngine`].
#[derive(Clone, Debug)]
pub struct UpdateEngineConfig {
    /// Run the [`simplify`](mod@super::simplify) pass after every step
    /// (default: `true`).
    pub simplify: bool,
    /// Configuration of that pass.
    pub simplify_config: SimplifyConfig,
    /// Order negation-chain literals so that literals shared by many
    /// deletion conditions come first (default: `true`). Disable to
    /// reproduce the naive Appendix A expansion (used by the blow-up
    /// benchmarks as a baseline).
    pub shared_first_chains: bool,
    /// Hard budget on the *predicted* total survivor copies of one step
    /// (default: `None` = unlimited). When set,
    /// [`UpdateEngine::try_apply`] refuses a deletion whose
    /// [`DeletionForecast`] exceeds the budget — before any subtree is
    /// materialized.
    pub max_survivor_copies: Option<usize>,
    /// Graft survivor copies as hash-consed copy-on-write handles
    /// (default: `true`): the target subtree is interned once and every
    /// copy is O(1), so an Appendix-A deletion stores `O(n)` distinct
    /// nodes for its `1 + 2^n` logical copies. Disable to materialize
    /// every copy as fresh arena nodes — the deep-copy oracle the
    /// property suites compare against.
    pub survivor_sharing: bool,
}

impl Default for UpdateEngineConfig {
    fn default() -> Self {
        UpdateEngineConfig {
            simplify: true,
            simplify_config: SimplifyConfig::default(),
            shared_first_chains: true,
            max_survivor_copies: None,
            survivor_sharing: true,
        }
    }
}

impl UpdateEngineConfig {
    /// The naive Appendix A behaviour: no simplification, no chain
    /// reordering. Kept as the measurable baseline for the blow-up
    /// benchmarks and the simplification assertions. (Survivor sharing
    /// stays on — the representation is orthogonal to the chain order.)
    pub fn raw() -> Self {
        UpdateEngineConfig {
            simplify: false,
            simplify_config: SimplifyConfig::default(),
            shared_first_chains: false,
            max_survivor_copies: None,
            survivor_sharing: true,
        }
    }

    /// The deep-copy oracle: identical logical behaviour with survivor
    /// sharing disabled, used to cross-check the shared representation.
    pub fn deep_oracle(mut self) -> Self {
        self.survivor_sharing = false;
        self
    }
}

/// Error of [`UpdateEngine::try_apply`]: the static forecast predicts
/// more survivor copies than the configured budget allows, so the step
/// was refused before materializing anything.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SurvivorBudgetExceeded {
    /// Total survivor copies the forecast predicts for the step.
    pub predicted: usize,
    /// The configured [`UpdateEngineConfig::max_survivor_copies`] budget.
    pub budget: usize,
}

impl std::fmt::Display for SurvivorBudgetExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "predicted {} survivor copies exceed the budget of {}",
            self.predicted, self.budget
        )
    }
}

impl std::error::Error for SurvivorBudgetExceeded {}

/// The static cost prediction of one update step, computed by
/// [`UpdateEngine::forecast`] by replaying the match grouping and
/// survivor expansion **without mutating the tree** — no subtree is
/// copied, no condition is attached. For deletions the per-target counts
/// equal, exactly, the number of survivor copies
/// [`UpdateEngine::apply`] will graft (property-tested against
/// [`StepReport::survivor_copies`]); insertions never copy survivors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeletionForecast {
    /// Number of query matches the step will see.
    pub matches: usize,
    /// Number of distinct target nodes.
    pub targets: usize,
    /// Predicted survivor copies per distinct target, in the engine's
    /// deterministic (deepest-first) target order. Empty for insertions
    /// and unmatched steps.
    pub survivors_per_target: Vec<usize>,
    /// Logical size of each target's subtree (same order), measured on
    /// the input tree. Exact for non-nested targets; with nested targets
    /// the real copies also embed deeper splits, so this is a floor.
    pub subtree_nodes_per_target: Vec<usize>,
    /// Whether the engine will graft the copies as shared handles
    /// ([`UpdateEngineConfig::survivor_sharing`]) — decides which node
    /// prediction [`DeletionForecast::distinct_survivor_nodes`] gives.
    pub survivor_sharing: bool,
}

impl DeletionForecast {
    /// Total survivor copies the step will graft.
    pub fn total_survivor_copies(&self) -> usize {
        self.survivors_per_target.iter().sum()
    }

    /// Predicted **logical** nodes of all survivor copies together:
    /// `Σ_targets copies · subtree size` — what [`ProbTree::num_nodes`]
    /// will charge (exact for non-nested targets).
    ///
    /// [`ProbTree::num_nodes`]: crate::ProbTree::num_nodes
    pub fn logical_survivor_nodes(&self) -> usize {
        self.survivors_per_target
            .iter()
            .zip(&self.subtree_nodes_per_target)
            .map(|(copies, nodes)| copies * nodes)
            .sum()
    }

    /// Predicted **distinct stored** nodes of all survivor copies: with
    /// survivor sharing one interned shape chain per target
    /// (`Σ subtree sizes`, independent of the copy count — a ceiling,
    /// since hash-consing may dedupe across targets too); without sharing
    /// this equals [`DeletionForecast::logical_survivor_nodes`].
    pub fn distinct_survivor_nodes(&self) -> usize {
        if self.survivor_sharing {
            self.subtree_nodes_per_target
                .iter()
                .zip(&self.survivors_per_target)
                .map(|(&nodes, &copies)| if copies == 0 { 0 } else { nodes })
                .sum()
        } else {
            self.logical_survivor_nodes()
        }
    }

    /// `true` if the step will not change the tree (no matches).
    pub fn is_dead(&self) -> bool {
        self.matches == 0
    }
}

/// Telemetry for one applied update step.
#[derive(Clone, Debug)]
pub struct StepReport {
    /// Number of query matches.
    pub matches: usize,
    /// Number of distinct target nodes.
    pub targets: usize,
    /// The fresh event variable introduced (confidence < 1 and at least
    /// one match).
    pub new_event: Option<EventId>,
    /// Nodes / literals before the step.
    pub nodes_before: usize,
    /// Literals before the step.
    pub literals_before: usize,
    /// Nodes after the update but before simplification.
    pub nodes_raw: usize,
    /// Literals after the update but before simplification.
    pub literals_raw: usize,
    /// Nodes after the step (after simplification, when enabled).
    pub nodes_after: usize,
    /// Literals after the step (after simplification, when enabled).
    pub literals_after: usize,
    /// Survivor copies actually grafted by this step (0 for insertions
    /// and unmatched steps) — the measured counterpart of
    /// [`DeletionForecast::total_survivor_copies`].
    pub survivor_copies: usize,
    /// Distinct stored nodes after the update, before simplification
    /// (arena nodes plus hash-consed shapes — `nodes_raw` minus what
    /// sharing deduped).
    pub distinct_nodes_raw: usize,
    /// Distinct stored nodes after the step.
    pub distinct_nodes_after: usize,
    /// Whether the engine kept the input's shared children as handles
    /// instead of materializing them at entry: the step's query labels
    /// provably cannot reach inside any stored shape, so matching on the
    /// arena alone is exact and the input DAG stays compact across steps.
    pub entry_expansion_skipped: bool,
}

impl StepReport {
    /// `|T|` before the step (nodes + literals, the paper's size measure).
    pub fn size_before(&self) -> usize {
        self.nodes_before + self.literals_before
    }

    /// `|T|` after the update, before simplification.
    pub fn size_raw(&self) -> usize {
        self.nodes_raw + self.literals_raw
    }

    /// `|T|` after the step.
    pub fn size_after(&self) -> usize {
        self.nodes_after + self.literals_after
    }

    /// How much the simplification pass saved on this step, in size units.
    pub fn simplification_savings(&self) -> usize {
        self.size_raw().saturating_sub(self.size_after())
    }
}

/// Applies probabilistic updates to prob-trees; see the module docs for
/// what it guarantees beyond the naive Appendix A transcription.
#[derive(Clone, Debug, Default)]
pub struct UpdateEngine {
    config: UpdateEngineConfig,
}

impl UpdateEngine {
    /// An engine with the default configuration (simplification and
    /// shared-first chains on).
    pub fn new() -> Self {
        UpdateEngine::default()
    }

    /// An engine with an explicit configuration.
    pub fn with_config(config: UpdateEngineConfig) -> Self {
        UpdateEngine { config }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &UpdateEngineConfig {
        &self.config
    }

    /// Applies one probabilistic update, returning the updated prob-tree
    /// and the step telemetry.
    ///
    /// Shared children of the *input* are materialized first when the
    /// step's query could reach inside a stored shape (pattern matching
    /// addresses arena nodes); when every query label is provably absent
    /// from every reachable shape the expansion is skipped and the input
    /// DAG stays compact ([`StepReport::entry_expansion_skipped`]). The
    /// copies this step grafts are shared in the output (unless
    /// [`UpdateEngineConfig::survivor_sharing`] is off).
    pub fn apply(&self, tree: &ProbTree, update: &ProbabilisticUpdate) -> (ProbTree, StepReport) {
        let (updated, report, _) = self.apply_traced(tree, update, false);
        (updated, report)
    }

    /// [`UpdateEngine::apply`] plus, when `trace` is set, the composed node
    /// mapping from ids of the (expanded) input to ids of the output —
    /// the raw material [`crate::Document::commit`] diffs into an
    /// [`crate::UpdateDelta`]. With `trace` off no mapping is collected.
    pub(crate) fn apply_traced(
        &self,
        tree: &ProbTree,
        update: &ProbabilisticUpdate,
        trace: bool,
    ) -> (ProbTree, StepReport, NodeMapping) {
        // Satellite of the cross-step sharing gap: when no query label can
        // occur inside any stored shape, arena-only matching is exact and
        // the input's sharing survives the step.
        let skip_entry = can_skip_entry_expansion(tree, &update.operation.query);
        let expanded;
        let tree = if skip_entry {
            tree
        } else {
            expanded = tree.expanded();
            expanded.as_ref()
        };
        let matches = update.operation.query.matches(tree.tree());
        let mut report = StepReport {
            matches: matches.len(),
            targets: 0,
            new_event: None,
            nodes_before: tree.num_nodes(),
            literals_before: tree.num_literals(),
            nodes_raw: tree.num_nodes(),
            literals_raw: tree.num_literals(),
            nodes_after: tree.num_nodes(),
            literals_after: tree.num_literals(),
            survivor_copies: 0,
            distinct_nodes_raw: tree.num_nodes(),
            distinct_nodes_after: tree.num_nodes(),
            entry_expansion_skipped: skip_entry,
        };
        if matches.is_empty() {
            return (tree.clone(), report, None);
        }
        let mut out = tree.clone();
        let new_event = if update.confidence < 1.0 {
            Some(out.events_mut().fresh(update.confidence))
        } else {
            None
        };
        report.new_event = new_event;
        match &update.operation.action {
            UpdateAction::Insert { at, subtree } => {
                report.targets =
                    self.apply_insertion(&mut out, tree, &matches, *at, subtree, new_event);
            }
            UpdateAction::Delete { at } => {
                let (targets, survivors) =
                    self.apply_deletion(&mut out, tree, &matches, *at, new_event);
                report.targets = targets;
                report.survivor_copies = survivors;
            }
        }
        let (raw, compact_mapping) = out.compact();
        let mut mapping: NodeMapping = trace.then_some(compact_mapping);
        report.nodes_raw = raw.num_nodes();
        report.literals_raw = raw.num_literals();
        report.distinct_nodes_raw = raw.memory_stats().distinct_nodes;
        let updated = if self.config.simplify {
            let (simplified, _, simplify_mapping) =
                simplify_traced(&raw, &self.config.simplify_config);
            if trace {
                mapping = compose_mappings(mapping, simplify_mapping);
            }
            simplified
        } else {
            raw
        };
        report.nodes_after = updated.num_nodes();
        report.literals_after = updated.num_literals();
        report.distinct_nodes_after = updated.memory_stats().distinct_nodes;
        (updated, report, mapping)
    }

    /// Like [`UpdateEngine::apply`], but enforces the configured
    /// [`UpdateEngineConfig::max_survivor_copies`] budget: the step's
    /// [`DeletionForecast`] is computed first (no mutation), and if it
    /// predicts more survivor copies than the budget allows the step is
    /// refused with a [`SurvivorBudgetExceeded`] error — before a single
    /// subtree copy is materialized. Without a budget this is `apply`.
    pub fn try_apply(
        &self,
        tree: &ProbTree,
        update: &ProbabilisticUpdate,
    ) -> Result<(ProbTree, StepReport), SurvivorBudgetExceeded> {
        if let Some(budget) = self.config.max_survivor_copies {
            let forecast = self.forecast(tree, update);
            let predicted = forecast.total_survivor_copies();
            if predicted > budget {
                return Err(SurvivorBudgetExceeded { predicted, budget });
            }
        }
        Ok(self.apply(tree, update))
    }

    /// Predicts the cost of one step **without mutating the tree**: the
    /// match set is grouped by target and the survivor expansion replayed
    /// on the deletion conditions alone — no subtree is copied. The
    /// fresh confidence event a sub-1 confidence would introduce is
    /// simulated with the next free event id, so the predicted chain
    /// lengths match the real application exactly.
    pub fn forecast(&self, tree: &ProbTree, update: &ProbabilisticUpdate) -> DeletionForecast {
        let tree = tree.expanded();
        let tree = tree.as_ref();
        let matches = update.operation.query.matches(tree.tree());
        if matches.is_empty() {
            return DeletionForecast {
                matches: 0,
                targets: 0,
                survivors_per_target: Vec::new(),
                subtree_nodes_per_target: Vec::new(),
                survivor_sharing: self.config.survivor_sharing,
            };
        }
        let new_event = (update.confidence < 1.0).then(|| EventId::from_index(tree.events().len()));
        match &update.operation.action {
            UpdateAction::Insert { at, .. } => {
                let mut targets: Vec<NodeId> = matches.iter().map(|m| m.node(*at)).collect();
                targets.sort();
                targets.dedup();
                DeletionForecast {
                    matches: matches.len(),
                    targets: targets.len(),
                    survivors_per_target: Vec::new(),
                    subtree_nodes_per_target: Vec::new(),
                    survivor_sharing: self.config.survivor_sharing,
                }
            }
            UpdateAction::Delete { at } => {
                let by_target = deletion_conditions(tree, &matches, *at, new_event);
                let targets = deletion_order(tree, &by_target);
                let survivors_per_target: Vec<usize> = targets
                    .iter()
                    .map(|t| {
                        self.expand_survivors(&by_target[t], self.config.shared_first_chains)
                            .len()
                    })
                    .collect();
                let subtree_nodes_per_target: Vec<usize> = targets
                    .iter()
                    .map(|&t| tree.tree().descendants(t).len())
                    .collect();
                DeletionForecast {
                    matches: matches.len(),
                    targets: targets.len(),
                    survivors_per_target,
                    subtree_nodes_per_target,
                    survivor_sharing: self.config.survivor_sharing,
                }
            }
        }
    }

    /// Applies a batched sequence of updates in one pass, each step against
    /// the previous step's output, with per-step telemetry.
    pub fn apply_script(&self, tree: &ProbTree, script: &UpdateScript) -> (ProbTree, ScriptReport) {
        let mut current = tree.clone();
        let mut steps = Vec::with_capacity(script.len());
        for update in script.steps() {
            let (next, report) = self.apply(&current, update);
            current = next;
            steps.push(report);
        }
        (current, ScriptReport { steps })
    }

    /// Applies one update to a [`Document`](crate::Document), committing
    /// the result as the document's next epoch together with the diffed
    /// [`UpdateDelta`](crate::UpdateDelta) that prepared queries consume
    /// via [`PreparedQuery::maintain`](crate::PreparedQuery::maintain).
    pub fn apply_doc(
        &self,
        doc: &mut crate::Document,
        update: &ProbabilisticUpdate,
    ) -> std::sync::Arc<crate::UpdateDelta> {
        let staged = self.stage_doc(doc, update);
        doc.commit_staged(staged)
            .expect("staged against the same exclusive document state")
    }

    /// The first half of [`UpdateEngine::apply_doc`], split off: applies
    /// `update` against the document's current snapshot **without
    /// committing**. All the expensive work (matching, grafting,
    /// simplification) happens here under shared access; the returned
    /// [`StagedStep`](crate::StagedStep) carries the document identity
    /// and base epoch and commits — cheaply — via
    /// [`Document::commit_staged`](crate::Document::commit_staged). A
    /// commit that lands in between is detected there as an epoch
    /// conflict, so staging is safe to run optimistically.
    pub fn stage_doc(
        &self,
        doc: &crate::Document,
        update: &ProbabilisticUpdate,
    ) -> crate::StagedStep {
        let (tree, report, mapping) = self.apply_traced(doc.tree(), update, true);
        crate::StagedStep {
            doc: doc.id(),
            base_epoch: doc.epoch(),
            tree,
            report,
            mapping,
        }
    }

    /// Applies a batched script to a [`Document`](crate::Document), one
    /// committed epoch (and one delta) per step.
    pub fn apply_script_doc(
        &self,
        doc: &mut crate::Document,
        script: &UpdateScript,
    ) -> ScriptReport {
        let mut steps = Vec::with_capacity(script.len());
        for update in script.steps() {
            steps.push(self.apply_doc(doc, update).report.clone());
        }
        ScriptReport { steps }
    }

    /// Appendix A insertion: one grafted copy of `subtree` per match.
    /// Returns the number of distinct insertion parents.
    fn apply_insertion(
        &self,
        out: &mut ProbTree,
        original: &ProbTree,
        matches: &[PatternMatch],
        at: PatternNodeId,
        subtree: &DataTree,
        new_event: Option<EventId>,
    ) -> usize {
        let mut targets: Vec<NodeId> = Vec::new();
        for m in matches {
            let target = m.node(at);
            targets.push(target);
            let cond = match_condition(original, m);
            let gamma_target = original.condition(target);
            let cond_ancestors = original.ancestor_condition(target);
            // {w} ∪ (cond − (γ(µ(n)) ∪ cond_ancestors))
            let mut root_cond = cond.minus(&gamma_target.and(&cond_ancestors));
            if let Some(w) = new_event {
                root_cond = root_cond.and_literal(Literal::pos(w));
            }
            out.graft_data_tree(target, subtree, root_cond);
        }
        targets.sort();
        targets.dedup();
        targets.len()
    }

    /// Appendix A deletion, generalized to several (possibly nested)
    /// matches: every target is replaced by one copy per surviving
    /// disjunct of the mutually exclusive expansion of "no deletion
    /// condition holds". Returns the number of distinct targets and the
    /// total number of survivor copies grafted.
    fn apply_deletion(
        &self,
        out: &mut ProbTree,
        original: &ProbTree,
        matches: &[PatternMatch],
        at: PatternNodeId,
        new_event: Option<EventId>,
    ) -> (usize, usize) {
        let by_target = deletion_conditions(original, matches, at, new_event);
        let targets = deletion_order(original, &by_target);
        let mut survivor_copies = 0;
        for target in &targets {
            let target = *target;
            let survivor_disjuncts =
                self.expand_survivors(&by_target[&target], self.config.shared_first_chains);
            survivor_copies += survivor_disjuncts.len();
            let gamma_target = out.condition(target);
            let parent = out
                .tree()
                .parent(target)
                .expect("non-root node has a parent");
            let root_conditions: Vec<Condition> = survivor_disjuncts
                .iter()
                .map(|disjunct| gamma_target.and(disjunct))
                .collect();
            if self.config.survivor_sharing {
                // One interned shape chain, k O(1) handles.
                out.duplicate_subtree_n(parent, target, &root_conditions);
            } else {
                for condition in root_conditions {
                    out.duplicate_subtree_deep(parent, target, condition);
                }
            }
            out.detach(target);
        }
        (targets.len(), survivor_copies)
    }

    /// Expands `⋀_j ¬d_j` into a deterministic list of mutually exclusive
    /// conjunctions (the survivor disjuncts). A `d_j` with no literals
    /// means the deletion applies unconditionally: the target never
    /// survives and the list is empty.
    fn expand_survivors(&self, del_conds: &[Condition], shared_first: bool) -> Vec<Condition> {
        // Sorting + deduplication: determinism regardless of match
        // enumeration order, and `¬d ∧ ¬d = ¬d`.
        let mut dels: Vec<Condition> = del_conds.to_vec();
        dels.sort();
        dels.dedup();
        if dels.iter().any(Condition::is_empty) {
            return Vec::new();
        }
        // Literal frequency across the deletion conditions; chains over
        // shared-first literal orders collide early (a combination mixing
        // `¬w` and `w` links is pruned as inconsistent instead of
        // multiplying through).
        let mut frequency: BTreeMap<Literal, usize> = BTreeMap::new();
        if shared_first {
            for d in &dels {
                for &literal in d.literals() {
                    *frequency.entry(literal).or_insert(0) += 1;
                }
            }
        }
        let mut survivors: Vec<Condition> = vec![Condition::always()];
        for d in &dels {
            let mut literals: Vec<Literal> = d.literals().to_vec();
            if shared_first {
                literals.sort_by_key(|l| (Reverse(frequency[l]), *l));
            }
            let chain = negation_chain(&literals);
            let mut next = Vec::with_capacity(survivors.len() * chain.len());
            for base in &survivors {
                for link in &chain {
                    let combined = base.and(link);
                    if combined.is_consistent() {
                        next.push(combined);
                    }
                }
            }
            survivors = next;
        }
        survivors
    }
}

/// `true` when arena-only matching of `query` on `tree` is exact — the
/// tree has shared children, every query node carries a concrete label
/// (a wildcard could bind nodes a stored shape would contribute), and no
/// query label occurs anywhere in a shape reachable from the tree's
/// handles. Pattern matches then bind arena nodes only, and ancestor
/// relations among arena nodes are unchanged by expansion, so the match
/// sets on the arena and on the expanded tree coincide.
fn can_skip_entry_expansion(tree: &ProbTree, query: &PatternQuery) -> bool {
    if !tree.has_shared() {
        // Nothing to skip: `expanded()` is already a zero-cost borrow.
        return false;
    }
    let mut labels: Vec<&str> = Vec::with_capacity(query.len());
    for i in 0..query.len() {
        match query.label(PatternNodeId(i)) {
            None => return false,
            Some(label) => labels.push(label),
        }
    }
    let store = tree.store();
    let roots = tree
        .tree()
        .iter()
        .flat_map(|n| tree.shared_children(n).iter().map(|sc| sc.shape));
    store
        .reachable_from(roots)
        .iter()
        .all(|&shape| !labels.contains(&store.label(shape)))
}

/// Groups the per-match deletion conditions by target node (shared by
/// the real application and the no-mutation [`UpdateEngine::forecast`]).
/// The conditions are computed against the original tree: a match is a
/// statement about the original world's contents, and all node
/// conditions it mentions still annotate the same nodes (or their
/// copies) while targets are being split below.
fn deletion_conditions(
    original: &ProbTree,
    matches: &[PatternMatch],
    at: PatternNodeId,
    new_event: Option<EventId>,
) -> BTreeMap<NodeId, Vec<Condition>> {
    let mut by_target: BTreeMap<NodeId, Vec<Condition>> = BTreeMap::new();
    for m in matches {
        let target = m.node(at);
        assert!(
            target != original.tree().root(),
            "deleting the root of a prob-tree is not supported"
        );
        let cond = match_condition(original, m);
        let gamma_target = original.condition(target);
        let cond_ancestors = original.ancestor_condition(target);
        let mut del_cond = cond.minus(&gamma_target.and(&cond_ancestors));
        if let Some(w) = new_event {
            del_cond = del_cond.and_literal(Literal::pos(w));
        }
        by_target.entry(target).or_default().push(del_cond);
    }
    by_target
}

/// The engine's deterministic target order: deepest targets first (ties
/// by `NodeId`). A target is only split after every target strictly
/// below it has been, so its survivor copies — grafted from the evolving
/// tree — embed the descendants' splits. Shallower-first (or grafting
/// from the original tree, as the pre-engine code did) loses the
/// descendant splits inside the ancestor's copies.
fn deletion_order(
    original: &ProbTree,
    by_target: &BTreeMap<NodeId, Vec<Condition>>,
) -> Vec<NodeId> {
    let mut targets: Vec<NodeId> = by_target.keys().copied().collect();
    targets.sort_by_key(|&t| (Reverse(original.tree().depth(t)), t));
    targets
}

/// The condition `cond` of Appendix A for one match: the union of the
/// conditions of the nodes of the induced answer sub-datatree.
fn match_condition(tree: &ProbTree, m: &PatternMatch) -> Condition {
    let sub = m.induced_subtree(tree.tree());
    let mut cond = Condition::always();
    for node in sub.nodes() {
        cond = cond.and(&tree.condition(node));
    }
    cond
}

/// The mutually exclusive expansion of `¬(a_1 ∧ … ∧ a_p)` used by
/// Appendix A, over the given literal order:
/// `{¬a_1}, {a_1, ¬a_2}, …, {a_1, …, a_{p−1}, ¬a_p}`.
fn negation_chain(literals: &[Literal]) -> Vec<Condition> {
    let mut chain = Vec::with_capacity(literals.len());
    for (i, &lit) in literals.iter().enumerate() {
        let mut parts: Vec<Literal> = literals[..i].to_vec();
        parts.push(lit.negated());
        chain.push(Condition::from_literals(parts));
    }
    chain
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probtree::figure1_example;
    use crate::semantics::possible_worlds;
    use crate::update::UpdateOperation;
    use crate::PatternQuery;

    /// The nested-target fixture:
    ///
    /// ```text
    /// A
    /// └── B1 [⊤]
    ///     ├── C1 [x]
    ///     └── B2 [⊤]
    ///         └── C2 [y]
    /// ```
    ///
    /// Deleting every `B` that has a `C` child (confidence 1) must, in the
    /// world `x=0, y=1`, delete `B2` but keep `B1` — which requires `B2`'s
    /// survival split to live inside `B1`'s survivor copy.
    fn nested_fixture() -> ProbTree {
        let mut t = ProbTree::new("A");
        let x = t.events_mut().insert("x", 0.5);
        let y = t.events_mut().insert("y", 0.5);
        let root = t.tree().root();
        let b1 = t.add_child(root, "B", Condition::always());
        t.add_child(b1, "C", Condition::of(Literal::pos(x)));
        let b2 = t.add_child(b1, "B", Condition::always());
        t.add_child(b2, "C", Condition::of(Literal::pos(y)));
        t
    }

    fn delete_b_with_c_child(confidence: f64) -> ProbabilisticUpdate {
        let mut q = PatternQuery::new(Some("B"));
        let b = q.root();
        q.add_child(b, "C");
        ProbabilisticUpdate::new(UpdateOperation::delete(q, b), confidence)
    }

    #[test]
    fn nested_deletion_targets_agree_with_pw_semantics() {
        let t = nested_fixture();
        let update = delete_b_with_c_child(1.0);
        assert_eq!(update.operation.query.matches(t.tree()).len(), 2);
        for config in [UpdateEngineConfig::default(), UpdateEngineConfig::raw()] {
            let engine = UpdateEngine::with_config(config);
            let (updated, report) = engine.apply(&t, &update);
            assert_eq!(report.targets, 2);
            let direct = possible_worlds(&updated, 20).unwrap().normalized();
            let via_pw = update
                .apply_to_pw_set(&possible_worlds(&t, 20).unwrap())
                .normalized();
            assert!(
                direct.isomorphic(&via_pw),
                "nested targets escape their survival split\n{}",
                updated.to_ascii()
            );
        }
    }

    #[test]
    fn nested_deletion_targets_with_confidence_below_one() {
        let t = nested_fixture();
        let update = delete_b_with_c_child(0.7);
        let (updated, report) = UpdateEngine::new().apply(&t, &update);
        assert!(report.new_event.is_some());
        let direct = possible_worlds(&updated, 20).unwrap().normalized();
        let via_pw = update
            .apply_to_pw_set(&possible_worlds(&t, 20).unwrap())
            .normalized();
        assert!(direct.isomorphic(&via_pw), "\n{}", updated.to_ascii());
    }

    /// Three levels of nesting plus a multi-match target: every B below
    /// the root is matched once per C child.
    #[test]
    fn deeply_nested_and_multi_match_targets() {
        let mut t = ProbTree::new("A");
        let x = t.events_mut().insert("x", 0.5);
        let y = t.events_mut().insert("y", 0.5);
        let z = t.events_mut().insert("z", 0.5);
        let root = t.tree().root();
        let b1 = t.add_child(root, "B", Condition::always());
        t.add_child(b1, "C", Condition::of(Literal::pos(x)));
        t.add_child(b1, "C", Condition::of(Literal::pos(y)));
        let b2 = t.add_child(b1, "B", Condition::of(Literal::pos(y)));
        let b3 = t.add_child(b2, "B", Condition::always());
        t.add_child(b3, "C", Condition::of(Literal::pos(z)));
        let update = delete_b_with_c_child(1.0);
        // B1 matched twice (two C children), B3 once.
        assert_eq!(update.operation.query.matches(t.tree()).len(), 3);
        let (updated, report) = UpdateEngine::new().apply(&t, &update);
        assert_eq!(report.matches, 3);
        assert_eq!(report.targets, 2);
        let direct = possible_worlds(&updated, 20).unwrap().normalized();
        let via_pw = update
            .apply_to_pw_set(&possible_worlds(&t, 20).unwrap())
            .normalized();
        assert!(direct.isomorphic(&via_pw), "\n{}", updated.to_ascii());
    }

    /// Regression: two applications of the same deletion must produce
    /// byte-identical renderings (the pre-engine `HashMap` target grouping
    /// made the sibling order depend on per-instance hash seeds).
    #[test]
    fn deletion_output_is_run_to_run_deterministic() {
        let build = || {
            let mut t = ProbTree::new("A");
            let root = t.tree().root();
            // Many distinct targets so a hash-ordered traversal has many
            // orders to choose from.
            for i in 0..12 {
                let w = t.events_mut().insert(format!("w{i}"), 0.5);
                let s = t.add_child(root, "S", Condition::always());
                let b = t.add_child(s, "B", Condition::of(Literal::pos(w)));
                t.add_child(b, "P", Condition::always());
            }
            t
        };
        let mut q = PatternQuery::new(Some("B"));
        let b = q.root();
        q.add_child(b, "P");
        let update = ProbabilisticUpdate::new(UpdateOperation::delete(q, b), 0.9);
        let engine = UpdateEngine::new();
        let (first, _) = engine.apply(&build(), &update);
        let (second, _) = engine.apply(&build(), &update);
        assert_eq!(
            first.to_ascii(),
            second.to_ascii(),
            "update output must not depend on hash iteration order"
        );
    }

    /// Shared-first chains split the fresh confidence event off once:
    /// `1 + 2^n` survivor copies instead of `3^n` on the Theorem 3 family.
    #[test]
    fn shared_first_chains_control_the_confidence_blowup() {
        let tree = pxml_workloads_free_theorem3(4);
        let update = d0(0.8);
        let raw = UpdateEngine::with_config(UpdateEngineConfig::raw());
        let ordered = UpdateEngine::with_config(UpdateEngineConfig {
            simplify: false,
            ..UpdateEngineConfig::default()
        });
        let (raw_out, _) = raw.apply(&tree, &update);
        let (ordered_out, _) = ordered.apply(&tree, &update);
        // Survivor copies are shared handles, so count the *logical* B
        // occurrences through the expanded view.
        let b = |t: &ProbTree| {
            let t = t.expanded();
            t.tree()
                .iter()
                .filter(|&nd| t.tree().label(nd) == "B")
                .count()
        };
        assert_eq!(b(&raw_out), 81, "naive chain product: 3^4");
        assert_eq!(b(&ordered_out), 17, "shared-first: 1 + 2^4");
        assert!(ordered_out.size() < raw_out.size());
        // Both representations store each distinct survivor shape once.
        let ordered_stats = ordered_out.memory_stats();
        assert!(
            ordered_stats.distinct_nodes < ordered_stats.logical_nodes,
            "hash-consing must dedupe the 17 survivor copies: {ordered_stats:?}"
        );
    }

    /// … and the simplification pass recovers the same reduction from the
    /// naive expansion (acceptance: the pass shrinks the Theorem 3 family).
    #[test]
    fn simplification_shrinks_the_naive_theorem3_output() {
        for n in 2..=4usize {
            let tree = pxml_workloads_free_theorem3(n);
            let update = d0(0.8);
            let raw = UpdateEngine::with_config(UpdateEngineConfig::raw());
            let simplified = UpdateEngine::with_config(UpdateEngineConfig {
                simplify: true,
                shared_first_chains: false,
                ..UpdateEngineConfig::default()
            });
            let (raw_out, raw_report) = raw.apply(&tree, &update);
            let (simpl_out, simpl_report) = simplified.apply(&tree, &update);
            assert_eq!(raw_report.size_raw(), simpl_report.size_raw());
            assert!(
                simpl_out.size() < raw_out.size(),
                "n = {n}: {} !< {}",
                simpl_out.size(),
                raw_out.size()
            );
            assert!(simpl_report.simplification_savings() > 0);
            // Both agree with the PW semantics at feasible sizes.
            if n <= 3 {
                let via_pw = update
                    .apply_to_pw_set(&possible_worlds(&tree, 20).unwrap())
                    .normalized();
                let direct = possible_worlds(&simpl_out, 20).unwrap().normalized();
                assert!(direct.isomorphic(&via_pw));
            }
        }
    }

    /// The no-mutation forecast predicts exactly the survivor copies the
    /// real application grafts, for both chain orders and confidences on
    /// the Theorem 3 family: `3^n` naive, `1 + 2^n` shared-first.
    #[test]
    fn forecast_matches_measured_survivor_copies_on_theorem3() {
        for n in 1..=4usize {
            for confidence in [0.8, 1.0] {
                let tree = pxml_workloads_free_theorem3(n);
                let update = d0(confidence);
                for config in [
                    UpdateEngineConfig::raw(),
                    UpdateEngineConfig {
                        simplify: false,
                        ..UpdateEngineConfig::default()
                    },
                ] {
                    let shared = config.shared_first_chains;
                    let engine = UpdateEngine::with_config(config);
                    let forecast = engine.forecast(&tree, &update);
                    let (_, report) = engine.apply(&tree, &update);
                    assert_eq!(forecast.matches, report.matches);
                    assert_eq!(forecast.targets, report.targets);
                    assert_eq!(
                        forecast.total_survivor_copies(),
                        report.survivor_copies,
                        "n={n} confidence={confidence} shared_first={shared}"
                    );
                    if confidence < 1.0 {
                        let expected = if shared {
                            1 + (1usize << n)
                        } else {
                            3usize.pow(n as u32)
                        };
                        assert_eq!(forecast.total_survivor_copies(), expected);
                    }
                }
            }
        }
    }

    /// `try_apply` refuses a predicted blow-up before materializing and
    /// accepts steps within budget.
    #[test]
    fn try_apply_enforces_the_survivor_budget() {
        let tree = pxml_workloads_free_theorem3(4);
        let update = d0(0.8);
        let tight = UpdateEngine::with_config(UpdateEngineConfig {
            simplify: false,
            max_survivor_copies: Some(16),
            ..UpdateEngineConfig::default()
        });
        let err = tight.try_apply(&tree, &update).unwrap_err();
        assert_eq!(err.predicted, 17, "shared-first: 1 + 2^4");
        assert_eq!(err.budget, 16);
        assert!(err.to_string().contains("17"));
        let roomy = UpdateEngine::with_config(UpdateEngineConfig {
            simplify: false,
            max_survivor_copies: Some(17),
            ..UpdateEngineConfig::default()
        });
        let (_, report) = roomy.try_apply(&tree, &update).unwrap();
        assert_eq!(report.survivor_copies, 17);
    }

    /// Insertions and unmatched steps forecast zero survivor copies.
    #[test]
    fn forecast_on_insertions_and_dead_steps() {
        let t = figure1_example();
        let engine = UpdateEngine::new();
        let insert = {
            let q = PatternQuery::new(Some("C"));
            let at = q.root();
            ProbabilisticUpdate::new(UpdateOperation::insert(q, at, DataTree::new("E")), 0.9)
        };
        let f = engine.forecast(&t, &insert);
        assert_eq!(f.matches, 1);
        assert_eq!(f.targets, 1);
        assert_eq!(f.total_survivor_copies(), 0);
        assert!(!f.is_dead());
        let dead = {
            let q = PatternQuery::new(Some("Z"));
            let at = q.root();
            ProbabilisticUpdate::new(UpdateOperation::insert(q, at, DataTree::new("E")), 0.9)
        };
        let f = engine.forecast(&t, &dead);
        assert!(f.is_dead());
        assert_eq!(f.targets, 0);
    }

    #[test]
    fn unmatched_update_reports_identity() {
        let t = figure1_example();
        let q = PatternQuery::new(Some("Z"));
        let at = q.root();
        let update =
            ProbabilisticUpdate::new(UpdateOperation::insert(q, at, DataTree::new("E")), 0.9);
        let (updated, report) = UpdateEngine::new().apply(&t, &update);
        assert_eq!(report.matches, 0);
        assert!(report.new_event.is_none());
        assert_eq!(report.size_before(), report.size_after());
        assert_eq!(updated.num_nodes(), t.num_nodes());
        assert_eq!(updated.events().len(), t.events().len(), "no fresh event");
    }

    /// Local copy of `pxml_workloads::paper::theorem3_tree` (the workloads
    /// crate depends on this one, so the fixture cannot be imported).
    fn pxml_workloads_free_theorem3(n: usize) -> ProbTree {
        let mut tree = ProbTree::new("A");
        let root = tree.tree().root();
        tree.add_child(root, "B", Condition::always());
        for i in 0..n {
            let w0 = tree.events_mut().insert(format!("w{}_0", i + 1), 0.5);
            let w1 = tree.events_mut().insert(format!("w{}_1", i + 1), 0.5);
            tree.add_child(
                root,
                "C",
                Condition::from_literals([Literal::pos(w0), Literal::pos(w1)]),
            );
        }
        tree
    }

    fn d0(confidence: f64) -> ProbabilisticUpdate {
        let mut q = PatternQuery::anchored(Some("A"));
        let b = q.add_child(q.root(), "B");
        let _c = q.add_child(q.root(), "C");
        ProbabilisticUpdate::new(UpdateOperation::delete(q, b), confidence)
    }
}
