//! Post-update simplification of prob-trees.
//!
//! Deletions blow prob-trees up (Theorem 3); this pass claws back what is
//! recoverable without changing the (normalized) possible-world semantics,
//! by chaining three reductions until a fixpoint (or `max_passes`):
//!
//! 1. [`clean`](crate::clean::clean) — drop literals implied by ancestors, prune inconsistent
//!    branches (Section 3; preserves structural equivalence);
//! 2. [`prune_certain`](crate::clean::prune_certain) — drop literals on `π(w) = 1` events and prune the
//!    zero-probability branches they contradict (preserves the normalized
//!    semantics only);
//! 3. **sibling cover merging** — for each group of sibling copies whose
//!    subtrees are structurally identical (labels *and* conditions below
//!    the copy root) and whose root conditions are pairwise mutually
//!    exclusive, re-cover the disjunction of root conditions by a strictly
//!    smaller pairwise-disjoint DNF ([`Dnf::minimized_disjoint_cover`])
//!    and replace the copies. Because the old and new covers are
//!    count-equivalent (Definition 10) and the subtrees identical, every
//!    valuation produces the same multiset of child instances — this step
//!    preserves structural equivalence, which is exactly why the survivor
//!    copies a deletion scatters under one parent are its natural prey.

use std::collections::{BTreeMap, HashMap};

use pxml_events::{Condition, Dnf, Probability, Semiring};
use pxml_tree::{AnnotatedCanonInterner, NodeId};

use crate::clean::{clean_traced, prune_certain_traced_in};
use crate::probtree::ProbTree;

/// A node mapping across one rewrite, as threaded through the
/// simplification chain: `None` is the identity, `Some(map)` sends each
/// surviving pre-rewrite id to its post-rewrite id (absent ids were
/// pruned). Rewrites only ever *append* arena nodes before compacting, so
/// pre-existing ids are stable until the final compaction and maps compose
/// by straight lookup.
pub(crate) type NodeMapping = Option<HashMap<NodeId, NodeId>>;

/// Composes two node mappings: `first` (old → mid) then `second`
/// (mid → new).
pub(crate) fn compose_mappings(first: NodeMapping, second: NodeMapping) -> NodeMapping {
    match (first, second) {
        (None, second) => second,
        (first, None) => first,
        (Some(first), Some(second)) => Some(
            first
                .into_iter()
                .filter_map(|(old, mid)| second.get(&mid).map(|&new| (old, new)))
                .collect(),
        ),
    }
}

/// Configuration of the [`simplify`] pass.
#[derive(Clone, Debug)]
pub struct SimplifyConfig {
    /// Run [`clean`](crate::clean::clean) each pass (default: `true`).
    pub clean: bool,
    /// Run [`prune_certain`](crate::clean::prune_certain) each pass (default: `true`).
    pub prune_certain: bool,
    /// Merge sibling covers each pass (default: `true`).
    pub merge_siblings: bool,
    /// Skip cover merging for condition supports larger than this (the
    /// Shannon expansion is exponential in the support in the worst case;
    /// default: 20).
    pub max_merge_support: usize,
    /// Skip cover merging for sibling groups larger than this (the
    /// pairwise disjointness test is quadratic in the group; default:
    /// 1024).
    pub max_merge_group: usize,
    /// Upper bound on chained passes (default: 4 — merging children can
    /// make their parents mergeable in turn).
    pub max_passes: usize,
}

impl Default for SimplifyConfig {
    fn default() -> Self {
        SimplifyConfig {
            clean: true,
            prune_certain: true,
            merge_siblings: true,
            max_merge_support: 20,
            max_merge_group: 1024,
            max_passes: 4,
        }
    }
}

/// Telemetry of one [`simplify_with`] run.
#[derive(Clone, Debug, Default)]
pub struct SimplifyReport {
    /// Nodes before / after.
    pub nodes_before: usize,
    /// Literals before.
    pub literals_before: usize,
    /// Nodes after.
    pub nodes_after: usize,
    /// Literals after.
    pub literals_after: usize,
    /// Number of sibling groups replaced by a smaller cover.
    pub merged_groups: usize,
    /// Number of passes run (including the final no-change pass).
    pub passes: usize,
}

impl SimplifyReport {
    /// Size units saved (`|T|` before minus after).
    pub fn savings(&self) -> usize {
        (self.nodes_before + self.literals_before)
            .saturating_sub(self.nodes_after + self.literals_after)
    }
}

/// [`simplify_with`] under the default configuration, returning just the
/// simplified tree.
pub fn simplify(tree: &ProbTree) -> ProbTree {
    simplify_with(tree, &SimplifyConfig::default()).0
}

/// Runs the simplification chain. The result has the same normalized
/// possible-world semantics as the input (and is structurally equivalent
/// to it whenever `prune_certain` is disabled or no `π(w) = 1` event
/// exists).
pub fn simplify_with(tree: &ProbTree, config: &SimplifyConfig) -> (ProbTree, SimplifyReport) {
    let (tree, report, _) = simplify_traced(tree, config);
    (tree, report)
}

/// [`simplify_with`] generalized over a [`Semiring`]: the prune-certain
/// pass drops literals that are certain *in the semiring's sense*
/// ([`Semiring::literal_certain`]) and the sibling-cover merge strips the
/// same certain literals (and drops semiring-impossible disjuncts) from
/// the covers it synthesizes. Under [`Probability`] this is exactly
/// [`simplify_with`]; under a semiring with no certain literals (e.g.
/// `Counting` or `Lineage`) the prune pass is the identity and covers are
/// kept verbatim.
pub fn simplify_with_in<S: Semiring>(
    tree: &ProbTree,
    config: &SimplifyConfig,
    semiring: &S,
) -> (ProbTree, SimplifyReport) {
    let (tree, report, _) = simplify_traced_in(tree, config, semiring);
    (tree, report)
}

/// [`simplify_with`] plus the composed node mapping from ids in `tree` to
/// ids in the result (`None` = identity; absent ids were pruned). This is
/// how the update engine reconstructs, after the fact, exactly which nodes
/// the whole simplification chain removed or rewrote.
pub(crate) fn simplify_traced(
    tree: &ProbTree,
    config: &SimplifyConfig,
) -> (ProbTree, SimplifyReport, NodeMapping) {
    simplify_traced_in(tree, config, &Probability)
}

/// [`simplify_traced`] over an arbitrary [`Semiring`] (see
/// [`simplify_with_in`]).
fn simplify_traced_in<S: Semiring>(
    tree: &ProbTree,
    config: &SimplifyConfig,
    semiring: &S,
) -> (ProbTree, SimplifyReport, NodeMapping) {
    let mut report = SimplifyReport {
        nodes_before: tree.num_nodes(),
        literals_before: tree.num_literals(),
        ..SimplifyReport::default()
    };
    let mut work = tree.clone();
    let mut mapping: NodeMapping = None;
    for _ in 0..config.max_passes.max(1) {
        report.passes += 1;
        let fingerprint = (work.num_nodes(), work.num_literals());
        if config.clean {
            let (next, step) = clean_traced(&work);
            work = next;
            mapping = compose_mappings(mapping, step);
        }
        if config.prune_certain {
            let (next, step) = prune_certain_traced_in(&work, semiring);
            work = next;
            mapping = compose_mappings(mapping, step);
        }
        let mut merged = false;
        if config.merge_siblings {
            let (next, groups, step) = merge_sibling_covers_traced(&work, config, semiring);
            merged = groups > 0;
            report.merged_groups += groups;
            work = next;
            mapping = compose_mappings(mapping, step);
        }
        if !merged && (work.num_nodes(), work.num_literals()) == fingerprint {
            break;
        }
    }
    report.nodes_after = work.num_nodes();
    report.literals_after = work.num_literals();
    (work, report, mapping)
}

/// One merging sweep over every parent node; returns the rewritten tree
/// and the number of sibling groups replaced. Shared children are
/// materialized first: grouping and replacement address arena nodes.
///
/// When `config.prune_certain` is set, synthesized cover disjuncts are
/// post-processed with the semiring's notion of certainty — exactly what
/// the next pass's prune-certain would do to them. Under [`Probability`]
/// after a prune pass this is a no-op (no certain-event literal survives
/// pruning, and the Shannon expansion only branches on mentioned events).
fn merge_sibling_covers_traced<S: Semiring>(
    tree: &ProbTree,
    config: &SimplifyConfig,
    semiring: &S,
) -> (ProbTree, usize, NodeMapping) {
    let tree = tree.expanded();
    let tree = tree.as_ref();
    let mut work = tree.clone();
    let mut merged_groups = 0usize;
    // Bare shape codes for every node of the pre-sweep tree, computed once
    // bottom-up; only pre-sweep nodes are ever grouped (copies introduced
    // by a merge are revisited by the next pass).
    let shapes = bare_shape_codes(tree);
    let parents: Vec<NodeId> = work.tree().iter().collect();
    for parent in parents {
        // A parent may itself have been detached by a merge higher up the
        // list (its whole group was replaced by fresh copies).
        if !work.tree().is_attached(parent) {
            continue;
        }
        // Group the children by the shape of everything *except* their own
        // root condition — label, structure and the conditions below.
        let children: Vec<NodeId> = work.tree().children(parent).to_vec();
        if children.len() < 2 {
            continue;
        }
        let mut groups: BTreeMap<u32, Vec<NodeId>> = BTreeMap::new();
        for &child in &children {
            groups.entry(shapes[&child]).or_default().push(child);
        }
        for group in groups.values() {
            if group.len() < 2 || group.len() > config.max_merge_group {
                continue;
            }
            // Split the group into greedy cliques of pairwise mutually
            // exclusive root conditions (identical copies — e.g. two
            // equal-condition duplicates — are *not* disjoint and stay
            // untouched, as the multiset semantics requires).
            let conditions: Vec<Condition> = group.iter().map(|&c| work.condition(c)).collect();
            let mut cliques: Vec<Vec<usize>> = Vec::new();
            for (i, cond) in conditions.iter().enumerate() {
                let home = cliques.iter_mut().find(|clique| {
                    clique
                        .iter()
                        .all(|&j| cond.is_disjoint_with(&conditions[j]))
                });
                match home {
                    Some(clique) => clique.push(i),
                    None => cliques.push(vec![i]),
                }
            }
            for clique in cliques {
                if clique.len() < 2 {
                    continue;
                }
                let dnf = Dnf::from_disjuncts(clique.iter().map(|&i| conditions[i].clone()));
                let Some(cover) = dnf.minimized_disjoint_cover(config.max_merge_support) else {
                    continue;
                };
                // Replace the clique: fresh copies of the (identical)
                // subtree, one per cover disjunct, then drop the originals.
                // With prune-certain enabled, apply its literal-level
                // rewrite to each fresh disjunct up front: drop disjuncts
                // containing a semiring-impossible literal, strip
                // semiring-certain literals from the rest.
                let template = group[clique[0]];
                let disjuncts: Vec<Condition> = if config.prune_certain {
                    let events = work.events();
                    cover
                        .disjuncts()
                        .iter()
                        .filter(|d| {
                            !d.literals()
                                .iter()
                                .any(|&l| semiring.is_zero(&semiring.literal(l, events)))
                        })
                        .map(|d| {
                            Condition::from_literals(
                                d.literals()
                                    .iter()
                                    .copied()
                                    .filter(|&l| !semiring.literal_certain(l, events)),
                            )
                        })
                        .collect()
                } else {
                    cover.disjuncts().to_vec()
                };
                for disjunct in disjuncts {
                    work.duplicate_subtree(parent, template, disjunct);
                }
                for &i in &clique {
                    work.detach(group[i]);
                }
                merged_groups += 1;
            }
        }
    }
    if merged_groups > 0 {
        let (compacted, mapping) = work.compact();
        (compacted, merged_groups, Some(mapping))
    } else {
        // No clique merged, so `work` was never mutated.
        (work, 0, None)
    }
}

/// Bare shape codes for every reachable node, computed in one bottom-up
/// sweep over the shared [`AnnotatedCanonInterner`] of `pxml_tree` — the
/// same interner the hash-consed [`pxml_tree::NodeStore`] uses for its
/// canonical codes, so one annotation convention serves both: inner
/// nodes intern under `Some(γ)`, the node itself under `None` (the *bare*
/// variant). Two nodes share a full code iff their subtrees are identical
/// including every condition, and share a bare code iff they are
/// identical except for their own root condition — which is what the
/// merge rewrites, so children are grouped by bare code. Two children
/// with equal bare codes produce identical world contents whenever their
/// root conditions hold.
fn bare_shape_codes(tree: &ProbTree) -> HashMap<NodeId, u32> {
    let mut interner: AnnotatedCanonInterner<Condition> = AnnotatedCanonInterner::new();
    let mut full: HashMap<NodeId, u32> = HashMap::new();
    let mut bare: HashMap<NodeId, u32> = HashMap::new();
    // Reverse pre-order visits children before their parents.
    let order: Vec<NodeId> = tree.tree().iter().collect();
    for &node in order.iter().rev() {
        let child_codes: Vec<u32> = tree.tree().children(node).iter().map(|c| full[c]).collect();
        let label = tree.tree().label(node);
        let condition = tree.condition(node);
        full.insert(
            node,
            interner.intern(label, Some(&condition), child_codes.clone()),
        );
        bare.insert(node, interner.intern(label, None, child_codes));
    }
    bare
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equivalence::structural_equivalent_exhaustive;
    use crate::semantics::possible_worlds;
    use pxml_events::Literal;

    /// A complementary sibling pair `X∧w` / `X∧¬w` merges into a single
    /// `X` copy.
    #[test]
    fn complementary_sibling_pair_merges() {
        let mut t = ProbTree::new("A");
        let x = t.events_mut().insert("x", 0.6);
        let w = t.events_mut().insert("w", 0.5);
        let root = t.tree().root();
        let b1 = t.add_child(
            root,
            "B",
            Condition::from_literals([Literal::pos(x), Literal::pos(w)]),
        );
        t.add_child(b1, "D", Condition::of(Literal::pos(x)));
        let b2 = t.add_child(
            root,
            "B",
            Condition::from_literals([Literal::pos(x), Literal::neg(w)]),
        );
        t.add_child(b2, "D", Condition::of(Literal::pos(x)));
        let (simplified, report) = simplify_with(&t, &SimplifyConfig::default());
        assert_eq!(report.merged_groups, 1);
        assert!(report.savings() > 0);
        // One B copy left... whose D child then loses the x literal to
        // cleaning on the next pass (x is implied by the merged root).
        let b_count = simplified
            .tree()
            .iter()
            .filter(|&n| simplified.tree().label(n) == "B")
            .count();
        assert_eq!(b_count, 1);
        assert!(structural_equivalent_exhaustive(&t, &simplified, 20).unwrap());
    }

    /// Identical duplicates are a multiset feature, not a redundancy.
    #[test]
    fn equal_condition_duplicates_are_not_merged() {
        let mut t = ProbTree::new("A");
        let w = t.events_mut().insert("w", 0.5);
        let root = t.tree().root();
        t.add_child(root, "B", Condition::of(Literal::pos(w)));
        t.add_child(root, "B", Condition::of(Literal::pos(w)));
        let (simplified, report) = simplify_with(&t, &SimplifyConfig::default());
        assert_eq!(report.merged_groups, 0);
        assert_eq!(simplified.num_nodes(), 3);
    }

    /// Children with different subtrees never merge, even when their root
    /// conditions are complementary.
    #[test]
    fn different_subtrees_are_not_merged() {
        let mut t = ProbTree::new("A");
        let w = t.events_mut().insert("w", 0.5);
        let root = t.tree().root();
        let b1 = t.add_child(root, "B", Condition::of(Literal::pos(w)));
        t.add_child(b1, "D", Condition::always());
        t.add_child(root, "B", Condition::of(Literal::neg(w)));
        let (simplified, report) = simplify_with(&t, &SimplifyConfig::default());
        assert_eq!(report.merged_groups, 0);
        assert_eq!(simplified.num_nodes(), t.num_nodes());
    }

    /// Merging children can unlock a parent-level merge on the next pass.
    #[test]
    fn merging_cascades_to_parents_across_passes() {
        let mut t = ProbTree::new("A");
        let u = t.events_mut().insert("u", 0.5);
        let w = t.events_mut().insert("w", 0.5);
        let root = t.tree().root();
        // Two S siblings with complementary conditions; their subtrees
        // differ only by a child-level complementary pair that the first
        // pass collapses.
        for s_literal in [Literal::pos(u), Literal::neg(u)] {
            let s = t.add_child(root, "S", Condition::of(s_literal));
            t.add_child(s, "B", Condition::of(Literal::pos(w)));
            t.add_child(s, "B", Condition::of(Literal::neg(w)));
        }
        let (simplified, report) = simplify_with(&t, &SimplifyConfig::default());
        // The S subtrees are already identical, so the pre-order sweep
        // merges the S pair first (into one unconditioned S); pass 2 then
        // merges the B pair inside the surviving copy.
        assert_eq!(report.merged_groups, 2);
        assert_eq!(simplified.num_nodes(), 3, "A → S → B");
        assert_eq!(simplified.num_literals(), 0);
        assert!(structural_equivalent_exhaustive(&t, &simplified, 20).unwrap());
    }

    /// The full chain preserves the normalized semantics in the presence
    /// of certain events (where structural equivalence is allowed to
    /// change).
    #[test]
    fn chain_preserves_normalized_semantics_with_certain_events() {
        let mut t = ProbTree::new("A");
        let sure = t.events_mut().insert("sure", 1.0);
        let w = t.events_mut().insert("w", 0.5);
        let root = t.tree().root();
        t.add_child(
            root,
            "B",
            Condition::from_literals([Literal::pos(sure), Literal::pos(w)]),
        );
        t.add_child(root, "B", Condition::of(Literal::neg(w)));
        t.add_child(root, "C", Condition::of(Literal::neg(sure)));
        let before = possible_worlds(&t, 20).unwrap().normalized();
        let (simplified, _) = simplify_with(&t, &SimplifyConfig::default());
        let after = possible_worlds(&simplified, 20).unwrap().normalized();
        assert!(before.isomorphic(&after));
        // `sure` dropped from B's condition, then the B pair merges; the
        // ¬sure branch is pruned.
        assert_eq!(simplified.num_nodes(), 2);
        assert_eq!(simplified.num_literals(), 0);
    }

    #[test]
    fn disabled_passes_leave_the_tree_alone() {
        let mut t = ProbTree::new("A");
        let w = t.events_mut().insert("w", 0.5);
        let root = t.tree().root();
        t.add_child(root, "B", Condition::of(Literal::pos(w)));
        t.add_child(root, "B", Condition::of(Literal::neg(w)));
        let config = SimplifyConfig {
            clean: false,
            prune_certain: false,
            merge_siblings: false,
            ..SimplifyConfig::default()
        };
        let (simplified, report) = simplify_with(&t, &config);
        assert_eq!(report.merged_groups, 0);
        assert_eq!(report.passes, 1);
        assert_eq!(simplified.num_nodes(), t.num_nodes());
    }
}
