//! Probabilistic updates (Section 2, Appendix A, Theorem 3).
//!
//! An *update operation* `τ = (Q, v)` couples a locally monotone query `Q`
//! with either an insertion `i(n, t')` (insert the tree `t'` as a child of
//! the node matched by pattern node `n`) or a deletion `d(n)` (delete the
//! node matched by `n` together with its subtree). A *probabilistic update*
//! `(τ, c)` additionally carries a confidence `c ∈ (0, 1]` — the belief the
//! system has in the operation. Each probabilistic update with `c < 1`
//! introduces one fresh event variable with probability `c`.
//!
//! Updates are defined on plain data trees (Definition 15), on
//! possible-world sets (Definition 16) and on prob-trees (the Appendix A
//! algorithms, generalized here to queries with several matches). The key
//! asymmetry studied by the paper (Proposition 2, Theorem 3): insertions
//! grow the prob-tree by `O(|Q(t)| · |T|)`, while deletions may blow it up
//! to `Ω(2^n)` because the negation of a disjunction of conjunctions must
//! be re-expressed as conjunctive node conditions.

use std::collections::HashMap;

use pxml_events::{Condition, EventId, Literal};
use pxml_tree::{DataTree, NodeId};

use crate::probtree::ProbTree;
use crate::pwset::PossibleWorldSet;
use crate::query::pattern::{PatternMatch, PatternNodeId, PatternQuery};

/// The action part of an update operation (Definition 14).
#[derive(Clone, Debug)]
pub enum UpdateAction {
    /// `i(n, t')`: insert a copy of `subtree` as a new child of the data
    /// node matched by pattern node `at`.
    Insert {
        /// Pattern node selecting the insertion parent.
        at: PatternNodeId,
        /// The tree to insert.
        subtree: DataTree,
    },
    /// `d(n)`: delete the data node matched by pattern node `at`, together
    /// with its descendants.
    Delete {
        /// Pattern node selecting the node to delete.
        at: PatternNodeId,
    },
}

/// An (elementary) update operation `τ = (Q, v)` (Definition 14).
#[derive(Clone, Debug)]
pub struct UpdateOperation {
    /// The defining query.
    pub query: PatternQuery,
    /// The insertion or deletion to perform at the matched positions.
    pub action: UpdateAction,
}

/// A probabilistic update operation `(τ, c)` (Appendix A).
#[derive(Clone, Debug)]
pub struct ProbabilisticUpdate {
    /// The underlying update operation.
    pub operation: UpdateOperation,
    /// Confidence in the operation, in `(0, 1]`. A confidence of exactly 1
    /// does not introduce a new event variable.
    pub confidence: f64,
}

impl UpdateOperation {
    /// Builds an insertion operation.
    pub fn insert(query: PatternQuery, at: PatternNodeId, subtree: DataTree) -> Self {
        UpdateOperation {
            query,
            action: UpdateAction::Insert { at, subtree },
        }
    }

    /// Builds a deletion operation.
    pub fn delete(query: PatternQuery, at: PatternNodeId) -> Self {
        UpdateOperation {
            query,
            action: UpdateAction::Delete { at },
        }
    }

    /// Applies the operation to a plain data tree (Definition 15). Worlds
    /// not matched by the query are returned unchanged.
    pub fn apply_to_data_tree(&self, tree: &DataTree) -> DataTree {
        let matches = self.query.matches(tree);
        if matches.is_empty() {
            return tree.clone();
        }
        let mut out = tree.clone();
        match &self.action {
            UpdateAction::Insert { at, subtree } => {
                // Possibly inserting multiple times at the same place, as
                // Definition 15 specifies.
                for m in &matches {
                    out.graft(m.node(*at), subtree);
                }
            }
            UpdateAction::Delete { at } => {
                let mut targets: Vec<NodeId> = matches.iter().map(|m| m.node(*at)).collect();
                targets.sort();
                targets.dedup();
                for target in targets {
                    assert!(
                        target != out.root(),
                        "deleting the root of a data tree is not supported"
                    );
                    out.detach(target);
                }
            }
        }
        out.compact().0
    }

    /// Whether the query selects `tree` (has at least one match).
    pub fn selects(&self, tree: &DataTree) -> bool {
        !self.query.matches(tree).is_empty()
    }
}

impl ProbabilisticUpdate {
    /// Builds a probabilistic update.
    ///
    /// # Panics
    /// Panics if `confidence` is not in `(0, 1]` (the paper's convention:
    /// zero-confidence updates are simply not performed).
    pub fn new(operation: UpdateOperation, confidence: f64) -> Self {
        assert!(
            confidence > 0.0 && confidence <= 1.0,
            "update confidence must lie in (0, 1], got {confidence}"
        );
        ProbabilisticUpdate {
            operation,
            confidence,
        }
    }

    /// Applies the probabilistic update to a possible-world set
    /// (Definition 16).
    pub fn apply_to_pw_set(&self, pw: &PossibleWorldSet) -> PossibleWorldSet {
        let mut out = PossibleWorldSet::new();
        for (tree, p) in pw.iter() {
            if !self.operation.selects(tree) {
                out.push(tree.clone(), *p);
                continue;
            }
            out.push(self.operation.apply_to_data_tree(tree), p * self.confidence);
            if self.confidence < 1.0 {
                out.push(tree.clone(), p * (1.0 - self.confidence));
            }
        }
        out
    }

    /// Applies the probabilistic update to a prob-tree (the Appendix A
    /// algorithm, generalized to queries with several matches). Returns the
    /// updated prob-tree and the fresh event variable introduced (if the
    /// confidence is below 1).
    pub fn apply_to_probtree(&self, tree: &ProbTree) -> (ProbTree, Option<EventId>) {
        let matches = self.operation.query.matches(tree.tree());
        if matches.is_empty() {
            return (tree.clone(), None);
        }
        let mut out = tree.clone();
        let new_event = if self.confidence < 1.0 {
            Some(out.events_mut().fresh(self.confidence))
        } else {
            None
        };
        match &self.operation.action {
            UpdateAction::Insert { at, subtree } => {
                apply_insertion(&mut out, tree, &matches, *at, subtree, new_event);
            }
            UpdateAction::Delete { at } => {
                apply_deletion(&mut out, tree, &matches, *at, new_event);
            }
        }
        (out.compact().0, new_event)
    }
}

/// The condition `cond` of Appendix A for one match: the union of the
/// conditions of the nodes of the induced answer sub-datatree.
fn match_condition(tree: &ProbTree, m: &PatternMatch) -> Condition {
    let sub = m.induced_subtree(tree.tree());
    let mut cond = Condition::always();
    for node in sub.nodes() {
        cond = cond.and(&tree.condition(node));
    }
    cond
}

fn apply_insertion(
    out: &mut ProbTree,
    original: &ProbTree,
    matches: &[PatternMatch],
    at: PatternNodeId,
    subtree: &DataTree,
    new_event: Option<EventId>,
) {
    for m in matches {
        let target = m.node(at);
        let cond = match_condition(original, m);
        let gamma_target = original.condition(target);
        let cond_ancestors = original.ancestor_condition(target);
        // {w} ∪ (cond − (γ(µ(n)) ∪ cond_ancestors))
        let mut root_cond = cond.minus(&gamma_target.and(&cond_ancestors));
        if let Some(w) = new_event {
            root_cond = root_cond.and_literal(Literal::pos(w));
        }
        out.graft_data_tree(target, subtree, root_cond);
    }
}

fn apply_deletion(
    out: &mut ProbTree,
    original: &ProbTree,
    matches: &[PatternMatch],
    at: PatternNodeId,
    new_event: Option<EventId>,
) {
    // Group the per-match deletion conditions by target node.
    let mut by_target: HashMap<NodeId, Vec<Condition>> = HashMap::new();
    for m in matches {
        let target = m.node(at);
        assert!(
            target != original.tree().root(),
            "deleting the root of a prob-tree is not supported"
        );
        let cond = match_condition(original, m);
        let gamma_target = original.condition(target);
        let cond_ancestors = original.ancestor_condition(target);
        let mut del_cond = cond.minus(&gamma_target.and(&cond_ancestors));
        if let Some(w) = new_event {
            del_cond = del_cond.and_literal(Literal::pos(w));
        }
        by_target.entry(target).or_default().push(del_cond);
    }

    for (target, del_conds) in by_target {
        let gamma_target = original.condition(target);
        // The node survives exactly when *none* of the deletion conditions
        // hold: ⋀_j ¬d_j. Expand this into a disjunction of conjunctions by
        // taking, for each d_j = a_1 ∧ … ∧ a_p, the mutually exclusive
        // chain ¬a_1 | a_1¬a_2 | … | a_1…a_{p−1}¬a_p, and distributing the
        // conjunction over the chains. A d_j with no literals means the
        // deletion applies unconditionally: the node never survives.
        let mut survivor_disjuncts: Vec<Condition> = vec![Condition::always()];
        for d in &del_conds {
            if d.is_empty() {
                survivor_disjuncts.clear();
                break;
            }
            let chain = negation_chain(d);
            let mut next = Vec::with_capacity(survivor_disjuncts.len() * chain.len());
            for base in &survivor_disjuncts {
                for link in &chain {
                    let combined = base.and(link);
                    if combined.is_consistent() {
                        next.push(combined);
                    }
                }
            }
            survivor_disjuncts = next;
        }

        // Replace the target with one copy per surviving disjunct.
        let parent = original
            .tree()
            .parent(target)
            .expect("non-root node has a parent");
        for disjunct in &survivor_disjuncts {
            out.graft_probtree_subtree(parent, original, target, gamma_target.and(disjunct));
        }
        out.detach(target);
    }
}

/// The mutually exclusive expansion of `¬(a_1 ∧ … ∧ a_p)` used by
/// Appendix A: `{¬a_1}, {a_1, ¬a_2}, …, {a_1, …, a_{p−1}, ¬a_p}`.
fn negation_chain(condition: &Condition) -> Vec<Condition> {
    let literals = condition.literals();
    let mut chain = Vec::with_capacity(literals.len());
    for (i, &lit) in literals.iter().enumerate() {
        let mut parts: Vec<Literal> = literals[..i].to_vec();
        parts.push(lit.negated());
        chain.push(Condition::from_literals(parts));
    }
    chain
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probtree::figure1_example;
    use crate::semantics::possible_worlds;
    use pxml_events::prob_eq;
    use pxml_tree::builder::TreeSpec;

    /// Insertion: add an E child under every C node, with confidence 0.9.
    fn insert_e_under_c(confidence: f64) -> ProbabilisticUpdate {
        let q = PatternQuery::new(Some("C"));
        let at = q.root();
        ProbabilisticUpdate::new(
            UpdateOperation::insert(q, at, DataTree::new("E")),
            confidence,
        )
    }

    /// Deletion d0 of Theorem 3: "if the root has a C-child, delete all
    /// B-children of the root".
    fn d0(confidence: f64) -> ProbabilisticUpdate {
        let mut q = PatternQuery::anchored(Some("A"));
        let b = q.add_child(q.root(), "B");
        let _c = q.add_child(q.root(), "C");
        ProbabilisticUpdate::new(UpdateOperation::delete(q, b), confidence)
    }

    #[test]
    fn data_tree_insertion_inserts_at_every_match() {
        let tree = TreeSpec::node(
            "A",
            vec![
                TreeSpec::leaf("C"),
                TreeSpec::leaf("C"),
                TreeSpec::leaf("B"),
            ],
        )
        .build();
        let update = insert_e_under_c(1.0);
        let updated = update.operation.apply_to_data_tree(&tree);
        assert_eq!(updated.len(), 6);
        assert_eq!(
            updated.iter().filter(|&n| updated.label(n) == "E").count(),
            2
        );
    }

    #[test]
    fn data_tree_deletion_removes_all_matched_subtrees() {
        let tree = TreeSpec::node(
            "A",
            vec![
                TreeSpec::node("B", vec![TreeSpec::leaf("X")]),
                TreeSpec::leaf("B"),
                TreeSpec::leaf("C"),
            ],
        )
        .build();
        let update = d0(1.0);
        let updated = update.operation.apply_to_data_tree(&tree);
        assert_eq!(updated.len(), 2, "both B subtrees are gone: {updated:?}");
    }

    #[test]
    fn unmatched_trees_are_left_alone() {
        let tree = TreeSpec::node("A", vec![TreeSpec::leaf("B")]).build();
        // d0 requires a C child; there is none, so nothing happens.
        let update = d0(1.0);
        let updated = update.operation.apply_to_data_tree(&tree);
        assert_eq!(updated.len(), 2);
        assert!(!update.operation.selects(&tree));
    }

    #[test]
    fn pw_set_update_splits_selected_worlds() {
        let t = figure1_example();
        let pw = possible_worlds(&t, 20).unwrap().normalized();
        let update = insert_e_under_c(0.9);
        let updated = update.apply_to_pw_set(&pw);
        assert!(prob_eq(updated.total_probability(), 1.0));
        // Every world contains a C node, so every world splits in two.
        assert_eq!(updated.len(), 2 * pw.len());
    }

    #[test]
    fn probtree_insertion_matches_pw_semantics() {
        let t = figure1_example();
        let update = insert_e_under_c(0.9);
        let (updated, new_event) = update.apply_to_probtree(&t);
        assert!(new_event.is_some());
        assert_eq!(updated.events().len(), 3);
        let direct = possible_worlds(&updated, 20).unwrap().normalized();
        let via_pw = update
            .apply_to_pw_set(&possible_worlds(&t, 20).unwrap())
            .normalized();
        assert!(
            direct.isomorphic(&via_pw),
            "J(τ,c)(T)K ≁ (τ,c)(JT K)\nupdated:\n{}",
            updated.to_ascii()
        );
    }

    #[test]
    fn probtree_insertion_with_full_confidence_adds_no_event() {
        let t = figure1_example();
        let update = insert_e_under_c(1.0);
        let (updated, new_event) = update.apply_to_probtree(&t);
        assert!(new_event.is_none());
        assert_eq!(updated.events().len(), 2);
        let direct = possible_worlds(&updated, 20).unwrap().normalized();
        let via_pw = update
            .apply_to_pw_set(&possible_worlds(&t, 20).unwrap())
            .normalized();
        assert!(direct.isomorphic(&via_pw));
    }

    #[test]
    fn probtree_deletion_matches_pw_semantics_on_figure1() {
        // Delete D under C whenever present, with confidence 0.6.
        let t = figure1_example();
        let mut q = PatternQuery::new(Some("C"));
        let d = q.add_child(q.root(), "D");
        let update = ProbabilisticUpdate::new(UpdateOperation::delete(q, d), 0.6);
        let (updated, _) = update.apply_to_probtree(&t);
        let direct = possible_worlds(&updated, 20).unwrap().normalized();
        let via_pw = update
            .apply_to_pw_set(&possible_worlds(&t, 20).unwrap())
            .normalized();
        assert!(
            direct.isomorphic(&via_pw),
            "deletion semantics mismatch\n{}",
            updated.to_ascii()
        );
    }

    #[test]
    fn theorem3_deletion_blowup_shape() {
        // Build the Theorem 3 prob-tree for n = 1..6 and check that the
        // deletion output size doubles with n.
        let mut previous_literals = 0usize;
        for n in 1..=6usize {
            let mut t = ProbTree::new("A");
            let root = t.tree().root();
            t.add_child(root, "B", Condition::always());
            for _ in 0..n {
                let w0 = t.events_mut().fresh(0.5);
                let w1 = t.events_mut().fresh(0.5);
                t.add_child(
                    root,
                    "C",
                    Condition::from_literals([Literal::pos(w0), Literal::pos(w1)]),
                );
            }
            let update = d0(1.0);
            let (updated, _) = update.apply_to_probtree(&t);
            // The B node is replaced by 2^n copies.
            let b_copies = updated
                .tree()
                .iter()
                .filter(|&nd| updated.tree().label(nd) == "B")
                .count();
            assert_eq!(b_copies, 1 << n, "n = {n}");
            assert!(updated.num_literals() > previous_literals);
            previous_literals = updated.num_literals();
        }
    }

    #[test]
    fn theorem3_deletion_is_semantically_correct_for_small_n() {
        for n in 1..=3usize {
            let mut t = ProbTree::new("A");
            let root = t.tree().root();
            t.add_child(root, "B", Condition::always());
            for _ in 0..n {
                let w0 = t.events_mut().fresh(0.5);
                let w1 = t.events_mut().fresh(0.5);
                t.add_child(
                    root,
                    "C",
                    Condition::from_literals([Literal::pos(w0), Literal::pos(w1)]),
                );
            }
            let update = d0(1.0);
            let (updated, _) = update.apply_to_probtree(&t);
            let direct = possible_worlds(&updated, 20).unwrap().normalized();
            let via_pw = update
                .apply_to_pw_set(&possible_worlds(&t, 20).unwrap())
                .normalized();
            assert!(direct.isomorphic(&via_pw), "n = {n}");
        }
    }

    #[test]
    fn deletion_with_confidence_below_one_keeps_survival_branch() {
        let t = figure1_example();
        let q = PatternQuery::new(Some("B"));
        let b = q.root();
        let update = ProbabilisticUpdate::new(UpdateOperation::delete(q, b), 0.5);
        let (updated, new_event) = update.apply_to_probtree(&t);
        assert!(new_event.is_some());
        let direct = possible_worlds(&updated, 20).unwrap().normalized();
        let via_pw = update
            .apply_to_pw_set(&possible_worlds(&t, 20).unwrap())
            .normalized();
        assert!(direct.isomorphic(&via_pw));
    }

    #[test]
    fn insertion_size_bound_of_proposition2() {
        // |iQ(T)| ≤ |T| + O(|Q(t)|·|T|): inserting under every C of a
        // star with k C children grows the tree by exactly k nodes (+1
        // literal each when confidence < 1).
        let mut t = ProbTree::new("A");
        let root = t.tree().root();
        for _ in 0..10 {
            t.add_child(root, "C", Condition::always());
        }
        let before = t.size();
        let update = insert_e_under_c(0.9);
        let (updated, _) = update.apply_to_probtree(&t);
        assert_eq!(updated.num_nodes(), t.num_nodes() + 10);
        assert!(updated.size() <= before + 2 * 10);
    }

    #[test]
    #[should_panic(expected = "confidence must lie in (0, 1]")]
    fn zero_confidence_updates_are_rejected() {
        let q = PatternQuery::new(Some("C"));
        let at = q.root();
        ProbabilisticUpdate::new(UpdateOperation::insert(q, at, DataTree::new("E")), 0.0);
    }
}
