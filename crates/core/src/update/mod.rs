//! Probabilistic updates (Section 2, Appendix A, Theorem 3).
//!
//! An *update operation* `τ = (Q, v)` couples a locally monotone query `Q`
//! with either an insertion `i(n, t')` (insert the tree `t'` as a child of
//! the node matched by pattern node `n`) or a deletion `d(n)` (delete the
//! node matched by `n` together with its subtree). A *probabilistic update*
//! `(τ, c)` additionally carries a confidence `c ∈ (0, 1]` — the belief the
//! system has in the operation. Each probabilistic update with `c < 1`
//! introduces one fresh event variable with probability `c`.
//!
//! Updates are defined on plain data trees (Definition 15), on
//! possible-world sets (Definition 16) and on prob-trees (the Appendix A
//! algorithms, generalized here to queries with several matches). The key
//! asymmetry studied by the paper (Proposition 2, Theorem 3): insertions
//! grow the prob-tree by `O(|Q(t)| · |T|)`, while deletions may blow it up
//! to `Ω(2^n)` because the negation of a disjunction of conjunctions must
//! be re-expressed as conjunctive node conditions.
//!
//! The prob-tree algorithms live in the [`UpdateEngine`] ([`engine`]):
//! deletion targets are processed **deepest-first against the evolving
//! tree** (so nested targets — one matched `at`-node an ancestor of
//! another — receive their own survival split inside the ancestor's
//! survivor copies), grouping and iteration are `BTreeMap`/sorted
//! everywhere (byte-identical output across runs), and negation chains
//! order shared literals first to curb the Theorem 3 blow-up. Batched
//! sequences are applied through an [`UpdateScript`] ([`script`]) with
//! per-step size/literal telemetry, and each step can run the [`simplify`](mod@simplify)
//! pass (cleaning, certain-event pruning, disjoint sibling-cover merging)
//! to shrink deletion output. The methods on [`ProbabilisticUpdate`] below
//! are thin compatibility wrappers over a default engine, cross-checked
//! against the possible-world semantics by the `pxml_integration` property
//! suite.

pub mod engine;
pub mod script;
pub mod simplify;

pub use engine::{
    DeletionForecast, StepReport, SurvivorBudgetExceeded, UpdateEngine, UpdateEngineConfig,
};
pub use script::{ScriptReport, UpdateScript};
pub use simplify::{simplify, simplify_with, simplify_with_in, SimplifyConfig, SimplifyReport};

use pxml_events::EventId;
use pxml_tree::{DataTree, NodeId};

use crate::probtree::ProbTree;
use crate::pwset::PossibleWorldSet;
use crate::query::pattern::{PatternNodeId, PatternQuery};

/// The action part of an update operation (Definition 14).
#[derive(Clone, Debug)]
pub enum UpdateAction {
    /// `i(n, t')`: insert a copy of `subtree` as a new child of the data
    /// node matched by pattern node `at`.
    Insert {
        /// Pattern node selecting the insertion parent.
        at: PatternNodeId,
        /// The tree to insert.
        subtree: DataTree,
    },
    /// `d(n)`: delete the data node matched by pattern node `at`, together
    /// with its descendants.
    Delete {
        /// Pattern node selecting the node to delete.
        at: PatternNodeId,
    },
}

/// An (elementary) update operation `τ = (Q, v)` (Definition 14).
#[derive(Clone, Debug)]
pub struct UpdateOperation {
    /// The defining query.
    pub query: PatternQuery,
    /// The insertion or deletion to perform at the matched positions.
    pub action: UpdateAction,
}

/// A probabilistic update operation `(τ, c)` (Appendix A).
#[derive(Clone, Debug)]
pub struct ProbabilisticUpdate {
    /// The underlying update operation.
    pub operation: UpdateOperation,
    /// Confidence in the operation, in `(0, 1]`. A confidence of exactly 1
    /// does not introduce a new event variable.
    pub confidence: f64,
}

impl UpdateOperation {
    /// Builds an insertion operation.
    pub fn insert(query: PatternQuery, at: PatternNodeId, subtree: DataTree) -> Self {
        UpdateOperation {
            query,
            action: UpdateAction::Insert { at, subtree },
        }
    }

    /// Builds a deletion operation.
    pub fn delete(query: PatternQuery, at: PatternNodeId) -> Self {
        UpdateOperation {
            query,
            action: UpdateAction::Delete { at },
        }
    }

    /// Applies the operation to a plain data tree (Definition 15). Worlds
    /// not matched by the query are returned unchanged.
    pub fn apply_to_data_tree(&self, tree: &DataTree) -> DataTree {
        let matches = self.query.matches(tree);
        if matches.is_empty() {
            return tree.clone();
        }
        let mut out = tree.clone();
        match &self.action {
            UpdateAction::Insert { at, subtree } => {
                // Possibly inserting multiple times at the same place, as
                // Definition 15 specifies.
                for m in &matches {
                    out.graft(m.node(*at), subtree);
                }
            }
            UpdateAction::Delete { at } => {
                let mut targets: Vec<NodeId> = matches.iter().map(|m| m.node(*at)).collect();
                targets.sort();
                targets.dedup();
                for target in targets {
                    assert!(
                        target != out.root(),
                        "deleting the root of a data tree is not supported"
                    );
                    // A target nested inside another target's subtree is
                    // already gone once the ancestor is detached; detaching
                    // it again would splice it out of the (detached)
                    // ancestor's child list for nothing.
                    if out.is_attached(target) {
                        out.detach(target);
                    }
                }
            }
        }
        out.compact().0
    }

    /// Whether the query selects `tree` (has at least one match).
    pub fn selects(&self, tree: &DataTree) -> bool {
        !self.query.matches(tree).is_empty()
    }
}

impl ProbabilisticUpdate {
    /// Builds a probabilistic update.
    ///
    /// # Panics
    /// Panics if `confidence` is not in `(0, 1]` (the paper's convention:
    /// zero-confidence updates are simply not performed).
    pub fn new(operation: UpdateOperation, confidence: f64) -> Self {
        assert!(
            confidence > 0.0 && confidence <= 1.0,
            "update confidence must lie in (0, 1], got {confidence}"
        );
        ProbabilisticUpdate {
            operation,
            confidence,
        }
    }

    /// Applies the probabilistic update to a possible-world set
    /// (Definition 16).
    pub fn apply_to_pw_set(&self, pw: &PossibleWorldSet) -> PossibleWorldSet {
        let mut out = PossibleWorldSet::new();
        for (tree, p) in pw.iter() {
            if !self.operation.selects(tree) {
                out.push(tree.clone(), *p);
                continue;
            }
            out.push(self.operation.apply_to_data_tree(tree), p * self.confidence);
            if self.confidence < 1.0 {
                out.push(tree.clone(), p * (1.0 - self.confidence));
            }
        }
        out
    }

    /// Applies the probabilistic update to a prob-tree (the Appendix A
    /// algorithm, generalized to queries with several matches). Returns the
    /// updated prob-tree and the fresh event variable introduced (if the
    /// confidence is below 1).
    ///
    /// Compatibility wrapper over a default [`UpdateEngine`] (deepest-first
    /// nested-target handling, deterministic output, simplification on).
    /// Note that the default simplification includes
    /// [`prune_certain`](crate::clean::prune_certain): when the input
    /// carries `π(w) = 1` events, zero-probability branches anywhere in
    /// the tree are pruned — the result agrees with
    /// [`apply_to_pw_set`](Self::apply_to_pw_set) up to normalization but
    /// is not necessarily *structurally* equivalent to what the naive
    /// algorithm would produce. Use
    /// [`UpdateEngine::with_config`] to opt out.
    pub fn apply_to_probtree(&self, tree: &ProbTree) -> (ProbTree, Option<EventId>) {
        let (updated, report) = UpdateEngine::new().apply(tree, self);
        (updated, report.new_event)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probtree::figure1_example;
    use crate::semantics::possible_worlds;
    use pxml_events::{prob_eq, Condition, Literal};
    use pxml_tree::builder::TreeSpec;

    /// Insertion: add an E child under every C node, with confidence 0.9.
    fn insert_e_under_c(confidence: f64) -> ProbabilisticUpdate {
        let q = PatternQuery::new(Some("C"));
        let at = q.root();
        ProbabilisticUpdate::new(
            UpdateOperation::insert(q, at, DataTree::new("E")),
            confidence,
        )
    }

    /// Deletion d0 of Theorem 3: "if the root has a C-child, delete all
    /// B-children of the root".
    fn d0(confidence: f64) -> ProbabilisticUpdate {
        let mut q = PatternQuery::anchored(Some("A"));
        let b = q.add_child(q.root(), "B");
        let _c = q.add_child(q.root(), "C");
        ProbabilisticUpdate::new(UpdateOperation::delete(q, b), confidence)
    }

    #[test]
    fn data_tree_insertion_inserts_at_every_match() {
        let tree = TreeSpec::node(
            "A",
            vec![
                TreeSpec::leaf("C"),
                TreeSpec::leaf("C"),
                TreeSpec::leaf("B"),
            ],
        )
        .build();
        let update = insert_e_under_c(1.0);
        let updated = update.operation.apply_to_data_tree(&tree);
        assert_eq!(updated.len(), 6);
        assert_eq!(
            updated.iter().filter(|&n| updated.label(n) == "E").count(),
            2
        );
    }

    #[test]
    fn data_tree_deletion_removes_all_matched_subtrees() {
        let tree = TreeSpec::node(
            "A",
            vec![
                TreeSpec::node("B", vec![TreeSpec::leaf("X")]),
                TreeSpec::leaf("B"),
                TreeSpec::leaf("C"),
            ],
        )
        .build();
        let update = d0(1.0);
        let updated = update.operation.apply_to_data_tree(&tree);
        assert_eq!(updated.len(), 2, "both B subtrees are gone: {updated:?}");
    }

    /// B-under-B: a deletion whose targets nest must delete the outer
    /// subtree once, without trying to detach the inner target from the
    /// already-detached outer one.
    #[test]
    fn data_tree_deletion_with_nested_targets() {
        // A → B → B → X, plus a sibling C so the pattern below matches both
        // B nodes. Delete every B.
        let tree = TreeSpec::node(
            "A",
            vec![
                TreeSpec::node("B", vec![TreeSpec::node("B", vec![TreeSpec::leaf("X")])]),
                TreeSpec::leaf("C"),
            ],
        )
        .build();
        let q = PatternQuery::new(Some("B"));
        let at = q.root();
        let update = ProbabilisticUpdate::new(UpdateOperation::delete(q, at), 1.0);
        assert_eq!(update.operation.query.matches(&tree).len(), 2);
        let updated = update.operation.apply_to_data_tree(&tree);
        assert_eq!(updated.len(), 2, "only A and C remain: {updated:?}");
        assert!(updated.iter().all(|n| updated.label(n) != "B"));
    }

    #[test]
    fn unmatched_trees_are_left_alone() {
        let tree = TreeSpec::node("A", vec![TreeSpec::leaf("B")]).build();
        // d0 requires a C child; there is none, so nothing happens.
        let update = d0(1.0);
        let updated = update.operation.apply_to_data_tree(&tree);
        assert_eq!(updated.len(), 2);
        assert!(!update.operation.selects(&tree));
    }

    #[test]
    fn pw_set_update_splits_selected_worlds() {
        let t = figure1_example();
        let pw = possible_worlds(&t, 20).unwrap().normalized();
        let update = insert_e_under_c(0.9);
        let updated = update.apply_to_pw_set(&pw);
        assert!(prob_eq(updated.total_probability(), 1.0));
        // Every world contains a C node, so every world splits in two.
        assert_eq!(updated.len(), 2 * pw.len());
    }

    #[test]
    fn probtree_insertion_matches_pw_semantics() {
        let t = figure1_example();
        let update = insert_e_under_c(0.9);
        let (updated, new_event) = update.apply_to_probtree(&t);
        assert!(new_event.is_some());
        assert_eq!(updated.events().len(), 3);
        let direct = possible_worlds(&updated, 20).unwrap().normalized();
        let via_pw = update
            .apply_to_pw_set(&possible_worlds(&t, 20).unwrap())
            .normalized();
        assert!(
            direct.isomorphic(&via_pw),
            "J(τ,c)(T)K ≁ (τ,c)(JT K)\nupdated:\n{}",
            updated.to_ascii()
        );
    }

    #[test]
    fn probtree_insertion_with_full_confidence_adds_no_event() {
        let t = figure1_example();
        let update = insert_e_under_c(1.0);
        let (updated, new_event) = update.apply_to_probtree(&t);
        assert!(new_event.is_none());
        assert_eq!(updated.events().len(), 2);
        let direct = possible_worlds(&updated, 20).unwrap().normalized();
        let via_pw = update
            .apply_to_pw_set(&possible_worlds(&t, 20).unwrap())
            .normalized();
        assert!(direct.isomorphic(&via_pw));
    }

    #[test]
    fn probtree_deletion_matches_pw_semantics_on_figure1() {
        // Delete D under C whenever present, with confidence 0.6.
        let t = figure1_example();
        let mut q = PatternQuery::new(Some("C"));
        let d = q.add_child(q.root(), "D");
        let update = ProbabilisticUpdate::new(UpdateOperation::delete(q, d), 0.6);
        let (updated, _) = update.apply_to_probtree(&t);
        let direct = possible_worlds(&updated, 20).unwrap().normalized();
        let via_pw = update
            .apply_to_pw_set(&possible_worlds(&t, 20).unwrap())
            .normalized();
        assert!(
            direct.isomorphic(&via_pw),
            "deletion semantics mismatch\n{}",
            updated.to_ascii()
        );
    }

    #[test]
    fn theorem3_deletion_blowup_shape() {
        // Build the Theorem 3 prob-tree for n = 1..6 and check that the
        // deletion output size doubles with n.
        let mut previous_literals = 0usize;
        for n in 1..=6usize {
            let mut t = ProbTree::new("A");
            let root = t.tree().root();
            t.add_child(root, "B", Condition::always());
            for _ in 0..n {
                let w0 = t.events_mut().fresh(0.5);
                let w1 = t.events_mut().fresh(0.5);
                t.add_child(
                    root,
                    "C",
                    Condition::from_literals([Literal::pos(w0), Literal::pos(w1)]),
                );
            }
            let update = d0(1.0);
            let (updated, _) = update.apply_to_probtree(&t);
            // The B node is replaced by 2^n copies.
            let b_copies = updated
                .tree()
                .iter()
                .filter(|&nd| updated.tree().label(nd) == "B")
                .count();
            assert_eq!(b_copies, 1 << n, "n = {n}");
            assert!(updated.num_literals() > previous_literals);
            previous_literals = updated.num_literals();
        }
    }

    #[test]
    fn theorem3_deletion_is_semantically_correct_for_small_n() {
        for n in 1..=3usize {
            let mut t = ProbTree::new("A");
            let root = t.tree().root();
            t.add_child(root, "B", Condition::always());
            for _ in 0..n {
                let w0 = t.events_mut().fresh(0.5);
                let w1 = t.events_mut().fresh(0.5);
                t.add_child(
                    root,
                    "C",
                    Condition::from_literals([Literal::pos(w0), Literal::pos(w1)]),
                );
            }
            let update = d0(1.0);
            let (updated, _) = update.apply_to_probtree(&t);
            let direct = possible_worlds(&updated, 20).unwrap().normalized();
            let via_pw = update
                .apply_to_pw_set(&possible_worlds(&t, 20).unwrap())
                .normalized();
            assert!(direct.isomorphic(&via_pw), "n = {n}");
        }
    }

    #[test]
    fn deletion_with_confidence_below_one_keeps_survival_branch() {
        let t = figure1_example();
        let q = PatternQuery::new(Some("B"));
        let b = q.root();
        let update = ProbabilisticUpdate::new(UpdateOperation::delete(q, b), 0.5);
        let (updated, new_event) = update.apply_to_probtree(&t);
        assert!(new_event.is_some());
        let direct = possible_worlds(&updated, 20).unwrap().normalized();
        let via_pw = update
            .apply_to_pw_set(&possible_worlds(&t, 20).unwrap())
            .normalized();
        assert!(direct.isomorphic(&via_pw));
    }

    #[test]
    fn insertion_size_bound_of_proposition2() {
        // |iQ(T)| ≤ |T| + O(|Q(t)|·|T|): inserting under every C of a
        // star with k C children grows the tree by exactly k nodes (+1
        // literal each when confidence < 1).
        let mut t = ProbTree::new("A");
        let root = t.tree().root();
        for _ in 0..10 {
            t.add_child(root, "C", Condition::always());
        }
        let before = t.size();
        let update = insert_e_under_c(0.9);
        let (updated, _) = update.apply_to_probtree(&t);
        assert_eq!(updated.num_nodes(), t.num_nodes() + 10);
        assert!(updated.size() <= before + 2 * 10);
    }

    #[test]
    #[should_panic(expected = "confidence must lie in (0, 1]")]
    fn zero_confidence_updates_are_rejected() {
        let q = PatternQuery::new(Some("C"));
        let at = q.root();
        ProbabilisticUpdate::new(UpdateOperation::insert(q, at, DataTree::new("E")), 0.0);
    }
}
