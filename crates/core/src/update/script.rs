//! Batched update sequences.
//!
//! An [`UpdateScript`] is an ordered sequence of [`ProbabilisticUpdate`]s
//! applied atomically by [`UpdateEngine::apply_script`]: each step runs
//! against the previous step's output, introduces its own fresh event
//! variable when its confidence is below 1, and contributes one
//! [`StepReport`] to the [`ScriptReport`] — the per-step size/literal
//! telemetry that makes deletion blow-ups observable (Theorem 3 is a
//! statement about representation size, not time).
//!
//! [`UpdateEngine::apply_script`]: super::engine::UpdateEngine::apply_script

use crate::pwset::PossibleWorldSet;

use super::engine::StepReport;
use super::ProbabilisticUpdate;

/// An ordered batch of probabilistic updates.
#[derive(Clone, Debug, Default)]
pub struct UpdateScript {
    steps: Vec<ProbabilisticUpdate>,
}

impl UpdateScript {
    /// The empty script.
    pub fn new() -> Self {
        UpdateScript::default()
    }

    /// Builds a script from a sequence of updates.
    pub fn from_steps<I: IntoIterator<Item = ProbabilisticUpdate>>(steps: I) -> Self {
        UpdateScript {
            steps: steps.into_iter().collect(),
        }
    }

    /// Appends an update to the script.
    pub fn push(&mut self, update: ProbabilisticUpdate) -> &mut Self {
        self.steps.push(update);
        self
    }

    /// The updates, in application order.
    pub fn steps(&self) -> &[ProbabilisticUpdate] {
        &self.steps
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// `true` for the empty script.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The Definition 16 semantics of the whole script: each step applied
    /// to the possible-world set produced by the previous one. This is the
    /// reference the engine's
    /// [`apply_script`](super::engine::UpdateEngine::apply_script) is
    /// cross-checked against.
    pub fn apply_to_pw_set(&self, pw: &PossibleWorldSet) -> PossibleWorldSet {
        let mut current = pw.clone();
        for step in &self.steps {
            current = step.apply_to_pw_set(&current);
        }
        current
    }
}

/// Telemetry of one [`UpdateScript`] application: one [`StepReport`] per
/// step, in order.
#[derive(Clone, Debug)]
pub struct ScriptReport {
    /// The per-step reports.
    pub steps: Vec<StepReport>,
}

impl ScriptReport {
    /// Total number of query matches across the script.
    pub fn total_matches(&self) -> usize {
        self.steps.iter().map(|s| s.matches).sum()
    }

    /// Fresh event variables introduced by the script.
    pub fn events_introduced(&self) -> usize {
        self.steps.iter().filter(|s| s.new_event.is_some()).count()
    }

    /// The largest `|T|` reached after any step — deletions can blow the
    /// intermediate representation up even when later steps shrink it.
    pub fn peak_size(&self) -> usize {
        self.steps
            .iter()
            .map(StepReport::size_after)
            .max()
            .unwrap_or(0)
    }

    /// Total size units saved by the simplification pass across all steps.
    pub fn simplification_savings(&self) -> usize {
        self.steps
            .iter()
            .map(StepReport::simplification_savings)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probtree::figure1_example;
    use crate::semantics::possible_worlds;
    use crate::update::{UpdateEngine, UpdateOperation};
    use crate::PatternQuery;
    use pxml_tree::DataTree;

    fn insert_under(label: &str, inserted: &str, confidence: f64) -> ProbabilisticUpdate {
        let q = PatternQuery::new(Some(label));
        let at = q.root();
        ProbabilisticUpdate::new(
            UpdateOperation::insert(q, at, DataTree::new(inserted)),
            confidence,
        )
    }

    fn delete(label: &str, confidence: f64) -> ProbabilisticUpdate {
        let q = PatternQuery::new(Some(label));
        let at = q.root();
        ProbabilisticUpdate::new(UpdateOperation::delete(q, at), confidence)
    }

    #[test]
    fn script_application_matches_stepwise_pw_semantics() {
        let t = figure1_example();
        let script = UpdateScript::from_steps([
            insert_under("C", "E", 0.9),
            delete("B", 0.5),
            insert_under("E", "F", 1.0),
        ]);
        let (updated, report) = UpdateEngine::new().apply_script(&t, &script);
        assert_eq!(report.steps.len(), 3);
        assert_eq!(report.events_introduced(), 2, "only c < 1 steps add events");
        assert_eq!(updated.events().len(), 4);
        let direct = possible_worlds(&updated, 20).unwrap().normalized();
        let via_pw = script
            .apply_to_pw_set(&possible_worlds(&t, 20).unwrap())
            .normalized();
        assert!(direct.isomorphic(&via_pw), "\n{}", updated.to_ascii());
    }

    #[test]
    fn empty_script_is_identity() {
        let t = figure1_example();
        let script = UpdateScript::new();
        assert!(script.is_empty());
        let (updated, report) = UpdateEngine::new().apply_script(&t, &script);
        assert_eq!(report.steps.len(), 0);
        assert_eq!(report.peak_size(), 0);
        assert_eq!(updated.num_nodes(), t.num_nodes());
    }

    #[test]
    fn report_tracks_sizes_per_step() {
        let t = figure1_example();
        let mut script = UpdateScript::new();
        script
            .push(insert_under("C", "E", 0.9))
            .push(insert_under("C", "E", 0.8));
        let (updated, report) = UpdateEngine::new().apply_script(&t, &script);
        assert_eq!(report.total_matches(), 2);
        assert_eq!(report.peak_size(), updated.size());
        for pair in report.steps.windows(2) {
            assert_eq!(pair[0].nodes_after, pair[1].nodes_before);
        }
    }
}
