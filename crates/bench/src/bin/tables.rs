//! The experiment table generator.
//!
//! Prints, for every experiment E1–E11 of `EXPERIMENTS.md`, the table of
//! measured sizes/counts/times that reproduces the *shape* of the
//! corresponding result of the paper. Sizes matter as much as times here:
//! Theorems 3–5 are statements about representation size.
//!
//! Usage:
//! ```text
//! cargo run --release -p pxml_bench --bin tables            # all experiments
//! cargo run --release -p pxml_bench --bin tables -- --exp e5
//! ```

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use pxml_bench::{rng, scaling_probtree, scaling_query, SEED};
use pxml_core::equivalence::{
    structural_equivalent_exhaustive, structural_equivalent_randomized, EquivalenceConfig,
};
use pxml_core::probtree::figure1_example;
use pxml_core::query::prob::query_pw_set;
use pxml_core::query::Query;
use pxml_core::semantics::{possible_worlds_normalized, pw_set_to_probtree};
use pxml_core::threshold::{restrict_to_threshold, restriction_as_probtree};
use pxml_core::update::{ProbabilisticUpdate, UpdateEngine, UpdateEngineConfig, UpdateOperation};
use pxml_core::variants::FormulaProbTree;
use pxml_core::PatternQuery;
use pxml_core::QueryEngine;
use pxml_dtd::reduction::reduce_sat;
use pxml_dtd::restriction::{
    restriction_as_probtree as dtd_restriction_as_probtree, theorem5_restriction_family,
};
use pxml_dtd::satisfiability::{satisfiable_backtracking, satisfiable_bruteforce};
use pxml_events::{Condition, Literal};
use pxml_poly::zippel::ZippelConfig;
use pxml_sat::gen3sat::{random_3sat, ThreeSatConfig};
use pxml_sat::solve_dpll;
use pxml_sat::{Formula, Var};
use pxml_tree::stats::rooted_tree_counts_cumulative;
use pxml_tree::DataTree;
use pxml_workloads::paper::{
    d0_deletion, d0_insertion, theorem3_tree, theorem4_tree, theorem4_world_probability,
};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let selected = args
        .iter()
        .position(|a| a == "--exp")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.to_lowercase());
    let run = |id: &str| selected.as_deref().is_none_or(|s| s == id);

    println!("probxml experiment tables (seed 0x{SEED:x})");
    println!("==========================================\n");

    if run("e1") {
        e1_figure1();
    }
    if run("e2") {
        e2_conciseness();
    }
    if run("e3") {
        e3_query_scaling();
    }
    if run("e4") {
        e4_insertion_scaling();
    }
    if run("e5") {
        e5_deletion_blowup();
    }
    if run("e6") {
        e6_equivalence();
    }
    if run("e7") {
        e7_threshold();
    }
    if run("e8") {
        e8_dtd_satisfiability();
    }
    if run("e9") {
        e9_dtd_restriction();
    }
    if run("e10") {
        e10_formula_variant();
    }
    if run("e11") {
        e11_set_semantics_and_semantic_equivalence();
    }
    if run("e12") {
        e12_static_analysis();
    }
    if run("e13") {
        e13_dedup_storage();
    }
    if run("e16") {
        e16_warehouse_server();
    }
}

fn header(id: &str, title: &str) {
    println!("--- {id}: {title} ---");
}

fn ms(duration: std::time::Duration) -> f64 {
    duration.as_secs_f64() * 1e3
}

/// E1: Figure 1 / Figure 2 — the worked example.
fn e1_figure1() {
    header("E1", "Figure 1 prob-tree and its Figure 2 possible worlds");
    let tree = figure1_example();
    println!("{}", tree.to_ascii());
    let worlds = possible_worlds_normalized(&tree, 20).unwrap();
    println!("{:>10}  {:<30}", "p", "world (node labels)");
    for (world, p) in worlds.iter() {
        let labels: Vec<&str> = world.iter().map(|n| world.label(n)).collect();
        println!("{p:>10.2}  {labels:?}");
    }
    let battery = pxml_workloads::paper::theorem1_query_battery();
    let engine = QueryEngine::new();
    let q = &battery[0]; // //C/D, the paper's worked query
    let prepared = engine.prepare(&tree, q);
    let via_worlds = query_pw_set(q, &worlds);
    println!(
        "query //C/D: direct probability {:.2}, via possible worlds {:.2} (Theorem 1: {})",
        prepared.expected_matches(),
        via_worlds.total_probability(),
        prepared.theorem1_check().unwrap()
    );
    let all_pass = battery
        .iter()
        .all(|q| engine.prepare(&tree, q).theorem1_check().unwrap());
    println!(
        "Theorem 1 battery ({} Section 2 queries): {}",
        battery.len(),
        all_pass
    );
    println!();
}

/// E2: Proposition 1 — conciseness limits of any representation.
fn e2_conciseness() {
    header(
        "E2",
        "Proposition 1 — size of PW-set encodings and the counting lower bound",
    );
    println!(
        "{:>3} {:>28} | {:>8} {:>14} {:>12}",
        "n", "bit lower bound (= #trees<=n)", "#worlds", "probtree size", "build (ms)"
    );
    let cumulative = rooted_tree_counts_cumulative(16);
    for n in [2usize, 4, 6, 8, 10, 12, 14, 16] {
        // Counting side (the lower bound of Proposition 1): the number of
        // PW sets over trees of <= n nodes is at least 2^(#trees), so any
        // representation needs that many bits on average.
        let bits = cumulative[n];
        // Constructive side: encode a synthetic PW set with `2^(n/2)` worlds
        // of n nodes into a prob-tree and report its size.
        let worlds = 1usize << (n / 2);
        let mut set = Vec::new();
        for i in 0..worlds {
            // World i keeps the children whose index is a set bit of i, so
            // all 2^(n/2) worlds are pairwise non-isomorphic.
            let mut t = DataTree::new("R");
            let root = t.root();
            for j in 0..n - 1 {
                if (i >> (j % (n / 2))) & 1 == 1 {
                    t.add_child(root, format!("L{j}"));
                }
            }
            set.push((t, 1.0 / worlds as f64));
        }
        let pw = pxml_core::pwset::PossibleWorldSet::from_worlds(set).normalized();
        let start = Instant::now();
        let probtree = pw_set_to_probtree(&pw).unwrap();
        let elapsed = start.elapsed();
        println!(
            "{n:>3} {bits:>28} | {:>8} {:>14} {:>12.3}",
            pw.len(),
            probtree.size(),
            ms(elapsed)
        );
    }
    println!("(the lower bound column is doubly exponential in n; any representation, including prob-trees, needs that many bits on average)\n");
}

/// E3: Proposition 2 — query evaluation is PTIME on prob-trees.
fn e3_query_scaling() {
    header("E3", "Theorem 1 / Proposition 2 — query evaluation scaling");
    println!(
        "{:>8} {:>10} {:>10} {:>14} {:>14} {:>10} {:>14} {:>14}",
        "|T|",
        "literals",
        "answers",
        "data tree (ms)",
        "prepare (ms)",
        "overhead",
        "drain (ms)",
        "top-10 (ms)"
    );
    let query = scaling_query();
    let engine = QueryEngine::new();
    let mut r = rng();
    for nodes in [100usize, 500, 2_000, 8_000, 32_000] {
        let tree = scaling_probtree(nodes, &mut r);
        let start = Instant::now();
        let plain = query.evaluate(tree.tree());
        let plain_time = start.elapsed();
        // Prepare once (match set + interned condition unions)…
        let start = Instant::now();
        let prepared = engine.prepare(&tree, &query);
        let prepare_time = start.elapsed();
        // …then serve consumers from the shared state: the full answer
        // stream (what the legacy one-shot call materialized) and a
        // ranked top-10 (probabilities now cached).
        let start = Instant::now();
        let answers: Vec<_> = prepared.answers().collect();
        let drain_time = start.elapsed();
        let start = Instant::now();
        let top = prepared.top_k(10);
        let topk_time = start.elapsed();
        println!(
            "{:>8} {:>10} {:>10} {:>14.3} {:>14.3} {:>9.2}x {:>14.3} {:>14.3}",
            nodes,
            tree.num_literals(),
            answers.len(),
            ms(plain_time),
            ms(prepare_time),
            ms(prepare_time) / ms(plain_time).max(1e-9),
            ms(drain_time),
            ms(topk_time)
        );
        let _ = (plain, top);
    }
    println!("(prepare = match set + condition unions, paid once; drain and top-10 are served from the prepared state)\n");
}

/// E4: Proposition 2 — insertion is PTIME and output growth is linear.
fn e4_insertion_scaling() {
    header("E4", "Proposition 2 — probabilistic insertion scaling");
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>12}",
        "|T|", "size before", "size after", "growth", "time (ms)"
    );
    let mut r = rng();
    for nodes in [100usize, 500, 2_000, 8_000] {
        let tree = scaling_probtree(nodes, &mut r);
        let q = PatternQuery::new(Some("L0"));
        let at = q.root();
        let update =
            ProbabilisticUpdate::new(UpdateOperation::insert(q, at, DataTree::new("E")), 0.9);
        let before = tree.size();
        let start = Instant::now();
        let (updated, _) = update.apply_to_probtree(&tree);
        let elapsed = start.elapsed();
        println!(
            "{:>8} {:>12} {:>12} {:>12} {:>12.3}",
            nodes,
            before,
            updated.size(),
            updated.size() - before,
            ms(elapsed)
        );
    }
    println!();
}

/// E5: Theorem 3 — the deletion blow-up.
fn e5_deletion_blowup() {
    header(
        "E5",
        "Theorem 3 — deletion d0 blow-up vs insertion on the same family",
    );
    println!(
        "{:>3} {:>10} | {:>12} {:>12} {:>12} | {:>12} {:>12}",
        "n", "input size", "del. size", "B copies", "del. (ms)", "ins. size", "ins. (ms)"
    );
    // Raw engine: this table is the Appendix A deletion curve; the
    // simplification pass is measured separately below.
    let appendix_a = UpdateEngine::with_config(UpdateEngineConfig::raw());
    for n in [1usize, 2, 4, 6, 8, 10, 12, 14] {
        let tree = theorem3_tree(n);
        let start = Instant::now();
        let (deleted, _) = appendix_a.apply(&tree, &d0_deletion(1.0));
        let del_time = start.elapsed();
        // Survivor copies are shared handles; count logical occurrences.
        let expanded = deleted.expanded();
        let b_copies = expanded
            .tree()
            .iter()
            .filter(|&nd| expanded.tree().label(nd) == "B")
            .count();
        let (insertion, _) = d0_insertion(1.0);
        let start = Instant::now();
        let (inserted, _) = insertion.apply_to_probtree(&tree);
        let ins_time = start.elapsed();
        println!(
            "{n:>3} {:>10} | {:>12} {:>12} {:>12.3} | {:>12} {:>12.3}",
            tree.size(),
            deleted.size(),
            b_copies,
            ms(del_time),
            inserted.size(),
            ms(ins_time)
        );
    }
    println!("(deletion output doubles with every n — Ω(2^n) — while insertion stays linear)\n");

    // Blow-up control on the confidence-c variant: the naive Appendix A
    // expansion yields 3^n survivor copies, the engine's shared-first
    // chains 1 + 2^n, and the simplification pass recovers the same cover
    // from the naive output.
    println!("d0 at confidence 0.8 — naive expansion vs engine blow-up control:");
    println!(
        "{:>3} | {:>12} {:>12} | {:>14} {:>14} | {:>14}",
        "n", "naive size", "naive copies", "engine size", "engine copies", "simpl. savings"
    );
    let raw = UpdateEngine::with_config(UpdateEngineConfig::raw());
    let simplify_naive = UpdateEngine::with_config(UpdateEngineConfig {
        simplify: true,
        shared_first_chains: false,
        ..UpdateEngineConfig::default()
    });
    let engine = UpdateEngine::new();
    for n in [1usize, 2, 3, 4, 5, 6] {
        let tree = theorem3_tree(n);
        let update = d0_deletion(0.8);
        let (naive, _) = raw.apply(&tree, &update);
        let (controlled, _) = engine.apply(&tree, &update);
        let (_, simplified_report) = simplify_naive.apply(&tree, &update);
        let copies = |t: &pxml_core::ProbTree| {
            let t = t.expanded();
            t.tree()
                .iter()
                .filter(|&nd| t.tree().label(nd) == "B")
                .count()
        };
        println!(
            "{n:>3} | {:>12} {:>12} | {:>14} {:>14} | {:>14}",
            naive.size(),
            copies(&naive),
            controlled.size(),
            copies(&controlled),
            simplified_report.simplification_savings()
        );
    }
    println!("(naive: 3^n survivor copies; engine: 1 + 2^n — the simplification pass finds the same cover starting from the naive output)\n");
}

/// E6: Theorem 2 — randomized vs exhaustive structural equivalence.
fn e6_equivalence() {
    header(
        "E6",
        "Theorem 2 — randomized (Fig. 3) vs exhaustive structural equivalence",
    );

    fn document(sections: usize, rewrite: bool) -> pxml_core::probtree::ProbTree {
        let mut t = pxml_core::probtree::ProbTree::new("doc");
        let mut events = Vec::new();
        for i in 0..sections {
            let a = t.events_mut().insert(format!("a{i}"), 0.9);
            let f = t.events_mut().insert(format!("f{i}"), 0.2);
            events.push((a, f));
        }
        let root = t.tree().root();
        let order: Vec<usize> = if rewrite {
            (0..sections).rev().collect()
        } else {
            (0..sections).collect()
        };
        for i in order {
            let (a, f) = events[i];
            let cond = Condition::from_literals([Literal::pos(a), Literal::neg(f)]);
            let s = t.add_child(root, "section", cond.clone());
            t.add_child(
                s,
                format!("para{i}"),
                if rewrite { cond } else { Condition::always() },
            );
        }
        t
    }

    println!(
        "{:>5} {:>8} | {:>16} {:>16} | {:>10}",
        "|W|", "nodes", "randomized (ms)", "exhaustive (ms)", "agree"
    );
    let mut r = rng();
    for sections in [2usize, 4, 6, 8, 10, 32, 128] {
        let a = document(sections, false);
        let b = document(sections, true);
        let start = Instant::now();
        let randomized =
            structural_equivalent_randomized(&a, &b, &EquivalenceConfig::default(), &mut r);
        let rand_time = start.elapsed();
        let (exhaustive, exh_text) = if sections * 2 <= 20 {
            let start = Instant::now();
            let result = structural_equivalent_exhaustive(&a, &b, 24).unwrap();
            (Some(result), format!("{:>16.3}", ms(start.elapsed())))
        } else {
            (None, format!("{:>16}", "skipped (2^|W|)"))
        };
        println!(
            "{:>5} {:>8} | {:>16.3} {} | {:>10}",
            sections * 2,
            a.num_nodes() + b.num_nodes(),
            ms(rand_time),
            exh_text,
            match exhaustive {
                Some(e) => (e == randomized).to_string(),
                None => "-".to_string(),
            }
        );
    }

    // Empirical one-sided error of the underlying Schwartz–Zippel
    // count-equivalence test with a deliberately tiny sample set S, on the
    // pair ψ = x1∧x2 vs ψ' = x1 (not count-equivalent; the difference
    // polynomial x1·(x2 − 1) vanishes on 3 of the 4 points of {0,1}²).
    {
        use pxml_events::{Condition as Cond, Dnf, EventId, Literal as Lit};
        use pxml_poly::zippel::count_equivalent_randomized;
        let x1 = EventId::from_index(0);
        let x2 = EventId::from_index(1);
        let lhs = Dnf::of(Cond::from_literals([Lit::pos(x1), Lit::pos(x2)]));
        let rhs = Dnf::of(Cond::of(Lit::pos(x1)));
        println!("one-sided error of the count-equivalence test on x1∧x2 vs x1 (1 trial):");
        for sample_set in [2u64, 4, 16, 256, 1 << 16] {
            let config = ZippelConfig {
                trials: 1,
                sample_set_size: sample_set,
            };
            let trials = 20_000;
            let mut false_accepts = 0;
            for _ in 0..trials {
                if count_equivalent_randomized(&lhs, &rhs, &config, &mut r) {
                    false_accepts += 1;
                }
            }
            println!(
                "  |S| = {sample_set:>6}: {false_accepts:>6}/{trials} false accepts (Schwartz–Zippel bound: ≤ {:.4})",
                (2.0f64 / sample_set as f64).min(1.0)
            );
        }
        // And at the full-algorithm level, on an inequivalent document pair.
        let a = document(4, false);
        let mut b = document(4, true);
        let f0 = b.events().by_name("f0").unwrap();
        let a0 = b.events().by_name("a0").unwrap();
        let section = b
            .tree()
            .iter()
            .find(|&n| b.tree().label(n) == "section")
            .unwrap();
        b.set_condition(
            section,
            Condition::from_literals([Literal::pos(a0), Literal::pos(f0)]),
        );
        for sample_set in [2u64, 1 << 16] {
            let config = EquivalenceConfig {
                zippel: ZippelConfig {
                    trials: 1,
                    sample_set_size: sample_set,
                },
            };
            let trials = 2_000;
            let mut false_accepts = 0;
            for _ in 0..trials {
                if structural_equivalent_randomized(&a, &b, &config, &mut r) {
                    false_accepts += 1;
                }
            }
            println!(
                "  Figure 3 on an inequivalent pair, |S| = {sample_set:>6}: {false_accepts}/{trials} false accepts (bound ≤ 1/2)"
            );
        }
    }
    println!();
}

/// E7: Theorem 4 — threshold restriction blow-up.
fn e7_threshold() {
    header(
        "E7",
        "Theorem 4 — threshold restriction on the 2n-children family",
    );
    println!(
        "{:>3} {:>6} {:>12} | {:>10} {:>14} {:>14} {:>12}",
        "n", "|W|", "input size", "worlds>=p", "restr. mass", "probtree size", "time (ms)"
    );
    for n in [1usize, 2, 3, 4, 5] {
        let tree = theorem4_tree(n);
        let threshold = theorem4_world_probability(n);
        let start = Instant::now();
        let restriction = restrict_to_threshold(&tree, threshold, 24).unwrap();
        let rep = restriction_as_probtree(&tree, threshold, 24)
            .unwrap()
            .unwrap();
        let elapsed = start.elapsed();
        println!(
            "{n:>3} {:>6} {:>12} | {:>10} {:>14.4} {:>14} {:>12.3}",
            2 * n,
            tree.size(),
            restriction.worlds.len(),
            restriction.retained_mass,
            rep.size(),
            ms(elapsed)
        );
    }
    println!("(the input grows linearly in n, the restriction representation exponentially)\n");
}

/// E8: Theorem 5 (1)–(2) — DTD satisfiability via the SAT reduction.
fn e8_dtd_satisfiability() {
    header(
        "E8",
        "Theorem 5 — DTD satisfiability on reduced random 3-SAT (ratio 4.26)",
    );
    println!(
        "{:>5} {:>8} {:>10} | {:>10} {:>12} {:>16} {:>16} {:>8}",
        "vars",
        "clauses",
        "tree size",
        "dpll (ms)",
        "backtr (ms)",
        "backtr decisions",
        "brute (ms)",
        "agree"
    );
    let mut r = StdRng::seed_from_u64(SEED ^ 0xE8);
    for num_vars in [6usize, 8, 10, 12, 14, 16, 18] {
        let cnf = random_3sat(ThreeSatConfig::at_ratio(num_vars, 4.26), &mut r);
        let instance = reduce_sat(&cnf);
        let start = Instant::now();
        let dpll = solve_dpll(&cnf).is_some();
        let dpll_time = start.elapsed();
        let start = Instant::now();
        let (witness, stats) =
            satisfiable_backtracking(&instance.tree, &instance.satisfiability_dtd);
        let backtrack_time = start.elapsed();
        let (brute_text, brute_result) = if num_vars <= 16 {
            let start = Instant::now();
            let result = satisfiable_bruteforce(&instance.tree, &instance.satisfiability_dtd, 24)
                .unwrap()
                .is_some();
            (format!("{:>16.3}", ms(start.elapsed())), Some(result))
        } else {
            (format!("{:>16}", "skipped"), None)
        };
        let agree = witness.is_some() == dpll && brute_result.is_none_or(|b| b == dpll);
        println!(
            "{num_vars:>5} {:>8} {:>10} | {:>10.3} {:>12.3} {:>16} {} {:>8}",
            cnf.len(),
            instance.tree.size(),
            ms(dpll_time),
            ms(backtrack_time),
            stats.decisions,
            brute_text,
            agree
        );
    }
    println!();
}

/// E9: Theorem 5 (3) — DTD restriction blow-up.
fn e9_dtd_restriction() {
    header(
        "E9",
        "Theorem 5 (3) — DTD restriction on the ≤ n-of-2n family",
    );
    println!(
        "{:>3} {:>6} {:>12} | {:>12} {:>14} {:>12}",
        "n", "|W|", "input size", "valid worlds", "probtree size", "time (ms)"
    );
    for n in [1usize, 2, 3, 4, 5] {
        let (tree, dtd) = theorem5_restriction_family(n);
        let start = Instant::now();
        let restriction = pxml_dtd::restriction::restrict_to_dtd(&tree, &dtd, 24).unwrap();
        let rep = dtd_restriction_as_probtree(&tree, &dtd, 24)
            .unwrap()
            .unwrap();
        let elapsed = start.elapsed();
        println!(
            "{n:>3} {:>6} {:>12} | {:>12} {:>14} {:>12.3}",
            2 * n,
            tree.size(),
            restriction.worlds.len(),
            rep.size(),
            ms(elapsed)
        );
    }
    println!();
}

/// E10: Section 5 — the arbitrary-formula variant trade-off.
fn e10_formula_variant() {
    header(
        "E10",
        "Section 5 — arbitrary-formula conditions: cheap deletions, expensive queries",
    );

    fn theorem3_formula_tree(n: usize) -> FormulaProbTree {
        let mut t = FormulaProbTree::new("A");
        let root = t.tree().root();
        t.add_child(root, "B", Formula::True);
        for _ in 0..n {
            let w0 = t.events_mut().fresh(0.5);
            let w1 = t.events_mut().fresh(0.5);
            t.add_child(
                root,
                "C",
                Formula::Var(Var(w0.index() as u32)).and(Formula::Var(Var(w1.index() as u32))),
            );
        }
        t
    }

    println!(
        "{:>4} | {:>14} {:>14} | {:>14} {:>14} | {:>18}",
        "n",
        "conj. del size",
        "conj. del (ms)",
        "form. del size",
        "form. del (ms)",
        "bool query SAT (ms)"
    );
    for n in [2usize, 4, 6, 8, 10, 12, 64, 256] {
        // Conjunctive (base model) deletion — exponential; skip when too big.
        let (conj_text_size, conj_text_time) = if n <= 14 {
            let tree = theorem3_tree(n);
            let start = Instant::now();
            let (deleted, _) = d0_deletion(1.0).apply_to_probtree(&tree);
            (
                format!("{:>14}", deleted.size()),
                format!("{:>14.3}", ms(start.elapsed())),
            )
        } else {
            (format!("{:>14}", "skipped"), format!("{:>14}", "-"))
        };
        // Formula-model deletion — linear.
        let mut ftree = theorem3_formula_tree(n);
        let mut q = PatternQuery::anchored(Some("A"));
        let b = q.add_child(q.root(), "B");
        let _c = q.add_child(q.root(), "C");
        let start = Instant::now();
        ftree.delete(&q, b, 1.0);
        let fdel_time = start.elapsed();
        // Boolean query on the result — needs a SAT call.
        let mut q_b = PatternQuery::anchored(Some("A"));
        q_b.add_child(q_b.root(), "B");
        let start = Instant::now();
        let possible = ftree.query_possible(&q_b);
        let query_time = start.elapsed();
        println!(
            "{n:>4} | {conj_text_size} {conj_text_time} | {:>14} {:>14.3} | {:>12.3} ({})",
            ftree.size(),
            ms(fdel_time),
            ms(query_time),
            possible
        );
    }
    println!();
}

/// E12: the static analyzer — every prediction vs the engine counter it
/// claims to predict.
fn e12_static_analysis() {
    use pxml_analysis::StaticAnalyzer;
    use pxml_core::update::UpdateScript;
    use pxml_core::worlds::{ShardExecutor, WorldEngine, WorldEngineConfig};
    use pxml_workloads::random::many_components_probtree;

    header(
        "E12",
        "Static analysis — predicted vs measured engine counters",
    );

    // (a) Theorem 3 survivor-copy forecasts, shared-first and naive.
    println!("d0 at confidence 0.8 — forecast survivor copies vs StepReport:");
    println!(
        "{:>3} | {:>14} {:>14} | {:>12} {:>12}",
        "n", "pred. shared", "meas. shared", "pred. naive", "meas. naive"
    );
    let analyzer = StaticAnalyzer::new();
    let naive_analyzer = StaticAnalyzer::new().with_update_config(UpdateEngineConfig::raw());
    let shared_engine = UpdateEngine::new();
    let naive_engine = UpdateEngine::with_config(UpdateEngineConfig::raw());
    for n in [1usize, 2, 3, 4, 5, 6] {
        let tree = theorem3_tree(n);
        let script = UpdateScript::from_steps([d0_deletion(0.8)]);
        let survivors = |report: &pxml_core::update::ScriptReport| {
            report
                .steps
                .iter()
                .map(|s| s.survivor_copies)
                .sum::<usize>()
        };
        let predicted_shared = analyzer
            .analyze_script(&tree, &script)
            .predicted_survivor_copies();
        let (_, shared_report) = shared_engine.apply_script(&tree, &script);
        let predicted_naive = naive_analyzer
            .analyze_script(&tree, &script)
            .predicted_survivor_copies();
        let (_, naive_report) = naive_engine.apply_script(&tree, &script);
        println!(
            "{n:>3} | {predicted_shared:>14} {:>14} | {predicted_naive:>12} {:>12}",
            survivors(&shared_report),
            survivors(&naive_report)
        );
    }
    println!(
        "(predicted shared = 1 + 2^n, predicted naive = 3^n; both match the measured counters)\n"
    );

    // (b) The co-occurrence census vs the factorized executor.
    println!("component census — predicted shard states vs states_enumerated:");
    println!(
        "{:>12} {:>10} | {:>16} {:>16} {:>12}",
        "components", "events", "pred. states", "meas. states", "time (ms)"
    );
    let executor = ShardExecutor::new(WorldEngineConfig::sequential());
    for (components, events_per) in [(1usize, 4usize), (4, 3), (8, 2), (16, 1), (2, 8)] {
        let tree = many_components_probtree(components, events_per);
        let analysis = analyzer.analyze_worlds(&tree);
        let engine = WorldEngine::new(&tree);
        let start = Instant::now();
        let worlds = executor.run(&engine, true, 24).unwrap();
        let elapsed = start.elapsed();
        println!(
            "{components:>12} {:>10} | {:>16} {:>16} {:>12.3}",
            components * events_per,
            analysis.predicted_states(),
            worlds.states_enumerated(),
            ms(elapsed)
        );
    }
    println!("(the census is pure arithmetic on the condition graph — no valuation is enumerated to predict the cost)\n");
}

/// E13: the hash-consed DAG store — logical vs distinct stored nodes on
/// the Theorem 3 deletion (exponential logical copies, linear storage) and
/// across a warehouse corpus (cross-document shape sharing).
fn e13_dedup_storage() {
    use pxml_workloads::warehouse::{corpus_stats, run_scenario, WarehouseConfig};

    header(
        "E13",
        "Hash-consed storage — logical vs distinct stored nodes",
    );

    println!("d0 at confidence 0.8 on the Theorem 3 family (simplify off):");
    println!(
        "{:>3} | {:>14} {:>14} {:>12} | {:>12}",
        "n", "logical nodes", "distinct nodes", "shared occ.", "dedup ratio"
    );
    let engine = UpdateEngine::with_config(UpdateEngineConfig {
        simplify: false,
        ..UpdateEngineConfig::default()
    });
    for n in [1usize, 2, 4, 6, 8, 10, 12] {
        let tree = theorem3_tree(n);
        let (out, _) = engine.apply(&tree, &d0_deletion(0.8));
        let stats = out.memory_stats();
        println!(
            "{n:>3} | {:>14} {:>14} {:>12} | {:>12.2}",
            stats.logical_nodes,
            stats.distinct_nodes,
            stats.shared_occurrences,
            stats.dedup_ratio()
        );
    }
    println!("(logical nodes grow as 1 + 2^n with the survivor copies; distinct stored nodes stay n + 2)\n");

    println!("warehouse corpus — one shared store over d independently-extracted documents:");
    println!(
        "{:>4} | {:>14} {:>14} | {:>12}",
        "docs", "logical nodes", "distinct nodes", "dedup ratio"
    );
    let config = WarehouseConfig {
        services: 4,
        extraction_rounds: 8,
        deletion_ratio: 0.1,
    };
    let warehouses: Vec<_> = (0..8u64)
        .map(|seed| run_scenario(&config, &mut StdRng::seed_from_u64(SEED ^ seed)))
        .collect();
    for docs in [1usize, 2, 4, 8] {
        let stats = corpus_stats(&warehouses[..docs]);
        println!(
            "{docs:>4} | {:>14} {:>14} | {:>12.2}",
            stats.logical_nodes,
            stats.distinct_nodes,
            stats.dedup_ratio()
        );
    }
    println!("(documents from the same pipeline share the skeleton and coincident fact shapes, so distinct grows sublinearly in the corpus size)\n");
}

/// E11: Section 5 — set semantics and semantic vs structural equivalence.
fn e11_set_semantics_and_semantic_equivalence() {
    header(
        "E11",
        "Section 5 / Proposition 4 — set semantics and semantic vs structural equivalence",
    );

    // (a) The paper's ≡sem-but-not-≡struct example.
    let mut a = pxml_core::probtree::ProbTree::new("A");
    let w1 = a.events_mut().insert("w1", 0.8);
    let w2 = a.events_mut().insert("w2", 0.5);
    let ra = a.tree().root();
    a.add_child(
        ra,
        "B",
        Condition::from_literals([Literal::pos(w1), Literal::pos(w2)]),
    );
    let mut b = pxml_core::probtree::ProbTree::new("A");
    let w3 = b.events_mut().insert("w3", 0.4);
    let rb = b.tree().root();
    b.add_child(rb, "B", Condition::of(Literal::pos(w3)));
    println!(
        "w1∧w2 (0.8·0.5) vs w3 (0.4):  semantically equivalent = {}, structurally equivalent = {}",
        pxml_core::equivalence::semantic_equivalent(&a, &b, 20).unwrap(),
        structural_equivalent_exhaustive(&a, &b, 20).unwrap()
    );

    // (b) Multiset vs set semantics on duplicate children.
    let mut two = pxml_core::probtree::ProbTree::new("A");
    let w = two.events_mut().insert("w", 0.5);
    let rt = two.tree().root();
    two.add_child(rt, "B", Condition::of(Literal::pos(w)));
    two.add_child(rt, "B", Condition::of(Literal::pos(w)));
    let mut one = pxml_core::probtree::ProbTree::new("A");
    let w_ = one.events_mut().insert("w", 0.5);
    let ro = one.tree().root();
    one.add_child(ro, "B", Condition::of(Literal::pos(w_)));
    println!(
        "two conditioned B children vs one:  multiset-equivalent = {}, set-equivalent = {}",
        structural_equivalent_exhaustive(&two, &one, 20).unwrap(),
        pxml_core::equivalence::structural_equivalent_exhaustive_with(
            &two,
            &one,
            20,
            pxml_tree::canon::Semantics::Set
        )
        .unwrap()
    );

    // (c) Semantic equivalence cost: it expands both PW sets (exptime).
    println!("\nsemantic-equivalence cost (exhaustive PW expansion):");
    println!("{:>5} {:>14}", "|W|", "time (ms)");
    for events in [4usize, 8, 12, 16] {
        let mut t = pxml_core::probtree::ProbTree::new("R");
        let root = t.tree().root();
        for _ in 0..events {
            let w = t.events_mut().fresh(0.5);
            t.add_child(root, "X", Condition::of(Literal::pos(w)));
        }
        let u = t.clone();
        let start = Instant::now();
        let equal = pxml_core::equivalence::semantic_equivalent(&t, &u, 24).unwrap();
        println!(
            "{events:>5} {:>14.3}   (equivalent = {equal})",
            ms(start.elapsed())
        );
    }
    println!();
}

/// E16: the warehouse server — multi-tenant traffic throughput, latency
/// order statistics, and the maintenance hub's sharing counters.
fn e16_warehouse_server() {
    use pxml_server::{run_traffic, LatencySummary, TrafficConfig};

    header(
        "E16",
        "Warehouse server — multi-tenant traffic, latency percentiles, hub sharing",
    );

    let us = |d: std::time::Duration| d.as_secs_f64() * 1e6;
    let row = |label: &str, s: &LatencySummary, elapsed: std::time::Duration| {
        println!(
            "{label:>8} | {:>6} {:>12.1} {:>12.1} {:>12.1} {:>12.1} | {:>10.0}",
            s.count,
            us(s.p50),
            us(s.p95),
            us(s.p99),
            us(s.max),
            s.throughput(elapsed)
        );
    };

    for threads in [1usize, 2, 4] {
        let config = TrafficConfig {
            threads,
            ..TrafficConfig::from_env()
        };
        let report = run_traffic(&config);
        println!(
            "{} tenants x {} rounds x (1 commit + {} reads), {} threads:",
            config.tenants, config.rounds, config.reads_per_round, threads
        );
        println!(
            "{:>8} | {:>6} {:>12} {:>12} {:>12} {:>12} | {:>10}",
            "op", "count", "p50 (us)", "p95 (us)", "p99 (us)", "max (us)", "ops/s"
        );
        row("commit", &report.commits, report.elapsed);
        row("read", &report.reads, report.elapsed);
        let hub = report.hub;
        println!(
            "   hub: {} deltas observed, {} flags fanned, {} windows composed, {} view maintains",
            hub.deltas_observed, hub.flags_fanned, hub.windows_composed, hub.view_maintains
        );
        println!(
            "   checksum {:.6} (deterministic per seed), total {:.0} ops/s\n",
            report.checksum,
            report.ops_per_second()
        );
    }
    println!(
        "(reads are served from hub-maintained views: maintenance passes scale with read \
         rounds, not with views x deltas)\n"
    );
}
