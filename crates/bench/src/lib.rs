//! # pxml-bench — the experiment harness
//!
//! One criterion bench target and/or one `tables` section per experiment of
//! `EXPERIMENTS.md` (E1–E11), each reproducing the complexity *shape* of a
//! formal result of the paper. See `DESIGN.md` §3 for the experiment ↔
//! result mapping.
//!
//! The `tables` binary (`cargo run --release -p pxml_bench --bin tables`)
//! prints the size/count tables (exponential blow-ups are statements about
//! *representation size*, which criterion does not capture); the criterion
//! benches (`cargo bench`) measure running times.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::SeedableRng;

use pxml_core::probtree::ProbTree;
use pxml_core::PatternQuery;
use pxml_workloads::random::{random_probtree, ProbTreeConfig, TreeConfig};

/// The fixed RNG seed used by every experiment (full determinism).
pub const SEED: u64 = 0x2007_0611;

/// A seeded RNG for the experiments.
pub fn rng() -> StdRng {
    StdRng::seed_from_u64(SEED)
}

/// The standard random prob-tree used by the query/update scaling
/// experiments: `nodes` nodes, fan-out ≤ 8, 4 labels, 16 event variables,
/// 40% of the nodes annotated with ≤ 2 literals.
pub fn scaling_probtree(nodes: usize, rng: &mut StdRng) -> ProbTree {
    random_probtree(
        &ProbTreeConfig {
            tree: TreeConfig {
                nodes,
                max_fanout: 8,
                labels: 4,
            },
            events: 16,
            annotation_density: 0.4,
            max_literals: 2,
        },
        rng,
    )
}

/// The query used by the E3/E4 scaling experiments: `L0` nodes with an `L1`
/// child (unanchored), i.e. a two-step tree-pattern query.
pub fn scaling_query() -> PatternQuery {
    let mut q = PatternQuery::new(Some("L0"));
    q.add_child(q.root(), "L1");
    q
}

/// Node counts used by the scaling experiments.
pub const SCALING_SIZES: [usize; 4] = [100, 500, 2_000, 8_000];

#[cfg(test)]
mod tests {
    use super::*;
    use pxml_core::QueryEngine;

    #[test]
    fn scaling_fixtures_are_generated_deterministically() {
        let a = scaling_probtree(500, &mut rng());
        let b = scaling_probtree(500, &mut rng());
        assert_eq!(a.num_nodes(), 500);
        assert_eq!(a.num_literals(), b.num_literals());
    }

    #[test]
    fn scaling_query_has_answers_on_the_fixture() {
        let tree = scaling_probtree(2_000, &mut rng());
        let one_shot_query = scaling_query();
        let answers: Vec<_> = QueryEngine::new()
            .prepare(&tree, &one_shot_query)
            .answers()
            .collect();
        assert!(
            !answers.is_empty(),
            "the scaling query should match something"
        );
        // The prepared state serves the same answers (the E3 bench relies
        // on it for the prepared-vs-unprepared comparison).
        let query = scaling_query();
        let prepared = QueryEngine::new().prepare(&tree, &query);
        assert_eq!(prepared.len(), answers.len());
        assert!(prepared.top_k(10).len() <= 10);
    }
}
