//! E8 — Theorem 5 (1)–(2): DTD satisfiability is NP-complete in the number
//! of event variables. The workload is random 3-CNF at the phase
//! transition, put through the paper's reduction; we compare
//!
//! * DPLL on the original CNF (the "native SAT" baseline),
//! * the pruned backtracking DTD-satisfiability checker on the reduced
//!   prob-tree, and
//! * the brute-force `2^{|W|}` sweep.
//!
//! All three are exponential in the worst case; the point of the experiment
//! is that the reduction preserves the answer and that the structure-aware
//! checkers beat the naive sweep by orders of magnitude.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use pxml_bench::rng;
use pxml_dtd::reduction::reduce_sat;
use pxml_dtd::satisfiability::{satisfiable_backtracking, satisfiable_bruteforce};
use pxml_sat::gen3sat::{random_3sat, ThreeSatConfig};
use pxml_sat::solve_dpll;

fn instances(num_vars: usize, count: usize) -> Vec<pxml_sat::Cnf> {
    let mut r = rng();
    (0..count)
        .map(|_| random_3sat(ThreeSatConfig::at_ratio(num_vars, 4.26), &mut r))
        .collect()
}

fn bench_dpll_baseline(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_dpll_on_cnf");
    for num_vars in [8usize, 12, 16, 20] {
        let cnfs = instances(num_vars, 5);
        group.bench_with_input(BenchmarkId::from_parameter(num_vars), &cnfs, |b, cnfs| {
            b.iter(|| cnfs.iter().filter(|cnf| solve_dpll(cnf).is_some()).count());
        });
    }
    group.finish();
}

fn bench_dtd_backtracking(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_dtd_backtracking");
    for num_vars in [8usize, 12, 16, 20] {
        let trees: Vec<_> = instances(num_vars, 5).iter().map(reduce_sat).collect();
        group.bench_with_input(BenchmarkId::from_parameter(num_vars), &trees, |b, trees| {
            b.iter(|| {
                trees
                    .iter()
                    .filter(|i| {
                        satisfiable_backtracking(&i.tree, &i.satisfiability_dtd)
                            .0
                            .is_some()
                    })
                    .count()
            });
        });
    }
    group.finish();
}

fn bench_dtd_bruteforce(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_dtd_bruteforce");
    // The naive sweep visits 2^{|W|} worlds; keep the sizes modest.
    for num_vars in [8usize, 12, 16] {
        let trees: Vec<_> = instances(num_vars, 5).iter().map(reduce_sat).collect();
        group.bench_with_input(BenchmarkId::from_parameter(num_vars), &trees, |b, trees| {
            b.iter(|| {
                trees
                    .iter()
                    .filter(|i| {
                        satisfiable_bruteforce(&i.tree, &i.satisfiability_dtd, 24)
                            .unwrap()
                            .is_some()
                    })
                    .count()
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(400))
        .measurement_time(Duration::from_millis(1500));
    targets = bench_dpll_baseline, bench_dtd_backtracking, bench_dtd_bruteforce
}
criterion_main!(benches);
