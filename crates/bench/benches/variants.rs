//! E10 — Section 5 ("Arbitrary Propositional Formula"): with arbitrary
//! formulas as conditions, the Theorem 3 deletion becomes polynomial while
//! boolean query evaluation requires SAT solving (and probability
//! computation requires exponential model counting).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use pxml_core::update::{UpdateEngine, UpdateEngineConfig};
use pxml_core::variants::FormulaProbTree;
use pxml_core::PatternQuery;
use pxml_sat::{Formula, Var};
use pxml_workloads::paper::{d0_deletion, theorem3_tree};

fn theorem3_formula_tree(n: usize) -> FormulaProbTree {
    let mut t = FormulaProbTree::new("A");
    let root = t.tree().root();
    t.add_child(root, "B", Formula::True);
    for _ in 0..n {
        let w0 = t.events_mut().fresh(0.5);
        let w1 = t.events_mut().fresh(0.5);
        t.add_child(
            root,
            "C",
            Formula::Var(Var(w0.index() as u32)).and(Formula::Var(Var(w1.index() as u32))),
        );
    }
    t
}

fn d0(t: &mut FormulaProbTree) {
    let mut q = PatternQuery::anchored(Some("A"));
    let b = q.add_child(q.root(), "B");
    let _c = q.add_child(q.root(), "C");
    t.delete(&q, b, 1.0);
}

/// Deletion cost on the conjunctive prob-tree model (exponential, Theorem
/// 3), timed on the raw engine configuration so the curve measures the
/// Appendix A deletion itself rather than the simplification pass.
fn bench_conjunctive_deletion(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_deletion_conjunctive_model");
    let engine = UpdateEngine::with_config(UpdateEngineConfig::raw());
    for n in [2usize, 4, 6, 8, 10] {
        let tree = theorem3_tree(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &tree, |b, tree| {
            b.iter(|| engine.apply(tree, &d0_deletion(1.0)));
        });
    }
    group.finish();
}

/// Deletion cost on the arbitrary-formula model (polynomial).
fn bench_formula_deletion(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_deletion_formula_model");
    for n in [2usize, 4, 6, 8, 10, 50, 200] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut tree = theorem3_formula_tree(n);
                d0(&mut tree);
                tree.size()
            });
        });
    }
    group.finish();
}

/// Boolean query evaluation on the formula model after the deletion: needs
/// a SAT call per query (the expensive direction of the trade-off).
fn bench_formula_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_boolean_query_formula_model");
    for n in [4usize, 16, 64, 200] {
        let mut tree = theorem3_formula_tree(n);
        d0(&mut tree);
        let mut q_b = PatternQuery::anchored(Some("A"));
        q_b.add_child(q_b.root(), "B");
        group.bench_with_input(
            BenchmarkId::from_parameter(n),
            &(tree, q_b),
            |b, (tree, q)| {
                b.iter(|| tree.query_possible(q));
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(400))
        .measurement_time(Duration::from_millis(1500));
    targets = bench_conjunctive_deletion, bench_formula_deletion, bench_formula_query
}
criterion_main!(benches);
