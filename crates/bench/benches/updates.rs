//! E4/E5 — Proposition 2 (updates) and Theorem 3: probabilistic insertions
//! stay polynomial while the `d0` deletion on the Theorem 3 family takes
//! time (and space) exponential in `n`.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use pxml_bench::{rng, scaling_probtree, SCALING_SIZES};
use pxml_core::update::{ProbabilisticUpdate, UpdateOperation};
use pxml_core::PatternQuery;
use pxml_tree::DataTree;
use pxml_workloads::paper::{d0_deletion, theorem3_tree};

/// E4: insertion scaling on random prob-trees (insert an `E` child under
/// every `L0` node, confidence 0.9).
fn bench_insertions(c: &mut Criterion) {
    let mut r = rng();
    let trees: Vec<_> = SCALING_SIZES
        .iter()
        .map(|&n| (n, scaling_probtree(n, &mut r)))
        .collect();
    let mut group = c.benchmark_group("e4_insertion_scaling");
    for (n, tree) in &trees {
        group.bench_with_input(BenchmarkId::from_parameter(n), tree, |b, tree| {
            b.iter(|| {
                let q = PatternQuery::new(Some("L0"));
                let at = q.root();
                let update = ProbabilisticUpdate::new(
                    UpdateOperation::insert(q, at, DataTree::new("E")),
                    0.9,
                );
                update.apply_to_probtree(tree)
            });
        });
    }
    group.finish();
}

/// E5: the Theorem 3 deletion blow-up — `d0` on the n-C-children family.
/// Time doubles (at least) with every increment of n; the companion table
/// (`tables --exp e5`) reports the output sizes.
fn bench_theorem3_deletion(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_theorem3_deletion");
    for n in [2usize, 4, 6, 8, 10, 12] {
        let tree = theorem3_tree(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &tree, |b, tree| {
            b.iter(|| d0_deletion(1.0).apply_to_probtree(tree));
        });
    }
    group.finish();
}

/// E5 (contrast): the same query used for an insertion instead of a
/// deletion stays flat on the very same family.
fn bench_theorem3_insertion_contrast(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_theorem3_insertion_contrast");
    for n in [2usize, 4, 6, 8, 10, 12] {
        let tree = theorem3_tree(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &tree, |b, tree| {
            b.iter(|| {
                let (update, _) = pxml_workloads::paper::d0_insertion(1.0);
                update.apply_to_probtree(tree)
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(15)
        .warm_up_time(Duration::from_millis(400))
        .measurement_time(Duration::from_millis(1500));
    targets = bench_insertions, bench_theorem3_deletion, bench_theorem3_insertion_contrast
}
criterion_main!(benches);
